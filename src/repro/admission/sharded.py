"""Sharded (per-edge-router) admission control.

The controllers in :mod:`repro.admission.utilization` keep one logical
utilization ledger.  In a deployed DiffServ network the paper envisions
admission decisions at the *edge*; a shared ledger then needs a
consistency protocol between edge routers.  The classic way to avoid it
is **quota sharding**: every link's slot capacity is split ahead of time
among the edge routers, and each edge router admits against its private
share only.

Decisions become **purely local** — no coordination at all — at the cost
of capacity fragmentation: a flow can be rejected at one edge while
another edge still holds unused quota on the same links.  The bench
(Ext-K) quantifies that trade against the shared-ledger controller.

Shares default to proportional-to-demand: each edge router receives, for
every link, a fraction of the slots equal to the fraction of configured
routes *originating at that edge* that traverse the link (unclaimed
remainders go round-robin).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import AdmissionError
from ..topology.servergraph import LinkServerGraph
from ..traffic.classes import ClassRegistry
from ..traffic.flows import FlowSpec
from .base import AdmissionController, Pair

__all__ = ["ShardedAdmissionController"]


class ShardedAdmissionController(AdmissionController):
    """Coordination-free edge admission via per-edge slot quotas.

    Parameters
    ----------
    alphas:
        The verified per-class utilization assignment (same certificate
        as the shared controller — sharding only *partitions* it, so the
        hard guarantee is preserved: the sum of shares never exceeds the
        verified slot counts).
    """

    def __init__(
        self,
        graph: LinkServerGraph,
        registry: ClassRegistry,
        alphas: Mapping[str, float],
        route_map: Mapping[Pair, Sequence[Hashable]],
    ):
        super().__init__(graph, registry, route_map)
        self.alphas = dict(alphas)
        self._edges: List[Hashable] = sorted(
            {src for src, _ in route_map}, key=str
        )
        if not self._edges:
            raise AdmissionError("route map has no source edge routers")
        self._edge_index = {e: i for i, e in enumerate(self._edges)}
        # quota[class][edge_idx, server] and used[...] mirror it.
        self._quota: Dict[str, np.ndarray] = {}
        self._total_slots: Dict[str, np.ndarray] = {}
        self._used: Dict[str, np.ndarray] = {}
        self._flow_servers: Dict[Hashable, Tuple[str, int, np.ndarray]] = {}
        self._blocked: np.ndarray = np.zeros(graph.num_servers, dtype=bool)
        self._degradation = 1.0
        for cls in registry.realtime_classes():
            name = cls.name
            if name not in self.alphas:
                raise AdmissionError(f"missing alpha for class {name!r}")
            total = np.floor(
                float(self.alphas[name]) * graph.capacities / cls.rate
            ).astype(np.int64)
            self._total_slots[name] = total
            self._quota[name] = self._split_quota(total)
            self._used[name] = np.zeros_like(self._quota[name])

    # ------------------------------------------------------------------ #
    # quota construction
    # ------------------------------------------------------------------ #

    def _split_quota(self, total_slots: np.ndarray) -> np.ndarray:
        """Partition per-server slots among edges, demand-weighted.

        For every server, edge ``e``'s weight is the number of configured
        routes originating at ``e`` that traverse the server.  Weights of
        zero everywhere fall back to uniform.  Flooring leaves a
        remainder of at most ``num_edges - 1`` slots per server, handed
        out round-robin by descending fractional part — the shares always
        sum to exactly the verified total.
        """
        n_edges = len(self._edges)
        n_servers = self.graph.num_servers
        weights = np.zeros((n_edges, n_servers), dtype=np.float64)
        for (src, _dst), path in self.route_map.items():
            servers = self.graph.route_servers(path)
            weights[self._edge_index[src], servers] += 1.0
        col_sums = weights.sum(axis=0)
        uniform = np.full(n_edges, 1.0 / n_edges)
        shares = np.where(
            col_sums > 0, weights / np.where(col_sums > 0, col_sums, 1.0),
            uniform[:, None],
        )
        raw = shares * total_slots[None, :]
        quota = np.floor(raw).astype(np.int64)
        remainder = total_slots - quota.sum(axis=0)
        frac = raw - np.floor(raw)
        # Hand out remainders to the largest fractional parts per server.
        order = np.argsort(-frac, axis=0, kind="stable")
        for s in range(n_servers):
            for r in range(int(remainder[s])):
                quota[order[r % n_edges, s], s] += 1
        assert np.all(quota.sum(axis=0) == total_slots)
        return quota

    def _effective_total(self, class_name: str) -> np.ndarray:
        """Verified per-server slots after degradation and dead links."""
        total = np.floor(
            self._total_slots[class_name] * self._degradation
        ).astype(np.int64)
        total[self._blocked] = 0
        return total

    # ------------------------------------------------------------------ #
    # degraded operation (fault tolerance)
    # ------------------------------------------------------------------ #

    def rebalance(
        self,
        routes: Optional[Mapping[Pair, Sequence[Hashable]]] = None,
    ) -> None:
        """Re-split every quota against the current demand pattern.

        Called after a failure transition: with ``routes`` given, the
        configured route map is replaced first (see
        :meth:`~repro.admission.base.AdmissionController.update_routes`),
        then each class's effective slot total — dead servers zeroed,
        degradation applied — is re-partitioned demand-weighted.  Usage
        is preserved verbatim; an edge left with ``used > quota`` simply
        cannot admit until it drains.
        """
        if routes is not None:
            self.update_routes(routes)
        for name in self._quota:
            self._quota[name] = self._split_quota(
                self._effective_total(name)
            )

    def block_servers(self, servers: Sequence[int]) -> None:
        """Zero every edge's quota on dead link servers and rebalance."""
        self._blocked[np.asarray(servers, dtype=np.int64)] = True
        self.rebalance()

    def unblock_servers(self, servers: Sequence[int]) -> None:
        """Restore quota capacity on recovered link servers."""
        self._blocked[np.asarray(servers, dtype=np.int64)] = False
        self.rebalance()

    def enter_degraded_mode(self, factor: float) -> None:
        """Scale every quota to ``factor`` of the verified slots."""
        if not (0.0 < factor <= 1.0):
            raise AdmissionError(
                f"degradation factor must be in (0, 1], got {factor}"
            )
        self._degradation = float(factor)
        self.rebalance()

    def exit_degraded_mode(self) -> None:
        self._degradation = 1.0
        self.rebalance()

    @property
    def degraded_factor(self) -> float:
        return self._degradation

    @property
    def in_degraded_mode(self) -> bool:
        return self._degradation < 1.0

    # ------------------------------------------------------------------ #
    # controller hooks
    # ------------------------------------------------------------------ #

    def _admit_impl(
        self, flow: FlowSpec, route: Sequence[Hashable]
    ) -> Tuple[bool, str]:
        cls = self.registry.get(flow.class_name)
        if not cls.is_realtime:
            self._flow_servers[flow.flow_id] = None
            return True, ""
        edge = flow.source
        if edge not in self._edge_index:
            return False, (
                f"edge router {edge!r} holds no quota "
                "(not a configured source)"
            )
        e = self._edge_index[edge]
        servers = self.graph.route_servers(route)
        quota = self._quota[flow.class_name]
        used = self._used[flow.class_name]
        if np.any(used[e, servers] >= quota[e, servers]):
            return False, (
                f"edge {edge!r} exhausted its {flow.class_name!r} quota "
                "on the path"
            )
        used[e, servers] += 1
        self._flow_servers[flow.flow_id] = (flow.class_name, e, servers)
        return True, ""

    def _release_impl(
        self, flow: FlowSpec, route: Sequence[Hashable]
    ) -> None:
        record = self._flow_servers.pop(flow.flow_id)
        if record is None:
            return
        name, e, servers = record
        self._used[name][e, servers] -= 1
        if np.any(self._used[name][e, servers] < 0):
            raise AdmissionError("quota accounting went negative")

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def edges(self) -> List[Hashable]:
        return list(self._edges)

    def quota_of(self, class_name: str, edge: Hashable) -> np.ndarray:
        """Per-server slot quota a given edge router holds."""
        return self._quota[class_name][self._edge_index[edge]].copy()

    def total_quota(self, class_name: str) -> np.ndarray:
        """Sum of all shares — equals the shared controller's slots."""
        return self._quota[class_name].sum(axis=0)

    def fragmentation(self, class_name: str) -> float:
        """Fraction of globally-free slots unusable by the busiest edge.

        0 means no fragmentation right now; approaching 1 means almost
        all remaining capacity is locked in other edges' quotas.
        """
        quota = self._quota[class_name]
        used = self._used[class_name]
        free_total = float((quota - used).sum())
        if free_total == 0:
            return 0.0
        per_edge_free = (quota - used).sum(axis=1)
        return 1.0 - float(per_edge_free.max()) / free_total
