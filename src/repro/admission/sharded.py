"""Sharded (per-edge-router) admission control.

The controllers in :mod:`repro.admission.utilization` keep one logical
utilization ledger.  In a deployed DiffServ network the paper envisions
admission decisions at the *edge*; a shared ledger then needs a
consistency protocol between edge routers.  The classic way to avoid it
is **quota sharding**: every link's slot capacity is split ahead of time
among the edge routers, and each edge router admits against its private
share only.

Decisions become **purely local** — no coordination at all — at the cost
of capacity fragmentation: a flow can be rejected at one edge while
another edge still holds unused quota on the same links.  The bench
(Ext-K) quantifies that trade against the shared-ledger controller.

Shares default to proportional-to-demand: each edge router receives, for
every link, a fraction of the slots equal to the fraction of configured
routes *originating at that edge* that traverse the link (unclaimed
remainders go round-robin).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import AdmissionError
from ..topology.servergraph import LinkServerGraph
from ..traffic.classes import ClassRegistry
from ..traffic.flows import FlowSpec
from .base import AdmissionController, Pair
from .batch import (
    PADDING_FREE,
    batch_slot_decisions,
    flat_committed_servers,
    pad_server_matrix,
)
from .flowtable import NO_CLASS, FlowTable
from .utilization import UtilizationAdmissionController

__all__ = [
    "ShardedAdmissionController",
    "SlotShardController",
    "plan_slot_shards",
]

_EMPTY_SERVERS = np.empty(0, dtype=np.int64)
_ADMITTED = (True, "")


def plan_slot_shards(
    total_slots: np.ndarray,
    n_shards: int,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Partition per-server slot capacity among ``n_shards`` owners.

    ``total_slots`` is the verified per-server slot vector of one class;
    the result is an ``(n_shards, n_servers)`` integer matrix whose
    columns sum to **exactly** ``total_slots`` — the partition never
    mints capacity, so any owner admitting against its private row
    preserves the certified utilization bound no matter how the owners
    interleave.

    ``weights`` (same shape as the result) biases the split
    proportionally per server; omitted or all-zero columns fall back to
    uniform.  Flooring leaves a remainder of at most ``n_shards - 1``
    slots per server, handed out round-robin by descending fractional
    part so the split is deterministic.
    """
    if n_shards < 1:
        raise AdmissionError(f"need at least one shard, got {n_shards}")
    total = np.asarray(total_slots, dtype=np.int64)
    if total.ndim != 1:
        raise AdmissionError("total_slots must be one-dimensional")
    if np.any(total < 0):
        raise AdmissionError("total_slots must be non-negative")
    n_servers = total.shape[0]
    if weights is None:
        weights = np.ones((n_shards, n_servers), dtype=np.float64)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n_shards, n_servers):
            raise AdmissionError(
                f"weights shape {weights.shape} != {(n_shards, n_servers)}"
            )
        if np.any(weights < 0):
            raise AdmissionError("shard weights must be non-negative")
    col_sums = weights.sum(axis=0)
    uniform = np.full(n_shards, 1.0 / n_shards)
    shares = np.where(
        col_sums > 0,
        weights / np.where(col_sums > 0, col_sums, 1.0),
        uniform[:, None],
    )
    raw = shares * total[None, :]
    quota = np.floor(raw).astype(np.int64)
    remainder = total - quota.sum(axis=0)
    frac = raw - np.floor(raw)
    # Hand out remainders to the largest fractional parts per server.
    order = np.argsort(-frac, axis=0, kind="stable")
    for s in range(n_servers):
        for r in range(int(remainder[s])):
            quota[order[r % n_shards, s], s] += 1
    assert np.all(quota.sum(axis=0) == total)
    return quota


class ShardedAdmissionController(AdmissionController):
    """Coordination-free edge admission via per-edge slot quotas.

    Parameters
    ----------
    alphas:
        The verified per-class utilization assignment (same certificate
        as the shared controller — sharding only *partitions* it, so the
        hard guarantee is preserved: the sum of shares never exceeds the
        verified slot counts).
    """

    def __init__(
        self,
        graph: LinkServerGraph,
        registry: ClassRegistry,
        alphas: Mapping[str, float],
        route_map: Mapping[Pair, Sequence[Hashable]],
    ):
        super().__init__(graph, registry, route_map)
        self.alphas = dict(alphas)
        self._edges: List[Hashable] = sorted(
            {src for src, _ in route_map}, key=str
        )
        if not self._edges:
            raise AdmissionError("route map has no source edge routers")
        self._edge_index = {e: i for i, e in enumerate(self._edges)}
        # quota[class][edge_idx, server] and used[...] mirror it.
        self._quota: Dict[str, np.ndarray] = {}
        self._total_slots: Dict[str, np.ndarray] = {}
        self._used: Dict[str, np.ndarray] = {}
        self._class_names = [c.name for c in registry.realtime_classes()]
        self._class_codes = {n: i for i, n in enumerate(self._class_names)}
        # Server indices per established flow (tag = admitting edge).
        self._flows = FlowTable(pad=graph.num_servers)
        self._blocked: np.ndarray = np.zeros(graph.num_servers, dtype=bool)
        self._degradation = 1.0
        for cls in registry.realtime_classes():
            name = cls.name
            if name not in self.alphas:
                raise AdmissionError(f"missing alpha for class {name!r}")
            total = np.floor(
                float(self.alphas[name]) * graph.capacities / cls.rate
            ).astype(np.int64)
            self._total_slots[name] = total
            self._quota[name] = self._split_quota(total)
            self._used[name] = np.zeros_like(self._quota[name])

    # ------------------------------------------------------------------ #
    # quota construction
    # ------------------------------------------------------------------ #

    def _split_quota(self, total_slots: np.ndarray) -> np.ndarray:
        """Partition per-server slots among edges, demand-weighted.

        For every server, edge ``e``'s weight is the number of configured
        routes originating at ``e`` that traverse the server.  Weights of
        zero everywhere fall back to uniform.  Flooring leaves a
        remainder of at most ``num_edges - 1`` slots per server, handed
        out round-robin by descending fractional part — the shares always
        sum to exactly the verified total.
        """
        n_edges = len(self._edges)
        n_servers = self.graph.num_servers
        weights = np.zeros((n_edges, n_servers), dtype=np.float64)
        for (src, _dst), path in self.route_map.items():
            servers = self.graph.route_servers(path)
            weights[self._edge_index[src], servers] += 1.0
        return plan_slot_shards(total_slots, n_edges, weights)

    def _effective_total(self, class_name: str) -> np.ndarray:
        """Verified per-server slots after degradation and dead links."""
        total = np.floor(
            self._total_slots[class_name] * self._degradation
        ).astype(np.int64)
        total[self._blocked] = 0
        return total

    # ------------------------------------------------------------------ #
    # degraded operation (fault tolerance)
    # ------------------------------------------------------------------ #

    def rebalance(
        self,
        routes: Optional[Mapping[Pair, Sequence[Hashable]]] = None,
    ) -> None:
        """Re-split every quota against the current demand pattern.

        Called after a failure transition: with ``routes`` given, the
        configured route map is replaced first (see
        :meth:`~repro.admission.base.AdmissionController.update_routes`),
        then each class's effective slot total — dead servers zeroed,
        degradation applied — is re-partitioned demand-weighted.  Usage
        is preserved verbatim; an edge left with ``used > quota`` simply
        cannot admit until it drains.
        """
        if routes is not None:
            self.update_routes(routes)
        for name in self._quota:
            self._quota[name] = self._split_quota(
                self._effective_total(name)
            )

    def block_servers(self, servers: Sequence[int]) -> None:
        """Zero every edge's quota on dead link servers and rebalance."""
        self._blocked[np.asarray(servers, dtype=np.int64)] = True
        self.rebalance()

    def unblock_servers(self, servers: Sequence[int]) -> None:
        """Restore quota capacity on recovered link servers."""
        self._blocked[np.asarray(servers, dtype=np.int64)] = False
        self.rebalance()

    def enter_degraded_mode(self, factor: float) -> None:
        """Scale every quota to ``factor`` of the verified slots."""
        if not (0.0 < factor <= 1.0):
            raise AdmissionError(
                f"degradation factor must be in (0, 1], got {factor}"
            )
        self._degradation = float(factor)
        self.rebalance()

    def exit_degraded_mode(self) -> None:
        self._degradation = 1.0
        self.rebalance()

    @property
    def degraded_factor(self) -> float:
        return self._degradation

    @property
    def in_degraded_mode(self) -> bool:
        return self._degradation < 1.0

    # ------------------------------------------------------------------ #
    # controller hooks
    # ------------------------------------------------------------------ #

    def _admit_impl(
        self, flow: FlowSpec, route: Sequence[Hashable]
    ) -> Tuple[bool, str]:
        cls = self.registry.get(flow.class_name)
        if not cls.is_realtime:
            self._flows.add(flow.flow_id, NO_CLASS, _EMPTY_SERVERS)
            return True, ""
        edge = flow.source
        if edge not in self._edge_index:
            return False, (
                f"edge router {edge!r} holds no quota "
                "(not a configured source)"
            )
        e = self._edge_index[edge]
        servers = self._servers_for(flow, route)
        quota = self._quota[flow.class_name]
        used = self._used[flow.class_name]
        if np.any(used[e, servers] >= quota[e, servers]):
            return False, (
                f"edge {edge!r} exhausted its {flow.class_name!r} quota "
                "on the path"
            )
        used[e, servers] += 1
        self._flows.add(
            flow.flow_id, self._class_codes[flow.class_name], servers,
            tag=e,
        )
        return True, ""

    def _release_impl(
        self, flow: FlowSpec, route: Sequence[Hashable]
    ) -> None:
        code, servers, e = self._flows.pop(flow.flow_id)
        if code == NO_CLASS:
            return
        name = self._class_names[code]
        self._used[name][e, servers] -= 1
        if np.any(self._used[name][e, servers] < 0):
            raise AdmissionError("quota accounting went negative")

    def _admit_batch_impl(
        self,
        flows: Sequence[FlowSpec],
        routes: Sequence[Sequence[Hashable]],
    ) -> List[Tuple[bool, str]]:
        """Vectorized batch decision over the per-edge quota shards.

        The kernel runs once per class on a combined ``edge * S +
        server`` index space: flows admitted at different edges never
        share a combined index, so one call resolves every shard's
        intra-batch contention at once while staying decision-identical
        to the sequential loop.
        """
        table = self._flows
        codes = self._class_codes
        n_servers = self.graph.num_servers
        n_cells = len(self._edges) * n_servers
        outcomes: List[Tuple[bool, str]] = [_ADMITTED] * len(flows)
        by_class: Dict[str, List[int]] = {}
        best_effort: List[FlowSpec] = []
        for i, flow in enumerate(flows):
            if flow.class_name not in codes:
                self.registry.get(flow.class_name)
                best_effort.append(flow)
            elif flow.source not in self._edge_index:
                outcomes[i] = (
                    False,
                    f"edge router {flow.source!r} holds no quota "
                    "(not a configured source)",
                )
            else:
                by_class.setdefault(flow.class_name, []).append(i)
        for flow in best_effort:
            table.add(flow.flow_id, NO_CLASS, _EMPTY_SERVERS)
        for name, members in by_class.items():
            rows = [
                self._servers_for(flows[i], routes[i]) for i in members
            ]
            matrix, lengths = pad_server_matrix(rows, n_servers)
            edge_col = np.fromiter(
                (self._edge_index[flows[i].source] for i in members),
                dtype=np.int64,
                count=len(members),
            )
            combined = matrix + edge_col[:, None] * n_servers
            combined[matrix == n_servers] = n_cells
            free = np.empty(n_cells + 1, dtype=np.int64)
            np.subtract(
                self._quota[name].reshape(-1),
                self._used[name].reshape(-1),
                out=free[:n_cells],
            )
            free[n_cells] = PADDING_FREE
            admitted = batch_slot_decisions(combined, free)
            ok = np.flatnonzero(admitted)
            if ok.size:
                flat = flat_committed_servers(combined, admitted, n_cells)
                np.add.at(self._used[name].reshape(-1), flat, 1)
                table.add_batch(
                    [flows[members[r]].flow_id for r in ok],
                    self._class_codes[name],
                    matrix[ok],
                    lengths[ok],
                    tags=edge_col[ok],
                )
            for r in np.flatnonzero(~admitted):
                i = members[r]
                outcomes[i] = (
                    False,
                    f"edge {flows[i].source!r} exhausted its "
                    f"{name!r} quota on the path",
                )
        return outcomes

    def _release_batch_impl(
        self,
        flows: Sequence[FlowSpec],
        routes: Sequence[Sequence[Hashable]],
    ) -> None:
        codes, matrix, _lengths, tags = self._flows.pop_batch(
            [f.flow_id for f in flows]
        )
        pad = self._flows.pad
        n_servers = self.graph.num_servers
        for code in np.unique(codes):
            if code == NO_CLASS:
                continue
            name = self._class_names[int(code)]
            used = self._used[name].reshape(-1)
            mask = codes == code
            sel = matrix[mask]
            combined = sel + tags[mask][:, None] * n_servers
            counts = np.bincount(
                combined[sel != pad], minlength=used.size
            )
            used -= counts
            if np.any(used < 0):
                raise AdmissionError("quota accounting went negative")

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def edges(self) -> List[Hashable]:
        return list(self._edges)

    def quota_of(self, class_name: str, edge: Hashable) -> np.ndarray:
        """Per-server slot quota a given edge router holds."""
        return self._quota[class_name][self._edge_index[edge]].copy()

    def total_quota(self, class_name: str) -> np.ndarray:
        """Sum of all shares — equals the shared controller's slots."""
        return self._quota[class_name].sum(axis=0)

    def verify_invariants(self) -> List[str]:
        """Base bookkeeping checks plus the quota-partition safety
        argument.

        Sharding preserves the paper's certificate through two
        properties checked here: every class's quota matrix columns sum
        to **exactly** the effective per-server totals (the partition
        never mints capacity), and summed usage across all edges never
        exceeds the *verified* totals (an individual edge sitting above
        its quota after a rebalance is legal — it just cannot admit —
        but the network-wide sum must stay certified).  Per-edge usage
        is also reconstructed from the established flows' committed
        server sets.
        """
        problems = super().verify_invariants()
        expected: Dict[str, np.ndarray] = {
            name: np.zeros_like(self._used[name])
            for name in self._class_names
        }
        for fid in self._established:
            if fid not in self._flows:
                problems.append(
                    f"established flow {fid!r} missing from the flow "
                    "table"
                )
                continue
            code, servers, edge = self._flows.entry(fid)
            if code == NO_CLASS:
                continue
            np.add.at(
                expected[self._class_names[code]][edge], servers, 1
            )
        for name in self._class_names:
            used = self._used[name]
            if np.any(used < 0):
                problems.append(
                    f"negative quota usage for class {name!r}"
                )
            effective = self._effective_total(name)
            col_sums = self._quota[name].sum(axis=0)
            if not np.array_equal(col_sums, effective):
                diff = np.flatnonzero(col_sums != effective)
                problems.append(
                    f"quota partition of class {name!r} mints or loses "
                    f"capacity on servers {diff.tolist()}"
                )
            total_used = used.sum(axis=0)
            over = np.flatnonzero(total_used > self._total_slots[name])
            for s in over:
                problems.append(
                    f"over-commit: class {name!r} server {int(s)} holds "
                    f"{int(total_used[s])} slots across all edges but "
                    f"only {int(self._total_slots[name][s])} are "
                    "verified"
                )
            if not np.array_equal(expected[name], used):
                edges_bad, servers_bad = np.nonzero(
                    expected[name] != used
                )
                problems.append(
                    f"quota ledger mismatch: class {name!r} usage at "
                    f"(edge, server) cells "
                    f"{list(zip(edges_bad.tolist(), servers_bad.tolist()))} "
                    "cannot be reconstructed from the established flows"
                )
        return problems

    def fragmentation(self, class_name: str) -> float:
        """Fraction of globally-free slots unusable by the busiest edge.

        0 means no fragmentation right now; approaching 1 means almost
        all remaining capacity is locked in other edges' quotas.
        """
        quota = self._quota[class_name]
        used = self._used[class_name]
        free_total = float((quota - used).sum())
        if free_total == 0:
            return 0.0
        per_edge_free = (quota - used).sum(axis=1)
        return 1.0 - float(per_edge_free.max()) / free_total


class SlotShardController(UtilizationAdmissionController):
    """One worker's private shard of the verified slot capacity.

    The multi-process service cluster runs N copies of the admission
    server, each holding shard ``i`` of ``n`` produced by
    :func:`plan_slot_shards` over every class's verified slot vector.
    Decisions stay purely local (the paper's no-per-flow-core-state
    property is what makes the ledger partition cleanly), and because
    the shards sum to exactly the certified slots, the union of all
    workers' admissions can never over-commit a link no matter how their
    event loops interleave.

    The controller behaves exactly like
    :class:`~repro.admission.utilization.UtilizationAdmissionController`
    against the reduced ledger, so snapshots/restore, degraded mode and
    the batch kernel all work unchanged.  :meth:`snapshot` keeps the
    *full* verified alphas, which keeps shard snapshots mergeable into
    one cluster-wide `repro-admission-snapshot/v1` cut.
    """

    def __init__(
        self,
        graph: LinkServerGraph,
        registry: ClassRegistry,
        alphas: Mapping[str, float],
        route_map: Mapping[Pair, Sequence[Hashable]],
        *,
        shard_index: int,
        shard_count: int,
    ):
        super().__init__(graph, registry, alphas, route_map)
        # The ledger starts at the full verified capacity; keep a copy
        # of it per class before installing this worker's share.
        self._full_slots: Dict[str, np.ndarray] = {
            name: self.ledger.slots(name) for name in self._class_names
        }
        self._shard_index = -1
        self._shard_count = 0
        self.reshard(shard_index, shard_count)

    def reshard(self, shard_index: int, shard_count: int) -> None:
        """Install shard ``shard_index`` of ``shard_count``.

        The rebalance hook for cluster resizes: usage is preserved
        verbatim, so a worker whose new share is below its current usage
        simply cannot admit until it drains — capacity is never minted.
        """
        if shard_count < 1:
            raise AdmissionError(
                f"need at least one shard, got {shard_count}"
            )
        if not 0 <= shard_index < shard_count:
            raise AdmissionError(
                f"shard index {shard_index} out of range "
                f"[0, {shard_count})"
            )
        self._shard_index = int(shard_index)
        self._shard_count = int(shard_count)
        for name in self._class_names:
            plan = plan_slot_shards(self._full_slots[name], shard_count)
            self.ledger.set_capacity(name, plan[shard_index])

    @property
    def shard_index(self) -> int:
        return self._shard_index

    @property
    def shard_count(self) -> int:
        return self._shard_count

    def shard_slots(self, class_name: str) -> np.ndarray:
        """Per-server slot share this worker admits against."""
        return self.ledger.slots(class_name)

    def verified_slots(self, class_name: str) -> np.ndarray:
        """Full certified per-server slots (the sum over all shards)."""
        if class_name not in self._full_slots:
            raise AdmissionError(
                f"class {class_name!r} is not a registered real-time class"
            )
        return self._full_slots[class_name].copy()
