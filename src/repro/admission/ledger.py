"""Per-link-server utilization ledger.

The run-time state of utilization-based admission control is tiny: for
every (link server, class) pair, the number of currently reserved flow
slots.  A *slot* is one homogeneous class flow — the paper's model polices
every class-``i`` flow to the class envelope ``(T_i, rho_i)``, so a server
with bandwidth fraction ``alpha_i`` of capacity ``C`` supports at most
``floor(alpha_i * C / rho_i)`` flows of class ``i`` (constraint (8)).

The ledger enforces exactly that constraint with atomic multi-server
reserve/release, which is all the admission controller needs:
no per-flow state exists inside the ledger, mirroring the paper's claim
that core routers stay flow-unaware.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

from ..errors import AdmissionError
from ..obs import OBS
from ..topology.servergraph import LinkServerGraph
from ..traffic.classes import ClassRegistry

__all__ = ["UtilizationLedger"]


class UtilizationLedger:
    """Slot accounting for every (link server, real-time class) pair.

    Degraded operation (fault tolerance)
    ------------------------------------
    Two orthogonal run-time restrictions support graceful degradation
    after failures, both reversible and both leaving ``used`` untouched:

    * :meth:`block_servers` zeroes the effective capacity of dead link
      servers so no new flow can reserve across a failed link;
    * :meth:`set_degradation` scales every capacity by a factor in
      (0, 1], the "lower effective alpha" fallback used when no verified
      repair exists.

    Either may push effective capacity below current usage; established
    flows are never evicted — admissions simply stay blocked until the
    ledger drains below the reduced ceiling.
    """

    def __init__(
        self,
        graph: LinkServerGraph,
        registry: ClassRegistry,
        alphas: Mapping[str, float],
    ):
        self.graph = graph
        self.registry = registry
        self._class_names = [c.name for c in registry.realtime_classes()]
        if not self._class_names:
            raise AdmissionError("no real-time class to account for")
        self._capacity: Dict[str, np.ndarray] = {}
        self._capacity_full: Dict[str, np.ndarray] = {}
        self._used: Dict[str, np.ndarray] = {}
        self._blocked: np.ndarray = np.zeros(graph.num_servers, dtype=bool)
        self._degradation = 1.0
        total = np.zeros(graph.num_servers)
        for name in self._class_names:
            if name not in alphas:
                raise AdmissionError(f"missing alpha for class {name!r}")
            alpha = float(alphas[name])
            if not (0.0 < alpha <= 1.0):
                raise AdmissionError(
                    f"alpha for {name!r} must be in (0, 1], got {alpha}"
                )
            total += alpha
            rate = registry.get(name).rate
            slots = np.floor(alpha * graph.capacities / rate).astype(np.int64)
            self._capacity[name] = slots
            self._capacity_full[name] = slots.copy()
            self._used[name] = np.zeros(graph.num_servers, dtype=np.int64)
        if np.any(total > 1.0 + 1e-12):
            raise AdmissionError(
                "sum of class utilizations exceeds link capacity"
            )

    # ------------------------------------------------------------------ #
    # degraded operation
    # ------------------------------------------------------------------ #

    def _recompute_effective(self) -> None:
        for name in self._class_names:
            eff = np.floor(
                self._capacity_full[name] * self._degradation
            ).astype(np.int64)
            eff[self._blocked] = 0
            self._capacity[name] = eff

    def block_servers(self, servers: Sequence[int]) -> None:
        """Zero the effective capacity of dead link servers."""
        self._blocked[np.asarray(servers, dtype=np.int64)] = True
        self._recompute_effective()

    def unblock_servers(self, servers: Sequence[int]) -> None:
        """Restore capacity of previously blocked servers."""
        self._blocked[np.asarray(servers, dtype=np.int64)] = False
        self._recompute_effective()

    @property
    def blocked_servers(self) -> np.ndarray:
        """Indices of currently blocked servers."""
        return np.flatnonzero(self._blocked)

    def set_degradation(self, factor: float) -> None:
        """Scale all slot capacities by ``factor`` (degraded mode)."""
        if not (0.0 < factor <= 1.0):
            raise AdmissionError(
                f"degradation factor must be in (0, 1], got {factor}"
            )
        self._degradation = float(factor)
        self._recompute_effective()

    def clear_degradation(self) -> None:
        """Return to the full verified capacities."""
        self._degradation = 1.0
        self._recompute_effective()

    @property
    def degradation(self) -> float:
        return self._degradation

    def set_capacity(
        self, class_name: str, slots: Sequence[int]
    ) -> None:
        """Replace a class's verified slot vector (rebalance hook).

        Installs ``slots`` as the new full capacity and recomputes the
        effective view (degradation and blocked servers still apply).
        ``used`` is untouched: shrinking below current usage never
        evicts established flows, it just blocks new admissions until
        the ledger drains — the quota-shard rebalance contract.
        """
        self._check_class(class_name)
        arr = np.asarray(slots, dtype=np.int64)
        if arr.shape != (self.graph.num_servers,):
            raise AdmissionError(
                f"capacity vector shape {arr.shape} != "
                f"({self.graph.num_servers},)"
            )
        if np.any(arr < 0):
            raise AdmissionError("slot capacity must be non-negative")
        self._capacity_full[class_name] = arr.copy()
        self._recompute_effective()

    # ------------------------------------------------------------------ #

    def slots(self, class_name: str) -> np.ndarray:
        """Per-server flow capacity of a class (read-only copy)."""
        self._check_class(class_name)
        return self._capacity[class_name].copy()

    def used(self, class_name: str) -> np.ndarray:
        """Per-server reserved slots of a class (read-only copy)."""
        self._check_class(class_name)
        return self._used[class_name].copy()

    def capacity_view(self, class_name: str) -> np.ndarray:
        """Per-server slot capacity, **no copy** — callers must not
        mutate.  Hot-path twin of :meth:`slots` for the batch engine."""
        self._check_class(class_name)
        return self._capacity[class_name]

    def used_view(self, class_name: str) -> np.ndarray:
        """Per-server reserved slots, **no copy** — callers must not
        mutate.  Hot-path twin of :meth:`used` for the batch engine."""
        self._check_class(class_name)
        return self._used[class_name]

    def available(self, class_name: str, servers: Sequence[int]) -> bool:
        """Can one more flow of the class fit on every listed server?

        This is the entire run-time admission test of the paper —
        O(path length) integer comparisons.
        """
        self._check_class(class_name)
        idx = np.asarray(servers, dtype=np.int64)
        return bool(
            np.all(
                self._used[class_name][idx] < self._capacity[class_name][idx]
            )
        )

    def reserve(self, class_name: str, servers: Sequence[int]) -> None:
        """Atomically reserve one slot on every listed server.

        Raises :class:`AdmissionError` (leaving the ledger unchanged) if
        any server is full — callers should test :meth:`available` first;
        the raise protects against races/misuse.
        """
        if not self.available(class_name, servers):
            if OBS.enabled:
                OBS.registry.counter(
                    "repro_ledger_reserve_conflicts_total", cls=class_name
                ).inc()
            raise AdmissionError(
                f"no free {class_name!r} slot on some server of the path"
            )
        idx = np.asarray(servers, dtype=np.int64)
        self._used[class_name][idx] += 1
        if OBS.enabled:
            reg = OBS.registry
            reg.counter(
                "repro_ledger_reserves_total", cls=class_name
            ).inc()
            reg.gauge(
                "repro_ledger_slots_in_use", cls=class_name
            ).inc(idx.size)

    def commit_flat(
        self, class_name: str, servers: np.ndarray, n_flows: int
    ) -> None:
        """Commit pre-decided reservations for ``n_flows`` admitted flows.

        ``servers`` is the concatenation of every admitted flow's server
        indices (duplicates across flows expected — each occurrence
        consumes one slot).  The caller (the batch admission kernel) has
        already proven the sequential feasibility of the whole batch, so
        no availability check is repeated here.  Counter increments
        match ``n_flows`` individual :meth:`reserve` calls.
        """
        self._check_class(class_name)
        idx = np.asarray(servers, dtype=np.int64)
        np.add.at(self._used[class_name], idx, 1)
        if OBS.enabled:
            reg = OBS.registry
            reg.counter(
                "repro_ledger_reserves_total", cls=class_name
            ).inc(n_flows)
            reg.gauge(
                "repro_ledger_slots_in_use", cls=class_name
            ).inc(idx.size)

    def release_flat(
        self, class_name: str, servers: np.ndarray, n_flows: int
    ) -> None:
        """Release reservations of ``n_flows`` flows in one operation.

        ``servers`` concatenates the released flows' server indices.
        The whole batch is validated against current usage before any
        slot is freed; counter increments match ``n_flows`` individual
        :meth:`release` calls.
        """
        self._check_class(class_name)
        used = self._used[class_name]
        idx = np.asarray(servers, dtype=np.int64)
        counts = np.bincount(idx, minlength=used.size)
        if np.any(used < counts):
            raise AdmissionError(
                f"releasing unreserved {class_name!r} slot"
            )
        used -= counts
        if OBS.enabled:
            reg = OBS.registry
            reg.counter(
                "repro_ledger_releases_total", cls=class_name
            ).inc(n_flows)
            reg.gauge(
                "repro_ledger_slots_in_use", cls=class_name
            ).dec(idx.size)

    def release(self, class_name: str, servers: Sequence[int]) -> None:
        """Release one slot on every listed server."""
        self._check_class(class_name)
        idx = np.asarray(servers, dtype=np.int64)
        if np.any(self._used[class_name][idx] <= 0):
            raise AdmissionError(
                f"releasing unreserved {class_name!r} slot"
            )
        self._used[class_name][idx] -= 1
        if OBS.enabled:
            reg = OBS.registry
            reg.counter(
                "repro_ledger_releases_total", cls=class_name
            ).inc()
            reg.gauge(
                "repro_ledger_slots_in_use", cls=class_name
            ).dec(idx.size)

    # ------------------------------------------------------------------ #
    # introspection (verification hooks)
    # ------------------------------------------------------------------ #

    @property
    def class_names(self) -> Tuple[str, ...]:
        """Registered real-time class names, in registry order."""
        return tuple(self._class_names)

    def verified_slots(self, class_name: str) -> np.ndarray:
        """Per-server *verified* (full) slot capacity — the certified
        ceiling that degraded operation shrinks from (read-only copy)."""
        self._check_class(class_name)
        return self._capacity_full[class_name].copy()

    def overcommitted(self, class_name: str) -> np.ndarray:
        """Server indices where reserved slots exceed the verified
        capacity.

        The paper's safety argument — every admitted flow keeps its
        deadline — rests on ``used <= verified capacity`` holding on
        every server at every instant.  Usage above the *effective*
        (degraded) capacity is legal and expected after faults; usage
        above the verified ceiling would void the certificate.  A
        correct controller always returns an empty array.
        """
        self._check_class(class_name)
        return np.flatnonzero(
            self._used[class_name] > self._capacity_full[class_name]
        )

    def occupancy(self, class_name: str) -> Dict[str, np.ndarray]:
        """Used / effective / verified slot vectors of a class (copies)."""
        self._check_class(class_name)
        return {
            "used": self._used[class_name].copy(),
            "effective": self._capacity[class_name].copy(),
            "verified": self._capacity_full[class_name].copy(),
        }

    # ------------------------------------------------------------------ #

    def utilization(self, class_name: str) -> np.ndarray:
        """Fraction of link bandwidth in use by the class, per server."""
        self._check_class(class_name)
        rate = self.registry.get(class_name).rate
        return self._used[class_name] * rate / self.graph.capacities

    def bottleneck(self, class_name: str) -> Tuple[int, float]:
        """(server index, occupancy ratio) of the fullest server."""
        self._check_class(class_name)
        cap = self._capacity[class_name]
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(cap > 0, self._used[class_name] / cap, 0.0)
        k = int(np.argmax(ratio))
        return k, float(ratio[k])

    def total_reserved_rate(self) -> np.ndarray:
        """Aggregate reserved real-time rate per server (bits/second)."""
        out = np.zeros(self.graph.num_servers)
        for name in self._class_names:
            out += self._used[name] * self.registry.get(name).rate
        return out

    def _check_class(self, class_name: str) -> None:
        if class_name not in self._capacity:
            raise AdmissionError(
                f"class {class_name!r} is not a registered real-time class"
            )
