"""Utilization-based admission control — the paper's contribution.

At run time the controller performs the paper's entire admission test:
*is a flow slot free on every link server along the configured route?*
The safety argument lives entirely at configuration time — as long as the
utilization assignment passed verification (Figure 2) for the configured
routes, every admitted flow meets its class deadline, no matter which flows
are active.

Decision cost is O(path length) and **independent of the number of
established flows**, which is the scalability claim the benchmarks
measure.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

import numpy as np

from ..errors import AdmissionError
from ..topology.servergraph import LinkServerGraph
from ..traffic.classes import ClassRegistry
from ..traffic.flows import PRIORITY_CODES, FlowSpec
from .base import AdmissionController, Pair
from .batch import (
    PADDING_FREE,
    batch_slot_decisions,
    flat_committed_servers,
    pad_server_matrix,
)
from .flowtable import NO_CLASS, FlowTable
from .ledger import UtilizationLedger

__all__ = ["UtilizationAdmissionController"]

_EMPTY_SERVERS = np.empty(0, dtype=np.int64)
_ADMITTED = (True, "")


class UtilizationAdmissionController(AdmissionController):
    """O(path) admission control against a verified utilization assignment.

    Parameters
    ----------
    graph:
        Link-server expansion of the topology.
    registry:
        Traffic classes (real-time classes get ledgers).
    alphas:
        The *verified* per-class utilization assignment.  The controller
        trusts it; run :func:`repro.config.verify_safe_assignment` first.
    route_map:
        Configured route per source/destination pair (the same routes the
        verification certified).
    """

    def __init__(
        self,
        graph: LinkServerGraph,
        registry: ClassRegistry,
        alphas: Mapping[str, float],
        route_map: Mapping[Pair, Sequence[Hashable]],
    ):
        super().__init__(graph, registry, route_map)
        self.alphas = dict(alphas)
        self.ledger = UtilizationLedger(graph, registry, alphas)
        self._class_names = [c.name for c in registry.realtime_classes()]
        self._class_codes = {n: i for i, n in enumerate(self._class_names)}
        # Committed servers of every established flow, in flat arrays so
        # whole batches commit/free without a Python loop per flow.
        self._flows = FlowTable(pad=graph.num_servers)

    def _admit_impl(
        self, flow: FlowSpec, route: Sequence[Hashable]
    ) -> Tuple[bool, str]:
        cls = self.registry.get(flow.class_name)
        tag = PRIORITY_CODES.get(flow.priority, -1)
        if not cls.is_realtime:
            # Best-effort traffic is never blocked (and never guaranteed).
            self._flows.add(flow.flow_id, NO_CLASS, _EMPTY_SERVERS, tag=tag)
            return True, ""
        servers = self._servers_for(flow, route)
        if not self.ledger.available(flow.class_name, servers):
            return False, (
                f"utilization limit reached for class {flow.class_name!r} "
                "on the path"
            )
        self.ledger.reserve(flow.class_name, servers)
        self._flows.add(
            flow.flow_id,
            self._class_codes[flow.class_name],
            servers,
            tag=tag,
        )
        return True, ""

    def _release_impl(
        self, flow: FlowSpec, route: Sequence[Hashable]
    ) -> None:
        code, servers, _tag = self._flows.pop(flow.flow_id)
        if code != NO_CLASS:
            self.ledger.release(flow.class_name, servers)

    def _admit_batch_impl(
        self,
        flows: Sequence[FlowSpec],
        routes: Sequence[Sequence[Hashable]],
    ) -> List[Tuple[bool, str]]:
        """Vectorized batch decision, sequential-identical by design.

        Classes hold independent ledgers, so the batch splits by class;
        within a class the kernel resolves intra-batch contention in
        original batch order.  Verdicts, reason strings and ledger
        occupancy match the per-flow loop exactly.
        """
        table = self._flows
        codes = self._class_codes
        pad = self.graph.num_servers
        outcomes: List[Tuple[bool, str]] = [_ADMITTED] * len(flows)
        by_class: Dict[str, List[int]] = {}
        best_effort: List[FlowSpec] = []
        for i, flow in enumerate(flows):
            if flow.class_name in codes:
                by_class.setdefault(flow.class_name, []).append(i)
            else:
                # Unknown names must still raise like the sequential
                # path — and before any state is mutated.
                self.registry.get(flow.class_name)
                best_effort.append(flow)
        for flow in best_effort:
            table.add(
                flow.flow_id,
                NO_CLASS,
                _EMPTY_SERVERS,
                tag=PRIORITY_CODES.get(flow.priority, -1),
            )
        for name, members in by_class.items():
            rows = [
                self._servers_for(flows[i], routes[i]) for i in members
            ]
            matrix, lengths = pad_server_matrix(rows, pad)
            free = np.empty(pad + 1, dtype=np.int64)
            np.subtract(
                self.ledger.capacity_view(name),
                self.ledger.used_view(name),
                out=free[:pad],
            )
            free[pad] = PADDING_FREE
            admitted = batch_slot_decisions(matrix, free)
            ok = np.flatnonzero(admitted)
            if ok.size:
                self.ledger.commit_flat(
                    name,
                    flat_committed_servers(matrix, admitted, pad),
                    int(ok.size),
                )
                table.add_batch(
                    [flows[members[r]].flow_id for r in ok],
                    self._class_codes[name],
                    matrix[ok],
                    lengths[ok],
                    tags=np.asarray(
                        [
                            PRIORITY_CODES.get(
                                flows[members[r]].priority, -1
                            )
                            for r in ok
                        ],
                        dtype=np.int64,
                    ),
                )
            if ok.size < len(members):
                rejected = (
                    False,
                    f"utilization limit reached for class {name!r} "
                    "on the path",
                )
                for r in np.flatnonzero(~admitted):
                    outcomes[members[r]] = rejected
        return outcomes

    def _release_batch_impl(
        self,
        flows: Sequence[FlowSpec],
        routes: Sequence[Sequence[Hashable]],
    ) -> None:
        codes, matrix, _lengths, _tags = self._flows.pop_batch(
            [f.flow_id for f in flows]
        )
        pad = self._flows.pad
        for code in np.unique(codes):
            if code == NO_CLASS:
                continue
            mask = codes == code
            sel = matrix[mask]
            self.ledger.release_flat(
                self._class_names[int(code)],
                sel[sel != pad],
                int(np.count_nonzero(mask)),
            )

    # ------------------------------------------------------------------ #
    # degraded operation (fault tolerance)
    # ------------------------------------------------------------------ #

    def block_servers(self, servers: Sequence[int]) -> None:
        """Stop admitting across dead link servers (capacity -> 0)."""
        self.ledger.block_servers(servers)

    def unblock_servers(self, servers: Sequence[int]) -> None:
        """Re-enable previously blocked link servers."""
        self.ledger.unblock_servers(servers)

    def enter_degraded_mode(self, factor: float) -> None:
        """Admit against ``factor * alpha`` effective utilization.

        The graceful-degradation fallback when a failure leaves no
        verified repair: uncertified reroutes are only accepted under a
        conservatively reduced load ceiling.  Established flows are
        never evicted.
        """
        self.ledger.set_degradation(factor)

    def exit_degraded_mode(self) -> None:
        """Restore the full verified utilization ceiling."""
        self.ledger.clear_degradation()

    @property
    def degraded_factor(self) -> float:
        """Current effective-alpha scale (1.0 = normal operation)."""
        return self.ledger.degradation

    @property
    def in_degraded_mode(self) -> bool:
        return self.ledger.degradation < 1.0

    # ------------------------------------------------------------------ #

    def class_utilization(self, class_name: str) -> np.ndarray:
        """Current bandwidth fraction used by a class, per server."""
        return self.ledger.utilization(class_name)

    def headroom(self, class_name: str, pair: Pair) -> int:
        """How many more flows of the class fit on the pair's route."""
        route = self.route_map[pair]
        servers = self.graph.route_servers(route)
        free = (
            self.ledger.slots(class_name)[servers]
            - self.ledger.used(class_name)[servers]
        )
        return int(free.min())

    # ------------------------------------------------------------------ #
    # machine-checked invariants
    # ------------------------------------------------------------------ #

    def verify_invariants(self) -> List[str]:
        """Base bookkeeping checks plus the slot-ledger safety argument.

        Extends :meth:`AdmissionController.verify_invariants` with the
        two properties the paper's certificate rests on:

        * **no over-commit** — on every link server, reserved slots
          never exceed the *verified* capacity (usage above the
          degraded/effective ceiling is legal; above the verified one
          is not);
        * **ledger reconstructibility** — replaying the established
          flows' committed server sets reproduces the ledger's ``used``
          vectors exactly, so no slot is leaked or double-counted.
        """
        problems = super().verify_invariants()
        expected: Dict[str, np.ndarray] = {
            name: np.zeros(self.graph.num_servers, dtype=np.int64)
            for name in self._class_names
        }
        for fid, flow in self._established.items():
            if fid not in self._flows:
                problems.append(
                    f"established flow {fid!r} missing from the flow "
                    "table"
                )
                continue
            code, servers, tag = self._flows.entry(fid)
            if tag != PRIORITY_CODES.get(flow.priority, -1):
                problems.append(
                    f"flow-table priority tag of {fid!r} is {tag}, "
                    f"expected the code of {flow.priority!r}"
                )
            if code == NO_CLASS:
                continue
            np.add.at(expected[self._class_names[code]], servers, 1)
        for name in self._class_names:
            for s in self.ledger.overcommitted(name):
                used = int(self.ledger.used_view(name)[s])
                cap = int(self.ledger.verified_slots(name)[s])
                problems.append(
                    f"over-commit: class {name!r} server {int(s)} holds "
                    f"{used} slots but only {cap} are verified"
                )
            actual = self.ledger.used_view(name)
            if not np.array_equal(expected[name], actual):
                diff = np.flatnonzero(expected[name] != actual)
                problems.append(
                    f"ledger mismatch: class {name!r} usage on servers "
                    f"{diff.tolist()} cannot be reconstructed from the "
                    "established flows"
                )
        return problems

    # ------------------------------------------------------------------ #
    # failure recovery
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """Serializable record of the established flows.

        The ledger itself is *derived* state: a restarted controller
        rebuilds it by re-admitting the snapshot, so a snapshot is just
        the flow list (plus the configuration identity for sanity
        checks).
        """
        flows = []
        for flow in self.established_flows:
            record = {
                "flow_id": flow.flow_id,
                "class_name": flow.class_name,
                "source": flow.source,
                "destination": flow.destination,
                "route": None if flow.route is None else list(flow.route),
            }
            if flow.priority is not None:
                # Key only present when set: priority-less snapshots
                # stay byte-identical to pre-priority ones.
                record["priority"] = flow.priority
            flows.append(record)
        return {
            "alphas": dict(self.alphas),
            "flows": flows,
        }

    def restore(self, snapshot: dict) -> None:
        """Rebuild ledger state from a :meth:`snapshot`.

        Must be called on a freshly constructed controller with the same
        configuration; every snapshot flow is re-admitted (guaranteed to
        fit — it fit before).  Raises :class:`AdmissionError` on
        configuration mismatch or if a flow unexpectedly fails.
        """
        from ..traffic.flows import FlowSpec

        if self.num_established:
            raise AdmissionError(
                "restore requires a fresh controller (no established flows)"
            )
        if dict(snapshot.get("alphas", {})) != self.alphas:
            raise AdmissionError(
                "snapshot was taken under a different utilization "
                "assignment"
            )
        for record in snapshot["flows"]:
            flow = FlowSpec(
                flow_id=record["flow_id"],
                class_name=record["class_name"],
                source=record["source"],
                destination=record["destination"],
                route=(
                    None if record["route"] is None
                    else tuple(record["route"])
                ),
                priority=record.get("priority"),
            )
            decision = self.admit(flow)
            if not decision.admitted:
                raise AdmissionError(
                    f"snapshot flow {flow.flow_id!r} no longer fits: "
                    f"{decision.reason}"
                )
