"""Runtime-selectable backends for the batch slot kernel.

Three interchangeable implementations of the sequential-equivalent
slot decision (see :mod:`repro.admission.batch` for the contract):

``numpy``
    The vectorized interval iteration — the bit-identical *reference*
    implementation, always available.
``numba``
    A ``@njit``-compiled test-then-commit loop.  Fastest once warm;
    only registered when :mod:`numba` imports cleanly.
``sequential``
    The plain-Python test-then-commit loop.  Slow, but it *is* the
    semantics — the differential suite pins both fast paths to it.

Selection is process-global: the default backend is ``numba`` when
available, else ``numpy``; override with the ``REPRO_SLOT_KERNEL``
environment variable or :func:`set_slot_kernel`.  The compiled path
falls back cleanly — asking for ``numba`` without numba installed
raises an explicit error rather than silently degrading, while the
*default* simply never offers it.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional, Tuple

import numpy as np

__all__ = [
    "HAVE_NUMBA",
    "NUMBA_PIN",
    "SlotKernel",
    "available_slot_kernels",
    "default_slot_kernel",
    "active_slot_kernel",
    "get_slot_kernel",
    "set_slot_kernel",
    "use_slot_kernel",
    "warm_slot_kernel",
]

#: ``(matrix, free) -> admitted`` — the batch slot decision signature.
SlotKernel = Callable[[np.ndarray, np.ndarray], np.ndarray]

#: Environment variable naming the default backend for this process.
ENV_VAR = "REPRO_SLOT_KERNEL"

#: The numba version CI compiles the kernel against (the ``jit``
#: extra).  Pinned for the same reason as the z3 solver: JIT codegen
#: drifts across releases, and the differential suite's bit-identical
#: claim must be reproducible.
NUMBA_PIN = "0.60.0"

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - ImportError or broken install
    numba = None  # type: ignore[assignment]
    HAVE_NUMBA = False


def batch_slot_decisions_sequential(
    matrix: np.ndarray, free: np.ndarray
) -> np.ndarray:
    """The plain test-then-commit loop: the semantics, spelled out.

    For each request in batch order: test every server on its route
    against the remaining free count (duplicates on one route test the
    same value — commits happen only after the whole route passes),
    then commit one slot per occurrence on success.
    """
    b, width = matrix.shape
    admitted = np.zeros(b, dtype=bool)
    used = np.zeros(free.shape[0], dtype=np.int64)
    for i in range(b):
        ok = True
        for j in range(width):
            s = matrix[i, j]
            if used[s] >= free[s]:
                ok = False
                break
        if ok:
            admitted[i] = True
            for j in range(width):
                used[matrix[i, j]] += 1
    return admitted


_numba_kernel: Optional[SlotKernel] = None


def _compile_numba_kernel() -> SlotKernel:
    """JIT-compile the test-then-commit loop (cached per process)."""
    global _numba_kernel
    if _numba_kernel is not None:
        return _numba_kernel
    if not HAVE_NUMBA:  # pragma: no cover - guarded by callers
        raise RuntimeError(
            "numba is not installed; install the 'jit' extra or use "
            "the 'numpy' kernel"
        )

    @numba.njit(cache=False)  # pragma: no cover - compiled, not traced
    def _jit_slot_decisions(
        matrix: np.ndarray, free: np.ndarray
    ) -> np.ndarray:
        b, width = matrix.shape
        admitted = np.zeros(b, dtype=np.bool_)
        used = np.zeros(free.shape[0], dtype=np.int64)
        for i in range(b):
            ok = True
            for j in range(width):
                s = matrix[i, j]
                if used[s] >= free[s]:
                    ok = False
                    break
            if ok:
                admitted[i] = True
                for j in range(width):
                    used[matrix[i, j]] += 1
        return admitted

    _numba_kernel = _jit_slot_decisions
    return _numba_kernel


def _numba_dispatch(matrix: np.ndarray, free: np.ndarray) -> np.ndarray:
    """Compile on first call, then delegate to the jitted kernel."""
    kernel = _compile_numba_kernel()
    return np.asarray(kernel(matrix, free), dtype=bool)


def _numpy_dispatch(matrix: np.ndarray, free: np.ndarray) -> np.ndarray:
    # Imported lazily to avoid a circular import with batch.py.
    from repro.admission.batch import batch_slot_decisions_numpy

    return batch_slot_decisions_numpy(matrix, free)


_KERNELS: Dict[str, SlotKernel] = {
    "numpy": _numpy_dispatch,
    "sequential": batch_slot_decisions_sequential,
}
if HAVE_NUMBA:  # pragma: no cover - exercised only with numba
    _KERNELS["numba"] = _numba_dispatch


def available_slot_kernels() -> Tuple[str, ...]:
    """Backend names usable in this process (numba only if importable)."""
    return tuple(sorted(_KERNELS))


def default_slot_kernel() -> str:
    """Backend picked at startup: env override, else numba-if-present."""
    env = os.environ.get(ENV_VAR, "").strip().lower()
    if env:
        if env not in _KERNELS:
            raise ValueError(
                f"{ENV_VAR}={env!r} is not an available slot kernel "
                f"(have: {', '.join(available_slot_kernels())})"
            )
        return env
    return "numba" if HAVE_NUMBA else "numpy"


_active: Optional[str] = None


def active_slot_kernel() -> str:
    """Name of the backend :func:`get_slot_kernel` would return."""
    global _active
    if _active is None:
        _active = default_slot_kernel()
    return _active


def get_slot_kernel() -> SlotKernel:
    """The callable behind the active backend."""
    return _KERNELS[active_slot_kernel()]


def set_slot_kernel(name: str) -> str:
    """Select a backend process-wide; returns the previous name."""
    global _active
    if name not in _KERNELS:
        raise ValueError(
            f"unknown slot kernel {name!r} "
            f"(have: {', '.join(available_slot_kernels())})"
        )
    previous = active_slot_kernel()
    _active = name
    return previous


@contextmanager
def use_slot_kernel(name: str) -> Iterator[str]:
    """Temporarily select a backend (restores the previous on exit)."""
    previous = set_slot_kernel(name)
    try:
        yield name
    finally:
        set_slot_kernel(previous)


def warm_slot_kernel(name: Optional[str] = None) -> str:
    """Force any one-time compilation for a backend (e.g. numba JIT).

    Runs the backend once on a tiny instance so the first production
    batch doesn't pay the compile.  Returns the warmed backend name.
    """
    target = name or active_slot_kernel()
    kernel = _KERNELS.get(target)
    if kernel is None:
        raise ValueError(
            f"unknown slot kernel {target!r} "
            f"(have: {', '.join(available_slot_kernels())})"
        )
    matrix = np.array([[0, 1], [1, 1]], dtype=np.int64)
    free = np.array([1, 1], dtype=np.int64)
    kernel(matrix, free)
    return target
