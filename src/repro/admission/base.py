"""Admission controller interface and decision records."""

from __future__ import annotations

import abc
import logging
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..errors import AdmissionError
from ..obs import NULL_SPAN, OBS
from ..topology.servergraph import LinkServerGraph
from ..traffic.classes import ClassRegistry
from ..traffic.flows import FlowSpec

__all__ = ["AdmissionDecision", "AdmissionController"]

logger = logging.getLogger("repro.admission")

Pair = Tuple[Hashable, Hashable]

#: Stable metric-label keys for the controllers' free-text reject reasons.
_REASON_PREFIXES = (
    ("utilization limit", "utilization_limit"),
    ("edge", "edge_quota"),
    ("analysis rejected", "analysis_error"),
    ("flow-aware analysis diverged", "analysis_diverged"),
)


def _reason_key(reason: str) -> str:
    """Collapse a human-readable rejection reason to a low-cardinality
    label value (metric labels must not carry per-flow text)."""
    if not reason:
        return "none"
    for prefix, key in _REASON_PREFIXES:
        if reason.startswith(prefix):
            return key
    if "deadline" in reason:
        return "deadline_miss"
    return "other"


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission attempt.

    Attributes
    ----------
    admitted:
        Verdict.
    reason:
        Empty on admit; human-readable rejection cause otherwise.
    decision_seconds:
        Wall-clock cost of the decision (the scalability metric of the
        paper's comparison: utilization tests are O(path), flow-aware
        recomputation grows with the number of established flows).
    """

    flow_id: Hashable
    admitted: bool
    reason: str
    decision_seconds: float


class AdmissionController(abc.ABC):
    """Common plumbing for run-time admission controllers.

    Subclasses implement :meth:`_admit_impl` / :meth:`_release_impl`; this
    base class resolves routes, tracks established flows, and times and
    counts decisions.
    """

    def __init__(
        self,
        graph: LinkServerGraph,
        registry: ClassRegistry,
        route_map: Mapping[Pair, Sequence[Hashable]],
    ):
        self.graph = graph
        self.registry = registry
        self.route_map = {k: list(v) for k, v in route_map.items()}
        self._established: Dict[Hashable, FlowSpec] = {}
        # Route committed at admit time, reused verbatim at release so a
        # later route_map change (or re-resolution) cannot free the wrong
        # servers.
        self._committed_routes: Dict[Hashable, List[Hashable]] = {}
        self.decisions: List[AdmissionDecision] = []

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def admit(self, flow: FlowSpec) -> AdmissionDecision:
        """Attempt to establish a flow; returns the decision record."""
        if flow.flow_id in self._established:
            raise AdmissionError(
                f"flow {flow.flow_id!r} is already established"
            )
        route = self.resolve_route(flow)
        # Span kwargs are only materialized when observability is on.
        obs_span = (
            OBS.span(
                "admission.admit",
                controller=type(self).__name__,
                flow_class=flow.class_name,
            )
            if OBS.enabled
            else NULL_SPAN
        )
        with obs_span as sp:
            start = time.perf_counter()
            ok, reason = self._admit_impl(flow, route)
            elapsed = time.perf_counter() - start
            sp.set(admitted=ok)
        decision = AdmissionDecision(
            flow_id=flow.flow_id,
            admitted=ok,
            reason=reason,
            decision_seconds=elapsed,
        )
        self.decisions.append(decision)
        if ok:
            self._established[flow.flow_id] = flow
            self._committed_routes[flow.flow_id] = list(route)
        elif logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "flow %r rejected by %s: %s",
                flow.flow_id,
                type(self).__name__,
                reason,
            )
        if OBS.enabled:
            self._record_decision(decision)
        return decision

    def release(self, flow_id: Hashable) -> None:
        """Tear down an established flow.

        Frees exactly the route committed at admit time — never
        re-resolved, so intervening ``route_map`` edits cannot release
        the wrong servers.
        """
        flow = self._established.pop(flow_id, None)
        if flow is None:
            raise AdmissionError(f"flow {flow_id!r} is not established")
        route = self._committed_routes.pop(flow_id, None)
        if route is None:  # pre-fix snapshots / exotic subclasses
            route = self.resolve_route(flow)
        self._release_impl(flow, route)
        if OBS.enabled:
            ctrl = type(self).__name__
            reg = OBS.registry
            reg.counter(
                "repro_admission_releases_total", controller=ctrl
            ).inc()
            reg.gauge(
                "repro_admission_established_flows", controller=ctrl
            ).set(len(self._established))

    def reroute(
        self, flow_id: Hashable, new_route: Sequence[Hashable]
    ) -> AdmissionDecision:
        """Move an established flow onto ``new_route`` (release-on-reroute).

        The flow's committed resources are released first, then the flow
        is re-admitted with the new route pinned.  On rejection the flow
        ends up **not established** — the caller (e.g. the chaos
        harness) owns the retry/shed policy; silently keeping the old
        reservation would hold slots on a path the flow no longer uses.
        """
        flow = self._established.get(flow_id)
        if flow is None:
            raise AdmissionError(f"flow {flow_id!r} is not established")
        self.release(flow_id)
        moved = replace(flow, route=tuple(new_route))
        decision = self.admit(moved)
        if OBS.enabled:
            OBS.registry.counter(
                "repro_admission_reroutes_total",
                controller=type(self).__name__,
                result="ok" if decision.admitted else "rejected",
            ).inc()
        return decision

    def update_routes(
        self, routes: Mapping[Pair, Sequence[Hashable]]
    ) -> None:
        """Replace configured routes for the given pairs.

        Future admissions resolve through the new paths; established
        flows keep the route committed at admit time (released exactly
        as committed).
        """
        for pair, path in routes.items():
            self.route_map[pair] = list(path)

    def committed_route(self, flow_id: Hashable) -> List[Hashable]:
        """The route an established flow was admitted on."""
        try:
            return list(self._committed_routes[flow_id])
        except KeyError:
            raise AdmissionError(
                f"flow {flow_id!r} is not established"
            ) from None

    def _record_decision(self, decision: AdmissionDecision) -> None:
        ctrl = type(self).__name__
        reg = OBS.registry
        result = "admitted" if decision.admitted else "rejected"
        reg.counter(
            "repro_admission_decisions_total", controller=ctrl, result=result
        ).inc()
        if not decision.admitted:
            reg.counter(
                "repro_admission_rejections_total",
                controller=ctrl,
                reason=_reason_key(decision.reason),
            ).inc()
        reg.histogram(
            "repro_admission_decision_seconds", controller=ctrl
        ).observe(decision.decision_seconds)
        reg.gauge(
            "repro_admission_established_flows", controller=ctrl
        ).set(len(self._established))

    def resolve_route(self, flow: FlowSpec) -> List[Hashable]:
        """The router-level path a flow will use."""
        if flow.route is not None:
            return list(flow.route)
        try:
            return self.route_map[flow.pair]
        except KeyError:
            raise AdmissionError(
                f"no configured route for pair {flow.pair!r}"
            ) from None

    # ------------------------------------------------------------------ #
    # state / statistics
    # ------------------------------------------------------------------ #

    @property
    def established_flows(self) -> List[FlowSpec]:
        return list(self._established.values())

    @property
    def num_established(self) -> int:
        return len(self._established)

    def is_established(self, flow_id: Hashable) -> bool:
        return flow_id in self._established

    @property
    def num_admitted(self) -> int:
        return sum(1 for d in self.decisions if d.admitted)

    @property
    def num_rejected(self) -> int:
        return sum(1 for d in self.decisions if not d.admitted)

    @property
    def acceptance_ratio(self) -> float:
        if not self.decisions:
            return float("nan")
        return self.num_admitted / len(self.decisions)

    def mean_decision_seconds(self) -> float:
        if not self.decisions:
            return float("nan")
        return sum(d.decision_seconds for d in self.decisions) / len(
            self.decisions
        )

    # ------------------------------------------------------------------ #
    # subclass hooks
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def _admit_impl(
        self, flow: FlowSpec, route: Sequence[Hashable]
    ) -> Tuple[bool, str]:
        """Decide and, on success, commit resources. Returns (ok, reason)."""

    @abc.abstractmethod
    def _release_impl(
        self, flow: FlowSpec, route: Sequence[Hashable]
    ) -> None:
        """Free the resources committed by a successful admit."""
