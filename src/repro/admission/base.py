"""Admission controller interface and decision records."""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..errors import AdmissionError
from ..topology.servergraph import LinkServerGraph
from ..traffic.classes import ClassRegistry
from ..traffic.flows import FlowSpec

__all__ = ["AdmissionDecision", "AdmissionController"]

Pair = Tuple[Hashable, Hashable]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission attempt.

    Attributes
    ----------
    admitted:
        Verdict.
    reason:
        Empty on admit; human-readable rejection cause otherwise.
    decision_seconds:
        Wall-clock cost of the decision (the scalability metric of the
        paper's comparison: utilization tests are O(path), flow-aware
        recomputation grows with the number of established flows).
    """

    flow_id: Hashable
    admitted: bool
    reason: str
    decision_seconds: float


class AdmissionController(abc.ABC):
    """Common plumbing for run-time admission controllers.

    Subclasses implement :meth:`_admit_impl` / :meth:`_release_impl`; this
    base class resolves routes, tracks established flows, and times and
    counts decisions.
    """

    def __init__(
        self,
        graph: LinkServerGraph,
        registry: ClassRegistry,
        route_map: Mapping[Pair, Sequence[Hashable]],
    ):
        self.graph = graph
        self.registry = registry
        self.route_map = {k: list(v) for k, v in route_map.items()}
        self._established: Dict[Hashable, FlowSpec] = {}
        self.decisions: List[AdmissionDecision] = []

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def admit(self, flow: FlowSpec) -> AdmissionDecision:
        """Attempt to establish a flow; returns the decision record."""
        if flow.flow_id in self._established:
            raise AdmissionError(
                f"flow {flow.flow_id!r} is already established"
            )
        route = self.resolve_route(flow)
        start = time.perf_counter()
        ok, reason = self._admit_impl(flow, route)
        elapsed = time.perf_counter() - start
        decision = AdmissionDecision(
            flow_id=flow.flow_id,
            admitted=ok,
            reason=reason,
            decision_seconds=elapsed,
        )
        self.decisions.append(decision)
        if ok:
            self._established[flow.flow_id] = flow
        return decision

    def release(self, flow_id: Hashable) -> None:
        """Tear down an established flow."""
        flow = self._established.pop(flow_id, None)
        if flow is None:
            raise AdmissionError(f"flow {flow_id!r} is not established")
        self._release_impl(flow, self.resolve_route(flow))

    def resolve_route(self, flow: FlowSpec) -> List[Hashable]:
        """The router-level path a flow will use."""
        if flow.route is not None:
            return list(flow.route)
        try:
            return self.route_map[flow.pair]
        except KeyError:
            raise AdmissionError(
                f"no configured route for pair {flow.pair!r}"
            ) from None

    # ------------------------------------------------------------------ #
    # state / statistics
    # ------------------------------------------------------------------ #

    @property
    def established_flows(self) -> List[FlowSpec]:
        return list(self._established.values())

    @property
    def num_established(self) -> int:
        return len(self._established)

    def is_established(self, flow_id: Hashable) -> bool:
        return flow_id in self._established

    @property
    def num_admitted(self) -> int:
        return sum(1 for d in self.decisions if d.admitted)

    @property
    def num_rejected(self) -> int:
        return sum(1 for d in self.decisions if not d.admitted)

    @property
    def acceptance_ratio(self) -> float:
        if not self.decisions:
            return float("nan")
        return self.num_admitted / len(self.decisions)

    def mean_decision_seconds(self) -> float:
        if not self.decisions:
            return float("nan")
        return sum(d.decision_seconds for d in self.decisions) / len(
            self.decisions
        )

    # ------------------------------------------------------------------ #
    # subclass hooks
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def _admit_impl(
        self, flow: FlowSpec, route: Sequence[Hashable]
    ) -> Tuple[bool, str]:
        """Decide and, on success, commit resources. Returns (ok, reason)."""

    @abc.abstractmethod
    def _release_impl(
        self, flow: FlowSpec, route: Sequence[Hashable]
    ) -> None:
        """Free the resources committed by a successful admit."""
