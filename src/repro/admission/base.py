"""Admission controller interface and decision records."""

from __future__ import annotations

import abc
import logging
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import AdmissionError
from ..obs import DEFAULT_ITERATION_BUCKETS, NULL_SPAN, OBS
from ..topology.servergraph import LinkServerGraph
from ..traffic.classes import ClassRegistry
from ..traffic.flows import FlowSpec

__all__ = ["AdmissionDecision", "AdmissionController"]

logger = logging.getLogger("repro.admission")

Pair = Tuple[Hashable, Hashable]

#: Stable metric-label keys for the controllers' free-text reject reasons.
_REASON_PREFIXES = (
    ("utilization limit", "utilization_limit"),
    ("edge", "edge_quota"),
    ("analysis rejected", "analysis_error"),
    ("flow-aware analysis diverged", "analysis_diverged"),
)


def _reason_key(reason: str) -> str:
    """Collapse a human-readable rejection reason to a low-cardinality
    label value (metric labels must not carry per-flow text)."""
    if not reason:
        return "none"
    for prefix, key in _REASON_PREFIXES:
        if reason.startswith(prefix):
            return key
    if "deadline" in reason:
        return "deadline_miss"
    return "other"


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission attempt.

    Attributes
    ----------
    admitted:
        Verdict.
    reason:
        Empty on admit; human-readable rejection cause otherwise.
    decision_seconds:
        Wall-clock cost of the *call* that produced the decision (the
        scalability metric of the paper's comparison: utilization tests
        are O(path), flow-aware recomputation grows with the number of
        established flows).  For a decision made inside
        :meth:`AdmissionController.admit_batch` this is the whole
        batch's cost, shared by all its decisions; use
        :attr:`per_request_seconds` for the amortized figure.
    batch_size:
        Number of requests decided by the same call (1 for
        :meth:`AdmissionController.admit`).
    """

    flow_id: Hashable
    admitted: bool
    reason: str
    decision_seconds: float
    batch_size: int = 1

    @property
    def per_request_seconds(self) -> float:
        """Decision cost amortized over the call's batch."""
        return self.decision_seconds / self.batch_size


class AdmissionController(abc.ABC):
    """Common plumbing for run-time admission controllers.

    Subclasses implement :meth:`_admit_impl` / :meth:`_release_impl`; this
    base class resolves routes, tracks established flows, and times and
    counts decisions.
    """

    def __init__(
        self,
        graph: LinkServerGraph,
        registry: ClassRegistry,
        route_map: Mapping[Pair, Sequence[Hashable]],
    ):
        self.graph = graph
        self.registry = registry
        self.route_map = {k: list(v) for k, v in route_map.items()}
        self._established: Dict[Hashable, FlowSpec] = {}
        # Route committed at admit time, reused verbatim at release so a
        # later route_map change (or re-resolution) cannot free the wrong
        # servers.
        self._committed_routes: Dict[Hashable, List[Hashable]] = {}
        # Pair -> server-index array for configured routes, so repeated
        # admissions (and whole batches) skip per-hop index lookups.
        # Invalidated by update_routes.
        self._server_cache: Dict[Pair, "np.ndarray"] = {}
        self.decisions: List[AdmissionDecision] = []

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def admit(self, flow: FlowSpec) -> AdmissionDecision:
        """Attempt to establish a flow; returns the decision record."""
        if flow.flow_id in self._established:
            raise AdmissionError(
                f"flow {flow.flow_id!r} is already established"
            )
        route = self.resolve_route(flow)
        # Span kwargs are only materialized when observability is on.
        obs_span = (
            OBS.span(
                "admission.admit",
                controller=type(self).__name__,
                flow_class=flow.class_name,
            )
            if OBS.enabled
            else NULL_SPAN
        )
        with obs_span as sp:
            start = time.perf_counter()
            ok, reason = self._admit_impl(flow, route)
            elapsed = time.perf_counter() - start
            sp.set(admitted=ok)
        decision = AdmissionDecision(
            flow_id=flow.flow_id,
            admitted=ok,
            reason=reason,
            decision_seconds=elapsed,
        )
        self.decisions.append(decision)
        if ok:
            self._established[flow.flow_id] = flow
            self._committed_routes[flow.flow_id] = list(route)
        elif logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "flow %r rejected by %s: %s",
                flow.flow_id,
                type(self).__name__,
                reason,
            )
        if OBS.enabled:
            self._record_decision(decision)
        return decision

    def admit_batch(
        self, flows: Sequence[FlowSpec]
    ) -> List[AdmissionDecision]:
        """Decide a whole batch of admission requests in one call.

        Decisions (verdicts, rejection reasons, ledger state and
        decision counters) are **identical** to calling :meth:`admit`
        on each flow in order — including intra-batch contention, where
        an earlier admitted request consumes slots a later one must
        see.  Vectorizing subclasses amortize the per-flow Python cost
        over the batch; the differential property suite pins the
        equivalence.

        Every request must carry a flow id that is neither established
        nor repeated inside the batch, and a resolvable route; both are
        validated up front, before any resource is committed.
        """
        flows = list(flows)
        if not flows:
            return []
        established = self._established
        seen = set()
        routes = []
        for flow in flows:
            fid = flow.flow_id
            if fid in established:
                raise AdmissionError(
                    f"flow {fid!r} is already established"
                )
            if fid in seen:
                raise AdmissionError(
                    f"duplicate flow id {fid!r} in batch"
                )
            seen.add(fid)
            routes.append(self.resolve_route(flow))
        return self.admit_batch_routed(flows, routes)

    def admit_batch_routed(
        self,
        flows: Sequence[FlowSpec],
        routes: Sequence[Sequence[Hashable]],
    ) -> List[AdmissionDecision]:
        """:meth:`admit_batch` minus the validation pass, for callers
        that already proved it.

        ``routes[i]`` must be ``resolve_route(flows[i])``, and the ids
        must be neither established nor repeated — exactly what the
        service coalescer's per-op precheck establishes before handing a
        run over, so the route resolution is not paid twice per op on
        the hot path.  Everything downstream (decision records, ledger
        commits, counters) is byte-identical to :meth:`admit_batch`.
        """
        flows = list(flows)
        if not flows:
            return []
        established = self._established
        batch = len(flows)
        obs_span = (
            OBS.span(
                "admission.admit_batch",
                controller=type(self).__name__,
                batch=batch,
            )
            if OBS.enabled
            else NULL_SPAN
        )
        with obs_span as sp:
            start = time.perf_counter()
            outcomes = self._admit_batch_impl(flows, routes)
            elapsed = time.perf_counter() - start
            sp.set(admitted=sum(1 for ok, _ in outcomes if ok))
        decisions: List[AdmissionDecision] = []
        append = decisions.append
        committed = self._committed_routes
        # Hot loop: __new__ + direct __dict__ stores skip the frozen
        # dataclass __init__ (which pays object.__setattr__ per field,
        # ~2x the whole construction cost at 1M decisions).
        new = AdmissionDecision.__new__
        for flow, route, (ok, reason) in zip(flows, routes, outcomes):
            fid = flow.flow_id
            decision = new(AdmissionDecision)
            d = decision.__dict__
            d["decision_seconds"] = elapsed
            d["batch_size"] = batch
            d["flow_id"] = fid
            d["admitted"] = ok
            d["reason"] = reason
            append(decision)
            if ok:
                established[fid] = flow
                # The resolved route list is shared, not copied:
                # update_routes replaces map entries (never mutates) and
                # committed_route hands out copies.
                committed[fid] = route
        self.decisions.extend(decisions)
        if OBS.enabled:
            ctrl = type(self).__name__
            reg = OBS.registry
            reg.counter(
                "repro_admission_batch_calls_total", controller=ctrl
            ).inc()
            reg.counter(
                "repro_admission_batch_requests_total", controller=ctrl
            ).inc(batch)
            reg.histogram(
                "repro_admission_batch_size",
                buckets=DEFAULT_ITERATION_BUCKETS,
                controller=ctrl,
            ).observe(batch)
            for decision in decisions:
                self._record_decision(decision)
        return decisions

    def release_batch(self, flow_ids: Sequence[Hashable]) -> None:
        """Tear down many established flows in one call.

        Equivalent to calling :meth:`release` per id in order; the ids
        must be distinct and all established (validated before any slot
        is freed).
        """
        ids = list(flow_ids)
        if not ids:
            return
        established = self._established
        pop = established.pop
        flows: List[FlowSpec] = []
        append = flows.append
        try:
            # Validation and removal fused: a KeyError (duplicate or
            # never-established id) rolls every pop back before raising,
            # preserving the all-or-nothing contract.
            for fid in ids:
                append(pop(fid))
        except KeyError:
            for popped_id, flow in zip(ids, flows):
                established[popped_id] = flow
            if fid in ids[: len(flows)]:
                raise AdmissionError(
                    f"duplicate flow id {fid!r} in batch"
                ) from None
            raise AdmissionError(
                f"flow {fid!r} is not established"
            ) from None
        committed_pop = self._committed_routes.pop
        routes: List[List[Hashable]] = [
            committed_pop(fid, None) for fid in ids
        ]
        if None in routes:  # pre-fix snapshots / exotic subclasses
            for i, route in enumerate(routes):
                if route is None:
                    routes[i] = self.resolve_route(flows[i])
        self._release_batch_impl(flows, routes)
        if OBS.enabled:
            ctrl = type(self).__name__
            reg = OBS.registry
            reg.counter(
                "repro_admission_releases_total", controller=ctrl
            ).inc(len(ids))
            reg.gauge(
                "repro_admission_established_flows", controller=ctrl
            ).set(len(self._established))

    def release(self, flow_id: Hashable) -> None:
        """Tear down an established flow.

        Frees exactly the route committed at admit time — never
        re-resolved, so intervening ``route_map`` edits cannot release
        the wrong servers.
        """
        flow = self._established.pop(flow_id, None)
        if flow is None:
            raise AdmissionError(f"flow {flow_id!r} is not established")
        route = self._committed_routes.pop(flow_id, None)
        if route is None:  # pre-fix snapshots / exotic subclasses
            route = self.resolve_route(flow)
        self._release_impl(flow, route)
        if OBS.enabled:
            ctrl = type(self).__name__
            reg = OBS.registry
            reg.counter(
                "repro_admission_releases_total", controller=ctrl
            ).inc()
            reg.gauge(
                "repro_admission_established_flows", controller=ctrl
            ).set(len(self._established))

    def reroute(
        self, flow_id: Hashable, new_route: Sequence[Hashable]
    ) -> AdmissionDecision:
        """Move an established flow onto ``new_route`` (release-on-reroute).

        The flow's committed resources are released first, then the flow
        is re-admitted with the new route pinned.  On rejection the flow
        ends up **not established** — the caller (e.g. the chaos
        harness) owns the retry/shed policy; silently keeping the old
        reservation would hold slots on a path the flow no longer uses.
        """
        flow = self._established.get(flow_id)
        if flow is None:
            raise AdmissionError(f"flow {flow_id!r} is not established")
        self.release(flow_id)
        moved = replace(flow, route=tuple(new_route))
        decision = self.admit(moved)
        if OBS.enabled:
            OBS.registry.counter(
                "repro_admission_reroutes_total",
                controller=type(self).__name__,
                result="ok" if decision.admitted else "rejected",
            ).inc()
        return decision

    def update_routes(
        self, routes: Mapping[Pair, Sequence[Hashable]]
    ) -> None:
        """Replace configured routes for the given pairs.

        Future admissions resolve through the new paths; established
        flows keep the route committed at admit time (released exactly
        as committed).
        """
        for pair, path in routes.items():
            self.route_map[pair] = list(path)
        self._server_cache.clear()

    def committed_route(self, flow_id: Hashable) -> List[Hashable]:
        """The route an established flow was admitted on."""
        try:
            return list(self._committed_routes[flow_id])
        except KeyError:
            raise AdmissionError(
                f"flow {flow_id!r} is not established"
            ) from None

    def _record_decision(self, decision: AdmissionDecision) -> None:
        ctrl = type(self).__name__
        reg = OBS.registry
        result = "admitted" if decision.admitted else "rejected"
        reg.counter(
            "repro_admission_decisions_total", controller=ctrl, result=result
        ).inc()
        if not decision.admitted:
            reg.counter(
                "repro_admission_rejections_total",
                controller=ctrl,
                reason=_reason_key(decision.reason),
            ).inc()
        reg.histogram(
            "repro_admission_decision_seconds", controller=ctrl
        ).observe(decision.per_request_seconds)
        reg.gauge(
            "repro_admission_established_flows", controller=ctrl
        ).set(len(self._established))

    def resolve_route(self, flow: FlowSpec) -> List[Hashable]:
        """The router-level path a flow will use."""
        if flow.route is not None:
            return list(flow.route)
        try:
            return self.route_map[flow.pair]
        except KeyError:
            raise AdmissionError(
                f"no configured route for pair {flow.pair!r}"
            ) from None

    def _servers_for(
        self, flow: FlowSpec, route: Sequence[Hashable]
    ) -> np.ndarray:
        """Server indices of a flow's route, cached per configured pair.

        Flows with a pinned route bypass the cache (the pin may differ
        from the configured path); the cached arrays are treated as
        read-only by every caller.
        """
        if flow.route is None:
            servers = self._server_cache.get(flow.pair)
            if servers is None:
                servers = self.graph.route_servers(route)
                self._server_cache[flow.pair] = servers
            return servers
        return self.graph.route_servers(route)

    # ------------------------------------------------------------------ #
    # machine-checked invariants
    # ------------------------------------------------------------------ #

    def verify_invariants(self) -> List[str]:
        """Audit the controller's bookkeeping; returns violations found.

        The base contract every controller must keep: the established
        set and the committed-route table cover exactly the same flows,
        and each committed route is a real path between the flow's
        endpoints.  Subclasses extend this with their resource-ledger
        invariants (no slot over-commit past verified capacity, ledger
        state reconstructible from established flows).  An empty list
        means every checked invariant holds; each violation is a
        human-readable string naming the broken property.  Read-only
        and safe to call at any point, including mid-replay.
        """
        problems: List[str] = []
        established = set(self._established)
        committed = set(self._committed_routes)
        for fid in sorted(established - committed, key=repr):
            problems.append(
                f"established flow {fid!r} has no committed route"
            )
        for fid in sorted(committed - established, key=repr):
            problems.append(
                f"committed route for non-established flow {fid!r}"
            )
        for fid, flow in self._established.items():
            route = self._committed_routes.get(fid)
            if route is None:
                continue
            if (
                len(route) < 2
                or route[0] != flow.source
                or route[-1] != flow.destination
            ):
                problems.append(
                    f"committed route of flow {fid!r} does not join "
                    f"{flow.source!r} to {flow.destination!r}: {route!r}"
                )
        return problems

    # ------------------------------------------------------------------ #
    # state / statistics
    # ------------------------------------------------------------------ #

    @property
    def established_flows(self) -> List[FlowSpec]:
        return list(self._established.values())

    @property
    def num_established(self) -> int:
        return len(self._established)

    def is_established(self, flow_id: Hashable) -> bool:
        return flow_id in self._established

    @property
    def num_admitted(self) -> int:
        return sum(1 for d in self.decisions if d.admitted)

    @property
    def num_rejected(self) -> int:
        return sum(1 for d in self.decisions if not d.admitted)

    @property
    def acceptance_ratio(self) -> float:
        if not self.decisions:
            return float("nan")
        return self.num_admitted / len(self.decisions)

    def mean_decision_seconds(self) -> float:
        """Mean per-request decision cost.

        Decisions produced by :meth:`admit_batch` share one wall-clock
        measurement for the whole call, so each is amortized over its
        ``batch_size`` — summing raw ``decision_seconds`` would count a
        k-request batch k times over.
        """
        if not self.decisions:
            return float("nan")
        return sum(
            d.per_request_seconds for d in self.decisions
        ) / len(self.decisions)

    # ------------------------------------------------------------------ #
    # subclass hooks
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def _admit_impl(
        self, flow: FlowSpec, route: Sequence[Hashable]
    ) -> Tuple[bool, str]:
        """Decide and, on success, commit resources. Returns (ok, reason)."""

    @abc.abstractmethod
    def _release_impl(
        self, flow: FlowSpec, route: Sequence[Hashable]
    ) -> None:
        """Free the resources committed by a successful admit."""

    def _admit_batch_impl(
        self,
        flows: Sequence[FlowSpec],
        routes: Sequence[Sequence[Hashable]],
    ) -> List[Tuple[bool, str]]:
        """Decide and commit a batch; default is the sequential loop.

        Admitted flows are established *immediately* (not after the
        batch) so controllers whose decision reads the established set
        — the flow-aware baseline — see earlier batch members exactly
        as a sequential caller would.  ``admit_batch`` re-applies the
        same bookkeeping afterwards, idempotently.
        """
        outcomes: List[Tuple[bool, str]] = []
        for flow, route in zip(flows, routes):
            ok, reason = self._admit_impl(flow, route)
            if ok:
                self._established[flow.flow_id] = flow
                self._committed_routes[flow.flow_id] = list(route)
            outcomes.append((ok, reason))
        return outcomes

    def _release_batch_impl(
        self,
        flows: Sequence[FlowSpec],
        routes: Sequence[Sequence[Hashable]],
    ) -> None:
        """Free a batch's resources; default is the sequential loop."""
        for flow, route in zip(flows, routes):
            self._release_impl(flow, route)
