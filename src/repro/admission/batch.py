"""Vectorized batch admission kernel.

The paper's run-time admission test is a pure per-server capacity
compare, so a whole batch of requests can be decided with NumPy
reductions instead of a Python loop per flow.  The only subtlety is
**intra-batch contention**: processing the batch sequentially, an
earlier admitted request consumes slots that later requests must see.
:func:`batch_slot_decisions` reproduces those sequential decisions
exactly without materializing the loop.

The algorithm is an interval iteration.  For request ``i`` and server
``s`` let ``before(i, s)`` be the number of *admitted* requests ``j < i``
whose route crosses ``s``; the sequential rule admits ``i`` iff
``before(i, s) < free[s]`` for every ``s`` on its route.  Each round
computes two vectorized bounds per request:

* **optimistic** — counting every earlier request not yet rejected.  If
  even that count fits everywhere, the request is admitted no matter how
  the undecided ones resolve.
* **definite** — counting only earlier requests already known admitted.
  If that count already overflows some server, the request is rejected
  no matter what.

Requests settled by either bound leave the undecided set and the bounds
tighten.  The first undecided request always has all its predecessors
decided, making both bounds equal for it, so every round settles at
least one request and the loop terminates in at most ``batch`` rounds
(one or two in practice).  The fixpoint is exactly the sequential
outcome, which the differential property suite asserts bit-for-bit.

Routes enter as a **padded server-index matrix** (requests x max route
length); padding cells point at one virtual slot whose free count is
effectively infinite, so they can never cause a violation.

Since PR 9 the callable actually used at run time is selected through
:mod:`repro.admission.kernels` — :func:`batch_slot_decisions` is a thin
dispatcher, :func:`batch_slot_decisions_numpy` is the vectorized
reference implemented here, and a Numba-compiled twin registers itself
when numba is importable.  All backends are pinned bit-identical by the
kernel differential suite.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "PADDING_FREE",
    "pad_server_matrix",
    "batch_slot_decisions",
    "batch_slot_decisions_numpy",
    "flat_committed_servers",
]

#: Free-slot count of the virtual padding server: larger than any
#: possible intra-batch occurrence count, far below int64 overflow.
PADDING_FREE = np.int64(2) ** 62


def pad_server_matrix(
    rows: Sequence[np.ndarray], pad: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Stack variable-length server-index rows into a padded matrix.

    Returns ``(matrix, lengths)`` where ``matrix`` is ``int64[n, Lmax]``
    with unused cells set to ``pad`` and ``lengths[i]`` is the true
    length of row ``i``.
    """
    n = len(rows)
    lengths = np.fromiter(
        (r.size for r in rows), dtype=np.int64, count=n
    )
    width = int(lengths.max()) if n else 0
    matrix = np.full((n, width), pad, dtype=np.int64)
    if width and lengths.sum():
        mask = np.arange(width) < lengths[:, None]
        matrix[mask] = np.concatenate(
            [r for r in rows if r.size]
        )
    return matrix, lengths


def batch_slot_decisions(
    matrix: np.ndarray, free: np.ndarray
) -> np.ndarray:
    """Sequential-equivalent admit/reject verdicts for a request batch.

    Dispatches to the backend selected in
    :mod:`repro.admission.kernels` (``numpy`` reference, compiled
    ``numba`` twin, or the plain ``sequential`` loop); all are
    bit-identical by the differential suite.

    Parameters
    ----------
    matrix:
        ``int64[b, L]`` padded server-index matrix; every cell indexes
        into ``free``.  Padding cells must point at (an) entry holding
        :data:`PADDING_FREE`.
    free:
        Free slots per (possibly virtual) server **before** the batch:
        ``capacity - used``.  May be negative (degraded operation).

    Returns
    -------
    ``bool[b]`` — ``admitted[i]`` is exactly what a sequential loop
    (test every server, then commit on success) would have decided for
    request ``i``.
    """
    from repro.admission.kernels import get_slot_kernel

    return get_slot_kernel()(matrix, free)


def batch_slot_decisions_numpy(
    matrix: np.ndarray, free: np.ndarray
) -> np.ndarray:
    """The vectorized interval-iteration reference (always available)."""
    b, width = matrix.shape
    admitted = np.zeros(b, dtype=bool)
    if b == 0:
        return admitted
    if width == 0:
        # No queueing servers anywhere: everything fits.
        admitted[:] = True
        return admitted

    flat = matrix.ravel()
    # Uncontended fast path: if every server fits its *total* batch
    # demand, even the last crossing request sees fewer than ``free``
    # earlier commits, so the sequential loop admits everything — no
    # iteration needed.  This is the steady state of an admission
    # controller running inside its utilization budget.
    totals = np.bincount(flat, minlength=free.size)
    if (totals <= free).all():
        admitted[:] = True
        return admitted

    # Stable server-major order: within one server's group, occurrences
    # appear in batch order, so a group-wise exclusive prefix sum of a
    # 0/1 request mask yields "crossings by earlier masked requests".
    # Server indices fit u16/u32 in practice, where the stable radix
    # sort is several times faster than on int64 keys.
    if free.size <= 0xFFFF:
        order = np.argsort(flat.astype(np.uint16), kind="stable")
    elif free.size <= 0xFFFFFFFF:
        order = np.argsort(flat.astype(np.uint32), kind="stable")
    else:  # pragma: no cover - billions of servers
        order = np.argsort(flat, kind="stable")
    sorted_servers = flat[order]
    start_idx = np.flatnonzero(
        np.r_[True, sorted_servers[1:] != sorted_servers[:-1]]
    )
    sizes = np.diff(np.r_[start_idx, flat.size])
    # Per occurrence (in server-major order): index of its group head,
    # so the per-server prefix restart is a gather instead of a repeat
    # inside the round loop.
    heads = np.repeat(start_idx, sizes)
    rows_sorted = order // width
    # A row that visits one server twice must not count its own earlier
    # occurrences as crossings: the sequential loop tests *then*
    # commits, so a request never sees its own demand.  In server-major
    # order same-(server, row) occurrences are adjacent; their rank
    # within the run is exactly the self-crossing overcount whenever
    # the row itself is in the counted mask.  Real routes never repeat
    # a server, so the common case skips the correction entirely.
    dup_breaks = np.r_[
        True,
        (sorted_servers[1:] != sorted_servers[:-1])
        | (rows_sorted[1:] != rows_sorted[:-1]),
    ]
    if dup_breaks.all():
        self_rank = None
    else:
        run_starts = np.flatnonzero(dup_breaks)
        pos = np.arange(flat.size, dtype=np.int32)
        self_rank = pos - np.repeat(
            pos[run_starts], np.diff(np.r_[run_starts, flat.size])
        )
    # Crossing counts are bounded by the batch's occurrence count, so
    # the compare runs in int32 against a clipped copy of the free
    # view (PADDING_FREE and degraded negative counts both survive the
    # clip with their comparisons intact).
    bound = flat.size + 1
    base_free = np.clip(free[matrix], -bound, bound).astype(np.int32)

    scatter = np.empty(flat.size, dtype=np.int32)

    def crossings_before(mask_rows: np.ndarray) -> np.ndarray:
        """Per occurrence (i, s): masked requests j < i crossing s."""
        contrib = mask_rows[rows_sorted]
        cum = np.cumsum(contrib, dtype=np.int32)
        cum -= contrib  # exclusive
        cum -= cum[heads]  # restart per server
        if self_rank is not None:
            cum -= self_rank * contrib  # drop same-row occurrences
        scatter[order] = cum
        return scatter.reshape(b, width)

    undecided = np.ones(b, dtype=bool)
    # The optimistic mask ``admitted | undecided`` only changes when a
    # request is rejected, and the definite mask ``admitted`` only when
    # one is admitted — each round recomputes just the bound(s) its
    # previous round invalidated.  Round one's definite crossings are
    # identically zero (nothing is admitted yet), so it starts from the
    # free view alone.
    optimistic_bad = (crossings_before(undecided) >= base_free).any(
        axis=1
    )
    definite_bad = (base_free <= 0).any(axis=1)
    # Interval rounds settle the bulk of a contended batch quickly but
    # can take O(batch) rounds to squeeze out the last stragglers;
    # once few enough remain, an exact scalar sweep over just those
    # rows is cheaper than more full-width rounds.
    cutoff = max(64, b >> 2)
    while True:
        newly_admitted = undecided & ~optimistic_bad
        newly_rejected = undecided & definite_bad
        settled = newly_admitted | newly_rejected
        if not settled.any():  # pragma: no cover - proven impossible
            raise AssertionError(
                "batch admission made no progress (kernel bug)"
            )
        admitted |= newly_admitted
        undecided &= ~settled
        remaining = int(undecided.sum())
        if remaining == 0:
            return admitted
        if remaining <= cutoff:
            break
        if newly_rejected.any():
            optimistic_bad = (
                crossings_before(admitted | undecided) >= base_free
            ).any(axis=1)
        if newly_admitted.any():
            definite_bad = (
                crossings_before(admitted) >= base_free
            ).any(axis=1)

    # Scalar tail: the undecided rows in batch order, each tested
    # against its *effective* free counts — the base free view minus
    # commits from already-admitted earlier rows (position-exact via
    # the crossings sum) — plus the commits this sweep makes itself.
    # Test-then-commit per row, exactly the sequential reference.
    rem = np.flatnonzero(undecided)
    eff_rows = (base_free - crossings_before(admitted))[rem].tolist()
    route_rows = matrix[rem].tolist()
    rem_list = rem.tolist()
    delta = [0] * free.size
    for pos, row in enumerate(route_rows):
        eff = eff_rows[pos]
        ok = True
        for k, server in enumerate(row):
            if delta[server] >= eff[k]:
                ok = False
                break
        if ok:
            admitted[rem_list[pos]] = True
            for server in row:
                delta[server] += 1
    return admitted


def flat_committed_servers(
    matrix: np.ndarray, admitted: np.ndarray, pad: int
) -> np.ndarray:
    """All (non-padding) server occurrences of the admitted rows."""
    selected = matrix[admitted]
    return selected[selected != pad]
