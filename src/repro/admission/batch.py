"""Vectorized batch admission kernel.

The paper's run-time admission test is a pure per-server capacity
compare, so a whole batch of requests can be decided with NumPy
reductions instead of a Python loop per flow.  The only subtlety is
**intra-batch contention**: processing the batch sequentially, an
earlier admitted request consumes slots that later requests must see.
:func:`batch_slot_decisions` reproduces those sequential decisions
exactly without materializing the loop.

The algorithm is an interval iteration.  For request ``i`` and server
``s`` let ``before(i, s)`` be the number of *admitted* requests ``j < i``
whose route crosses ``s``; the sequential rule admits ``i`` iff
``before(i, s) < free[s]`` for every ``s`` on its route.  Each round
computes two vectorized bounds per request:

* **optimistic** — counting every earlier request not yet rejected.  If
  even that count fits everywhere, the request is admitted no matter how
  the undecided ones resolve.
* **definite** — counting only earlier requests already known admitted.
  If that count already overflows some server, the request is rejected
  no matter what.

Requests settled by either bound leave the undecided set and the bounds
tighten.  The first undecided request always has all its predecessors
decided, making both bounds equal for it, so every round settles at
least one request and the loop terminates in at most ``batch`` rounds
(one or two in practice).  The fixpoint is exactly the sequential
outcome, which the differential property suite asserts bit-for-bit.

Routes enter as a **padded server-index matrix** (requests x max route
length); padding cells point at one virtual slot whose free count is
effectively infinite, so they can never cause a violation.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "PADDING_FREE",
    "pad_server_matrix",
    "batch_slot_decisions",
    "flat_committed_servers",
]

#: Free-slot count of the virtual padding server: larger than any
#: possible intra-batch occurrence count, far below int64 overflow.
PADDING_FREE = np.int64(2) ** 62


def pad_server_matrix(
    rows: Sequence[np.ndarray], pad: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Stack variable-length server-index rows into a padded matrix.

    Returns ``(matrix, lengths)`` where ``matrix`` is ``int64[n, Lmax]``
    with unused cells set to ``pad`` and ``lengths[i]`` is the true
    length of row ``i``.
    """
    n = len(rows)
    lengths = np.fromiter(
        (r.size for r in rows), dtype=np.int64, count=n
    )
    width = int(lengths.max()) if n else 0
    matrix = np.full((n, width), pad, dtype=np.int64)
    if width and lengths.sum():
        mask = np.arange(width) < lengths[:, None]
        matrix[mask] = np.concatenate(
            [r for r in rows if r.size]
        )
    return matrix, lengths


def batch_slot_decisions(
    matrix: np.ndarray, free: np.ndarray
) -> np.ndarray:
    """Sequential-equivalent admit/reject verdicts for a request batch.

    Parameters
    ----------
    matrix:
        ``int64[b, L]`` padded server-index matrix; every cell indexes
        into ``free``.  Padding cells must point at (an) entry holding
        :data:`PADDING_FREE`.
    free:
        Free slots per (possibly virtual) server **before** the batch:
        ``capacity - used``.  May be negative (degraded operation).

    Returns
    -------
    ``bool[b]`` — ``admitted[i]`` is exactly what a sequential loop
    (test every server, then commit on success) would have decided for
    request ``i``.
    """
    b, width = matrix.shape
    admitted = np.zeros(b, dtype=bool)
    if b == 0:
        return admitted
    if width == 0:
        # No queueing servers anywhere: everything fits.
        admitted[:] = True
        return admitted

    flat = matrix.ravel()
    # Stable server-major order: within one server's group, occurrences
    # appear in batch order, so a group-wise exclusive prefix sum of a
    # 0/1 request mask yields "crossings by earlier masked requests".
    order = np.argsort(flat, kind="stable")
    sorted_servers = flat[order]
    start_idx = np.flatnonzero(
        np.r_[True, sorted_servers[1:] != sorted_servers[:-1]]
    )
    sizes = np.diff(np.r_[start_idx, flat.size])
    rows_sorted = order // width
    base_free = free[matrix]  # int64[b, L], row-major per occurrence

    scatter = np.empty(flat.size, dtype=np.int64)

    def crossings_before(mask_rows: np.ndarray) -> np.ndarray:
        """Per occurrence (i, s): masked requests j < i crossing s."""
        contrib = mask_rows[rows_sorted].astype(np.int64)
        cum = np.cumsum(contrib)
        cum -= contrib  # exclusive
        cum -= np.repeat(cum[start_idx], sizes)  # restart per server
        scatter[order] = cum
        return scatter.reshape(b, width)

    undecided = np.ones(b, dtype=bool)
    while True:
        # Consumed immediately (crossings_before reuses its buffer).
        optimistic_bad = (
            crossings_before(admitted | undecided) >= base_free
        ).any(axis=1)
        definite_bad = (
            crossings_before(admitted) >= base_free
        ).any(axis=1)
        newly_admitted = undecided & ~optimistic_bad
        newly_rejected = undecided & definite_bad
        settled = newly_admitted | newly_rejected
        if not settled.any():  # pragma: no cover - proven impossible
            raise AssertionError(
                "batch admission made no progress (kernel bug)"
            )
        admitted |= newly_admitted
        undecided &= ~settled
        if not undecided.any():
            return admitted


def flat_committed_servers(
    matrix: np.ndarray, admitted: np.ndarray, pad: int
) -> np.ndarray:
    """All (non-padding) server occurrences of the admitted rows."""
    selected = matrix[admitted]
    return selected[selected != pad]
