"""Array-backed flow table for the admission hot path.

The controllers used to keep a ``dict`` mapping every established flow
to a freshly allocated NumPy array of its committed server indices.
That layout forces a Python-level loop (and an allocation) per flow on
both admit and release.  :class:`FlowTable` stores the same information
as contiguous arrays — one padded server-index matrix plus per-row
class code / tag / length columns — so whole batches of flows can be
committed or freed with a handful of vectorized operations.

Rows are recycled through a free list; the matrix grows by doubling and
widens on demand when a longer route arrives.  A small ``dict`` from
flow id to row index remains (ids are arbitrary hashables), but it is
the only per-flow Python object on the path.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AdmissionError

__all__ = ["FlowTable"]

#: Class code stored for flows that hold no slots (best-effort traffic).
NO_CLASS = -1


class FlowTable:
    """Established-flow store keyed by flow id, backed by flat arrays.

    Parameters
    ----------
    pad:
        Sentinel server index filling unused matrix cells (the
        controllers use ``graph.num_servers``, their kernels' virtual
        padding slot).
    width / capacity:
        Initial matrix shape; both grow automatically.
    """

    __slots__ = (
        "pad", "_index", "_codes", "_tags", "_servers", "_lengths",
        "_free",
    )

    def __init__(self, pad: int, *, width: int = 4, capacity: int = 64):
        capacity = max(int(capacity), 1)
        width = max(int(width), 1)
        self.pad = int(pad)
        self._index: Dict[Hashable, int] = {}
        self._codes = np.full(capacity, NO_CLASS, dtype=np.int64)
        self._tags = np.full(capacity, -1, dtype=np.int64)
        self._servers = np.full((capacity, width), self.pad, dtype=np.int64)
        self._lengths = np.zeros(capacity, dtype=np.int64)
        self._free: List[int] = list(range(capacity - 1, -1, -1))

    # ------------------------------------------------------------------ #
    # growth
    # ------------------------------------------------------------------ #

    def _grow_rows(self) -> None:
        old = self._servers.shape[0]
        new = old * 2
        self._codes = np.concatenate(
            [self._codes, np.full(old, NO_CLASS, dtype=np.int64)]
        )
        self._tags = np.concatenate(
            [self._tags, np.full(old, -1, dtype=np.int64)]
        )
        self._servers = np.concatenate(
            [
                self._servers,
                np.full(
                    (old, self._servers.shape[1]), self.pad, dtype=np.int64
                ),
            ]
        )
        self._lengths = np.concatenate(
            [self._lengths, np.zeros(old, dtype=np.int64)]
        )
        self._free.extend(range(new - 1, old - 1, -1))

    def _ensure_width(self, width: int) -> None:
        have = self._servers.shape[1]
        if width <= have:
            return
        extra = np.full(
            (self._servers.shape[0], width - have), self.pad,
            dtype=np.int64,
        )
        self._servers = np.concatenate([self._servers, extra], axis=1)

    def _alloc(self, n: int) -> np.ndarray:
        while len(self._free) < n:
            self._grow_rows()
        rows = np.asarray(self._free[-n:], dtype=np.int64)
        del self._free[-n:]
        return rows

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def add(
        self,
        flow_id: Hashable,
        code: int,
        servers: np.ndarray,
        tag: int = -1,
    ) -> None:
        """Record one flow's committed servers (code -1 = holds none)."""
        if flow_id in self._index:
            raise AdmissionError(
                f"flow {flow_id!r} already in the flow table"
            )
        n = int(servers.size)
        self._ensure_width(n)
        row = int(self._alloc(1)[0])
        self._codes[row] = code
        self._tags[row] = tag
        self._lengths[row] = n
        self._servers[row, :] = self.pad
        if n:
            self._servers[row, :n] = servers
        self._index[flow_id] = row

    def add_batch(
        self,
        flow_ids: Sequence[Hashable],
        code: int,
        matrix: np.ndarray,
        lengths: np.ndarray,
        tags: Optional[np.ndarray] = None,
    ) -> None:
        """Record many same-class flows from a padded server matrix."""
        n = len(flow_ids)
        if n == 0:
            return
        width = matrix.shape[1]
        self._ensure_width(width)
        rows = self._alloc(n)
        self._codes[rows] = code
        self._tags[rows] = -1 if tags is None else tags
        self._lengths[rows] = lengths
        # Reused rows may hold a previous occupant's longer route; clear
        # the tail beyond this batch's width before writing.
        self._servers[rows, width:] = self.pad
        self._servers[rows, :width] = matrix
        index = self._index
        # tolist() converts the whole row array to Python ints in C; a
        # per-element int(rows[i]) costs ~3x as much at batch sizes.
        for fid, row in zip(flow_ids, rows.tolist()):
            if fid in index:
                raise AdmissionError(
                    f"flow {fid!r} already in the flow table"
                )
            index[fid] = row

    def pop(self, flow_id: Hashable) -> Tuple[int, np.ndarray, int]:
        """Remove a flow; returns ``(code, servers, tag)``."""
        try:
            row = self._index.pop(flow_id)
        except KeyError:
            raise AdmissionError(
                f"flow {flow_id!r} is not in the flow table"
            ) from None
        n = int(self._lengths[row])
        servers = self._servers[row, :n].copy()
        code = int(self._codes[row])
        tag = int(self._tags[row])
        self._free.append(row)
        return code, servers, tag

    def pop_batch(
        self, flow_ids: Sequence[Hashable]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Remove many flows; returns ``(codes, matrix, lengths, tags)``.

        The matrix is padded with :attr:`pad` and sliced to the longest
        popped route.
        """
        index = self._index
        pop = index.pop
        row_list: List[int] = []
        append = row_list.append
        try:
            for fid in flow_ids:
                append(pop(fid))
        except KeyError:
            raise AdmissionError(
                f"flow {fid!r} is not in the flow table"
            ) from None
        rows = np.asarray(row_list, dtype=np.int64)
        lengths = self._lengths[rows].copy()
        width = int(lengths.max()) if rows.size else 0
        matrix = self._servers[rows, :width].copy()
        codes = self._codes[rows].copy()
        tags = self._tags[rows].copy()
        self._free.extend(row_list)
        return codes, matrix, lengths, tags

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def __contains__(self, flow_id: Hashable) -> bool:
        return flow_id in self._index

    def __len__(self) -> int:
        return len(self._index)

    def servers_of(self, flow_id: Hashable) -> np.ndarray:
        """Committed server indices of an established flow (copy)."""
        try:
            row = self._index[flow_id]
        except KeyError:
            raise AdmissionError(
                f"flow {flow_id!r} is not in the flow table"
            ) from None
        return self._servers[row, : int(self._lengths[row])].copy()

    def entry(self, flow_id: Hashable) -> Tuple[int, np.ndarray, int]:
        """``(code, servers, tag)`` of a flow **without** removing it —
        the read-only twin of :meth:`pop` for invariant audits."""
        try:
            row = self._index[flow_id]
        except KeyError:
            raise AdmissionError(
                f"flow {flow_id!r} is not in the flow table"
            ) from None
        n = int(self._lengths[row])
        return (
            int(self._codes[row]),
            self._servers[row, :n].copy(),
            int(self._tags[row]),
        )
