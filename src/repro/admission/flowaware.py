"""Flow-aware (IntServ-style) admission control — the scalability baseline.

This controller keeps per-flow state and, on every admission attempt,
re-runs the flow-aware delay analysis (:mod:`repro.analysis.netcalc`) over
the tentative flow population.  The flow is admitted iff every established
flow *and* the newcomer still meet their class deadlines.

It is deliberately the expensive architecture the paper argues against:
decision cost grows with the number of established flows, and the
controller must know every flow's envelope and route.  It serves as

* a correctness oracle (it admits with exact worst-case analysis, so it
  never rejects a population the utilization-based bound admits — see the
  comparison tests), and
* the cost baseline in the scalability benchmarks.

``admit_batch`` / ``release_batch`` are supported through the base
class's sequential fallback: each flow-aware decision re-analyzes the
population *including earlier batch admissions*, so there is no
data-parallel shortcut — which is precisely the scalability contrast
the batch benchmarks quantify against the utilization controllers.
"""

from __future__ import annotations

from typing import Hashable, List, Mapping, Sequence, Tuple

from ..analysis.netcalc import flow_aware_delays
from ..errors import AnalysisError
from ..obs import DEFAULT_ITERATION_BUCKETS, OBS
from ..topology.servergraph import LinkServerGraph
from ..traffic.classes import ClassRegistry
from ..traffic.flows import FlowSpec
from .base import AdmissionController, Pair

__all__ = ["FlowAwareAdmissionController"]


class FlowAwareAdmissionController(AdmissionController):
    """Per-flow admission control via exact worst-case delay recomputation."""

    def __init__(
        self,
        graph: LinkServerGraph,
        registry: ClassRegistry,
        route_map: Mapping[Pair, Sequence[Hashable]],
        *,
        tolerance: float = 1e-7,
        max_iterations: int = 1_000,
    ):
        super().__init__(graph, registry, route_map)
        self.tolerance = tolerance
        self.max_iterations = max_iterations

    def _pinned(self, flow: FlowSpec) -> FlowSpec:
        """The flow with its route made explicit (analysis needs routes)."""
        if flow.route is not None:
            return flow
        return FlowSpec(
            flow_id=flow.flow_id,
            class_name=flow.class_name,
            source=flow.source,
            destination=flow.destination,
            route=tuple(self.resolve_route(flow)),
        )

    def _admit_impl(
        self, flow: FlowSpec, route: Sequence[Hashable]
    ) -> Tuple[bool, str]:
        cls = self.registry.get(flow.class_name)
        if not cls.is_realtime:
            return True, ""
        tentative = [self._pinned(f) for f in self.established_flows
                     if self.registry.get(f.class_name).is_realtime]
        tentative.append(self._pinned(flow))
        if OBS.enabled:
            OBS.registry.counter(
                "repro_flowaware_recomputations_total"
            ).inc()
            OBS.registry.histogram(
                "repro_flowaware_population",
                buckets=DEFAULT_ITERATION_BUCKETS,
            ).observe(len(tentative))
        try:
            with OBS.span(
                "flowaware.analysis", population=len(tentative)
            ):
                result = flow_aware_delays(
                    self.graph,
                    tentative,
                    self.registry,
                    tolerance=self.tolerance,
                    max_iterations=self.max_iterations,
                )
        except AnalysisError as exc:
            return False, f"analysis rejected the population: {exc}"
        if not result.converged:
            return False, "flow-aware analysis diverged (overload)"
        for f in tentative:
            deadline = self.registry.get(f.class_name).deadline
            if result.flow_delays[f.flow_id] > deadline:
                return False, (
                    f"flow {f.flow_id!r} would miss its deadline "
                    f"({result.flow_delays[f.flow_id] * 1e3:.2f} ms "
                    f"> {deadline * 1e3:.2f} ms)"
                )
        return True, ""

    def _release_impl(
        self, flow: FlowSpec, route: Sequence[Hashable]
    ) -> None:
        # All state is the established-flow set kept by the base class.
        return None
