"""Admission statistics: replaying dynamic flow schedules.

:func:`replay_schedule` drives any :class:`AdmissionController` with a
timed arrival/departure schedule (e.g. from
:func:`repro.traffic.generators.poisson_flow_schedule`) and collects the
metrics the dynamic experiments report: acceptance ratio, decision cost
distribution, and the population/utilization trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..traffic.generators import FlowEvent
from .base import AdmissionController

__all__ = ["ReplayStats", "replay_schedule"]


@dataclass
class ReplayStats:
    """Metrics from replaying a flow schedule through a controller.

    Attributes
    ----------
    attempts, admitted, rejected:
        Admission attempt counters.
    blocking_probability:
        ``rejected / attempts`` (NaN when no attempts).
    decision_seconds:
        Per-attempt decision latencies in schedule order.
    population:
        ``(time, established_flows)`` samples after every event.
    peak_population:
        Largest concurrent established-flow count.
    """

    attempts: int
    admitted: int
    rejected: int
    decision_seconds: np.ndarray
    population: List[Tuple[float, int]]
    peak_population: int

    @property
    def blocking_probability(self) -> float:
        if self.attempts == 0:
            return float("nan")
        return self.rejected / self.attempts

    @property
    def mean_decision_seconds(self) -> float:
        if self.decision_seconds.size == 0:
            return float("nan")
        return float(self.decision_seconds.mean())

    @property
    def p99_decision_seconds(self) -> float:
        if self.decision_seconds.size == 0:
            return float("nan")
        return float(np.percentile(self.decision_seconds, 99))


def replay_schedule(
    controller: AdmissionController,
    schedule: Sequence[FlowEvent],
    *,
    max_events: Optional[int] = None,
) -> ReplayStats:
    """Feed a timed arrival/departure schedule to a controller.

    Departures of flows that were rejected (or never arrived within the
    event budget) are ignored.  Events must be time-ordered, as produced by
    the generators.
    """
    attempts = admitted = rejected = 0
    latencies: List[float] = []
    population: List[Tuple[float, int]] = []
    peak = 0
    admitted_ids: set = set()

    events = schedule if max_events is None else schedule[:max_events]
    for event in events:
        if event.kind == "arrival":
            decision = controller.admit(event.flow)
            attempts += 1
            latencies.append(decision.decision_seconds)
            if decision.admitted:
                admitted += 1
                admitted_ids.add(event.flow.flow_id)
            else:
                rejected += 1
        elif event.kind == "departure":
            if event.flow.flow_id in admitted_ids:
                controller.release(event.flow.flow_id)
                admitted_ids.discard(event.flow.flow_id)
        else:  # pragma: no cover - generator only emits two kinds
            raise ValueError(f"unknown event kind {event.kind!r}")
        count = controller.num_established
        peak = max(peak, count)
        population.append((event.time, count))

    return ReplayStats(
        attempts=attempts,
        admitted=admitted,
        rejected=rejected,
        decision_seconds=np.asarray(latencies, dtype=np.float64),
        population=population,
        peak_population=peak,
    )
