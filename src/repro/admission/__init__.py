"""Run-time admission control: the paper's utilization-based controller
and the flow-aware (IntServ-style) baseline."""

from .base import AdmissionController, AdmissionDecision
from .flowaware import FlowAwareAdmissionController
from .ledger import UtilizationLedger
from .sharded import ShardedAdmissionController
from .statistics import ReplayStats, replay_schedule
from .utilization import UtilizationAdmissionController

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "FlowAwareAdmissionController",
    "ReplayStats",
    "ShardedAdmissionController",
    "UtilizationAdmissionController",
    "UtilizationLedger",
    "replay_schedule",
]
