"""Run-time admission control: the paper's utilization-based controller
and the flow-aware (IntServ-style) baseline."""

from .base import AdmissionController, AdmissionDecision
from .batch import (
    PADDING_FREE,
    batch_slot_decisions,
    batch_slot_decisions_numpy,
    flat_committed_servers,
    pad_server_matrix,
)
from .flowaware import FlowAwareAdmissionController
from .kernels import (
    HAVE_NUMBA,
    active_slot_kernel,
    available_slot_kernels,
    batch_slot_decisions_sequential,
    set_slot_kernel,
    use_slot_kernel,
    warm_slot_kernel,
)
from .flowtable import FlowTable
from .ledger import UtilizationLedger
from .sharded import (
    ShardedAdmissionController,
    SlotShardController,
    plan_slot_shards,
)
from .statistics import ReplayStats, replay_schedule
from .utilization import UtilizationAdmissionController

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "FlowAwareAdmissionController",
    "FlowTable",
    "HAVE_NUMBA",
    "PADDING_FREE",
    "ReplayStats",
    "ShardedAdmissionController",
    "SlotShardController",
    "UtilizationAdmissionController",
    "UtilizationLedger",
    "active_slot_kernel",
    "available_slot_kernels",
    "batch_slot_decisions",
    "batch_slot_decisions_numpy",
    "batch_slot_decisions_sequential",
    "flat_committed_servers",
    "pad_server_matrix",
    "plan_slot_shards",
    "replay_schedule",
    "set_slot_kernel",
    "use_slot_kernel",
    "warm_slot_kernel",
]
