"""Run-time admission control: the paper's utilization-based controller
and the flow-aware (IntServ-style) baseline."""

from .base import AdmissionController, AdmissionDecision
from .batch import (
    PADDING_FREE,
    batch_slot_decisions,
    flat_committed_servers,
    pad_server_matrix,
)
from .flowaware import FlowAwareAdmissionController
from .flowtable import FlowTable
from .ledger import UtilizationLedger
from .sharded import (
    ShardedAdmissionController,
    SlotShardController,
    plan_slot_shards,
)
from .statistics import ReplayStats, replay_schedule
from .utilization import UtilizationAdmissionController

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "FlowAwareAdmissionController",
    "FlowTable",
    "PADDING_FREE",
    "ReplayStats",
    "ShardedAdmissionController",
    "SlotShardController",
    "UtilizationAdmissionController",
    "UtilizationLedger",
    "batch_slot_decisions",
    "flat_committed_servers",
    "pad_server_matrix",
    "plan_slot_shards",
    "replay_schedule",
]
