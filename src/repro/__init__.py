"""repro — Utilization-Based Admission Control for Real-Time Applications.

A full reproduction of Xuan, Li, Bettati, Chen & Zhao (ICPP 2000):
configuration-time delay verification for DiffServ networks, safe route
selection, Theorem 4 utilization bounds, O(path) run-time admission
control, and the substrates they need (topology model, network-calculus
envelopes, a static-priority packet simulator, a flow-aware IntServ-style
baseline).

Quick start
-----------
>>> from repro import paper_scenario, utilization_bounds
>>> sc = paper_scenario()
>>> b = utilization_bounds(sc.fan_in, sc.diameter, sc.voice.burst,
...                        sc.voice.rate, sc.voice.deadline)
>>> round(b.lower, 2), round(b.upper, 2)
(0.3, 0.61)

See ``examples/`` for end-to-end walkthroughs and ``DESIGN.md`` for the
module map.
"""

import logging as _logging

# Library convention: the package logger hierarchy is silent unless the
# application configures handlers (PEP 282 / logging HOWTO).
_logging.getLogger("repro").addHandler(_logging.NullHandler())

from . import obs
from ._version import __version__
from .admission import (
    AdmissionController,
    AdmissionDecision,
    FlowAwareAdmissionController,
    ReplayStats,
    UtilizationAdmissionController,
    UtilizationLedger,
    replay_schedule,
)
from .analysis import (
    FixedPointResult,
    critical_alpha,
    sensitivity_report,
    FlowAwareResult,
    MultiClassResult,
    RouteSystem,
    SingleClassResult,
    VerificationResult,
    beta_coefficient,
    flow_aware_delays,
    multi_class_delays,
    single_class_delays,
    theorem3_delay,
    uniform_worst_delay,
    verify_assignment,
)
from .config import (
    ConfiguredNetwork,
    MaximizationResult,
    RepairResult,
    MulticlassScaleResult,
    UtilizationBounds,
    configure,
    max_utilization_heuristic,
    max_utilization_shortest_path,
    maximize_multiclass_scale,
    maximize_utilization,
    repair_after_link_failure,
    select_safe_routes,
    theorem4_lower_bound,
    theorem4_upper_bound,
    utilization_bounds,
    verify_safe_assignment,
)
from .errors import (
    AdmissionError,
    AnalysisError,
    ConfigurationError,
    EnvelopeError,
    FixedPointDivergence,
    InfeasibleUtilization,
    NoRouteError,
    ReproError,
    RouteSelectionFailure,
    RoutingError,
    SimulationError,
    TopologyError,
    TrafficError,
)
from .experiments import (
    PAPER_TABLE1,
    PaperScenario,
    Table1Result,
    paper_scenario,
    run_table1,
    sweep_burst,
    sweep_deadline,
)
from .routing import (
    HeuristicOptions,
    MultiClassRouteSelector,
    SafeRouteSelector,
    SelectionOutcome,
    candidate_routes,
    shortest_path_routes,
)
from .simulation import PacketPattern, SimulationReport, Simulator
from .statistical import (
    DelayDistribution,
    OverbookedAdmissionController,
    calibrate_overbooking,
    estimate_delay_distribution,
)
from .topology import (
    LinkServerGraph,
    Network,
    mci_backbone,
    nsfnet_backbone,
)
from .traffic import (
    ClassRegistry,
    Envelope,
    FlowSet,
    FlowSpec,
    TrafficClass,
    all_ordered_pairs,
    leaky_bucket_envelope,
    voice_class,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionError",
    "AnalysisError",
    "ClassRegistry",
    "ConfigurationError",
    "Envelope",
    "EnvelopeError",
    "FixedPointDivergence",
    "FixedPointResult",
    "FlowAwareAdmissionController",
    "FlowAwareResult",
    "FlowSet",
    "FlowSpec",
    "HeuristicOptions",
    "InfeasibleUtilization",
    "LinkServerGraph",
    "MaximizationResult",
    "MultiClassResult",
    "MulticlassScaleResult",
    "Network",
    "NoRouteError",
    "PAPER_TABLE1",
    "PacketPattern",
    "PaperScenario",
    "ReplayStats",
    "ReproError",
    "RouteSelectionFailure",
    "RouteSystem",
    "RoutingError",
    "SafeRouteSelector",
    "SelectionOutcome",
    "SimulationError",
    "SimulationReport",
    "Simulator",
    "SingleClassResult",
    "Table1Result",
    "TopologyError",
    "TrafficClass",
    "TrafficError",
    "UtilizationAdmissionController",
    "UtilizationBounds",
    "UtilizationLedger",
    "VerificationResult",
    "all_ordered_pairs",
    "beta_coefficient",
    "candidate_routes",
    "flow_aware_delays",
    "leaky_bucket_envelope",
    "max_utilization_heuristic",
    "max_utilization_shortest_path",
    "maximize_multiclass_scale",
    "maximize_utilization",
    "mci_backbone",
    "multi_class_delays",
    "paper_scenario",
    "replay_schedule",
    "run_table1",
    "select_safe_routes",
    "shortest_path_routes",
    "single_class_delays",
    "sweep_burst",
    "sweep_deadline",
    "theorem3_delay",
    "theorem4_lower_bound",
    "theorem4_upper_bound",
    "uniform_worst_delay",
    "utilization_bounds",
    "verify_assignment",
    "verify_safe_assignment",
    "voice_class",
    "ConfiguredNetwork",
    "MultiClassRouteSelector",
    "DelayDistribution",
    "OverbookedAdmissionController",
    "calibrate_overbooking",
    "estimate_delay_distribution",
    "configure",
    "RepairResult",
    "repair_after_link_failure",
    "nsfnet_backbone",
    "critical_alpha",
    "sensitivity_report",
    "obs",
    "__version__",
]
