"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause.  Exceptions carry the
offending values in attributes (not only in the message) so programmatic
handlers can inspect them.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = [
    "ReproError",
    "TopologyError",
    "UnknownNodeError",
    "UnknownLinkError",
    "TrafficError",
    "EnvelopeError",
    "ClassRegistryError",
    "AnalysisError",
    "FixedPointDivergence",
    "RoutingError",
    "NoRouteError",
    "RouteSelectionFailure",
    "ConfigurationError",
    "InfeasibleUtilization",
    "AdmissionError",
    "SimulationError",
    "FaultInjectionError",
    "ServiceError",
    "ProtocolError",
    "ServiceOverloadedError",
    "VerificationError",
]


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class TopologyError(ReproError):
    """Invalid topology construction or query."""


class UnknownNodeError(TopologyError):
    """A router name was not found in the network."""

    def __init__(self, node: Any):
        self.node = node
        super().__init__(f"unknown router: {node!r}")


class UnknownLinkError(TopologyError):
    """A directed link (u, v) was not found in the network."""

    def __init__(self, tail: Any, head: Any):
        self.tail = tail
        self.head = head
        super().__init__(f"unknown link: {tail!r} -> {head!r}")


class TrafficError(ReproError):
    """Invalid traffic specification."""


class EnvelopeError(TrafficError):
    """Invalid traffic-envelope construction or operation."""


class ClassRegistryError(TrafficError):
    """Invalid traffic-class registry operation."""


class AnalysisError(ReproError):
    """Delay-analysis failure."""


class FixedPointDivergence(AnalysisError):
    """The delay fixed-point iteration failed to converge.

    A diverging iteration means the utilization assignment is *not safe* for
    the given route set: the worst-case delays grow without bound.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    last_residual:
        Largest per-server delay change observed at the final iteration.
    """

    def __init__(self, iterations: int, last_residual: float,
                 message: Optional[str] = None):
        self.iterations = iterations
        self.last_residual = last_residual
        super().__init__(
            message
            or f"delay fixed point did not converge after {iterations} "
               f"iterations (last residual {last_residual:.3e})"
        )


class RoutingError(ReproError):
    """Route construction or selection failure."""


class NoRouteError(RoutingError):
    """No path exists between a source and destination."""

    def __init__(self, source: Any, destination: Any):
        self.source = source
        self.destination = destination
        super().__init__(f"no route from {source!r} to {destination!r}")


class RouteSelectionFailure(RoutingError):
    """The safe route selection algorithm could not route every pair.

    Raised (or recorded, depending on API) when no candidate route for some
    source/destination pair keeps all deadlines satisfiable.
    """

    def __init__(self, pair: Any, routed: int, total: int):
        self.pair = pair
        self.routed = routed
        self.total = total
        super().__init__(
            f"safe route selection failed at pair {pair!r} "
            f"after routing {routed}/{total} pairs"
        )


class ConfigurationError(ReproError):
    """Invalid configuration-procedure input."""


class InfeasibleUtilization(ConfigurationError):
    """No safe utilization exists in the requested search interval."""

    def __init__(self, low: float, high: float):
        self.low = low
        self.high = high
        super().__init__(
            f"no safe utilization found in [{low:.4f}, {high:.4f}]"
        )


class AdmissionError(ReproError):
    """Run-time admission control misuse (e.g. releasing an unknown flow)."""


class SimulationError(ReproError):
    """Packet-level simulator misuse or internal inconsistency."""


class FaultInjectionError(ReproError):
    """Invalid fault schedule or chaos-harness misuse."""


class ServiceError(ReproError):
    """Admission-service failure (transport, configuration, or server side)."""


class ProtocolError(ServiceError):
    """Malformed or illegal ``repro-admission-rpc`` frame.

    Attributes
    ----------
    code:
        Machine-readable error code carried in the wire response
        (``bad_request``, ``unknown_op``, ``duplicate_id``,
        ``frame_too_large``, ...).
    """

    def __init__(self, code: str, message: str):
        self.code = code
        super().__init__(message)


class ServiceOverloadedError(ServiceError):
    """The server shed the request under backpressure (queue past the
    high-water mark); retry after a backoff."""


class VerificationError(ReproError):
    """A bounded-model-check request was malformed, or a verification
    artifact (bound, counterexample, report) failed validation."""
