"""Exporters: Prometheus text, JSON lines, Chrome-trace JSON.

All three formats are plain text/JSON with no third-party dependencies:

* :func:`to_prometheus_text` — the Prometheus exposition format
  (``# TYPE`` headers, ``name{label="v"} value`` samples, histogram
  ``_bucket``/``_sum``/``_count`` expansion with cumulative ``le``);
* :func:`to_json_lines` — one JSON object per series, for ad-hoc
  ``jq``/pandas analysis;
* :func:`to_chrome_trace` — ``traceEvents`` ("X" complete events)
  loadable in ``chrome://tracing`` or https://ui.perfetto.dev.

:func:`parse_prometheus_text` is a minimal reader of the exposition
format — enough to round-trip our own output, used by the test suite
and by downstream scripts that diff two metric snapshots.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, List, Mapping, Tuple

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import Tracer

__all__ = [
    "to_prometheus_text",
    "to_json_lines",
    "to_chrome_trace",
    "parse_prometheus_text",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _fmt_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _fmt_labels(labels: Tuple[Tuple[str, str], ...], extra: str = "") -> str:
    parts = [
        f'{k}="{v}"' for k, v in labels
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render every series in the Prometheus exposition format."""
    lines: List[str] = []
    typed: set = set()
    for series in registry.series():
        name = series.name
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid Prometheus metric name {name!r}")
        labels = tuple((k, _escape(v)) for k, v in series.labels)
        if name not in typed:
            lines.append(f"# TYPE {name} {series.kind}")
            typed.add(name)
        if isinstance(series, (Counter, Gauge)):
            lines.append(f"{name}{_fmt_labels(labels)} "
                         f"{_fmt_value(series.value)}")
        elif isinstance(series, Histogram):
            cumulative = series.cumulative_counts()
            bounds = [_fmt_value(b) for b in series.bounds] + ["+Inf"]
            for bound, count in zip(bounds, cumulative):
                le = 'le="{}"'.format(bound)
                lines.append(
                    f"{name}_bucket{_fmt_labels(labels, le)} {count}"
                )
            lines.append(
                f"{name}_sum{_fmt_labels(labels)} {_fmt_value(series.sum)}"
            )
            lines.append(
                f"{name}_count{_fmt_labels(labels)} {series.count}"
            )
        else:  # pragma: no cover - registry only holds the three kinds
            raise TypeError(f"unknown series type {type(series)!r}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_json_lines(registry: MetricsRegistry) -> str:
    """One JSON object per series (``kind``, ``name``, ``labels``, data)."""
    out: List[str] = []
    for series in registry.series():
        record: Dict[str, object] = {
            "kind": series.kind,
            "name": series.name,
            "labels": dict(series.labels),
        }
        if isinstance(series, (Counter, Gauge)):
            record["value"] = series.value
        else:
            record.update(
                buckets=list(series.bounds),
                counts=list(series.bucket_counts),
                overflow=series.overflow,
                sum=series.sum,
                count=series.count,
            )
        out.append(json.dumps(record, sort_keys=True))
    return "\n".join(out) + ("\n" if out else "")


def to_chrome_trace(tracer: Tracer) -> Dict[str, object]:
    """Chrome ``traceEvents`` dict (complete "X" events, microseconds)."""
    events = []
    for r in tracer.records():
        args: Dict[str, object] = {"depth": r.depth}
        if r.parent_id is not None:
            args["parent_id"] = r.parent_id
        for k, v in r.attrs.items():
            args[k] = v if isinstance(v, (int, float, str, bool)) else str(v)
        events.append(
            {
                "name": r.name,
                "ph": "X",
                "ts": r.start * 1e6,
                "dur": r.duration * 1e6,
                "pid": 0,
                "tid": r.thread_id,
                "id": r.span_id,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"dropped_spans": tracer.dropped},
    }


# ------------------------------------------------------------------ #
# minimal exposition-format reader (round-trip tests, snapshot diffs)
# ------------------------------------------------------------------ #

# The labels section is a sequence of bare chars and quoted strings;
# quoted strings may contain escaped characters (``\\``, ``\"``, ``\n``)
# and *unescaped* ``}`` or ``=`` — so the section cannot be delimited by
# a naive ``[^}]*`` and label values cannot be read with ``[^"]*``.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(?:\{(?P<labels>(?:[^{}"]|"(?:[^"\\]|\\.)*")*)\})?'
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:[^"\\]|\\.)*)"'
)


def _unescape(value: str) -> str:
    """Invert :func:`_escape` (the exposition-format label escapes)."""
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "\\":
                out.append("\\")
            elif nxt == '"':
                out.append('"')
            elif nxt == "n":
                out.append("\n")
            else:  # unknown escape: keep verbatim, as Prometheus does
                out.append(ch)
                out.append(nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def parse_prometheus_text(
    text: str,
) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse exposition text into ``{(name, labels): value}``.

    Handles the subset :func:`to_prometheus_text` emits (which is the
    subset real Prometheus scrapes happily): ``# TYPE``/comment lines
    are skipped, ``+Inf``/``NaN`` values are honoured.
    """
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"unparsable sample at line {lineno}: {line!r}")
        labels = tuple(
            sorted(
                (lm.group("key"), _unescape(lm.group("val")))
                for lm in _LABEL_RE.finditer(m.group("labels") or "")
            )
        )
        raw = m.group("value")
        if raw == "+Inf":
            value = math.inf
        elif raw == "-Inf":
            value = -math.inf
        else:
            value = float(raw)
        samples[(m.group("name"), labels)] = value
    return samples
