"""Streaming span sinks: persist spans beyond the ring buffer.

The tracer's ring buffer bounds memory, which also means a long service
run silently evicts its oldest spans — fine for ad-hoc profiling, wrong
for a server whose whole point is that every request is attributable
after the fact.  A *sink* attached via :meth:`~repro.obs.trace.Tracer.
add_sink` receives every completed :class:`~repro.obs.trace.SpanRecord`
as it lands and can stream it somewhere durable.

:class:`JsonLinesSpanSink` is the shipped implementation: one JSON
object per span (schema ``repro-span/v1``, header line first), buffered
writes flushed every ``flush_every`` spans and on close.  The format is
``jq``/pandas-friendly and carries the wire trace ids
(``trace_id``/``parent_id`` span attributes) so cross-process span
chains can be joined offline.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List, Optional, Tuple

from .trace import SpanRecord, Tracer

__all__ = ["SPAN_SCHEMA", "JsonLinesSpanSink", "read_span_lines"]

SPAN_SCHEMA = "repro-span/v1"


def _span_obj(record: SpanRecord) -> Dict[str, Any]:
    obj: Dict[str, Any] = {
        "span_id": record.span_id,
        "name": record.name,
        "start": record.start,
        "duration": record.duration,
        "depth": record.depth,
        "thread_id": record.thread_id,
    }
    if record.parent_id is not None:
        obj["parent_id"] = record.parent_id
    if record.attrs:
        obj["attrs"] = {
            k: v if isinstance(v, (int, float, str, bool)) else str(v)
            for k, v in record.attrs.items()
        }
    return obj


class JsonLinesSpanSink:
    """Append completed spans to a JSON-lines file.

    Usable as a plain callable (``tracer.add_sink(sink)``) and as a
    context manager.  ``attach``/``detach`` wire it to a tracer in one
    call.  Writes are buffered; the header line is written on open so
    even an empty run leaves a self-describing file.
    """

    def __init__(self, path: str, *, flush_every: int = 64):
        if flush_every < 1:
            raise ValueError(
                f"flush_every must be >= 1, got {flush_every}"
            )
        self.path = str(path)
        self.flush_every = int(flush_every)
        self.written = 0
        self._since_flush = 0
        self._tracer: Optional[Tracer] = None
        self._fh: Optional[IO[str]] = open(
            self.path, "a", encoding="utf-8"
        )
        if self._fh.tell() == 0:
            self._fh.write(
                json.dumps(
                    {"schema": SPAN_SCHEMA},
                    sort_keys=True,
                    separators=(",", ":"),
                )
                + "\n"
            )

    # -------------------------------------------------------------- #

    def __call__(self, record: SpanRecord) -> None:
        if self._fh is None:
            return
        self._fh.write(
            json.dumps(
                _span_obj(record), sort_keys=True, separators=(",", ":")
            )
            + "\n"
        )
        self.written += 1
        self._since_flush += 1
        if self._since_flush >= self.flush_every:
            self._fh.flush()
            self._since_flush = 0

    def attach(self, tracer: Tracer) -> "JsonLinesSpanSink":
        tracer.add_sink(self)
        self._tracer = tracer
        return self

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            self._since_flush = 0

    def close(self) -> None:
        """Flush, close the file, and detach from the tracer."""
        if self._tracer is not None:
            self._tracer.remove_sink(self)
            self._tracer = None
        if self._fh is not None:
            self._fh.flush()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonLinesSpanSink":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


def read_span_lines(
    path: str,
) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read a span-sink file back: ``(header, span objects)``.

    Raises ``ValueError`` on a missing/foreign header so downstream
    tooling cannot silently mis-join unrelated JSON-lines files.
    """
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line for line in fh if line.strip()]
    if not lines:
        raise ValueError(f"span file {path!r} is empty")
    header = json.loads(lines[0])
    if (
        not isinstance(header, dict)
        or header.get("schema") != SPAN_SCHEMA
    ):
        raise ValueError(
            f"span file {path!r} has no {SPAN_SCHEMA!r} header"
        )
    return header, [json.loads(line) for line in lines[1:]]
