"""repro.obs — opt-in observability for the whole package.

Three coordinated facilities:

* a process-local **metrics registry** (counters, gauges, fixed-bucket
  histograms) exported as Prometheus text or JSON lines;
* a **tracing API** (``span("fixedpoint.solve", routes=n)``) recording
  nested wall-clock spans into a ring buffer, exported as Chrome-trace
  JSON;
* stdlib-``logging`` integration: everything under the ``repro`` logger
  hierarchy, silent by default (``NullHandler`` on the root package).

Observability is **disabled by default and zero-cost when disabled**:
instrumented call sites check the module-level :data:`OBS` ``enabled``
flag (one attribute load) and otherwise touch shared no-op singletons,
so analysis/admission/simulation hot paths are unaffected unless a user
opts in::

    from repro import obs

    obs.enable()
    ... run admission / route selection / simulation ...
    print(obs.prometheus_text())
    obs.write_trace("trace.json")     # open in chrome://tracing
    obs.disable()

The CLI exposes the same switch per command:
``repro-ubac table1 --metrics-out m.prom --trace-out t.json``.
"""

from __future__ import annotations

import json
import logging
from typing import Any, Optional, Union

from .export import (
    parse_prometheus_text,
    to_chrome_trace,
    to_json_lines,
    to_prometheus_text,
)
from .metrics import (
    NULL_REGISTRY,
    Counter,
    DEFAULT_DEPTH_BUCKETS,
    DEFAULT_ITERATION_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .sinks import SPAN_SCHEMA, JsonLinesSpanSink, read_span_lines
from .slo import RollingCounter, RollingHistogram, SLOConfig, SLOTracker
from .trace import (
    NULL_SPAN,
    NullSpan,
    Span,
    SpanRecord,
    TraceContext,
    Tracer,
    new_span_id,
    new_trace_id,
    trace_context_from_obj,
)

__all__ = [
    "OBS",
    "enable",
    "disable",
    "is_enabled",
    "reset",
    "get_registry",
    "get_tracer",
    "counter",
    "gauge",
    "histogram",
    "span",
    "prometheus_text",
    "json_lines",
    "chrome_trace",
    "write_metrics",
    "write_trace",
    "parse_prometheus_text",
    "MetricsRegistry",
    "NullRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "Span",
    "SpanRecord",
    "TraceContext",
    "new_trace_id",
    "new_span_id",
    "trace_context_from_obj",
    "SPAN_SCHEMA",
    "JsonLinesSpanSink",
    "read_span_lines",
    "RollingCounter",
    "RollingHistogram",
    "SLOConfig",
    "SLOTracker",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_ITERATION_BUCKETS",
    "DEFAULT_DEPTH_BUCKETS",
]

logger = logging.getLogger("repro.obs")


class _ObsState:
    """Module-level switchboard every instrumented call site reads.

    ``OBS.enabled`` is the single flag hot paths check; ``registry`` and
    ``tracer`` always hold *usable* objects (no-op twins while
    disabled), so even an unguarded call site cannot crash — it just
    pays a few extra nanoseconds.
    """

    __slots__ = ("enabled", "registry", "tracer")

    def __init__(self):
        self.enabled = False
        self.registry: Union[MetricsRegistry, NullRegistry] = NULL_REGISTRY
        self.tracer: Optional[Tracer] = None

    # ------------------------------------------------------------- #

    def span(self, name: str, **attrs: Any):
        """A live span when tracing is on, the shared no-op otherwise."""
        if self.enabled and self.tracer is not None:
            return self.tracer.span(name, **attrs)
        return NULL_SPAN


OBS = _ObsState()


def enable(
    *,
    metrics: bool = True,
    tracing: bool = True,
    trace_capacity: int = 8192,
    fresh: bool = False,
) -> None:
    """Turn collection on (idempotent; state survives re-enabling).

    Parameters
    ----------
    metrics / tracing:
        Select facilities individually; disabling one leaves the no-op
        twin in place.
    trace_capacity:
        Ring-buffer size for completed spans.
    fresh:
        Drop previously collected data instead of accumulating.
    """
    if metrics:
        if fresh or isinstance(OBS.registry, NullRegistry):
            OBS.registry = MetricsRegistry()
    else:
        OBS.registry = NULL_REGISTRY
    if tracing:
        if fresh or OBS.tracer is None:
            OBS.tracer = Tracer(capacity=trace_capacity)
    else:
        OBS.tracer = None
    OBS.enabled = True
    logger.debug(
        "observability enabled (metrics=%s, tracing=%s)", metrics, tracing
    )


def disable() -> None:
    """Stop collecting.  Already-collected data stays readable."""
    OBS.enabled = False
    logger.debug("observability disabled")


def is_enabled() -> bool:
    return OBS.enabled


def reset() -> None:
    """Clear collected metrics and spans (keeps the enabled state)."""
    OBS.registry.reset()
    if OBS.tracer is not None:
        OBS.tracer.reset()


def get_registry() -> Union[MetricsRegistry, NullRegistry]:
    return OBS.registry


def get_tracer() -> Optional[Tracer]:
    return OBS.tracer


# ------------------------------------------------------------------ #
# convenience instrument accessors (enabled path)
# ------------------------------------------------------------------ #


def counter(name: str, **labels: str):
    return OBS.registry.counter(name, **labels)


def gauge(name: str, **labels: str):
    return OBS.registry.gauge(name, **labels)


def histogram(name: str, *, buckets=None, **labels: str):
    return OBS.registry.histogram(name, buckets=buckets, **labels)


def span(name: str, **attrs: Any):
    """Context manager timing a region; no-op while disabled."""
    return OBS.span(name, **attrs)


# ------------------------------------------------------------------ #
# export shortcuts bound to the active state
# ------------------------------------------------------------------ #


def prometheus_text() -> str:
    registry = OBS.registry
    if isinstance(registry, NullRegistry):
        return ""
    return to_prometheus_text(registry)


def json_lines() -> str:
    registry = OBS.registry
    if isinstance(registry, NullRegistry):
        return ""
    return to_json_lines(registry)


def chrome_trace() -> dict:
    tracer = OBS.tracer
    if tracer is None:
        return {"traceEvents": [], "displayTimeUnit": "ms", "otherData": {}}
    return to_chrome_trace(tracer)


def write_metrics(path: str, *, fmt: str = "prometheus") -> None:
    """Write the metrics snapshot to ``path`` (``prometheus``/``jsonl``)."""
    if fmt == "prometheus":
        text = prometheus_text()
    elif fmt in ("jsonl", "json-lines"):
        text = json_lines()
    else:
        raise ValueError(f"unknown metrics format {fmt!r}")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    logger.info("wrote metrics snapshot to %s (%s)", path, fmt)


def write_trace(path: str) -> None:
    """Write the span buffer to ``path`` as Chrome-trace JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(), fh)
    logger.info("wrote Chrome trace to %s", path)
