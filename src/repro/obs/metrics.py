"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The registry is deliberately tiny and dependency-free.  Three instrument
kinds cover everything the reproduction needs to quantify (decision
counts, established-flow population, iteration/latency distributions):

* :class:`Counter` — monotone float, ``inc()`` only;
* :class:`Gauge` — settable float, ``set()``/``inc()``/``dec()``;
* :class:`Histogram` — fixed upper-bound buckets chosen at creation,
  plus running sum and count (Prometheus cumulative-bucket semantics
  are applied at export time).

Series identity is ``(name, sorted labels)``; asking the registry for an
existing series returns the same object, so call sites never cache
instrument handles unless they are on a hot path and want to skip the
dictionary lookup.

Everything here assumes the **enabled** path.  The zero-cost disabled
path lives in the no-op twins (:class:`NullCounter` & friends, exposed
through :data:`NULL_REGISTRY`), which share the mutation API but do
nothing; :mod:`repro.obs` hands one or the other out depending on the
module-level enabled flag.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_ITERATION_BUCKETS",
    "DEFAULT_DEPTH_BUCKETS",
]

LabelItems = Tuple[Tuple[str, str], ...]

#: Decision/solve latency buckets, in seconds (1 µs .. 10 s).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)

#: Iteration-count buckets for fixed-point style loops.
DEFAULT_ITERATION_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 500, 1000, 10_000,
)

#: Queue-depth / backlog buckets (powers of four up to 64k entries),
#: used by the admission service's coalescer and backpressure gauges.
DEFAULT_DEPTH_BUCKETS: Tuple[float, ...] = (
    1, 4, 16, 64, 256, 1024, 4096, 16_384, 65_536,
)


def _label_items(labels: Mapping[str, str]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """Last-written value (population sizes, queue depths)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def max(self, value: float) -> None:
        """Keep the running maximum (high-water-mark gauges)."""
        if value > self.value:
            self.value = float(value)


class Histogram:
    """Fixed-bucket distribution with running sum and count.

    ``bucket_counts[i]`` is the number of observations in
    ``(bounds[i-1], bounds[i]]`` (non-cumulative); observations above the
    largest bound land in the implicit ``+Inf`` overflow bucket.
    """

    kind = "histogram"
    __slots__ = (
        "name", "labels", "bounds", "bucket_counts", "overflow",
        "sum", "count",
    )

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        sorted_bounds = tuple(float(b) for b in bounds)
        if not sorted_bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if list(sorted_bounds) != sorted(set(sorted_bounds)):
            raise ValueError(
                f"histogram {name!r} buckets must be strictly increasing"
            )
        self.name = name
        self.labels = labels
        self.bounds = sorted_bounds
        self.bucket_counts = [0] * len(sorted_bounds)
        self.overflow = 0
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        i = bisect.bisect_left(self.bounds, value)
        if i < len(self.bounds):
            self.bucket_counts[i] += 1
        else:
            self.overflow += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative counts, one per bound plus +Inf."""
        out: List[int] = []
        running = 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        out.append(running + self.overflow)
        return out

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")


class MetricsRegistry:
    """Get-or-create home for every metric series of the process.

    Thread-safe for creation; mutation of individual instruments is a
    single float update and relies on the GIL like the rest of the
    package.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._series: Dict[Tuple[str, LabelItems], object] = {}
        self._kinds: Dict[str, str] = {}

    # -------------------------------------------------------------- #

    def _get(self, factory, name: str, labels: Mapping[str, str], **kw):
        items = _label_items(labels)
        key = (name, items)
        series = self._series.get(key)
        if series is not None:
            return series
        with self._lock:
            series = self._series.get(key)
            if series is not None:
                return series
            kind = factory.kind
            seen = self._kinds.get(name)
            if seen is not None and seen != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {seen}, "
                    f"cannot re-register as {kind}"
                )
            self._kinds[name] = kind
            series = factory(name, items, **kw)
            self._series[key] = series
            return series

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        *,
        buckets: Optional[Sequence[float]] = None,
        **labels: str,
    ) -> Histogram:
        bounds = DEFAULT_LATENCY_BUCKETS if buckets is None else buckets
        return self._get(Histogram, name, labels, bounds=bounds)

    # -------------------------------------------------------------- #

    def series(self) -> List[object]:
        """Every registered instrument, name-sorted (stable exports)."""
        return [
            self._series[key] for key in sorted(self._series)
        ]

    def get(self, name: str, **labels: str):
        """Existing series or None (introspection; never creates)."""
        return self._series.get((name, _label_items(labels)))

    def reset(self) -> None:
        """Drop every series (test isolation, fresh experiment runs)."""
        with self._lock:
            self._series.clear()
            self._kinds.clear()

    def __len__(self) -> int:
        return len(self._series)


# ------------------------------------------------------------------ #
# disabled path: no-op twins
# ------------------------------------------------------------------ #


class NullCounter:
    """Accepts the :class:`Counter` API and does nothing."""

    kind = "counter"
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class NullGauge:
    """Accepts the :class:`Gauge` API and does nothing."""

    kind = "gauge"
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def max(self, value: float) -> None:
        pass


class NullHistogram:
    """Accepts the :class:`Histogram` API and does nothing."""

    kind = "histogram"
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class NullRegistry:
    """Registry twin handed out while observability is disabled.

    Every accessor returns a shared no-op singleton, so instrumented
    call sites that slipped past their ``enabled`` guard still cost only
    a dictionary-free method call and allocate nothing.
    """

    def counter(self, name: str, **labels: str) -> NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: str) -> NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, **kwargs) -> NullHistogram:
        return _NULL_HISTOGRAM

    def series(self) -> List[object]:
        return []

    def get(self, name: str, **labels: str):
        return None

    def reset(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


NULL_REGISTRY = NullRegistry()
