"""Rolling-window SLO tracking: recent quantiles vs configured targets.

Lifetime histograms answer "how has the service behaved since boot";
an SLO needs "how is it behaving *right now*".  This module keeps
time-sliced rolling windows — a ring of per-slice bucket counts where
expired slices are zeroed lazily — so p50/p99 latency and shed rate
over the last ``window`` seconds cost O(slices × buckets) to read and
O(1) to update, with no timestamps stored per observation.

:class:`SLOTracker` compares the measured window against a
:class:`SLOConfig` and reports *burn rates* (measured / target; > 1
means the objective is being violated right now), which the service
surfaces in ``stats``, ``/healthz``, and as gauges on the metrics
registry.  All clocks are injectable for deterministic tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry

__all__ = [
    "RollingCounter",
    "RollingHistogram",
    "SLOConfig",
    "SLOTracker",
]


class _SliceRing:
    """Shared slice bookkeeping: lazily-zeroed ring of window slices."""

    def __init__(
        self,
        window: float,
        slices: int,
        clock: Callable[[], float],
    ):
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        if slices < 1:
            raise ValueError(f"slices must be >= 1, got {slices}")
        self.window = float(window)
        self.slices = int(slices)
        self._clock = clock
        self._slice_width = self.window / self.slices
        #: Epoch (slice number since time zero) stored per ring slot;
        #: a slot whose epoch is stale gets zeroed before reuse/read.
        self._epochs = [-1] * self.slices

    def current_epoch(self) -> int:
        return int(self._clock() / self._slice_width)

    def slot_for(self, epoch: int) -> Tuple[int, bool]:
        """Ring index for ``epoch`` and whether the slot must be zeroed."""
        idx = epoch % self.slices
        stale = self._epochs[idx] != epoch
        self._epochs[idx] = epoch
        return idx, stale

    def live_slots(self, epoch: int) -> List[int]:
        """Ring indices whose data is still inside the window."""
        oldest = epoch - self.slices + 1
        return [
            i
            for i in range(self.slices)
            if oldest <= self._epochs[i] <= epoch
        ]


class RollingCounter:
    """Event count over the trailing ``window`` seconds."""

    def __init__(
        self,
        *,
        window: float = 60.0,
        slices: int = 12,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._ring = _SliceRing(window, slices, clock)
        self._counts = [0] * self._ring.slices

    def inc(self, value: int = 1) -> None:
        idx, stale = self._ring.slot_for(self._ring.current_epoch())
        if stale:
            self._counts[idx] = 0
        self._counts[idx] += value

    def total(self) -> int:
        epoch = self._ring.current_epoch()
        return sum(self._counts[i] for i in self._ring.live_slots(epoch))

    def rate(self) -> float:
        """Events per second over the window."""
        return self.total() / self._ring.window


class RollingHistogram:
    """Bucketed value distribution over the trailing window.

    Quantiles are bucket-resolution estimates: :meth:`quantile` returns
    the upper bound of the bucket containing the requested rank
    (overflow observations clamp to the last finite bound), which is
    exactly the resolution a Prometheus ``histogram_quantile`` would
    give for the same buckets.
    """

    def __init__(
        self,
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        *,
        window: float = 60.0,
        slices: int = 12,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be sorted ascending")
        self.bounds = tuple(float(b) for b in bounds)
        self._ring = _SliceRing(window, slices, clock)
        # One bucket-count row per slice; last column is overflow.
        width = len(self.bounds) + 1
        self._rows = [[0] * width for _ in range(self._ring.slices)]

    def observe(self, value: float) -> None:
        idx, stale = self._ring.slot_for(self._ring.current_epoch())
        row = self._rows[idx]
        if stale:
            for i in range(len(row)):
                row[i] = 0
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                row[i] += 1
                return
        row[-1] += 1

    def _merged(self) -> List[int]:
        epoch = self._ring.current_epoch()
        merged = [0] * (len(self.bounds) + 1)
        for idx in self._ring.live_slots(epoch):
            row = self._rows[idx]
            for i, c in enumerate(row):
                merged[i] += c
        return merged

    def count(self) -> int:
        return sum(self._merged())

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` (0..1); 0.0 for an empty window."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        merged = self._merged()
        total = sum(merged)
        if total == 0:
            return 0.0
        rank = q * total
        running = 0.0
        for i, c in enumerate(merged[:-1]):
            running += c
            if running >= rank:
                return self.bounds[i]
        return self.bounds[-1]


@dataclass(frozen=True)
class SLOConfig:
    """Latency/shedding objectives for the rolling window.

    ``shed_rate`` is a fraction of requests (0.01 = 1%).  A target of
    zero disables that objective's burn rate (reported as 0.0) rather
    than dividing by it.
    """

    p50_ms: float = 50.0
    p99_ms: float = 250.0
    shed_rate: float = 0.01
    window_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.p50_ms < 0 or self.p99_ms < 0:
            raise ValueError("SLO latency targets must be >= 0")
        if not 0.0 <= self.shed_rate <= 1.0:
            raise ValueError(
                f"shed_rate must be in [0, 1], got {self.shed_rate}"
            )
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be > 0")


def _burn(measured: float, target: float) -> float:
    if target <= 0:
        return 0.0
    return measured / target


class SLOTracker:
    """Measure rolling latency/shed behavior against an SLO.

    The service feeds it per-request latencies and shed events; readers
    pull :meth:`snapshot` (JSON-safe dict for ``stats``/``/healthz``)
    or :meth:`export_gauges` (Prometheus burn-rate series).
    """

    def __init__(
        self,
        config: Optional[SLOConfig] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        slices: int = 12,
    ):
        self.config = config or SLOConfig()
        window = self.config.window_seconds
        self._latency = RollingHistogram(
            window=window, slices=slices, clock=clock
        )
        self._requests = RollingCounter(
            window=window, slices=slices, clock=clock
        )
        self._sheds = RollingCounter(
            window=window, slices=slices, clock=clock
        )

    # ------------------------------------------------------------ feed

    def observe_latency(self, seconds: float) -> None:
        self._latency.observe(seconds)

    def record_request(self, n: int = 1) -> None:
        self._requests.inc(n)

    def record_shed(self, n: int = 1) -> None:
        self._sheds.inc(n)

    # ------------------------------------------------------------ read

    def measured(self) -> Dict[str, float]:
        requests = self._requests.total()
        sheds = self._sheds.total()
        # record_request() counts every arriving frame, shed ones
        # included, so requests already IS the attempt count.
        return {
            "p50_ms": self._latency.quantile(0.50) * 1e3,
            "p99_ms": self._latency.quantile(0.99) * 1e3,
            "shed_rate": (sheds / requests) if requests else 0.0,
            "requests": float(requests),
            "sheds": float(sheds),
        }

    def snapshot(self) -> Dict[str, Any]:
        cfg = self.config
        m = self.measured()
        burn_rates = {
            "p50": _burn(m["p50_ms"], cfg.p50_ms),
            "p99": _burn(m["p99_ms"], cfg.p99_ms),
            "shed_rate": _burn(m["shed_rate"], cfg.shed_rate),
        }
        return {
            "window_seconds": cfg.window_seconds,
            "requests": int(m["requests"]),
            "sheds": int(m["sheds"]),
            "p50_ms": m["p50_ms"],
            "p99_ms": m["p99_ms"],
            "shed_rate": m["shed_rate"],
            "targets": {
                "p50_ms": cfg.p50_ms,
                "p99_ms": cfg.p99_ms,
                "shed_rate": cfg.shed_rate,
            },
            "burn_rates": burn_rates,
            "breaching": any(b > 1.0 for b in burn_rates.values()),
        }

    def export_gauges(self, registry: MetricsRegistry) -> None:
        """Publish burn rates and measured quantiles as gauges."""
        m = self.measured()
        cfg = self.config
        for objective, measured_v, target in (
            ("p50", m["p50_ms"], cfg.p50_ms),
            ("p99", m["p99_ms"], cfg.p99_ms),
            ("shed_rate", m["shed_rate"], cfg.shed_rate),
        ):
            registry.gauge(
                "repro_slo_burn_rate", objective=objective
            ).set(_burn(measured_v, target))
        registry.gauge(
            "repro_slo_latency_ms", quantile="0.5"
        ).set(m["p50_ms"])
        registry.gauge(
            "repro_slo_latency_ms", quantile="0.99"
        ).set(m["p99_ms"])
        registry.gauge("repro_slo_shed_ratio").set(m["shed_rate"])
