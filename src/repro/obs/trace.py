"""Lightweight structured tracing: nested spans in a ring buffer.

A *span* measures one timed region (``fixedpoint.solve``,
``admission.admit``, ...) with wall-clock duration, nesting depth,
parent linkage, and free-form attributes.  Completed spans land in a
bounded ring buffer (oldest evicted first) so long experiment runs
cannot grow memory without bound; the buffer exports losslessly to
Chrome-trace JSON (``chrome://tracing`` / Perfetto ``traceEvents``
format) via :mod:`repro.obs.export`.

Usage::

    tracer = Tracer()
    with tracer.span("routing.select", pairs=12) as sp:
        ...
        sp.set(candidates=evaluated)   # attach results before exit

Spans nest lexically per thread; the tracer keeps a per-thread stack so
depth/parent attribution stays correct if a simulator or benchmark runs
in a worker thread.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

__all__ = ["SpanRecord", "Span", "NullSpan", "NULL_SPAN", "Tracer"]

#: Default ring-buffer capacity (completed spans retained).
DEFAULT_CAPACITY = 8192


@dataclass
class SpanRecord:
    """One completed span.

    ``start``/``duration`` are seconds on the tracer's monotonic
    timeline (zero at tracer creation); ``depth`` is 0 for root spans;
    ``parent_id`` is ``None`` for roots.
    """

    span_id: int
    name: str
    start: float
    duration: float
    depth: int
    parent_id: Optional[int]
    thread_id: int
    attrs: Dict[str, Any] = field(default_factory=dict)


class Span:
    """Live context manager; becomes a :class:`SpanRecord` on exit."""

    __slots__ = (
        "_tracer", "_name", "_attrs", "_span_id",
        "_start", "_depth", "_parent_id",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span_id = next(tracer._ids)
        self._start = 0.0
        self._depth = 0
        self._parent_id: Optional[int] = None

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self._attrs.update(attrs)

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        self._depth = len(stack)
        self._parent_id = stack[-1] if stack else None
        stack.append(self._span_id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        stack = self._tracer._stack()
        if stack and stack[-1] == self._span_id:
            stack.pop()
        if exc_type is not None:
            self._attrs.setdefault("error", exc_type.__name__)
        self._tracer._record(
            SpanRecord(
                span_id=self._span_id,
                name=self._name,
                start=self._start - self._tracer._t0,
                duration=duration,
                depth=self._depth,
                parent_id=self._parent_id,
                thread_id=threading.get_ident(),
                attrs=self._attrs,
            )
        )


class NullSpan:
    """Shared no-op span for the disabled path."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = NullSpan()


class Tracer:
    """Span factory plus bounded buffer of completed spans."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = int(capacity)
        self._buffer: Deque[SpanRecord] = deque(maxlen=self.capacity)
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._t0 = time.perf_counter()
        self._dropped = 0

    # -------------------------------------------------------------- #

    def span(self, name: str, **attrs: Any) -> Span:
        return Span(self, name, attrs)

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _record(self, record: SpanRecord) -> None:
        if len(self._buffer) == self.capacity:
            self._dropped += 1
        self._buffer.append(record)

    # -------------------------------------------------------------- #

    @property
    def dropped(self) -> int:
        """Spans evicted by the ring buffer since the last reset."""
        return self._dropped

    def records(self) -> List[SpanRecord]:
        """Completed spans, oldest first."""
        return list(self._buffer)

    def find(self, name: str) -> List[SpanRecord]:
        return [r for r in self._buffer if r.name == name]

    def reset(self) -> None:
        self._buffer.clear()
        self._dropped = 0
        self._t0 = time.perf_counter()

    def __len__(self) -> int:
        return len(self._buffer)
