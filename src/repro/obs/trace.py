"""Lightweight structured tracing: nested spans in a ring buffer.

A *span* measures one timed region (``fixedpoint.solve``,
``admission.admit``, ...) with wall-clock duration, nesting depth,
parent linkage, and free-form attributes.  Completed spans land in a
bounded ring buffer (oldest evicted first) so long experiment runs
cannot grow memory without bound; the buffer exports losslessly to
Chrome-trace JSON (``chrome://tracing`` / Perfetto ``traceEvents``
format) via :mod:`repro.obs.export`.

Usage::

    tracer = Tracer()
    with tracer.span("routing.select", pairs=12) as sp:
        ...
        sp.set(candidates=evaluated)   # attach results before exit

Spans nest lexically per thread; the tracer keeps a per-thread stack so
depth/parent attribution stays correct if a simulator or benchmark runs
in a worker thread.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

__all__ = [
    "SpanRecord",
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "Tracer",
    "TraceContext",
    "new_trace_id",
    "new_span_id",
    "trace_context_from_obj",
]

#: Default ring-buffer capacity (completed spans retained).
DEFAULT_CAPACITY = 8192

_TRACE_ID_BYTES = 16
_SPAN_ID_BYTES = 8
_HEX_DIGITS = frozenset("0123456789abcdef")


def new_trace_id() -> str:
    """A fresh 32-hex-digit trace id (W3C traceparent width)."""
    return os.urandom(_TRACE_ID_BYTES).hex()


def new_span_id() -> str:
    """A fresh 16-hex-digit span id (W3C traceparent width)."""
    return os.urandom(_SPAN_ID_BYTES).hex()


@dataclass(frozen=True)
class TraceContext:
    """Wire-propagated trace identity (W3C-traceparent-style ids).

    ``trace_id`` names the whole end-to-end request; ``span_id`` names
    the sender's span, i.e. the *parent* of whatever span the receiver
    opens for the work.  Both are lowercase hex strings of fixed width
    and must not be all-zero.
    """

    trace_id: str
    span_id: str

    def to_obj(self) -> Dict[str, str]:
        """Wire form: the ``trace`` field of a protocol frame."""
        return {"trace_id": self.trace_id, "parent_id": self.span_id}


def _valid_hex_id(value: Any, width: int) -> bool:
    return (
        isinstance(value, str)
        and len(value) == width
        and set(value) <= _HEX_DIGITS
        and set(value) != {"0"}
    )


def trace_context_from_obj(obj: Any) -> Optional[TraceContext]:
    """Validated :class:`TraceContext` from a wire ``trace`` object.

    Telemetry is advisory: a malformed or missing context yields
    ``None`` (the request is still served), never an error — old peers
    that do not understand the field must stay interoperable.
    """
    if not isinstance(obj, dict):
        return None
    trace_id = obj.get("trace_id")
    parent_id = obj.get("parent_id")
    if not _valid_hex_id(trace_id, 2 * _TRACE_ID_BYTES):
        return None
    if not _valid_hex_id(parent_id, 2 * _SPAN_ID_BYTES):
        return None
    return TraceContext(trace_id=trace_id, span_id=parent_id)


@dataclass
class SpanRecord:
    """One completed span.

    ``start``/``duration`` are seconds on the tracer's monotonic
    timeline (zero at tracer creation); ``depth`` is 0 for root spans;
    ``parent_id`` is ``None`` for roots.
    """

    span_id: int
    name: str
    start: float
    duration: float
    depth: int
    parent_id: Optional[int]
    thread_id: int
    attrs: Dict[str, Any] = field(default_factory=dict)


class Span:
    """Live context manager; becomes a :class:`SpanRecord` on exit."""

    __slots__ = (
        "_tracer", "_name", "_attrs", "_span_id",
        "_start", "_depth", "_parent_id",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span_id = next(tracer._ids)
        self._start = 0.0
        self._depth = 0
        self._parent_id: Optional[int] = None

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self._attrs.update(attrs)

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        self._depth = len(stack)
        self._parent_id = stack[-1] if stack else None
        stack.append(self._span_id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        stack = self._tracer._stack()
        if stack and stack[-1] == self._span_id:
            stack.pop()
        if exc_type is not None:
            self._attrs.setdefault("error", exc_type.__name__)
        self._tracer._record(
            SpanRecord(
                span_id=self._span_id,
                name=self._name,
                start=self._start - self._tracer._t0,
                duration=duration,
                depth=self._depth,
                parent_id=self._parent_id,
                thread_id=threading.get_ident(),
                attrs=self._attrs,
            )
        )


class NullSpan:
    """Shared no-op span for the disabled path."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = NullSpan()


class Tracer:
    """Span factory plus bounded buffer of completed spans."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = int(capacity)
        self._buffer: Deque[SpanRecord] = deque(maxlen=self.capacity)
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._t0 = time.perf_counter()
        self._dropped = 0
        #: Streaming consumers of completed spans (e.g. the JSON-lines
        #: sink): each is called with every :class:`SpanRecord` as it
        #: lands, *in addition to* the ring buffer — so long service
        #: runs can persist spans the ring has long since evicted.
        self._sinks: List[Callable[[SpanRecord], None]] = []

    # -------------------------------------------------------------- #

    def span(self, name: str, **attrs: Any) -> Span:
        return Span(self, name, attrs)

    def record_span(
        self,
        name: str,
        *,
        start: float,
        duration: float,
        parent_id: Optional[int] = None,
        depth: int = 0,
        **attrs: Any,
    ) -> SpanRecord:
        """Record a span whose timing was measured externally.

        The lexical ``with tracer.span(...)`` form assumes the region
        nests on the current thread's stack; async request handlers
        interleave many logical requests on one thread, so they measure
        stage timings themselves (``time.perf_counter()`` values) and
        emit the finished span here.  ``start`` is an absolute
        ``perf_counter`` reading; it is rebased onto the tracer's
        timeline.
        """
        record = SpanRecord(
            span_id=next(self._ids),
            name=name,
            start=start - self._t0,
            duration=duration,
            depth=depth,
            parent_id=parent_id,
            thread_id=threading.get_ident(),
            attrs=attrs,
        )
        self._record(record)
        return record

    def add_sink(self, sink: Callable[[SpanRecord], None]) -> None:
        """Stream every completed span to ``sink`` (order of arrival)."""
        self._sinks.append(sink)

    def remove_sink(self, sink: Callable[[SpanRecord], None]) -> None:
        """Detach a sink; unknown sinks are ignored."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _record(self, record: SpanRecord) -> None:
        if len(self._buffer) == self.capacity:
            self._dropped += 1
        self._buffer.append(record)
        for sink in self._sinks:
            sink(record)

    # -------------------------------------------------------------- #

    @property
    def dropped(self) -> int:
        """Spans evicted by the ring buffer since the last reset."""
        return self._dropped

    def records(self) -> List[SpanRecord]:
        """Completed spans, oldest first."""
        return list(self._buffer)

    def find(self, name: str) -> List[SpanRecord]:
        return [r for r in self._buffer if r.name == name]

    def reset(self) -> None:
        self._buffer.clear()
        self._dropped = 0
        self._t0 = time.perf_counter()

    def __len__(self) -> int:
        return len(self._buffer)
