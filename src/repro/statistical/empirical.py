"""Empirical delay distributions via simulation replications.

The paper closes by noting that many applications (IP telephony!) would
be happy with *statistical* guarantees instead of deterministic ones
(Section 7).  The deterministic analysis prices every flow at its
worst-case burst alignment; real traffic almost never aligns, so the
deterministic bound leaves capacity on the table.

This module quantifies that gap: it runs independent simulator
replications with randomized (Poisson, policed) sources and estimates the
end-to-end delay distribution — quantiles and deadline-miss probability
with simple binomial confidence intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..simulation.simulator import PacketPattern, Simulator
from ..topology.servergraph import LinkServerGraph
from ..traffic.classes import ClassRegistry
from ..traffic.flows import FlowSpec

__all__ = ["DelayDistribution", "estimate_delay_distribution"]

Pair = Tuple[Hashable, Hashable]


@dataclass
class DelayDistribution:
    """Empirical end-to-end delay distribution of one class.

    Attributes
    ----------
    samples:
        All per-packet delays pooled over replications (seconds, sorted).
    replications:
        Number of independent simulator runs pooled.
    """

    class_name: str
    samples: np.ndarray
    replications: int

    @property
    def count(self) -> int:
        return int(self.samples.size)

    @property
    def max(self) -> float:
        return float(self.samples[-1]) if self.count else 0.0

    @property
    def mean(self) -> float:
        return float(self.samples.mean()) if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (``q`` in [0, 1])."""
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        return float(np.quantile(self.samples, q))

    def miss_probability(self, deadline: float) -> float:
        """Fraction of packets exceeding ``deadline``."""
        if self.count == 0:
            return float("nan")
        return float(np.mean(self.samples > deadline))

    def miss_probability_upper(
        self, deadline: float, confidence: float = 0.95
    ) -> float:
        """One-sided upper confidence bound on the miss probability.

        Normal-approximation (Wald with +z^2 continuity via the
        Agresti-Coull centre) — adequate at the sample counts the
        estimator produces; exact when no misses were observed
        (rule of three: 3/n at 95%).
        """
        if self.count == 0:
            return 1.0
        n = self.count
        k = int(np.sum(self.samples > deadline))
        z = _z_for(confidence)
        if k == 0:
            return min(1.0, -math.log(1 - confidence) / n)
        n_t = n + z * z
        p_t = (k + z * z / 2) / n_t
        half = z * math.sqrt(p_t * (1 - p_t) / n_t)
        return min(1.0, p_t + half)


def _z_for(confidence: float) -> float:
    if not (0.5 <= confidence < 1.0):
        raise ValueError("confidence must be in [0.5, 1)")
    # Inverse-normal via Acklam-style rational approximation would be
    # overkill; the estimator only needs a few standard levels.
    table = {0.90: 1.2816, 0.95: 1.6449, 0.99: 2.3263, 0.999: 3.0902}
    best = min(table, key=lambda c: abs(c - confidence))
    if abs(best - confidence) > 5e-3:
        raise ValueError(
            f"unsupported confidence {confidence}; "
            f"use one of {sorted(table)}"
        )
    return table[best]


def estimate_delay_distribution(
    graph: LinkServerGraph,
    registry: ClassRegistry,
    flows_with_routes: Sequence[Tuple[FlowSpec, Sequence[Hashable]]],
    *,
    class_name: str,
    packet_size: float,
    horizon: float = 1.0,
    replications: int = 5,
    seed: int = 0,
) -> DelayDistribution:
    """Pool per-packet delays over independent Poisson-source replications.

    Every flow keeps its route; only the stochastic arrival phases change
    across replications (derived seeds).  Sources remain leaky-bucket
    policed, so each replication is an *admissible* traffic realization
    for the deterministic analysis.
    """
    if replications < 1:
        raise SimulationError("need at least one replication")
    if not flows_with_routes:
        raise SimulationError("no flows given")
    pooled: List[np.ndarray] = []
    for rep in range(replications):
        sim = Simulator(graph, registry)
        for j, (flow, route) in enumerate(flows_with_routes):
            sim.add_flow(
                flow,
                route,
                PacketPattern(
                    "poisson",
                    packet_size=packet_size,
                    seed=seed * 1_000_003 + rep * 10_007 + j,
                ),
            )
        report = sim.run(horizon=horizon)
        pooled.append(report.e2e.get(class_name, np.empty(0)))
    samples = np.sort(np.concatenate(pooled))
    return DelayDistribution(
        class_name=class_name,
        samples=samples,
        replications=replications,
    )
