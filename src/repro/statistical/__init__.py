"""Statistical guarantees extension (the paper's Section 7 outlook).

Empirical delay distributions from simulator replications, and calibrated
overbooking: trade the deterministic hard guarantee for measured capacity
at a bounded deadline-miss probability.
"""

from .empirical import DelayDistribution, estimate_delay_distribution
from .overbooking import (
    CalibrationResult,
    OverbookedAdmissionController,
    calibrate_overbooking,
)

__all__ = [
    "CalibrationResult",
    "DelayDistribution",
    "OverbookedAdmissionController",
    "calibrate_overbooking",
    "estimate_delay_distribution",
]
