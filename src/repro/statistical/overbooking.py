"""Statistical admission control by calibrated overbooking.

The deterministic controller admits at most ``floor(alpha*C/rho)`` flows
per link — the number the worst-case analysis certifies.  A *statistical*
service instead promises "at most a ``target`` fraction of packets miss
the deadline" and may admit more.  This module implements the simplest
honest version of the paper's Section 7 outlook:

1. :func:`calibrate_overbooking` searches for the largest overbooking
   factor whose *simulated* miss-probability upper confidence bound stays
   within the target, on a caller-supplied reference scenario;
2. :class:`OverbookedAdmissionController` applies the factor at run time —
   the admission test is still O(path length), only the per-link slot
   capacity is scaled.

The calibration is Monte-Carlo, not analytic: it inherits the usual
caveat that the certificate holds for traffic resembling the reference
scenario.  That trade — deterministic certainty for measured capacity —
is exactly what the paper's closing paragraph proposes to explore.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..admission.base import Pair
from ..admission.utilization import UtilizationAdmissionController
from ..admission.ledger import UtilizationLedger
from ..errors import AdmissionError, ConfigurationError
from ..topology.servergraph import LinkServerGraph
from ..traffic.classes import ClassRegistry
from ..traffic.flows import FlowSpec
from .empirical import DelayDistribution, estimate_delay_distribution

__all__ = [
    "OverbookedAdmissionController",
    "CalibrationResult",
    "calibrate_overbooking",
]


class OverbookedAdmissionController(UtilizationAdmissionController):
    """Utilization controller with scaled slot capacity.

    ``factor >= 1`` multiplies every real-time class's per-link slot
    count.  ``factor = 1`` reproduces the deterministic controller
    exactly; the deterministic hard guarantee holds only at 1.
    """

    def __init__(
        self,
        graph: LinkServerGraph,
        registry: ClassRegistry,
        alphas: Mapping[str, float],
        route_map: Mapping[Pair, Sequence[Hashable]],
        *,
        factor: float = 1.0,
    ):
        if factor < 1.0:
            raise AdmissionError(
                f"overbooking factor must be >= 1, got {factor}"
            )
        super().__init__(graph, registry, alphas, route_map)
        self.factor = float(factor)
        # Rescale the ledger's slot capacities in place.
        for name in list(self.ledger._capacity):
            base = self.ledger._capacity[name]
            self.ledger._capacity[name] = np.floor(
                base * self.factor
            ).astype(np.int64)

    def deterministic_slots(self, class_name: str) -> np.ndarray:
        """Per-server slot counts the worst-case analysis certifies."""
        alpha = self.alphas[class_name]
        rate = self.registry.get(class_name).rate
        return np.floor(alpha * self.graph.capacities / rate).astype(
            np.int64
        )


@dataclass
class CalibrationResult:
    """Outcome of an overbooking calibration.

    Attributes
    ----------
    factor:
        Largest factor whose simulated miss-probability upper bound met
        the target (1.0 when even mild overbooking misses too much).
    target_miss:
        The requested per-packet deadline-miss budget.
    evaluations:
        ``[(factor, measured miss, upper confidence bound)]`` trace.
    distribution:
        The pooled delay distribution at the accepted factor.
    """

    factor: float
    target_miss: float
    evaluations: List[Tuple[float, float, float]]
    distribution: Optional[DelayDistribution]

    @property
    def extra_capacity(self) -> float:
        """Fractional capacity gained over the deterministic controller."""
        return self.factor - 1.0


def calibrate_overbooking(
    graph: LinkServerGraph,
    registry: ClassRegistry,
    *,
    class_name: str,
    deadline: float,
    reference_flows: Callable[[float], Sequence[Tuple[FlowSpec, Sequence[Hashable]]]],
    target_miss: float,
    packet_size: float,
    factors: Sequence[float] = (1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0),
    horizon: float = 1.0,
    replications: int = 3,
    confidence: float = 0.95,
    seed: int = 0,
) -> CalibrationResult:
    """Find the largest safe overbooking factor on a reference scenario.

    Parameters
    ----------
    reference_flows:
        Callable mapping a factor to the flow population (with routes)
        that the overbooked controller would admit at that factor —
        typically ``factor * deterministic_slots`` flows on the hottest
        paths.  The calibration simulates exactly that population.
    target_miss:
        Acceptable per-packet deadline-miss probability (e.g. ``1e-3``).
    factors:
        Increasing candidate factors; the scan stops at the first factor
        whose upper confidence bound exceeds the target (miss rate is
        monotone in load, so later factors cannot pass).
    """
    if target_miss <= 0 or target_miss >= 1:
        raise ConfigurationError("target_miss must be in (0, 1)")
    if list(factors) != sorted(factors) or factors[0] < 1.0:
        raise ConfigurationError(
            "factors must be increasing and start at >= 1.0"
        )
    best = 1.0
    best_dist: Optional[DelayDistribution] = None
    evaluations: List[Tuple[float, float, float]] = []
    for factor in factors:
        flows = list(reference_flows(factor))
        dist = estimate_delay_distribution(
            graph,
            registry,
            flows,
            class_name=class_name,
            packet_size=packet_size,
            horizon=horizon,
            replications=replications,
            seed=seed,
        )
        measured = dist.miss_probability(deadline)
        upper = dist.miss_probability_upper(deadline, confidence)
        evaluations.append((factor, measured, upper))
        if upper <= target_miss:
            best = factor
            best_dist = dist
        else:
            break
    return CalibrationResult(
        factor=best,
        target_miss=target_miss,
        evaluations=evaluations,
        distribution=best_dist,
    )
