#!/usr/bin/env python3
"""Packet-level validation of the analytic delay bounds.

Drives the discrete-event simulator with adversarial (envelope-
saturating, simultaneous-burst) voice sources converging on shared MCI
links, and compares the worst packet delay ever observed against the
configuration-time bound of Theorems 1-3.

The bound must dominate — and the measured gap shows how conservative
the worst-case analysis is for this traffic mix.

Run:  python examples/simulation_validation.py
"""

from repro import (
    PacketPattern,
    Simulator,
    mci_backbone,
    single_class_delays,
    voice_class,
)
from repro.experiments import format_table
from repro.topology import LinkServerGraph
from repro.traffic import ClassRegistry, FlowSpec

# Four traffic trunks funneling into the Chicago -> NewYork -> Boston
# corridor: a deliberately unfriendly convergence pattern.
ROUTES = [
    ["Seattle", "Chicago", "NewYork", "Boston"],
    ["Denver", "Chicago", "NewYork", "Boston"],
    ["KansasCity", "Chicago", "NewYork", "Boston"],
    ["Atlanta", "Chicago", "NewYork", "Boston"],
]
ALPHA = 0.02           # 2 Mbps of every 100 Mbps link reserved for voice
FLOWS_PER_TRUNK = 15   # 60 flows * 32 kbps = 1.92 Mbps (admissible)
HORIZON = 2.0


def main() -> None:
    network = mci_backbone()
    graph = LinkServerGraph(network)
    voice = voice_class()
    registry = ClassRegistry.two_class(voice)

    bound = single_class_delays(graph, ROUTES, voice, ALPHA)
    assert bound.safe

    sim = Simulator(graph, registry)
    fid = 0
    for route in ROUTES:
        for _ in range(FLOWS_PER_TRUNK):
            sim.add_flow(
                FlowSpec(f"v{fid}", "voice", route[0], route[-1]),
                route,
                PacketPattern("greedy", packet_size=640, seed=fid),
            )
            fid += 1
    report = sim.run(horizon=HORIZON)
    assert report.conserved

    measured = report.max_e2e("voice")
    sf_constant = 4 * 640 / 100e6  # store-and-forward + ingress quantum
    print(
        format_table(
            ["quantity", "value"],
            [
                ["flows", fid],
                ["packets simulated", report.packets_delivered],
                ["events processed", f"{report.events_processed:,}"],
                ["analytic worst-case bound",
                 f"{bound.worst_route_delay * 1e3:.3f} ms"],
                ["measured worst delay", f"{measured * 1e3:.3f} ms"],
                ["measured mean delay",
                 f"{report.mean_e2e('voice') * 1e3:.3f} ms"],
                ["measured p99.9",
                 f"{report.percentile_e2e('voice', 99.9) * 1e3:.3f} ms"],
                ["bound headroom",
                 f"{bound.worst_route_delay / measured:.1f}x"],
            ],
            title="Adversarial simulation vs Theorem 1-3 bound",
        )
    )
    assert measured <= bound.worst_route_delay + sf_constant
    print()
    print("The configuration-time bound dominated every one of "
          f"{report.packets_delivered} packets, as Theorems 1-3 promise.")
    print("The headroom is the price of a *hard* guarantee: the bound "
          "must cover the worst admissible flow placement, not just "
          "this one.")


if __name__ == "__main__":
    main()
