#!/usr/bin/env python3
"""Dynamic admission control: UBAC vs the IntServ-style baseline.

Replays the same Poisson call-arrival schedule through both run-time
architectures the paper contrasts:

* **utilization-based** (this paper): O(path) slot test per decision;
* **flow-aware** (IntServ-style): network-wide worst-case recomputation
  over all established flows per decision.

Reports acceptance, decision latency, and how latency scales with the
standing population.

Run:  python examples/dynamic_admission.py
"""

from repro import (
    FlowAwareAdmissionController,
    LinkServerGraph,
    UtilizationAdmissionController,
    mci_backbone,
    replay_schedule,
    shortest_path_routes,
    voice_class,
)
from repro.experiments import format_table
from repro.traffic import ClassRegistry, all_ordered_pairs, poisson_flow_schedule


def main() -> None:
    network = mci_backbone()
    graph = LinkServerGraph(network)
    voice = voice_class()
    registry = ClassRegistry.two_class(voice)
    pairs = all_ordered_pairs(network)
    routes = shortest_path_routes(network, pairs)
    alpha = 0.35  # verified safe for SP routes (see quickstart.py)

    # A shared workload: ~40 calls/s for 20 s, 10 s mean holding time.
    schedule = poisson_flow_schedule(
        network, "voice", arrival_rate=40.0, mean_holding=10.0,
        horizon=20.0, seed=7,
    )
    arrivals = sum(1 for e in schedule if e.kind == "arrival")
    print(f"workload: {arrivals} call arrivals over 20 s "
          f"(Poisson, exp holding)")

    ubac = UtilizationAdmissionController(
        graph, registry, {"voice": alpha}, routes
    )
    ubac_stats = replay_schedule(ubac, schedule)

    # The flow-aware baseline recomputes the whole analysis per decision;
    # replay a shorter prefix to keep the demo brisk.
    flow_aware = FlowAwareAdmissionController(graph, registry, routes)
    fa_events = [e for e in schedule if e.time < 4.0]
    fa_stats = replay_schedule(flow_aware, fa_events)

    print()
    print(
        format_table(
            ["metric", "utilization-based", "flow-aware (IntServ-like)"],
            [
                ["admission attempts", ubac_stats.attempts,
                 fa_stats.attempts],
                ["blocking probability",
                 f"{ubac_stats.blocking_probability:.3f}",
                 f"{fa_stats.blocking_probability:.3f}"],
                ["peak concurrent calls", ubac_stats.peak_population,
                 fa_stats.peak_population],
                ["mean decision time",
                 f"{ubac_stats.mean_decision_seconds * 1e6:.1f} us",
                 f"{fa_stats.mean_decision_seconds * 1e3:.1f} ms"],
                ["p99 decision time",
                 f"{ubac_stats.p99_decision_seconds * 1e6:.1f} us",
                 f"{fa_stats.p99_decision_seconds * 1e3:.1f} ms"],
            ],
            title="Run-time admission control comparison",
        )
    )
    print()
    ratio = fa_stats.mean_decision_seconds / max(
        ubac_stats.mean_decision_seconds, 1e-12
    )
    print(f"flow-aware decisions cost ~{ratio:,.0f}x more per call here, "
          "and the gap widens with the population —")
    print("that cost gap is the paper's case for pushing all hard work "
          "to configuration time.")


if __name__ == "__main__":
    main()
