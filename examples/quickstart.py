#!/usr/bin/env python3
"""Quickstart: configure a network, verify it, and admit flows.

Walks the paper's whole pipeline in one minute:

1. build the MCI backbone evaluation topology (Figure 4);
2. compute the Theorem 4 utilization bounds for the VoIP class;
3. verify a utilization assignment over shortest-path routes (Figure 2);
4. run O(path)-cost utilization-based admission control at "run time".

Run:  python examples/quickstart.py
"""

from repro import (
    FlowSpec,
    LinkServerGraph,
    UtilizationAdmissionController,
    mci_backbone,
    shortest_path_routes,
    utilization_bounds,
    verify_safe_assignment,
    voice_class,
)
from repro.traffic import ClassRegistry, all_ordered_pairs


def main() -> None:
    # 1. Topology: the paper's evaluation network.
    network = mci_backbone()
    graph = LinkServerGraph(network)
    print(f"topology: {network.num_routers} routers, "
          f"{network.num_physical_links} links, "
          f"L = {network.diameter()}, N = {network.max_degree()}")

    # 2. Traffic class and its analytic utilization bounds (Theorem 4).
    voice = voice_class()  # T = 640 b, rho = 32 kbps, D = 100 ms
    registry = ClassRegistry.two_class(voice)
    bounds = utilization_bounds(
        network.max_degree(), network.diameter(),
        voice.burst, voice.rate, voice.deadline,
    )
    print(f"Theorem 4: any safe assignment lies in "
          f"[{bounds.lower:.2f}, {bounds.upper:.2f}]")

    # 3. Configuration time: verify alpha = 0.35 on shortest-path routes.
    pairs = all_ordered_pairs(network)
    routes = shortest_path_routes(network, pairs)
    alpha = 0.35
    result = verify_safe_assignment(
        network, list(routes.values()), registry, {"voice": alpha}
    )
    print(f"verification at alpha = {alpha}: "
          f"{'SUCCESS' if result.success else 'FAILURE'} "
          f"(worst route bound "
          f"{result.worst_route_delay['voice'] * 1e3:.1f} ms, "
          f"deadline {voice.deadline * 1e3:.0f} ms)")
    assert result.success

    # 4. Run time: admission control is now a per-link utilization test.
    controller = UtilizationAdmissionController(
        graph, registry, {"voice": alpha}, routes
    )
    admitted = 0
    for i in range(1000):
        pair = pairs[i % len(pairs)]
        decision = controller.admit(
            FlowSpec(f"call{i}", "voice", pair[0], pair[1])
        )
        admitted += decision.admitted
    print(f"admitted {admitted}/1000 voice calls "
          f"(mean decision time "
          f"{controller.mean_decision_seconds() * 1e6:.1f} us)")
    print("every admitted call is guaranteed its 100 ms deadline — "
          "that is what the configuration-time verification bought us.")


if __name__ == "__main__":
    main()
