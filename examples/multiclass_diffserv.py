#!/usr/bin/env python3
"""Multi-class DiffServ configuration (Section 5.4).

Three classes — voice (highest priority), video, and best-effort — share
the MCI backbone under class-based static priority.  The script:

1. verifies a hand-picked per-class utilization assignment (Theorem 5);
2. finds the largest proportional scaling of a desired utilization mix;
3. shows how the priority ladder shapes the per-class delay bounds.

Run:  python examples/multiclass_diffserv.py
"""

from repro import (
    maximize_multiclass_scale,
    mci_backbone,
    multi_class_delays,
    shortest_path_routes,
)
from repro.experiments import format_table
from repro.topology import LinkServerGraph
from repro.traffic import (
    ClassRegistry,
    TrafficClass,
    all_ordered_pairs,
    video_class,
    voice_class,
)


def main() -> None:
    network = mci_backbone()
    graph = LinkServerGraph(network)
    registry = ClassRegistry(
        [voice_class(), video_class(), TrafficClass.best_effort()]
    )
    pairs = all_ordered_pairs(network)
    shared = list(shortest_path_routes(network, pairs).values())
    routes = {"voice": shared, "video": shared}

    # --- 1. verify a concrete assignment ------------------------------
    alphas = {"voice": 0.10, "video": 0.20}
    result = multi_class_delays(graph, routes, registry, alphas)
    rows = [
        [
            name,
            f"{alphas[name] * 100:.0f}%",
            f"{c.deadline * 1e3:.0f} ms",
            f"{c.worst_route_delay * 1e3:.2f} ms",
            "yes" if c.meets_deadline else "NO",
        ]
        for name, c in result.per_class.items()
    ]
    print(
        format_table(
            ["class", "alpha", "deadline", "worst-case bound", "safe"],
            rows,
            title="Theorem 5 verification: voice 10% + video 20%",
        )
    )
    assert result.safe

    # --- 2. maximize a desired mix proportionally ---------------------
    # Operator intent: twice as much video bandwidth as voice.
    scaled = maximize_multiclass_scale(
        network, routes, registry, {"voice": 1.0, "video": 2.0},
        resolution=0.005,
    )
    print()
    print(f"largest safe scaling of the 1:2 voice:video mix: "
          f"t = {scaled.scale:.3f}")
    for name, alpha in sorted(scaled.alphas.items()):
        print(f"  {name:6s} -> {alpha * 100:5.1f}% of every link")
    print(f"  total real-time share: "
          f"{sum(scaled.alphas.values()) * 100:.1f}% "
          "(the rest serves best-effort)")

    # --- 3. the priority ladder ----------------------------------------
    print()
    print("priority ladder at the scaled assignment "
          "(higher priority => smaller bound):")
    final = multi_class_delays(graph, routes, registry, scaled.alphas)
    for name, c in final.per_class.items():
        print(f"  {name:6s} worst-case end-to-end bound "
              f"{c.worst_route_delay * 1e3:7.2f} ms "
              f"(deadline {c.deadline * 1e3:.0f} ms, "
              f"slack {c.slack * 1e3:.2f} ms)")


if __name__ == "__main__":
    main()
