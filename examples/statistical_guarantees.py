#!/usr/bin/env python3
"""Statistical guarantees: the paper's Section 7 outlook, implemented.

"For many applications, deterministic guarantees are not necessary [...]
The quality of IP telephony would not suffer from the underlying system
providing high-quality statistical guarantees instead."  — Section 7.

This example quantifies the trade on a contention hub:

1. the deterministic certificate admits ``alpha * C / rho`` calls per
   link — priced for the worst admissible burst alignment;
2. Poisson call traffic almost never aligns, so the measured delay
   distribution sits far below the worst-case bound;
3. calibrated **overbooking** converts that gap into capacity: the
   largest factor whose simulated deadline-miss upper confidence bound
   stays within a target miss budget.

Run:  python examples/statistical_guarantees.py
"""

from repro import (
    LinkServerGraph,
    calibrate_overbooking,
    estimate_delay_distribution,
    single_class_delays,
    voice_class,
)
from repro.experiments import format_table
from repro.statistical import OverbookedAdmissionController
from repro.topology import star_network
from repro.traffic import ClassRegistry, FlowSpec

ALPHA = 0.01          # 1% of each 100 Mbps link reserved for voice
TARGET_MISS = 1e-2    # tolerate 1 packet in 100 past the deadline


def converging_flows(per_branch):
    flows = []
    for branch in range(3):
        for i in range(per_branch):
            flows.append(
                (
                    FlowSpec(f"v{branch}_{i}", "voice",
                             f"leaf{branch}", "leaf3"),
                    [f"leaf{branch}", "hub", "leaf3"],
                )
            )
    return flows


def main() -> None:
    net = star_network(4)
    graph = LinkServerGraph(net)
    voice = voice_class()
    registry = ClassRegistry.two_class(voice)
    deterministic = int(ALPHA * 100e6 / voice.rate)
    print(f"deterministic certificate at alpha = {ALPHA:.0%}: "
          f"{deterministic} concurrent calls per link")

    # --- the gap: measured distribution vs worst-case bound ------------
    flows = converging_flows(deterministic // 3)
    dist = estimate_delay_distribution(
        graph, registry, flows, class_name="voice", packet_size=640,
        horizon=0.5, replications=3, seed=11,
    )
    routes = [[f"leaf{b}", "hub", "leaf3"] for b in range(3)]
    bound = single_class_delays(graph, routes, voice, ALPHA,
                                n_mode="per_server")
    print()
    print(
        format_table(
            ["quantity", "value"],
            [
                ["packets sampled", dist.count],
                ["worst-case analytic bound",
                 f"{bound.worst_route_delay * 1e3:.3f} ms"],
                ["measured p50", f"{dist.quantile(0.5) * 1e3:.3f} ms"],
                ["measured p99.9", f"{dist.quantile(0.999) * 1e3:.3f} ms"],
                ["measured max", f"{dist.max * 1e3:.3f} ms"],
                ["misses of 100 ms deadline",
                 dist.miss_probability(voice.deadline)],
            ],
            title="Poisson traffic vs the deterministic worst case",
        )
    )

    # --- convert the gap into capacity ---------------------------------
    def reference(factor):
        return converging_flows(max(1, int(deterministic * factor / 3)))

    result = calibrate_overbooking(
        graph, registry,
        class_name="voice",
        deadline=voice.deadline,
        reference_flows=reference,
        target_miss=TARGET_MISS,
        packet_size=640,
        factors=(1.0, 2.0, 4.0, 8.0),
        horizon=0.5,
        replications=2,
        seed=23,
    )
    print()
    rows = [
        [f"{f:.0f}x", f"{int(deterministic * f)} calls",
         f"{miss:.2e}", f"{upper:.2e}"]
        for f, miss, upper in result.evaluations
    ]
    print(
        format_table(
            ["factor", "calls/link", "measured miss", "95% upper bound"],
            rows,
            title=f"Overbooking calibration (miss budget {TARGET_MISS:g})",
        )
    )
    print()
    print(f"accepted factor: {result.factor:.0f}x -> "
          f"{int(deterministic * result.factor)} calls per link at the "
          f"{TARGET_MISS:g} miss budget")

    # --- the run-time side ----------------------------------------------
    ctrl = OverbookedAdmissionController(
        graph, registry, {"voice": ALPHA},
        {("leaf0", "leaf3"): ["leaf0", "hub", "leaf3"]},
        factor=result.factor,
    )
    admitted = 0
    for i in range(int(deterministic * result.factor) + 50):
        if ctrl.admit(FlowSpec(i, "voice", "leaf0", "leaf3")).admitted:
            admitted += 1
    print(f"the overbooked controller now admits {admitted} calls on the "
          "path (still O(path) per decision);")
    print("the guarantee is statistical — calibrated on the reference "
          "traffic — not the paper's hard bound.")


if __name__ == "__main__":
    main()
