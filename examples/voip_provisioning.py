#!/usr/bin/env python3
"""VoIP provisioning: regenerate the paper's Table 1.

The Section 6 experiment: on the MCI backbone with voice traffic
(640-bit bursts at 32 kbps, 100 ms end-to-end deadline) between every
router pair, how much link bandwidth can be committed to voice?

Four answers, exactly as in the paper:

* the topology-independent **lower bound** (always safe),
* the maximum found with **shortest-path** routes,
* the maximum found with the **Section 5.2 heuristic**,
* the topology-independent **upper bound** (never exceedable).

Run:  python examples/voip_provisioning.py            (~15 s)
      python examples/voip_provisioning.py --fast     (coarser search)
"""

import argparse
import time

from repro import run_table1
from repro.routing import HeuristicOptions


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="coarser binary search (resolution 0.02 instead of 0.005)",
    )
    args = parser.parse_args()

    resolution = 0.02 if args.fast else 0.005
    start = time.perf_counter()
    result = run_table1(resolution=resolution)
    elapsed = time.perf_counter() - start

    print(result.render())
    print()
    v = result.values
    print(f"heuristic improvement over SP : {result.improvement:.2f}x "
          f"(paper: 1.36x)")
    print(f"ordering LB <= SP < heur <= UB: "
          f"{'holds' if result.ordering_holds else 'VIOLATED'}")
    print(f"binary-search probes          : "
          f"SP {result.shortest_path.num_probes}, "
          f"heuristic {result.heuristic.num_probes}")
    print(f"wall clock                    : {elapsed:.1f} s")
    print()
    print("Interpretation: at the heuristic's utilization level, every")
    print(f"100 Mbps link can carry "
          f"{int(v['heuristic'] * 100e6 / 32_000)} concurrent 32 kbps calls")
    print(f"with hard 100 ms guarantees, vs "
          f"{int(v['shortest_path'] * 100e6 / 32_000)} under shortest-path "
          "routing.")


if __name__ == "__main__":
    main()
