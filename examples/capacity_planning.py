#!/usr/bin/env python3
"""Capacity planning with the high-level configuration API.

An operator's workflow beyond the paper's experiment:

1. configure the network in one call (route selection + verification);
2. ask *what-if* questions: which routes are critical, which links are
   hot, how far can utilization grow on these routes
   (:func:`critical_alpha`);
3. ship the configuration as JSON (the artifact routers would consume)
   and reload it bit-for-bit;
4. compare two real backbones (MCI vs NSFNET): the route-selection win
   is a property of the topology, not of the algorithm alone.

Run:  python examples/capacity_planning.py
"""

import os
import tempfile

from repro import (
    ConfiguredNetwork,
    LinkServerGraph,
    configure,
    critical_alpha,
    mci_backbone,
    nsfnet_backbone,
    sensitivity_report,
    shortest_path_routes,
    theorem4_lower_bound,
    voice_class,
)
from repro.experiments import format_table
from repro.topology import analyze
from repro.traffic import ClassRegistry, all_ordered_pairs


def main() -> None:
    voice = voice_class()
    registry = ClassRegistry.two_class(voice)

    # --- 1. one-call configuration ------------------------------------
    network = mci_backbone()
    cfg = configure(network, registry, {"voice": 0.40}, routing="heuristic")
    print(f"configured {len(cfg.routes)} routes at alpha = 40% "
          f"({cfg.slots_per_link('voice')} calls per link); "
          f"verification: {'OK' if cfg.verification.success else 'FAIL'}")

    # --- 2. what-if analysis -------------------------------------------
    paths = list(cfg.routes.values())
    report = sensitivity_report(cfg.graph, paths, voice, 0.40, top=3)
    print()
    print(report.render())

    a_star = critical_alpha(cfg.graph, paths, voice, resolution=1e-3)
    print()
    print(f"these routes stay certifiable up to alpha = {a_star:.3f} "
          f"({int((a_star - 0.40) * 100e6 / voice.rate)} more calls per "
          "link of headroom)")

    # --- 3. ship the configuration -------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "voice-config.json")
        cfg.save(path)
        size_kb = os.path.getsize(path) / 1024
        reloaded = ConfiguredNetwork.load(path)
        assert reloaded.routes == cfg.routes
        print()
        print(f"configuration serialized to JSON ({size_kb:.0f} KiB), "
              "reloaded and re-verified on load")

    # --- 4. cross-topology comparison ----------------------------------
    rows = []
    for net in (mci_backbone(), nsfnet_backbone()):
        rep = analyze(net)
        lb = theorem4_lower_bound(
            rep.max_degree, rep.diameter, voice.burst, voice.rate,
            voice.deadline,
        )
        sp_paths = list(
            shortest_path_routes(net, all_ordered_pairs(net)).values()
        )
        ca = critical_alpha(
            LinkServerGraph(net), sp_paths, voice, resolution=1e-3
        )
        rows.append(
            [net.name, rep.diameter, rep.max_degree, f"{lb:.3f}",
             f"{ca:.3f}", f"{(ca - lb) * 100:.1f} pts"]
        )
    print()
    print(
        format_table(
            ["topology", "L", "N", "Theorem 4 LB", "SP critical alpha",
             "SP headroom over LB"],
            rows,
            title="Cross-topology: how much the bound leaves on the table",
        )
    )
    print()
    print("MCI's shortest paths sit well above the worst-case bound; "
          "NSFNET's realize it almost exactly —")
    print("route selection pays where the topology leaves feedback slack.")


if __name__ == "__main__":
    main()
