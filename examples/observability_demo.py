"""Observability walkthrough: metrics, traces, and logs from one run.

Enables ``repro.obs``, exercises the three layers the paper's cost
argument spans (configuration-time route selection, run-time admission,
packet simulation), then prints the metrics snapshot and writes the
Prometheus / Chrome-trace artifacts.

Run from the repository root::

    PYTHONPATH=src python examples/observability_demo.py

Then inspect ``obs-metrics.prom`` (any Prometheus scraper parses it) and
load ``obs-trace.json`` in chrome://tracing or https://ui.perfetto.dev.
"""

import logging

from repro import (
    FlowSpec,
    PacketPattern,
    SafeRouteSelector,
    Simulator,
    UtilizationAdmissionController,
    obs,
    paper_scenario,
)
from repro.experiments.reporting import format_metrics_snapshot

logging.basicConfig(level=logging.INFO)   # surface repro.* diagnostics

obs.enable()

sc = paper_scenario()

# 1. Configuration time: safe route selection (fixed-point solves nest
#    under the routing.select span in the trace).
selector = SafeRouteSelector(sc.network, sc.voice)
outcome = selector.select(sc.pairs[:40], alpha=0.3)
print(
    f"route selection: success={outcome.success}, "
    f"{outcome.candidates_evaluated} candidates evaluated"
)

# 2. Run time: O(path) admission decisions against the selected routes.
controller = UtilizationAdmissionController(
    sc.graph, sc.registry, {sc.voice.name: 0.3}, outcome.routes
)
pairs = list(outcome.routes)
for i in range(120):
    src, dst = pairs[i % len(pairs)]
    controller.admit(FlowSpec(f"demo-{i}", sc.voice.name, src, dst))
print(
    f"admission: {controller.num_admitted} admitted, "
    f"{controller.num_rejected} rejected, "
    f"mean decision {controller.mean_decision_seconds() * 1e6:.1f} us"
)

# 3. Packet level: a short greedy-source simulation on one route.
sim = Simulator(sc.graph, sc.registry)
first_pair = pairs[0]
sim.add_flow(
    FlowSpec("sim-0", sc.voice.name, *first_pair),
    outcome.routes[first_pair],
    PacketPattern("greedy", packet_size=640),
)
report = sim.run(horizon=0.05)
print(
    f"simulation: {report.events_processed} events, "
    f"worst voice delay {report.max_e2e(sc.voice.name) * 1e3:.2f} ms"
)

print()
print(format_metrics_snapshot())

obs.write_metrics("obs-metrics.prom")
obs.write_trace("obs-trace.json")
print("\nwrote obs-metrics.prom and obs-trace.json")

obs.disable()
