"""Paper scenario bundle and reporting helpers."""

import pytest

from repro.experiments import (
    PAPER_TABLE1,
    format_percent,
    format_table,
    paper_scenario,
)


class TestPaperScenario:
    @pytest.fixture(scope="class")
    def sc(self):
        return paper_scenario()

    def test_parameters_match_section6(self, sc):
        assert sc.fan_in == 6          # N
        assert sc.diameter == 4        # L
        assert sc.capacity == 100e6    # C
        assert sc.voice.burst == 640
        assert sc.voice.rate == 32_000
        assert sc.voice.deadline == pytest.approx(0.1)

    def test_demand_covers_all_router_pairs(self, sc):
        assert len(sc.pairs) == 18 * 17

    def test_registry_is_two_class(self, sc):
        assert len(sc.registry.realtime_classes()) == 1
        assert len(sc.registry.best_effort_classes()) == 1

    def test_graph_matches_network(self, sc):
        assert sc.graph.num_servers == sc.network.num_link_servers

    def test_custom_capacity(self):
        sc = paper_scenario(capacity=1e9)
        assert sc.capacity == 1e9


class TestPaperConstants:
    def test_table1_reference_values(self):
        assert PAPER_TABLE1 == {
            "lower_bound": 0.30,
            "shortest_path": 0.33,
            "heuristic": 0.45,
            "upper_bound": 0.61,
        }


class TestReporting:
    def test_format_percent(self):
        assert format_percent(0.45) == "45%"
        assert format_percent(0.3051, 1) == "30.5%"

    def test_format_table_alignment(self):
        out = format_table(
            ["name", "value"],
            [["alpha", 1], ["beta-long", 22]],
            title="T",
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        # all rows equal width
        assert len({len(l) for l in lines[1:]} ) == 1

    def test_format_table_ragged_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_format_table_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out
