"""Exporter round-trips: Prometheus text, JSON lines, Chrome trace."""

import json
import math

import pytest

from repro.obs.export import (
    parse_prometheus_text,
    to_chrome_trace,
    to_json_lines,
    to_prometheus_text,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("repro_decisions_total", controller="UBAC",
                result="admitted").inc(5)
    reg.counter("repro_decisions_total", controller="UBAC",
                result="rejected").inc(2)
    reg.gauge("repro_established_flows", controller="UBAC").set(3)
    h = reg.histogram("repro_decision_seconds", buckets=(0.001, 0.01, 0.1))
    for v in (0.0005, 0.002, 0.5):
        h.observe(v)
    return reg


class TestPrometheusText:
    def test_round_trip_values(self):
        text = to_prometheus_text(_populated_registry())
        samples = parse_prometheus_text(text)
        assert samples[
            ("repro_decisions_total",
             (("controller", "UBAC"), ("result", "admitted")))
        ] == 5
        assert samples[
            ("repro_decisions_total",
             (("controller", "UBAC"), ("result", "rejected")))
        ] == 2
        assert samples[
            ("repro_established_flows", (("controller", "UBAC"),))
        ] == 3

    def test_histogram_expansion_is_cumulative(self):
        text = to_prometheus_text(_populated_registry())
        samples = parse_prometheus_text(text)
        assert samples[("repro_decision_seconds_bucket",
                        (("le", "0.001"),))] == 1
        assert samples[("repro_decision_seconds_bucket",
                        (("le", "0.01"),))] == 2
        assert samples[("repro_decision_seconds_bucket",
                        (("le", "0.1"),))] == 2
        assert samples[("repro_decision_seconds_bucket",
                        (("le", "+Inf"),))] == 3
        assert samples[("repro_decision_seconds_count", ())] == 3
        assert samples[("repro_decision_seconds_sum", ())] == (
            0.0005 + 0.002 + 0.5
        )

    def test_type_headers_present_once_per_family(self):
        text = to_prometheus_text(_populated_registry())
        assert text.count("# TYPE repro_decisions_total counter") == 1
        assert text.count("# TYPE repro_established_flows gauge") == 1
        assert text.count("# TYPE repro_decision_seconds histogram") == 1

    def test_empty_registry_renders_empty(self):
        assert to_prometheus_text(MetricsRegistry()) == ""

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c_total", reason='say "no"\nplease').inc()
        text = to_prometheus_text(reg)
        assert r"say \"no\"\nplease" in text


class TestJsonLines:
    def test_one_valid_json_object_per_series(self):
        text = to_json_lines(_populated_registry())
        records = [json.loads(line) for line in text.splitlines()]
        assert len(records) == 4
        kinds = {r["kind"] for r in records}
        assert kinds == {"counter", "gauge", "histogram"}
        hist = next(r for r in records if r["kind"] == "histogram")
        assert hist["counts"] == [1, 1, 0]
        assert hist["overflow"] == 1
        assert hist["count"] == 3


class TestChromeTrace:
    def test_loads_as_json_with_nested_spans(self):
        tracer = Tracer()
        with tracer.span("outer", phase="search"):
            with tracer.span("inner"):
                pass
        payload = json.loads(json.dumps(to_chrome_trace(tracer)))
        events = payload["traceEvents"]
        assert len(events) == 2
        by_name = {e["name"]: e for e in events}
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer["ph"] == inner["ph"] == "X"
        assert inner["args"]["depth"] == 1
        assert inner["args"]["parent_id"] == outer["id"]
        assert outer["args"]["phase"] == "search"
        # inner nests inside outer on the microsecond timeline
        assert outer["ts"] <= inner["ts"]
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]

    def test_non_primitive_attrs_stringified(self):
        tracer = Tracer()
        with tracer.span("s", pair=("a", "b")):
            pass
        payload = to_chrome_trace(tracer)
        assert payload["traceEvents"][0]["args"]["pair"] == "('a', 'b')"

    def test_drop_count_reported(self):
        tracer = Tracer(capacity=1)
        for _ in range(3):
            with tracer.span("s"):
                pass
        payload = to_chrome_trace(tracer)
        assert payload["otherData"]["dropped_spans"] == 2


class TestPrometheusRoundTripProperty:
    """Property: parse(render(registry)) reproduces every series —
    whatever the label values, including the characters the exposition
    format must escape (backslash, double quote, newline)."""

    from hypothesis import given
    from hypothesis import strategies as st

    label_keys = st.sampled_from(
        ["op", "reason", "controller", "route"]
    )
    # Values stress the escaper: benign characters mixed with the
    # three the exposition format must escape (backslash, double
    # quote, newline) and the structural ones (braces, =, comma).
    label_values = st.text(
        alphabet='abc{}=," \\\n',
        min_size=0,
        max_size=12,
    )
    labels = st.dictionaries(label_keys, label_values, max_size=3)

    @given(
        counters=st.lists(
            st.tuples(labels, st.integers(0, 1_000_000)), max_size=4
        ),
        gauges=st.lists(
            st.tuples(
                labels,
                st.floats(
                    allow_nan=False,
                    allow_infinity=False,
                    width=32,
                ),
            ),
            max_size=4,
        ),
        hist_values=st.lists(
            st.floats(0.0, 10.0, allow_nan=False), max_size=8
        ),
    )
    def test_labeled_series_round_trip(
        self, counters, gauges, hist_values
    ):
        reg = MetricsRegistry()
        for labels, value in counters:
            reg.counter("rt_counter_total", **labels).inc(value)
        for labels, value in gauges:
            reg.gauge("rt_gauge", **labels).set(value)
        h = reg.histogram("rt_seconds", buckets=(0.5, 2.0))
        for v in hist_values:
            h.observe(v)

        samples = parse_prometheus_text(to_prometheus_text(reg))

        for labels, _value in counters:
            key = ("rt_counter_total", tuple(sorted(labels.items())))
            assert samples[key] == reg.counter(
                "rt_counter_total", **labels
            ).value
        for labels, _value in gauges:
            key = ("rt_gauge", tuple(sorted(labels.items())))
            assert samples[key] == pytest.approx(
                reg.gauge("rt_gauge", **labels).value
            )
        if hist_values:
            assert samples[("rt_seconds_count", ())] == len(hist_values)
            assert samples[("rt_seconds_sum", ())] == pytest.approx(
                sum(hist_values)
            )
            assert samples[
                ("rt_seconds_bucket", (("le", "+Inf"),))
            ] == len(hist_values)

    @given(value=label_values)
    def test_single_label_value_survives_escaping(self, value):
        reg = MetricsRegistry()
        reg.counter("esc_total", reason=value).inc(3)
        samples = parse_prometheus_text(to_prometheus_text(reg))
        assert samples[("esc_total", (("reason", value),))] == 3


class TestParser:
    def test_inf_and_nan(self):
        samples = parse_prometheus_text("a +Inf\nb NaN\nc -Inf\n")
        assert samples[("a", ())] == math.inf
        assert samples[("c", ())] == -math.inf
        assert math.isnan(samples[("b", ())])

    def test_rejects_garbage(self):
        import pytest

        with pytest.raises(ValueError):
            parse_prometheus_text("!!! not a sample")
