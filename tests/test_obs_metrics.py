"""Metrics registry semantics: counters, gauges, histograms, no-op twins."""

import math

import pytest

from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullCounter,
    NullGauge,
    NullHistogram,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("c_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        c = Counter("c_total")
        with pytest.raises(ValueError):
            c.inc(-1.0)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12.0

    def test_max_keeps_high_water_mark(self):
        g = Gauge("g")
        g.max(4)
        g.max(2)
        g.max(7)
        assert g.value == 7.0


class TestHistogram:
    def test_bucket_assignment_upper_bound_inclusive(self):
        h = Histogram("h", bounds=(1.0, 5.0, 10.0))
        for v in (0.5, 1.0, 3.0, 10.0, 11.0):
            h.observe(v)
        # (., 1]: 0.5, 1.0 -- (1, 5]: 3.0 -- (5, 10]: 10.0 -- +Inf: 11.0
        assert h.bucket_counts == [2, 1, 1]
        assert h.overflow == 1
        assert h.count == 5
        assert h.sum == pytest.approx(25.5)
        assert h.mean == pytest.approx(5.1)

    def test_cumulative_counts_end_with_total(self):
        h = Histogram("h", bounds=(1.0, 2.0))
        for v in (0.5, 1.5, 99.0):
            h.observe(v)
        assert h.cumulative_counts() == [1, 2, 3]

    def test_empty_mean_is_nan(self):
        h = Histogram("h", bounds=(1.0,))
        assert math.isnan(h.mean)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(5.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", bounds=())


class TestRegistry:
    def test_get_or_create_returns_same_series(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", cls="voice")
        b = reg.counter("x_total", cls="voice")
        assert a is b
        a.inc()
        assert b.value == 1.0

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", a="1", b="2")
        b = reg.counter("x_total", b="2", a="1")
        assert a is b

    def test_distinct_labels_are_distinct_series(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", cls="voice")
        b = reg.counter("x_total", cls="video")
        assert a is not b
        assert len(reg) == 2

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x", other="label")

    def test_series_sorted_and_reset(self):
        reg = MetricsRegistry()
        reg.counter("b_total")
        reg.gauge("a")
        names = [s.name for s in reg.series()]
        assert names == ["a", "b_total"]
        reg.reset()
        assert len(reg) == 0
        assert reg.series() == []

    def test_get_never_creates(self):
        reg = MetricsRegistry()
        assert reg.get("missing") is None
        assert len(reg) == 0

    def test_histogram_custom_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1, 2, 3))
        assert h.bounds == (1.0, 2.0, 3.0)


class TestNullRegistry:
    def test_returns_shared_noop_singletons(self):
        c = NULL_REGISTRY.counter("anything", label="x")
        g = NULL_REGISTRY.gauge("anything")
        h = NULL_REGISTRY.histogram("anything")
        assert isinstance(c, NullCounter)
        assert isinstance(g, NullGauge)
        assert isinstance(h, NullHistogram)
        assert c is NULL_REGISTRY.counter("other")
        # mutations are accepted and dropped
        c.inc()
        g.set(5)
        g.max(9)
        h.observe(1.0)
        assert len(NULL_REGISTRY) == 0
        assert NULL_REGISTRY.series() == []
        assert NULL_REGISTRY.get("anything") is None
