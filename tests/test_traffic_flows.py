"""Flow specifications and flow sets."""

import pytest

from repro.errors import TrafficError
from repro.traffic import FlowSet, FlowSpec, fresh_flow_id


def _flow(i=1, src="a", dst="b", cls="voice", route=None):
    return FlowSpec(
        flow_id=i, class_name=cls, source=src, destination=dst, route=route
    )


class TestFlowSpec:
    def test_pair(self):
        assert _flow().pair == ("a", "b")

    def test_source_equals_destination_rejected(self):
        with pytest.raises(TrafficError):
            _flow(src="a", dst="a")

    def test_route_endpoints_must_match(self):
        with pytest.raises(TrafficError):
            _flow(route=("a", "c"))  # ends at c, not b

    def test_route_too_short(self):
        with pytest.raises(TrafficError):
            FlowSpec(1, "voice", "a", "b", route=("a",))

    def test_route_with_loop_rejected(self):
        with pytest.raises(TrafficError):
            _flow(route=("a", "c", "a", "b"))

    def test_route_normalized_to_tuple(self):
        f = _flow(route=["a", "c", "b"])
        assert f.route == ("a", "c", "b")

    def test_fresh_ids_monotone(self):
        a, b = fresh_flow_id(), fresh_flow_id()
        assert b > a


class TestFlowSet:
    def test_add_len_iter(self):
        fs = FlowSet([_flow(1), _flow(2, src="b", dst="c")])
        assert len(fs) == 2
        assert {f.flow_id for f in fs} == {1, 2}

    def test_duplicate_id_rejected(self):
        fs = FlowSet([_flow(1)])
        with pytest.raises(TrafficError):
            fs.add(_flow(1, src="x", dst="y"))

    def test_remove_returns_flow(self):
        fs = FlowSet([_flow(1)])
        removed = fs.remove(1)
        assert removed.flow_id == 1
        assert len(fs) == 0

    def test_remove_unknown(self):
        with pytest.raises(TrafficError):
            FlowSet().remove(99)

    def test_get(self):
        fs = FlowSet([_flow(7)])
        assert fs.get(7).source == "a"
        with pytest.raises(TrafficError):
            fs.get(8)

    def test_contains(self):
        fs = FlowSet([_flow(1)])
        assert 1 in fs and 2 not in fs

    def test_by_class(self):
        fs = FlowSet(
            [_flow(1, cls="voice"), _flow(2, cls="video"), _flow(3, cls="voice")]
        )
        grouped = fs.by_class()
        assert len(grouped["voice"]) == 2
        assert len(grouped["video"]) == 1
        assert fs.count_class("voice") == 2

    def test_by_pair(self):
        fs = FlowSet([_flow(1), _flow(2), _flow(3, src="b", dst="c")])
        grouped = fs.by_pair()
        assert len(grouped[("a", "b")]) == 2
        assert len(grouped[("b", "c")]) == 1
