"""Property suite for the overload control plane.

Three machine-checked safety contracts:

* after *any* INC/HOLD/DEC sample sequence, the ledger's effective
  capacity never exceeds the certified slot count of the governor's
  current rung (and the applied alpha is always a ladder rung);
* preemption never evicts a ``hard_rt`` flow, and every controller
  invariant holds after every preemption step;
* a server with the governor and preemptor *configured but quiescent*
  is wire-identical — decisions, ledger, audit trail — to a server
  without them, across both protocol versions.
"""

import asyncio
import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.admission import UtilizationAdmissionController
from repro.config import configure
from repro.control import (
    AlphaGovernor,
    GovernorConfig,
    GovernorSample,
    Preemptor,
    certify_ladder,
)
from repro.errors import ReproError
from repro.routing.shortest import shortest_path_routes
from repro.service import AdmissionService, AsyncServiceClient, ServiceConfig
from repro.service.audit import iter_audit, verify_audit
from repro.topology import LinkServerGraph, line_network, ring_network
from repro.traffic import ClassRegistry, voice_class
from repro.traffic.flows import PRIORITIES, FlowSpec
from repro.traffic.generators import all_ordered_pairs

RING_PAIRS = [(f"r{i}", f"r{(i + 2) % 6}") for i in range(6)]


def ring_cfg(alpha=0.3):
    net = ring_network(6, capacity=1e6)
    reg = ClassRegistry([voice_class()])
    return configure(
        net, reg, {"voice": alpha}, pairs=RING_PAIRS,
        routing="shortest-path",
    )


def make_controller(cfg):
    return UtilizationAdmissionController(
        cfg.graph, cfg.registry, cfg.alphas, cfg.routes
    )


# --------------------------------------------------------------------- #
# governor: ledger never exceeds the rung's certified slots
# --------------------------------------------------------------------- #

_CFG = ring_cfg(alpha=0.3)
_LADDER = certify_ladder(
    _CFG.network,
    list(_CFG.routes.values()),
    _CFG.registry,
    _CFG.alphas,
    [0.05, 0.1, 0.2],
)
#: Verified slot vector a standalone deployment at each rung would get.
_RUNG_SLOTS = {
    rung: UtilizationAdmissionController(
        _CFG.graph, _CFG.registry, {"voice": rung}, _CFG.routes
    ).ledger.slots("voice")
    for rung in _LADDER.rungs
}

samples_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.02),
        st.floats(min_value=0.0, max_value=1.0),
    ),
    max_size=60,
)


@settings(deadline=None, max_examples=50)
@given(samples=samples_strategy)
def test_ledger_never_exceeds_rung_certificate(samples):
    assert len(_LADDER) == 4  # all sub-base candidates certified
    controller = make_controller(_CFG)
    governor = AlphaGovernor(_LADDER)
    for delay, headroom in samples:
        factor = governor.observe(
            GovernorSample(queue_delay=delay, headroom=headroom)
        )
        if factor is not None:
            if governor.at_top:
                controller.exit_degraded_mode()
            else:
                controller.enter_degraded_mode(factor)
        # The applied alpha is always a certified rung...
        assert governor.effective_alpha in _LADDER.rungs
        assert 0 <= governor.rung <= _LADDER.top
        # ...and the effective ledger stays inside that rung's own
        # verified slot vector, elementwise.
        effective = controller.ledger.slots("voice")
        certified = _RUNG_SLOTS[governor.effective_alpha]
        assert (effective <= certified).all(), (
            f"rung {governor.rung}: effective {effective} exceeds "
            f"certificate {certified}"
        )


# --------------------------------------------------------------------- #
# preemption: protected priorities survive any op sequence
# --------------------------------------------------------------------- #

_TIGHT_CFG = ring_cfg(alpha=0.1)  # 3 slots per server
FLOW_IDS = [f"f{i}" for i in range(12)]

ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("admit"),
            st.sampled_from(FLOW_IDS),
            st.sampled_from(range(len(RING_PAIRS))),
            st.sampled_from(PRIORITIES),
        ),
        st.tuples(st.just("release"), st.sampled_from(FLOW_IDS)),
    ),
    max_size=40,
)


@settings(deadline=None, max_examples=50)
@given(ops=ops_strategy)
def test_preemption_never_evicts_hard_rt(ops):
    controller = make_controller(_TIGHT_CFG)
    preemptor = Preemptor(controller)
    priorities = {}
    for op in ops:
        if op[0] == "admit":
            _kind, fid, pair_idx, priority = op
            if controller.is_established(fid):
                continue  # duplicate ids are a client error, skip
            src, dst = RING_PAIRS[pair_idx]
            flow = FlowSpec(fid, "voice", src, dst, priority=priority)
            priorities[fid] = priority
            if not controller.admit(flow).admitted:
                outcome = preemptor.try_admit(flow)
                for victim in outcome.evicted:
                    assert priorities[victim] != "hard_rt"
                assert controller.verify_invariants() == []
        else:
            _kind, fid = op
            if controller.is_established(fid):
                controller.release(fid)
        used = controller.ledger.used("voice")
        slots = controller.ledger.slots("voice")
        assert (used <= slots).all()
    assert controller.verify_invariants() == []


# --------------------------------------------------------------------- #
# quiescent control plane is wire-invisible
# --------------------------------------------------------------------- #

_NETWORK = line_network(4)
_PAIRS = all_ordered_pairs(_NETWORK)
_ROUTES = shortest_path_routes(_NETWORK, _PAIRS)
_VOICE = voice_class()
_ALPHA = 0.005  # tight: sequences hit both admits and rejections
_SERVICE_LADDER = certify_ladder(
    _NETWORK, list(_ROUTES.values()), ClassRegistry.two_class(_VOICE),
    {_VOICE.name: _ALPHA}, [_ALPHA / 2],
)
#: A detector that can never fire: infinite delay threshold, zero
#: low-water headroom.  The governor stays pinned at the top rung, so
#: an attached control plane must be bit-invisible on the wire.
_QUIET = GovernorConfig(delay_threshold=1e9, headroom_low=0.0)


def service_controller():
    return UtilizationAdmissionController(
        LinkServerGraph(_NETWORK),
        ClassRegistry.two_class(_VOICE),
        {_VOICE.name: _ALPHA},
        _ROUTES,
    )


def flow_of(op):
    _kind, fid, pair_idx = op
    src, dst = _PAIRS[pair_idx]
    return FlowSpec(fid, _VOICE.name, src, dst)


def ledger_state(controller):
    return {
        flow.flow_id: (
            flow.class_name,
            tuple(controller.committed_route(flow.flow_id)),
        )
        for flow in controller.established_flows
    }


async def run_ops(client, ops):
    async def one(op):
        try:
            if op[0] == "admit":
                decision = await client.admit(flow_of(op))
                return ("decision", decision.admitted, decision.reason)
            await client.release(op[1])
            return ("released",)
        except ReproError as exc:
            return ("error", str(exc))

    return list(await asyncio.gather(*(one(op) for op in ops)))


async def one_run(ops, protocol, audit_path, control_plane):
    controller = service_controller()
    config = ServiceConfig(max_delay=0.005, audit_path=audit_path)
    governor = preemptor = None
    if control_plane:
        governor = AlphaGovernor(_SERVICE_LADDER, _QUIET)
        preemptor = Preemptor(controller)
    service = AdmissionService(
        controller, config, governor=governor, preemptor=preemptor
    )
    await service.start_tcp("127.0.0.1", 0)
    client = await AsyncServiceClient.connect_tcp(
        "127.0.0.1", service.port, protocol=protocol
    )
    outcomes = await run_ops(client, ops)
    await client.close()
    await service.drain()
    if governor is not None:
        assert governor.at_top  # quiescent by construction
        assert governor.dec_count == 0
    return outcomes, ledger_state(controller)


def normalized_audit(path):
    records = []
    for obj in iter_audit(path):
        obj = dict(obj)
        obj.pop("ts", None)
        records.append(obj)
    return records


wire_ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("admit"),
            st.sampled_from(FLOW_IDS[:8]),
            st.sampled_from(range(len(_PAIRS))),
        ),
        st.tuples(st.just("release"), st.sampled_from(FLOW_IDS[:8])),
    ),
    max_size=25,
)

_case_counter = itertools.count()


@settings(deadline=None, max_examples=5)
@given(ops=wire_ops_strategy)
def test_quiescent_control_plane_is_wire_identical(
    ops, tmp_path_factory
):
    base = tmp_path_factory.mktemp("quiescent")
    case = next(_case_counter)
    runs = {}
    for protocol in ("v1", "v2"):
        for control_plane in (False, True):
            audit = str(
                base / f"audit-{case}-{protocol}-{control_plane}.jsonl"
            )
            out, ledger = asyncio.run(
                one_run(ops, protocol, audit, control_plane)
            )
            report = verify_audit(iter_audit(audit))
            assert report["ok"], report["problems"]
            runs[(protocol, control_plane)] = (
                out, ledger, normalized_audit(audit),
            )
    # Control plane attached-but-quiet == absent, per protocol...
    assert runs[("v1", True)] == runs[("v1", False)]
    assert runs[("v2", True)] == runs[("v2", False)]
    # ...and the two protocols agree with each other.
    assert runs[("v1", False)] == runs[("v2", False)]
