"""End-to-end observability: instrumented subsystems, default no-op path."""

import logging
import os
import subprocess
import sys

import pytest

from repro import obs
from repro.admission import UtilizationAdmissionController
from repro.analysis import single_class_delays
from repro.obs.metrics import NullRegistry
from repro.routing import SafeRouteSelector, shortest_path_routes
from repro.simulation import PacketPattern, Simulator
from repro.traffic import FlowSpec


@pytest.fixture()
def enabled_obs():
    """Fresh collection for one test; always switched off afterwards."""
    obs.enable(fresh=True)
    yield obs
    obs.disable()
    obs.reset()


def _sp_routes(line4):
    pairs = [("r0", "r3"), ("r3", "r0")]
    return shortest_path_routes(line4, pairs)


def _controller(line4_graph, voice_registry, routes, alpha=0.3):
    return UtilizationAdmissionController(
        line4_graph, voice_registry, {"voice": alpha}, routes
    )


class TestDisabledByDefault:
    def test_pristine_interpreter_has_null_state(self):
        """In a fresh process, observability is off and costs nothing."""
        code = (
            "import repro\n"
            "from repro import obs\n"
            "from repro.obs.metrics import NullRegistry\n"
            "assert not obs.is_enabled()\n"
            "assert isinstance(obs.get_registry(), NullRegistry)\n"
            "assert obs.get_tracer() is None\n"
            "assert obs.prometheus_text() == ''\n"
            "assert obs.chrome_trace()['traceEvents'] == []\n"
        )
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.abspath(
            __import__("repro").__file__
        )))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        subprocess.run(
            [sys.executable, "-c", code], check=True, env=env
        )

    def test_instrumented_paths_record_nothing_while_disabled(
        self, line4, line4_graph, voice_registry
    ):
        # Earlier tests (e.g. the CLI ones) may leave collected data
        # readable after disable(); assert no *growth*, not emptiness.
        obs.disable()
        registry = obs.get_registry()
        before = len(registry)
        tracer = obs.get_tracer()
        spans_before = 0 if tracer is None else len(tracer)
        routes = _sp_routes(line4)
        result = single_class_delays(
            line4_graph, list(routes.values()), voice_registry.get("voice"),
            0.2,
        )
        assert result.safe
        ctrl = _controller(line4_graph, voice_registry, routes)
        ctrl.admit(FlowSpec(1, "voice", "r0", "r3"))
        ctrl.release(1)
        assert len(registry) == before
        tracer = obs.get_tracer()
        assert tracer is None or len(tracer) == spans_before


class TestInstrumentedSubsystems:
    def test_fixedpoint_series(self, enabled_obs, line4, line4_graph,
                               voice_registry):
        routes = _sp_routes(line4)
        single_class_delays(
            line4_graph, list(routes.values()), voice_registry.get("voice"),
            0.2,
        )
        reg = obs.get_registry()
        solves = reg.get(
            "repro_fixedpoint_solves_total", outcome="converged"
        )
        assert solves is not None and solves.value >= 1
        hist = reg.get("repro_fixedpoint_iterations")
        assert hist is not None and hist.count >= 1
        assert obs.get_tracer().find("fixedpoint.solve")

    def test_admission_series(self, enabled_obs, line4, line4_graph,
                              voice_registry):
        routes = _sp_routes(line4)
        # alpha sized for exactly 3 slots per server
        ctrl = _controller(
            line4_graph, voice_registry, routes, alpha=0.001008
        )
        for i in range(3):
            assert ctrl.admit(FlowSpec(i, "voice", "r0", "r3")).admitted
        assert not ctrl.admit(FlowSpec(99, "voice", "r0", "r3")).admitted
        ctrl.release(0)
        reg = obs.get_registry()
        name = "UtilizationAdmissionController"
        admitted = reg.get(
            "repro_admission_decisions_total",
            controller=name, result="admitted",
        )
        rejected = reg.get(
            "repro_admission_rejections_total",
            controller=name, reason="utilization_limit",
        )
        latency = reg.get(
            "repro_admission_decision_seconds", controller=name
        )
        established = reg.get(
            "repro_admission_established_flows", controller=name
        )
        releases = reg.get(
            "repro_admission_releases_total", controller=name
        )
        assert admitted.value == 3
        assert rejected.value == 1
        assert latency.count == 4
        assert established.value == 2  # 3 admitted - 1 released
        assert releases.value == 1
        in_use = reg.get("repro_ledger_slots_in_use", cls="voice")
        assert in_use.value == 2 * 3  # 2 flows on a 3-server path
        assert obs.get_tracer().find("admission.admit")

    def test_routing_series_and_nested_spans(self, enabled_obs, line4,
                                             voice_registry):
        selector = SafeRouteSelector(line4, voice_registry.get("voice"))
        outcome = selector.select([("r0", "r3"), ("r1", "r3")], 0.2)
        assert outcome.success
        reg = obs.get_registry()
        assert reg.get(
            "repro_routing_selections_total", outcome="success"
        ).value == 1
        evaluated = reg.get("repro_routing_candidates_evaluated_total")
        assert evaluated.value == outcome.candidates_evaluated
        cache = reg.get(
            "repro_routing_candidate_cache_total", result="miss"
        )
        assert cache.value >= 1
        # fixed-point solves nest under the routing.select span
        tracer = obs.get_tracer()
        select_spans = tracer.find("routing.select")
        solve_spans = tracer.find("fixedpoint.solve")
        assert select_spans and solve_spans
        assert any(
            s.parent_id == select_spans[0].span_id for s in solve_spans
        )

    def test_simulation_series(self, enabled_obs, line4, line4_graph,
                               voice_registry):
        sim = Simulator(line4_graph, voice_registry)
        sim.add_flow(
            FlowSpec(1, "voice", "r0", "r3"),
            ["r0", "r1", "r2", "r3"],
            PacketPattern("greedy", packet_size=640),
        )
        report = sim.run(horizon=0.05)
        reg = obs.get_registry()
        assert reg.get("repro_simulation_runs_total").value == 1
        assert (
            reg.get("repro_simulation_events_total").value
            == report.events_processed
        )
        assert (
            reg.get("repro_simulation_packets_total", status="injected").value
            == report.packets_injected
        )
        depth = reg.get(
            "repro_simulation_max_queue_depth_packets", cls="voice"
        )
        assert depth is not None and depth.value >= 0
        assert obs.get_tracer().find("simulation.run")

    def test_reset_clears_collected_data(self, enabled_obs, line4,
                                         line4_graph, voice_registry):
        routes = _sp_routes(line4)
        ctrl = _controller(line4_graph, voice_registry, routes)
        ctrl.admit(FlowSpec(1, "voice", "r0", "r3"))
        assert len(obs.get_registry()) > 0
        obs.reset()
        assert len(obs.get_registry()) == 0
        assert len(obs.get_tracer()) == 0


class TestLogging:
    def test_package_logger_has_null_handler(self):
        handlers = logging.getLogger("repro").handlers
        assert any(
            isinstance(h, logging.NullHandler) for h in handlers
        )

    def test_rejections_logged_at_debug(self, line4, line4_graph,
                                        voice_registry, caplog):
        routes = _sp_routes(line4)
        ctrl = _controller(
            line4_graph, voice_registry, routes, alpha=0.001008
        )
        for i in range(3):
            ctrl.admit(FlowSpec(i, "voice", "r0", "r3"))
        with caplog.at_level(logging.DEBUG, logger="repro.admission"):
            ctrl.admit(FlowSpec(99, "voice", "r0", "r3"))
        assert any(
            "rejected" in rec.message for rec in caplog.records
        )


class TestCommittedRouteRelease:
    def test_release_uses_route_committed_at_admit(
        self, line4, line4_graph, voice_registry
    ):
        """A route_map edit between admit and release must not leak slots."""
        routes = _sp_routes(line4)
        ctrl = _controller(line4_graph, voice_registry, routes)
        ctrl.admit(FlowSpec(1, "voice", "r0", "r3"))
        assert ctrl.committed_route(1) == ["r0", "r1", "r2", "r3"]
        # Re-route (even drop) the pair while the flow is established:
        # pre-fix, release re-resolved the route and blew up here.
        del ctrl.route_map[("r0", "r3")]
        ctrl.release(1)
        # Every slot freed on the *original* path; ledger fully drained.
        assert (ctrl.ledger.used("voice") == 0).all()

    def test_committed_route_unknown_flow_raises(
        self, line4, line4_graph, voice_registry
    ):
        from repro.errors import AdmissionError

        ctrl = _controller(line4_graph, voice_registry, _sp_routes(line4))
        with pytest.raises(AdmissionError):
            ctrl.committed_route("nope")
