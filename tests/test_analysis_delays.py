"""Single-class configuration-time delay bounds (Figure 2 pipeline)."""

import numpy as np
import pytest

from repro.analysis import (
    beta_coefficient,
    single_class_delays,
    uniform_worst_delay,
)
from repro.analysis.delays import resolve_fan_in
from repro.errors import AnalysisError
from repro.routing import shortest_path_routes
from repro.topology import LinkServerGraph, line_network, star_network
from repro.traffic import TrafficClass, voice_class


def test_line_route_matches_geometric_closed_form(line4_graph, voice):
    alpha = 0.4
    res = single_class_delays(
        line4_graph, [["r0", "r1", "r2", "r3"]], voice, alpha,
        n_mode="uniform",
    )
    assert res.safe
    n = line4_graph.uniform_fan_in()  # 2 on a chain
    beta = beta_coefficient(alpha, voice.rate, n)
    expected = (voice.burst / voice.rate) * ((1 + beta * voice.rate) ** 3 - 1)
    assert res.worst_route_delay == pytest.approx(expected, rel=1e-6)


def test_per_server_mode_not_looser(line4_graph, voice):
    """Per-server fan-in is a tighter (never larger) bound than uniform."""
    route = [["r0", "r1", "r2", "r3"]]
    uni = single_class_delays(line4_graph, route, voice, 0.4, n_mode="uniform")
    per = single_class_delays(
        line4_graph, route, voice, 0.4, n_mode="per_server"
    )
    assert per.worst_route_delay <= uni.worst_route_delay + 1e-12


def test_invalid_n_mode(line4_graph, voice):
    with pytest.raises(AnalysisError):
        single_class_delays(line4_graph, [["r0", "r1"]], voice, 0.3,
                            n_mode="bogus")


def test_best_effort_class_rejected(line4_graph):
    be = TrafficClass.best_effort()
    with pytest.raises(AnalysisError):
        single_class_delays(line4_graph, [["r0", "r1"]], be, 0.3)


def test_resolve_fan_in_shapes(mci_graph):
    uni = resolve_fan_in(mci_graph, "uniform")
    per = resolve_fan_in(mci_graph, "per_server")
    assert uni.shape == per.shape == (mci_graph.num_servers,)
    assert np.all(uni == 6)
    assert np.all(per <= 6)


def test_mci_sp_routes_safe_at_lower_bound(mci, mci_graph, mci_pairs, voice):
    """Theorem 4 LB certifies shortest-path routing (with margin)."""
    routes = list(shortest_path_routes(mci, mci_pairs).values())
    res = single_class_delays(mci_graph, routes, voice, 0.2999)
    assert res.safe


def test_mci_sp_routes_unsafe_far_above_upper_bound(
    mci, mci_graph, mci_pairs, voice
):
    routes = list(shortest_path_routes(mci, mci_pairs).values())
    res = single_class_delays(mci_graph, routes, voice, 0.99)
    assert not res.safe


def test_monotone_in_alpha(mci, mci_graph, mci_pairs, voice):
    """Worst-case delay grows with utilization."""
    routes = list(shortest_path_routes(mci, mci_pairs).values())
    worst = []
    for alpha in (0.15, 0.25, 0.35):
        res = single_class_delays(mci_graph, routes, voice, alpha)
        assert res.safe
        worst.append(res.worst_route_delay)
    assert worst == sorted(worst)


def test_route_delay_below_uniform_bound(mci, mci_graph, mci_pairs, voice):
    """The topology-aware fixed point never exceeds the uniform bound."""
    alpha = 0.3
    routes = list(shortest_path_routes(mci, mci_pairs).values())
    res = single_class_delays(mci_graph, routes, voice, alpha)
    d_uniform = uniform_worst_delay(voice.burst, voice.rate, alpha, 6, 4)
    assert res.safe
    assert np.all(res.server_delays <= d_uniform + 1e-12)


def test_slack_and_violations(line4_graph, voice):
    res = single_class_delays(
        line4_graph, [["r0", "r1", "r2", "r3"]], voice, 0.3
    )
    assert res.slack == pytest.approx(
        voice.deadline - res.worst_route_delay
    )
    assert res.violating_routes().size == 0


def test_warm_start_equivalence(line4_graph, voice):
    routes = [["r0", "r1", "r2"], ["r2", "r1", "r0"]]
    cold = single_class_delays(line4_graph, routes, voice, 0.3)
    warm = single_class_delays(
        line4_graph, routes, voice, 0.3,
        warm_start=cold.server_delays * 0.9,
    )
    np.testing.assert_allclose(
        warm.server_delays, cold.server_delays, atol=1e-6
    )


def test_early_exit_off_still_flags_violation(line4_graph):
    tight = TrafficClass("tight", burst=640, rate=32_000, deadline=1e-6,
                         priority=1)
    res = single_class_delays(
        line4_graph, [["r0", "r1", "r2", "r3"]], tight, 0.4,
        early_deadline_exit=False,
    )
    assert res.fixed_point.converged
    assert not res.safe
    assert res.violating_routes().size == 1


def test_star_hub_concentration(voice):
    """All leaf-to-leaf routes share the hub; delays concentrate there."""
    net = star_network(4)
    graph = LinkServerGraph(net)
    routes = [
        [f"leaf{i}", "hub", f"leaf{j}"]
        for i in range(4)
        for j in range(4)
        if i != j
    ]
    res = single_class_delays(graph, routes, voice, 0.3,
                              n_mode="per_server")
    assert res.safe
    hub_out = graph.server_index("hub", "leaf0")
    leaf_out = graph.server_index("leaf0", "hub")
    # Hub output servers have fan-in 4; leaf outputs fan-in 1 => zero delay.
    assert res.server_delays[leaf_out] == 0.0
    assert res.server_delays[hub_out] > 0.0
