"""Envelope conformance checking of packet sequences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TrafficError
from repro.simulation import PacketPattern, emission_times
from repro.traffic import leaky_bucket_envelope, voice_class
from repro.traffic.conformance import check_conformance


@pytest.fixture(scope="module")
def bucket():
    return leaky_bucket_envelope(640, 32_000)


def test_empty_sequence_conforms(bucket):
    report = check_conformance([], 640, bucket)
    assert report.conforms
    assert report.packets == 0


def test_single_burst_conforms(bucket):
    assert check_conformance([0.0], 640, bucket)


def test_double_burst_violates(bucket):
    report = check_conformance([0.0, 0.0], 640, bucket)
    assert not report.conforms
    assert report.worst_excess == pytest.approx(640.0)
    assert report.worst_window == (0.0, 0.0)


def test_paced_sequence_conforms(bucket):
    times = np.arange(50) * 0.02  # 640 bits every 20 ms = exactly rho
    assert check_conformance(times, 640, bucket)


def test_slightly_fast_pacing_violates(bucket):
    times = np.arange(50) * 0.019  # 5% above the sustained rate
    report = check_conformance(times, 640, bucket)
    assert not report.conforms
    assert report.worst_excess > 0


def test_heterogeneous_sizes(bucket):
    # 320 + 320 at t=0 fills the bucket exactly; conforms.
    assert check_conformance([0.0, 0.0], [320, 320], bucket)
    # Adding one more bit's worth breaks it.
    report = check_conformance([0.0, 0.0, 0.0], [320, 320, 1], bucket)
    assert not report.conforms


def test_interior_window_detected(bucket):
    """A mid-sequence burst is caught even if the prefix is fine."""
    times = [0.0, 0.5, 0.5]  # second+third packets burst at t=0.5
    report = check_conformance(times, 640, bucket)
    assert not report.conforms
    assert report.worst_window == (0.5, 0.5)


def test_validation(bucket):
    with pytest.raises(TrafficError):
        check_conformance([1.0, 0.5], 640, bucket)  # decreasing times
    with pytest.raises(TrafficError):
        check_conformance([0.0], [640, 640], bucket)  # shape mismatch
    with pytest.raises(TrafficError):
        check_conformance([0.0], 0.0, bucket)  # non-positive size


@settings(max_examples=30, deadline=None)
@given(
    kind=st.sampled_from(["greedy", "periodic", "poisson"]),
    size=st.sampled_from([160, 320, 640]),
    seed=st.integers(min_value=0, max_value=500),
)
def test_prop_policed_sources_conform(kind, size, seed):
    """Every simulator source is envelope-compliant by construction —
    now verified by the independent conformance checker."""
    vc = voice_class()
    times = emission_times(
        PacketPattern(kind, packet_size=size, seed=seed), vc, horizon=0.5
    )
    report = check_conformance(times, size, vc.envelope())
    assert report.conforms, (
        f"{kind} source violated the envelope by "
        f"{report.worst_excess:.3f} bits at {report.worst_window}"
    )


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=500),
)
def test_prop_violations_are_localized(seed):
    """Injecting one extra burst into a conforming sequence is detected
    with the right window."""
    vc = voice_class()
    times = emission_times(
        PacketPattern("periodic", packet_size=640, seed=seed),
        vc,
        horizon=0.4,
    )
    if times.size < 3:
        return
    rng = np.random.default_rng(seed)
    k = int(rng.integers(1, times.size))
    corrupted = np.sort(np.concatenate([times, [times[k]]]))
    report = check_conformance(corrupted, 640, vc.envelope())
    assert not report.conforms
