"""The eq. (14) fixed-point solver."""

import numpy as np
import pytest

from repro.analysis import (
    RouteSystem,
    beta_coefficient,
    solve_fixed_point,
    theorem3_update,
)
from repro.analysis.delays import resolve_fan_in
from repro.errors import AnalysisError

T, RHO = 640.0, 32_000.0


def _line_system(hops: int, num_servers: int = None):
    """One route through `hops` distinct servers (feedback-free)."""
    servers = list(range(hops))
    return RouteSystem([servers], num_servers or hops)


def _update(system, alpha, fan_in=6):
    n = np.full(system.num_servers, float(fan_in))
    return theorem3_update(system, T, RHO, alpha, n)


class TestFeedbackFree:
    def test_geometric_accumulation(self):
        """On a chain, d_k = beta*T*(1 + beta*rho)^(k-1) exactly
        (the closed form behind the Theorem 4 upper bound)."""
        alpha, hops = 0.4, 4
        system = _line_system(hops)
        beta = beta_coefficient(alpha, RHO, 6)
        result = solve_fixed_point(system, _update(system, alpha))
        assert result.converged
        expected = beta * T * (1 + beta * RHO) ** np.arange(hops)
        np.testing.assert_allclose(result.delays, expected, rtol=1e-9)

    def test_route_delay_is_geometric_sum(self):
        alpha, hops = 0.4, 4
        system = _line_system(hops)
        beta = beta_coefficient(alpha, RHO, 6)
        result = solve_fixed_point(system, _update(system, alpha))
        expected = (T / RHO) * ((1 + beta * RHO) ** hops - 1)
        assert result.route_delays[0] == pytest.approx(expected, rel=1e-9)

    def test_single_hop_is_beta_t(self):
        system = _line_system(1)
        result = solve_fixed_point(system, _update(system, 0.3))
        assert result.delays[0] == pytest.approx(
            beta_coefficient(0.3, RHO, 6) * T
        )


class TestFeedback:
    def _cycle(self):
        # Two routes forming a dependency cycle 0 -> 1 -> 0.
        return RouteSystem([[0, 1], [1, 0]], num_servers=2)

    def test_cycle_converges_at_low_alpha(self):
        system = self._cycle()
        result = solve_fixed_point(system, _update(system, 0.2))
        assert result.converged
        # Both servers symmetric: d = beta*(T + rho*d)
        beta = beta_coefficient(0.2, RHO, 6)
        expected = beta * T / (1 - beta * RHO)
        # Iteration stops on an absolute residual, so allow the remaining
        # geometric tail of the contraction in the comparison.
        np.testing.assert_allclose(result.delays, expected, rtol=1e-5)

    def test_cycle_diverges_at_high_alpha(self):
        # beta*rho >= 1 <=> alpha*5/(6-alpha) >= 1 <=> alpha >= 1.
        # With two-server feedback the effective condition is beta*rho >= 1
        # per server, so pick an alpha where beta*rho close to 1 but the
        # deadline cannot be met -> use deadlines for early exit instead.
        system = self._cycle()
        deadlines = np.full(2, 0.1)
        result = solve_fixed_point(
            system, _update(system, 0.9), deadlines=deadlines
        )
        assert not result.safe
        assert result.deadline_violated

    def test_true_divergence_detected(self):
        system = self._cycle()
        # beta*rho > 1 requires alpha > 1 with N=6; emulate stronger
        # feedback with N=2 where beta*rho = alpha/(2-alpha) stays < 1.
        # Use a 3-cycle with N=6 and alpha close to 1 plus long routes:
        cyc = RouteSystem([[0, 1, 2], [1, 2, 0], [2, 0, 1]], num_servers=3)
        # beta*rho*2 upstream servers of feedback: diverges for
        # beta*rho > 0.5 <=> alpha*5/(6-alpha) > 0.5 <=> alpha > 6/11.
        result = solve_fixed_point(cyc, _update(cyc, 0.9), ceiling=10.0)
        assert result.diverged
        assert not result.converged


class TestMechanics:
    def test_warm_start_reaches_same_fixed_point(self):
        system = RouteSystem([[0, 1, 2], [2, 1]], num_servers=3)
        update = _update(system, 0.35)
        cold = solve_fixed_point(system, update)
        # Warm-start from half the solution (below the least fixed point).
        warm = solve_fixed_point(system, update, initial=cold.delays * 0.5)
        assert warm.converged
        np.testing.assert_allclose(warm.delays, cold.delays, atol=1e-7)

    def test_warm_start_above_fixed_point_rejected(self):
        system = _line_system(3)
        update = _update(system, 0.3)
        sol = solve_fixed_point(system, update)
        with pytest.raises(AnalysisError):
            solve_fixed_point(system, update, initial=sol.delays * 10)

    def test_wrong_initial_shape_rejected(self):
        system = _line_system(3)
        with pytest.raises(AnalysisError):
            solve_fixed_point(
                system, _update(system, 0.3), initial=np.zeros(5)
            )

    def test_iteration_budget_reported(self):
        system = self_cycle = RouteSystem([[0, 1], [1, 0]], num_servers=2)
        result = solve_fixed_point(
            system, _update(system, 0.3), max_iterations=2
        )
        assert not result.converged
        assert result.iterations == 2

    def test_untouched_servers_zero(self):
        system = RouteSystem([[0, 1]], num_servers=4)
        result = solve_fixed_point(system, _update(system, 0.3))
        assert result.delays[2] == 0.0 and result.delays[3] == 0.0

    def test_monotone_iterates(self):
        """Iterates never decrease — the property warm starts rely on."""
        system = RouteSystem([[0, 1, 2], [2, 0]], num_servers=3)
        update = _update(system, 0.35)
        d = update(np.zeros(3))
        for _ in range(50):
            d_next = update(d)
            assert np.all(d_next >= d - 1e-15)
            d = d_next

    def test_invalid_tolerance(self):
        system = _line_system(2)
        with pytest.raises(AnalysisError):
            solve_fixed_point(system, _update(system, 0.3), tolerance=0.0)

    def test_deadline_early_exit_is_sound(self):
        """Early-exit failure implies the converged solution also fails."""
        system = RouteSystem([[0, 1], [1, 0]], num_servers=2)
        update = _update(system, 0.9)
        tight = np.full(2, 1e-5)
        early = solve_fixed_point(system, update, deadlines=tight)
        assert early.deadline_violated
        full = solve_fixed_point(system, update)
        if full.converged:
            assert np.any(system.route_delays(full.delays) > tight)
