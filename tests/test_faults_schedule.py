"""Fault schedules: validation, ordering, serialization, generation."""

import pytest

from repro.errors import FaultInjectionError
from repro.faults import (
    FaultEvent,
    FaultSchedule,
    random_fault_schedule,
)
from repro.topology import line_network, ring_network


class TestFaultEvent:
    def test_link_target_coerced_to_tuple(self):
        event = FaultEvent(1.0, "link_down", ["A", "B"])
        assert event.target == ("A", "B")
        assert event.link == ("A", "B")

    def test_negative_time_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultEvent(-0.1, "link_down", ("A", "B"))

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultEvent(0.0, "meteor_strike", "A")

    def test_link_kind_needs_pair(self):
        with pytest.raises(FaultInjectionError):
            FaultEvent(0.0, "link_down", "A")

    def test_router_down_needs_target(self):
        with pytest.raises(FaultInjectionError):
            FaultEvent(0.0, "router_down")

    def test_controller_kinds_take_no_target(self):
        with pytest.raises(FaultInjectionError):
            FaultEvent(0.0, "controller_crash", "A")
        FaultEvent(0.0, "controller_crash")  # fine

    def test_link_property_guarded(self):
        with pytest.raises(FaultInjectionError):
            FaultEvent(0.0, "router_down", "A").link

    def test_dict_roundtrip(self):
        event = FaultEvent(0.5, "link_down", ("A", "B"))
        assert FaultEvent.from_dict(event.to_dict()) == event


class TestFaultSchedule:
    def test_sorted_by_time_stable(self):
        schedule = FaultSchedule(
            [
                FaultEvent(2.0, "link_up", ("A", "B")),
                FaultEvent(1.0, "link_down", ("A", "B")),
            ]
        )
        assert [e.kind for e in schedule] == ["link_down", "link_up"]
        assert schedule.horizon == 2.0

    def test_double_down_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultSchedule(
                [
                    FaultEvent(1.0, "link_down", ("A", "B")),
                    FaultEvent(2.0, "link_down", ("B", "A")),
                ]
            )

    def test_up_without_down_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultSchedule([FaultEvent(1.0, "link_up", ("A", "B"))])

    def test_restore_without_crash_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultSchedule([FaultEvent(1.0, "controller_restore")])

    def test_double_crash_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultSchedule(
                [
                    FaultEvent(1.0, "controller_crash"),
                    FaultEvent(2.0, "controller_crash"),
                ]
            )

    def test_down_up_down_accepted(self):
        schedule = FaultSchedule(
            [
                FaultEvent(1.0, "link_down", ("A", "B")),
                FaultEvent(2.0, "link_up", ("A", "B")),
                FaultEvent(3.0, "link_down", ("A", "B")),
            ]
        )
        assert len(schedule) == 3

    def test_topology_validation(self):
        net = line_network(3)  # r0 -- r1 -- r2
        with pytest.raises(FaultInjectionError):
            FaultSchedule(
                [FaultEvent(1.0, "link_down", ("r0", "r2"))],
                network=net,
            )
        with pytest.raises(FaultInjectionError):
            FaultSchedule(
                [FaultEvent(1.0, "router_down", "r9")], network=net
            )
        FaultSchedule(
            [FaultEvent(1.0, "link_down", ("r0", "r1"))], network=net
        )

    def test_json_roundtrip_bit_identical(self, tmp_path):
        schedule = FaultSchedule(
            [
                FaultEvent(0.5, "link_down", ("A", "B")),
                FaultEvent(0.7, "controller_crash"),
                FaultEvent(0.9, "controller_restore"),
                FaultEvent(1.5, "link_up", ("A", "B")),
            ]
        )
        path = tmp_path / "faults.json"
        schedule.save(str(path))
        loaded = FaultSchedule.load(str(path))
        assert loaded.to_json() == schedule.to_json()

    def test_bad_schema_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultSchedule.from_dict({"schema": "nope", "events": []})

    def test_topology_kinds_filters_controller_events(self):
        schedule = FaultSchedule(
            [
                FaultEvent(0.5, "link_down", ("A", "B")),
                FaultEvent(0.7, "controller_crash"),
            ]
        )
        assert [e.kind for e in schedule.topology_kinds()] == [
            "link_down"
        ]


class TestRandomFaultSchedule:
    def test_deterministic_in_seed(self):
        net = ring_network(6)
        one = random_fault_schedule(
            net, seed=3, horizon=10.0, link_failures=2
        )
        two = random_fault_schedule(
            net, seed=3, horizon=10.0, link_failures=2
        )
        assert one.to_json() == two.to_json()
        different = random_fault_schedule(
            net, seed=4, horizon=10.0, link_failures=2
        )
        assert different.to_json() != one.to_json()

    def test_never_disconnects(self):
        # Every drawn link is individually removable; a line network has
        # no removable links at all.
        net = line_network(4)
        with pytest.raises(FaultInjectionError):
            random_fault_schedule(
                net, seed=0, horizon=10.0, link_failures=1
            )

    def test_valid_schedule_on_ring(self):
        net = ring_network(6)
        schedule = random_fault_schedule(
            net,
            seed=11,
            horizon=10.0,
            link_failures=3,
            controller_crashes=1,
        )
        # Validation ran in the constructor; every down precedes its up.
        downs = [e for e in schedule if e.kind == "link_down"]
        assert len(downs) == 3
        assert all(0 < e.time < 10.0 for e in schedule)
