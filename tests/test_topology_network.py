"""Network container semantics."""

import pytest

from repro.errors import TopologyError, UnknownLinkError, UnknownNodeError
from repro.topology import Network


@pytest.fixture()
def triangle():
    net = Network("triangle")
    for name in "abc":
        net.add_router(name)
    net.add_link("a", "b")
    net.add_link("b", "c", capacity=50e6)
    net.add_link("c", "a")
    return net


def test_counts(triangle):
    assert triangle.num_routers == 3
    assert triangle.num_physical_links == 3
    assert triangle.num_link_servers == 6
    assert len(triangle) == 3


def test_router_lookup(triangle):
    assert triangle.router("a").name == "a"
    with pytest.raises(UnknownNodeError):
        triangle.router("z")


def test_contains(triangle):
    assert "a" in triangle
    assert "z" not in triangle


def test_add_duplicate_router_is_noop(triangle):
    triangle.add_router("a")  # identical attributes: fine
    assert triangle.num_routers == 3


def test_add_conflicting_router_raises(triangle):
    with pytest.raises(TopologyError):
        triangle.add_router("a", is_edge=False)


def test_self_loop_rejected(triangle):
    with pytest.raises(TopologyError):
        triangle.add_link("a", "a")


def test_duplicate_link_rejected(triangle):
    with pytest.raises(TopologyError):
        triangle.add_link("a", "b")
    with pytest.raises(TopologyError):
        triangle.add_link("b", "a")  # same physical link, other direction


def test_nonpositive_capacity_rejected(triangle):
    net = Network()
    net.add_router("x")
    net.add_router("y")
    with pytest.raises(TopologyError):
        net.add_link("x", "y", capacity=0.0)


def test_link_to_unknown_router():
    net = Network()
    net.add_router("x")
    with pytest.raises(UnknownNodeError):
        net.add_link("x", "ghost")


def test_directed_links_both_directions(triangle):
    keys = {link.key for link in triangle.directed_links()}
    assert ("a", "b") in keys and ("b", "a") in keys
    assert len(keys) == 6


def test_link_capacity_per_direction(triangle):
    assert triangle.capacity("b", "c") == 50e6
    assert triangle.capacity("c", "b") == 50e6


def test_unknown_link_raises(triangle):
    with pytest.raises(UnknownLinkError):
        triangle.link("a", "z")


def test_neighbors_and_degree(triangle):
    assert sorted(triangle.neighbors("a")) == ["b", "c"]
    assert triangle.degree("a") == 2
    assert triangle.max_degree() == 2


def test_diameter_triangle(triangle):
    assert triangle.diameter() == 1


def test_diameter_requires_connected():
    net = Network()
    net.add_router("u")
    net.add_router("v")
    with pytest.raises(TopologyError):
        net.diameter()


def test_edge_routers_filter():
    net = Network()
    net.add_router("edge")
    net.add_router("core", is_edge=False)
    net.add_link("edge", "core")
    assert net.edge_routers() == ["edge"]


def test_from_edges_builder():
    net = Network.from_edges([("a", "b"), ("b", "c")], capacity=1e6)
    assert net.num_routers == 3
    assert net.capacity("a", "b") == 1e6


def test_from_edges_edge_router_subset():
    net = Network.from_edges(
        [("a", "b"), ("b", "c")], edge_routers=["a", "c"]
    )
    assert sorted(net.edge_routers()) == ["a", "c"]
    assert not net.router("b").is_edge


def test_to_networkx_is_copy(triangle):
    g = triangle.to_networkx()
    g.remove_node("a")
    assert "a" in triangle  # original unaffected
