"""Theorem 4 utilization bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    theorem4_lower_bound,
    theorem4_upper_bound,
    utilization_bounds,
)
from repro.analysis import uniform_worst_delay
from repro.errors import ConfigurationError

# Paper scenario: N=6, L=4, T=640 b, rho=32 kbps, D=100 ms.
PAPER = dict(fan_in=6, diameter=4, burst=640.0, rate=32_000.0, deadline=0.1)


class TestPaperAnchors:
    def test_lower_bound_is_030(self):
        assert theorem4_lower_bound(**PAPER) == pytest.approx(0.30)

    def test_upper_bound_is_061(self):
        assert theorem4_upper_bound(**PAPER) == pytest.approx(0.61, abs=0.005)

    def test_interval(self):
        b = utilization_bounds(**PAPER)
        assert b.lower == pytest.approx(0.30)
        assert b.upper == pytest.approx(0.6092, abs=1e-3)
        assert b.width > 0


class TestStructure:
    def test_lower_bound_consistent_with_uniform_delay(self):
        """At alpha = LB the uniform worst case saturates the deadline:
        L * d(LB) == D (this is how the bound is derived)."""
        lb = theorem4_lower_bound(**PAPER)
        d = uniform_worst_delay(
            PAPER["burst"], PAPER["rate"], lb, PAPER["fan_in"],
            PAPER["diameter"],
        )
        assert PAPER["diameter"] * d == pytest.approx(PAPER["deadline"])

    def test_l1_bounds(self):
        """Single hop: LB = N/((T/(D rho))(N-1)+1), UB from x = D rho/T + 1."""
        lb = theorem4_lower_bound(6, 1, 640, 32_000, 0.1)
        ub = theorem4_upper_bound(6, 1, 640, 32_000, 0.1)
        # For L = 1 both derivations describe the same single-server case.
        assert lb == pytest.approx(ub)

    def test_monotone_in_deadline(self):
        lbs = [
            theorem4_lower_bound(6, 4, 640, 32_000, d)
            for d in (0.02, 0.05, 0.1, 0.5)
        ]
        ubs = [
            theorem4_upper_bound(6, 4, 640, 32_000, d)
            for d in (0.02, 0.05, 0.1, 0.5)
        ]
        assert lbs == sorted(lbs)
        assert ubs == sorted(ubs)

    def test_monotone_in_burst(self):
        lbs = [
            theorem4_lower_bound(6, 4, t, 32_000, 0.1)
            for t in (160, 640, 2560)
        ]
        assert lbs == sorted(lbs, reverse=True)  # larger bursts hurt

    def test_monotone_in_diameter(self):
        lbs = [
            theorem4_lower_bound(6, l, 640, 32_000, 0.1) for l in (1, 2, 4, 8)
        ]
        assert lbs == sorted(lbs, reverse=True)

    def test_capped_at_one(self):
        # Very loose deadline: both bounds saturate at 100% utilization.
        assert theorem4_upper_bound(6, 1, 1.0, 32_000, 10.0) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            theorem4_lower_bound(1, 4, 640, 32_000, 0.1)
        with pytest.raises(ConfigurationError):
            theorem4_lower_bound(6, 0, 640, 32_000, 0.1)
        with pytest.raises(ConfigurationError):
            theorem4_lower_bound(6, 4, 0, 32_000, 0.1)
        with pytest.raises(ConfigurationError):
            theorem4_upper_bound(6, 4, 640, 0, 0.1)
        with pytest.raises(ConfigurationError):
            theorem4_upper_bound(6, 4, 640, 32_000, 0)


params = dict(
    fan_in=st.integers(min_value=2, max_value=32),
    diameter=st.integers(min_value=1, max_value=12),
    burst=st.floats(min_value=1.0, max_value=1e6),
    rate=st.floats(min_value=1.0, max_value=1e9),
    deadline=st.floats(min_value=1e-4, max_value=10.0),
)


@settings(max_examples=200, deadline=None)
@given(**params)
def test_prop_bounds_ordered(fan_in, diameter, burst, rate, deadline):
    lb = theorem4_lower_bound(fan_in, diameter, burst, rate, deadline)
    ub = theorem4_upper_bound(fan_in, diameter, burst, rate, deadline)
    assert 0.0 < lb <= 1.0
    assert 0.0 < ub <= 1.0
    assert lb <= ub + 1e-9


@settings(max_examples=100, deadline=None)
@given(**params)
def test_prop_lower_bound_stable(fan_in, diameter, burst, rate, deadline):
    """The LB never exceeds the stability threshold of the uniform
    recursion (otherwise the bound's own derivation would diverge)."""
    lb = theorem4_lower_bound(fan_in, diameter, burst, rate, deadline)
    d = uniform_worst_delay(burst, rate, lb * (1 - 1e-9), fan_in, diameter)
    assert d != float("inf")
    assert diameter * d <= deadline * (1 + 1e-6)
