"""Paper-level properties over randomized topologies.

Theorem 4's guarantees are *topology-independent* (given N and L); these
tests exercise that claim over random connected networks rather than the
two curated backbones.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import single_class_delays
from repro.config import theorem4_lower_bound, theorem4_upper_bound
from repro.routing import shortest_path_routes
from repro.topology import LinkServerGraph, analyze, random_network
from repro.traffic import all_ordered_pairs, voice_class


def _setup(n, p, seed):
    net = random_network(n, p, seed=seed)
    report = analyze(net)
    graph = LinkServerGraph(net)
    pairs = all_ordered_pairs(net)
    paths = list(shortest_path_routes(net, pairs).values())
    return net, report, graph, paths


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=5, max_value=12),
    p=st.floats(min_value=0.25, max_value=0.6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_prop_lower_bound_certifies_sp_routing(n, p, seed):
    """The heart of Theorem 4: on ANY topology, shortest-path routes
    verify at (just under) the lower bound computed from that topology's
    N and L."""
    net, report, graph, paths = _setup(n, p, seed)
    if report.max_degree < 2:
        return
    voice = voice_class()
    lb = theorem4_lower_bound(
        report.max_degree, report.diameter, voice.burst, voice.rate,
        voice.deadline,
    )
    result = single_class_delays(
        graph, paths, voice, min(lb, 1.0) * (1 - 1e-9)
    )
    assert result.safe, (
        f"LB {lb:.4f} failed on G({n},{p}) seed={seed} "
        f"(N={report.max_degree}, L={report.diameter})"
    )


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=5, max_value=10),
    p=st.floats(min_value=0.3, max_value=0.6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_prop_verification_monotone_in_alpha_random(n, p, seed):
    """Safety is monotone in alpha on random route systems."""
    net, report, graph, paths = _setup(n, p, seed)
    if report.max_degree < 2:
        return
    voice = voice_class()
    verdicts = [
        single_class_delays(graph, paths, voice, a).safe
        for a in (0.15, 0.3, 0.45, 0.6, 0.75, 0.9)
    ]
    # Once False, never True again.
    first_false = verdicts.index(False) if False in verdicts else len(verdicts)
    assert all(verdicts[:first_false])
    assert not any(verdicts[first_false:])


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=5, max_value=10),
    p=st.floats(min_value=0.3, max_value=0.6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_prop_bounds_bracket_sp_critical_alpha(n, p, seed):
    """LB <= (critical alpha of SP routes); UB is a global ceiling so the
    SP critical alpha also respects it."""
    from repro.analysis import critical_alpha

    net, report, graph, paths = _setup(n, p, seed)
    if report.max_degree < 2:
        return
    voice = voice_class()
    lb = theorem4_lower_bound(
        report.max_degree, report.diameter, voice.burst, voice.rate,
        voice.deadline,
    )
    ub = theorem4_upper_bound(
        report.max_degree, report.diameter, voice.burst, voice.rate,
        voice.deadline,
    )
    a_star = critical_alpha(graph, paths, voice, resolution=5e-3)
    # The bisection returns the last verified midpoint, which can sit up
    # to one resolution step below the true threshold.
    assert a_star >= lb - 5e-3 - 1e-9
    # NOTE: UB bounds selections whose paths realize diameter-length
    # worst cases; SP routes on a dense random graph can exceed it only
    # when their diameter is smaller than the graph bound used -- it is
    # not, since L comes from the same graph.  Allow solver resolution.
    if a_star < 1.0:  # 1.0 means "everything verified" (tiny networks)
        assert a_star <= min(1.0, ub) + 5e-3 or report.diameter <= 2
