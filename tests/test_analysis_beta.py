"""Theorem 3 closed forms."""

import numpy as np
import pytest

from repro.analysis import (
    beta_coefficient,
    max_stable_alpha_uniform,
    theorem3_delay,
    uniform_worst_delay,
)
from repro.errors import AnalysisError

RHO = 32_000.0
T = 640.0
D = 0.1


def test_beta_formula():
    # beta = alpha*(N-1) / (rho*(N-alpha))
    assert beta_coefficient(0.3, RHO, 6) == pytest.approx(
        0.3 * 5 / (RHO * 5.7)
    )


def test_beta_zero_for_single_input_link():
    assert beta_coefficient(0.5, RHO, 1) == 0.0


def test_beta_vectorized():
    out = beta_coefficient(0.3, RHO, np.array([2, 4, 6]))
    assert out.shape == (3,)
    assert out[2] == pytest.approx(beta_coefficient(0.3, RHO, 6))


def test_beta_monotone_in_alpha():
    betas = [beta_coefficient(a, RHO, 6) for a in (0.1, 0.3, 0.5, 0.9)]
    assert betas == sorted(betas)


def test_beta_invalid_alpha():
    with pytest.raises(AnalysisError):
        beta_coefficient(0.0, RHO, 6)
    with pytest.raises(AnalysisError):
        beta_coefficient(1.2, RHO, 6)


def test_beta_invalid_rho():
    with pytest.raises(AnalysisError):
        beta_coefficient(0.5, 0.0, 6)


def test_theorem3_matches_paper_form():
    # d = (T + rho*Y)*alpha/rho + (alpha - 1)*alpha*(T + rho*Y)/(rho*(N - alpha))
    alpha, n, y = 0.3, 6, 0.012
    base = T + RHO * y
    expected = base * alpha / RHO + (alpha - 1) * alpha * base / (
        RHO * (n - alpha)
    )
    assert theorem3_delay(T, RHO, alpha, n, y) == pytest.approx(expected)


def test_theorem3_is_beta_times_traffic():
    alpha, n, y = 0.42, 6, 0.02
    assert theorem3_delay(T, RHO, alpha, n, y) == pytest.approx(
        beta_coefficient(alpha, RHO, n) * (T + RHO * y)
    )


def test_theorem3_vectorized_y():
    ys = np.array([0.0, 0.01, 0.02])
    out = theorem3_delay(T, RHO, 0.3, 6, ys)
    assert out.shape == (3,)
    assert np.all(np.diff(out) > 0)  # increasing in Y


def test_theorem3_rejects_negative_y():
    with pytest.raises(AnalysisError):
        theorem3_delay(T, RHO, 0.3, 6, -0.1)


def test_uniform_worst_delay_anchor():
    # The paper's Table 1 anchor: at alpha = LB = 0.30, L*d == D exactly.
    d = uniform_worst_delay(T, RHO, 0.30, 6, 4)
    assert 4 * d == pytest.approx(D)


def test_uniform_worst_delay_diverges_above_stability():
    assert uniform_worst_delay(T, RHO, 0.38, 6, 4) == float("inf")


def test_uniform_worst_delay_l1_no_feedback():
    d = uniform_worst_delay(T, RHO, 0.5, 6, 1)
    assert d == pytest.approx(beta_coefficient(0.5, RHO, 6) * T)


def test_max_stable_alpha():
    # beta*rho*(L-1) = 1  <=>  alpha = N / ((N-1)(L-1) + 1)
    assert max_stable_alpha_uniform(RHO, 6, 4) == pytest.approx(6 / 16)
    assert max_stable_alpha_uniform(RHO, 6, 1) == 1.0
    assert max_stable_alpha_uniform(RHO, 1, 4) == 1.0


def test_max_stable_alpha_boundary_behavior():
    a_star = max_stable_alpha_uniform(RHO, 6, 4)
    assert np.isfinite(uniform_worst_delay(T, RHO, a_star * 0.999, 6, 4))
    assert uniform_worst_delay(T, RHO, min(a_star * 1.001, 1.0), 6, 4) == float(
        "inf"
    )
