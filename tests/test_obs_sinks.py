"""Streaming span sink: JSON-lines persistence beyond the ring buffer."""

import json

import pytest

from repro.obs.sinks import (
    SPAN_SCHEMA,
    JsonLinesSpanSink,
    read_span_lines,
)
from repro.obs.trace import Tracer


class TestJsonLinesSpanSink:
    def test_header_written_on_open_even_for_empty_run(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        with JsonLinesSpanSink(path):
            pass
        header, spans = read_span_lines(path)
        assert header == {"schema": SPAN_SCHEMA}
        assert spans == []

    def test_streams_spans_as_they_complete(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        tracer = Tracer()
        sink = JsonLinesSpanSink(path).attach(tracer)
        with tracer.span("outer", phase="search"):
            with tracer.span("inner"):
                pass
        sink.close()
        _header, spans = read_span_lines(path)
        # Sinks see spans in completion order: inner closes first.
        assert [s["name"] for s in spans] == ["inner", "outer"]
        assert sink.written == 2
        outer = spans[1]
        assert outer["attrs"]["phase"] == "search"
        assert spans[0]["parent_id"] == outer["span_id"]
        assert spans[0]["depth"] == 1

    def test_record_span_carries_wire_ids(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        tracer = Tracer()
        sink = JsonLinesSpanSink(path).attach(tracer)
        tracer.record_span(
            "service.request",
            start=0.0,
            duration=0.01,
            parent_id="aabbccddeeff0011",
            trace_id="0" * 31 + "1",
            span_hex="1122334455667788",
        )
        sink.close()
        _header, (span,) = read_span_lines(path)
        assert span["parent_id"] == "aabbccddeeff0011"
        assert span["attrs"]["span_hex"] == "1122334455667788"

    def test_non_primitive_attrs_stringified(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        tracer = Tracer()
        sink = JsonLinesSpanSink(path).attach(tracer)
        tracer.record_span(
            "s", start=0.0, duration=0.0, pair=("a", "b")
        )
        sink.close()
        _header, (span,) = read_span_lines(path)
        assert span["attrs"]["pair"] == "('a', 'b')"

    def test_flush_every_batches_writes(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        tracer = Tracer()
        sink = JsonLinesSpanSink(path, flush_every=8).attach(tracer)
        for _ in range(7):
            with tracer.span("s"):
                pass
        # Buffered: a concurrent reader may not see all 7 yet.  The
        # 8th span forces a flush.
        with tracer.span("s"):
            pass
        _header, spans = read_span_lines(path)
        assert len(spans) == 8
        sink.close()

    def test_close_detaches_and_later_spans_are_dropped(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        tracer = Tracer()
        sink = JsonLinesSpanSink(path).attach(tracer)
        with tracer.span("kept"):
            pass
        sink.close()
        with tracer.span("after-close"):
            pass
        _header, spans = read_span_lines(path)
        assert [s["name"] for s in spans] == ["kept"]
        # Calling the closed sink directly is a no-op, not an error.
        sink(tracer.records()[-1])
        assert sink.written == 1

    def test_append_does_not_duplicate_header(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        tracer = Tracer()
        for _ in range(2):
            sink = JsonLinesSpanSink(path).attach(tracer)
            with tracer.span("s"):
                pass
            sink.close()
        with open(path, encoding="utf-8") as fh:
            headers = [
                line for line in fh if '"schema"' in line
            ]
        assert len(headers) == 1
        _header, spans = read_span_lines(path)
        assert len(spans) == 2

    def test_flush_every_validation(self, tmp_path):
        with pytest.raises(ValueError):
            JsonLinesSpanSink(str(tmp_path / "x.jsonl"), flush_every=0)


class TestReadSpanLines:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_span_lines(str(path))

    def test_foreign_header_rejected(self, tmp_path):
        path = tmp_path / "foreign.jsonl"
        path.write_text(
            json.dumps({"schema": "other/v1"}) + "\n"
        )
        with pytest.raises(ValueError, match="header"):
            read_span_lines(str(path))

    def test_headerless_json_lines_rejected(self, tmp_path):
        path = tmp_path / "bare.jsonl"
        path.write_text('{"name": "s"}\n')
        with pytest.raises(ValueError, match="header"):
            read_span_lines(str(path))
