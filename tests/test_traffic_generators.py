"""Workload generators."""

import numpy as np
import pytest

from repro.errors import TrafficError
from repro.traffic import (
    all_ordered_pairs,
    poisson_flow_schedule,
    random_pairs,
    uniform_flow_demand,
)
from repro.traffic.generators import data_class, video_class, voice_class


def test_class_presets_have_distinct_priorities():
    classes = [voice_class(), video_class(), data_class()]
    priorities = [c.priority for c in classes]
    assert priorities == sorted(priorities)
    assert len(set(priorities)) == 3


def test_all_ordered_pairs_mci(mci, mci_pairs):
    n = mci.num_routers
    assert len(mci_pairs) == n * (n - 1)  # 306 for 18 routers
    assert ("Seattle", "Miami") in mci_pairs
    assert all(u != v for u, v in mci_pairs)


def test_all_ordered_pairs_respects_edge_flag():
    from repro.topology import Network

    net = Network.from_edges(
        [("a", "b"), ("b", "c")], edge_routers=["a", "c"]
    )
    pairs = all_ordered_pairs(net)
    assert set(pairs) == {("a", "c"), ("c", "a")}


def test_random_pairs_deterministic(mci):
    a = random_pairs(mci, 20, seed=3)
    b = random_pairs(mci, 20, seed=3)
    assert a == b
    assert all(u != v for u, v in a)


def test_random_pairs_no_repeats(mci):
    pairs = random_pairs(mci, 50, seed=1, allow_repeats=False)
    assert len(set(pairs)) == 50


def test_random_pairs_needs_two_edges():
    from repro.topology import Network

    net = Network.from_edges([("a", "b")], edge_routers=["a"])
    with pytest.raises(TrafficError):
        random_pairs(net, 1, seed=0)


def test_uniform_flow_demand():
    flows = uniform_flow_demand(
        [("a", "b"), ("b", "c")], "voice", flows_per_pair=3
    )
    assert len(flows) == 6
    assert len({f.flow_id for f in flows}) == 6
    assert all(f.class_name == "voice" for f in flows)


def test_uniform_flow_demand_validation():
    with pytest.raises(TrafficError):
        uniform_flow_demand([("a", "b")], "voice", flows_per_pair=0)


class TestPoissonSchedule:
    def test_deterministic(self, mci):
        a = poisson_flow_schedule(mci, "voice", 5.0, 10.0, 20.0, seed=11)
        b = poisson_flow_schedule(mci, "voice", 5.0, 10.0, 20.0, seed=11)
        assert [(e.time, e.kind, e.flow.flow_id) for e in a] == [
            (e.time, e.kind, e.flow.flow_id) for e in b
        ]

    def test_sorted_and_paired(self, mci):
        events = poisson_flow_schedule(mci, "voice", 5.0, 10.0, 20.0, seed=5)
        times = [e.time for e in events]
        assert times == sorted(times)
        arrivals = {e.flow.flow_id for e in events if e.kind == "arrival"}
        departures = {e.flow.flow_id for e in events if e.kind == "departure"}
        assert arrivals == departures

    def test_arrival_before_departure(self, mci):
        events = poisson_flow_schedule(mci, "voice", 5.0, 10.0, 20.0, seed=5)
        first_seen = {}
        for e in events:
            if e.flow.flow_id not in first_seen:
                assert e.kind == "arrival"
                first_seen[e.flow.flow_id] = e.time

    def test_rate_roughly_matches(self, mci):
        events = poisson_flow_schedule(mci, "voice", 10.0, 5.0, 100.0, seed=2)
        arrivals = sum(1 for e in events if e.kind == "arrival")
        assert 700 <= arrivals <= 1300  # 10/s over 100 s, generous window

    def test_validation(self, mci):
        with pytest.raises(TrafficError):
            poisson_flow_schedule(mci, "voice", 0.0, 1.0, 1.0, seed=0)


class TestGravityDemand:
    def test_deterministic(self, mci):
        from repro.traffic import gravity_demand

        a = gravity_demand(mci, 100, "voice", seed=4)
        b = gravity_demand(mci, 100, "voice", seed=4)
        assert [(f.source, f.destination) for f in a] == [
            (f.source, f.destination) for f in b
        ]
        assert len({f.flow_id for f in a}) == 100

    def test_valid_flows(self, mci):
        from repro.traffic import gravity_demand

        flows = gravity_demand(mci, 50, "voice", seed=1)
        routers = set(mci.routers())
        for f in flows:
            assert f.source in routers and f.destination in routers
            assert f.source != f.destination
            assert f.class_name == "voice"

    def test_skew_concentrates_demand(self, mci):
        from collections import Counter

        from repro.traffic import gravity_demand

        def top_share(skew):
            flows = gravity_demand(mci, 2000, "voice", seed=7, skew=skew)
            counts = Counter(f.source for f in flows)
            return counts.most_common(1)[0][1] / len(flows)

        # Stronger skew -> the busiest source carries a larger share.
        assert top_share(4.0) > top_share(0.5)

    def test_validation(self, mci):
        from repro.errors import TrafficError
        from repro.traffic import gravity_demand

        with pytest.raises(TrafficError):
            gravity_demand(mci, -1, "voice", seed=0)
        with pytest.raises(TrafficError):
            gravity_demand(mci, 10, "voice", seed=0, skew=0.0)
