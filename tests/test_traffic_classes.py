"""Traffic classes and the registry."""

import math

import pytest

from repro.errors import ClassRegistryError, TrafficError
from repro.traffic import (
    BEST_EFFORT_PRIORITY,
    ClassRegistry,
    TrafficClass,
    data_class,
    video_class,
    voice_class,
)


class TestTrafficClass:
    def test_paper_voice_parameters(self):
        vc = voice_class()
        assert vc.burst == 640.0
        assert vc.rate == 32_000.0
        assert vc.deadline == pytest.approx(0.1)
        assert vc.priority == 1
        assert vc.is_realtime

    def test_best_effort(self):
        be = TrafficClass.best_effort()
        assert not be.is_realtime
        assert math.isinf(be.deadline)
        assert be.priority == BEST_EFFORT_PRIORITY

    def test_envelope_matches_parameters(self):
        vc = voice_class()
        env = vc.envelope()
        assert env(0.0) == 640.0
        assert env(1.0) == pytest.approx(640 + 32_000)

    def test_envelope_clamped(self):
        env = voice_class().envelope(line_rate=100e6)
        assert env(0.0) == 0.0

    def test_invalid_deadline(self):
        with pytest.raises(TrafficError):
            TrafficClass("x", burst=1, rate=1, deadline=0.0, priority=1)

    def test_realtime_requires_positive_burst(self):
        with pytest.raises(TrafficError):
            TrafficClass("x", burst=0, rate=1, deadline=0.1, priority=1)

    def test_realtime_requires_positive_rate(self):
        with pytest.raises(TrafficError):
            TrafficClass("x", burst=1, rate=0, deadline=0.1, priority=1)

    def test_empty_name_rejected(self):
        with pytest.raises(TrafficError):
            TrafficClass("", burst=1, rate=1, deadline=0.1, priority=1)

    def test_frozen(self):
        vc = voice_class()
        with pytest.raises(Exception):
            vc.rate = 999


class TestClassRegistry:
    def test_two_class_helper(self):
        reg = ClassRegistry.two_class(voice_class())
        assert len(reg) == 2
        assert [c.name for c in reg.realtime_classes()] == ["voice"]
        assert len(reg.best_effort_classes()) == 1

    def test_priority_ordering(self):
        reg = ClassRegistry(
            [data_class(), voice_class(), video_class()]
        )
        assert reg.names() == ["voice", "video", "data"]

    def test_duplicate_name_rejected(self):
        reg = ClassRegistry([voice_class()])
        with pytest.raises(ClassRegistryError):
            reg.add(voice_class())

    def test_duplicate_priority_rejected(self):
        reg = ClassRegistry([voice_class()])
        with pytest.raises(ClassRegistryError):
            reg.add(video_class(priority=1))

    def test_best_effort_must_be_lowest(self):
        be = TrafficClass("be", burst=0, rate=0, deadline=math.inf, priority=0)
        with pytest.raises(ClassRegistryError):
            ClassRegistry([be, voice_class()])

    def test_unknown_class(self):
        reg = ClassRegistry([voice_class()])
        with pytest.raises(ClassRegistryError):
            reg.get("ghost")

    def test_contains_and_iter(self):
        reg = ClassRegistry([voice_class(), video_class()])
        assert "voice" in reg and "ghost" not in reg
        assert [c.name for c in reg] == ["voice", "video"]

    def test_higher_or_equal(self):
        reg = ClassRegistry([voice_class(), video_class(), data_class()])
        names = [c.name for c in reg.higher_or_equal("video")]
        assert names == ["voice", "video"]

    def test_index_of(self):
        reg = ClassRegistry([voice_class(), video_class()])
        assert reg.index_of("voice") == 0
        assert reg.index_of("video") == 1
