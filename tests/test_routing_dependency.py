"""Server dependency graph and cycle queries."""

import pytest

from repro.errors import RoutingError
from repro.routing import ServerDependencyGraph


def test_empty_is_acyclic():
    deps = ServerDependencyGraph()
    assert deps.is_acyclic()
    assert deps.num_edges == 0


def test_add_route_edges():
    deps = ServerDependencyGraph()
    deps.add_route([0, 1, 2])
    assert deps.num_edges == 2
    assert deps.edge_count((0, 1)) == 1
    assert deps.edge_count((1, 2)) == 1


def test_single_server_route_adds_nothing():
    deps = ServerDependencyGraph()
    deps.add_route([5])
    assert deps.num_edges == 0


def test_creates_cycle_detection():
    deps = ServerDependencyGraph()
    deps.add_route([0, 1, 2])
    assert not deps.creates_cycle([3, 4])
    assert not deps.creates_cycle([0, 2])      # shortcut, no cycle
    assert deps.creates_cycle([2, 0])          # closes 0->1->2->0
    assert deps.creates_cycle([2, 3, 0])       # longer closure


def test_creates_cycle_self_contained():
    deps = ServerDependencyGraph()
    # The candidate itself contains a cycle among its own new edges.
    assert deps.creates_cycle([0, 1, 0])


def test_creates_cycle_does_not_mutate():
    deps = ServerDependencyGraph()
    deps.add_route([0, 1])
    deps.creates_cycle([1, 0])
    assert deps.num_edges == 1  # probe left no residue
    assert deps.is_acyclic()


def test_reusing_edges_never_creates_cycle():
    deps = ServerDependencyGraph()
    deps.add_route([0, 1, 2])
    assert not deps.creates_cycle([0, 1])  # pure reuse


def test_acyclic_with_predicate():
    deps = ServerDependencyGraph()
    deps.add_route([0, 1])
    assert deps.acyclic_with([1, 2])
    assert not deps.acyclic_with([1, 0])


def test_multiplicity_remove():
    deps = ServerDependencyGraph()
    deps.add_route([0, 1, 2])
    deps.add_route([0, 1])       # edge (0,1) now multiplicity 2
    deps.remove_route([0, 1])
    assert deps.edge_count((0, 1)) == 1  # still present
    deps.remove_route([0, 1, 2])
    assert deps.num_edges == 0


def test_remove_unknown_route_raises():
    deps = ServerDependencyGraph()
    with pytest.raises(RoutingError):
        deps.remove_route([0, 1])


def test_cycle_after_commit():
    deps = ServerDependencyGraph()
    deps.add_route([0, 1])
    deps.add_route([1, 0])
    assert not deps.is_acyclic()
    sample = deps.cycles_sample()
    assert sample and sorted(sample[0]) == [0, 1]
