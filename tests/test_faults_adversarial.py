"""Adversarial flow schedules through the chaos harness."""

import pytest

from repro.config import configure
from repro.errors import FaultInjectionError
from repro.faults import (
    ChaosHarness,
    DegradedModePolicy,
    adversarial_flow_schedule,
    configured_flow_schedule,
    default_link_failure_scenario,
)
from repro.topology import ring_network
from repro.traffic import ClassRegistry
from repro.traffic.generators import voice_class
from repro.workload import AdversaryModel

pytestmark = pytest.mark.adversarial

HORIZON = 1.0
MODEL = AdversaryModel(rate=32.0, burst=8)


@pytest.fixture(scope="module")
def cfg():
    network = ring_network(6)
    registry = ClassRegistry.two_class(voice_class())
    pairs = [(f"r{i}", f"r{(i + 3) % 6}") for i in range(3)]
    return configure(
        network, registry, {"voice": 0.35}, pairs=pairs,
        routing="shortest-path",
    )


@pytest.fixture(scope="module")
def flows(cfg):
    return adversarial_flow_schedule(
        cfg, "voice", horizon=HORIZON, seed=3, model=MODEL
    )


class TestSchedule:
    def test_restricted_to_configured_pairs(self, cfg, flows):
        pairs = set(cfg.routes)
        for event in flows:
            if event.kind == "arrival":
                assert (
                    event.flow.source, event.flow.destination
                ) in pairs

    def test_arrivals_trimmed_to_horizon(self, flows):
        arrivals = [e for e in flows if e.kind == "arrival"]
        assert arrivals
        assert all(e.time < HORIZON for e in arrivals)

    def test_burst_packed(self, flows):
        by_time = {}
        for e in flows:
            if e.kind == "arrival":
                by_time.setdefault(e.time, []).append(e)
        assert max(len(v) for v in by_time.values()) == MODEL.burst

    def test_every_arrival_eventually_departs(self, flows):
        arrived = [e.flow.flow_id for e in flows if e.kind == "arrival"]
        departed = [
            e.flow.flow_id for e in flows if e.kind == "departure"
        ]
        assert sorted(arrived) == sorted(departed)

    def test_deterministic(self, cfg, flows):
        again = adversarial_flow_schedule(
            cfg, "voice", horizon=HORIZON, seed=3, model=MODEL
        )
        assert [
            (e.time, e.kind, e.flow.flow_id) for e in flows
        ] == [(e.time, e.kind, e.flow.flow_id) for e in again]

    def test_denser_than_the_poisson_twin(self, cfg, flows):
        poisson = configured_flow_schedule(
            cfg, "voice", arrival_rate=MODEL.rate, mean_holding=1.0,
            horizon=HORIZON, seed=3,
        )
        adv_times = sorted(
            {e.time for e in flows if e.kind == "arrival"}
        )
        poisson_times = sorted(
            {e.time for e in poisson if e.kind == "departure"}
        )
        # The adversary packs its arrivals into far fewer distinct
        # instants than a Poisson stream of the same rate.
        assert len(adv_times) < len(poisson_times)

    def test_bad_parameters_rejected(self, cfg):
        with pytest.raises(FaultInjectionError):
            adversarial_flow_schedule(
                cfg, "voice", horizon=0.0, seed=1
            )
        with pytest.raises(Exception):
            adversarial_flow_schedule(
                cfg, "no-such-class", horizon=1.0, seed=1
            )


class TestHarness:
    def test_chaos_run_survivors_hold(self, cfg, flows):
        harness = ChaosHarness(
            cfg,
            controller="utilization",
            policy=DegradedModePolicy(repair_latency=0.02),
        )
        report = harness.run(
            flows,
            default_link_failure_scenario(
                cfg, horizon=HORIZON, down_at=0.3, up_at=0.7
            ),
            horizon=HORIZON,
            simulate_packets=False,
        )
        assert report.survivors_held()
        assert len(report.transitions) == 2
