"""Unit tests for the micro-batch coalescer.

The load-bearing property — wire decisions bit-identical to sequential
in-process submission — is exercised here on hand-built op sequences
(duplicates, interleavings, pre-validated failures) and in
``test_service_property.py`` under Hypothesis.
"""

import asyncio

import pytest

from repro.admission import UtilizationAdmissionController
from repro.errors import AdmissionError, ReproError, ServiceError
from repro.routing.shortest import shortest_path_routes
from repro.service import MicroBatchCoalescer
from repro.topology import LinkServerGraph, line_network
from repro.traffic import ClassRegistry, voice_class
from repro.traffic.flows import FlowSpec
from repro.traffic.generators import all_ordered_pairs


def make_controller(alpha=0.3):
    network = line_network(4)
    graph = LinkServerGraph(network)
    voice = voice_class()
    registry = ClassRegistry.two_class(voice)
    pairs = all_ordered_pairs(network)
    routes = shortest_path_routes(network, pairs)
    controller = UtilizationAdmissionController(
        graph, registry, {voice.name: alpha}, routes
    )
    return controller, voice.name


def flow(i, cls="voice", src="r0", dst="r3"):
    return FlowSpec(f"f{i}", cls, src, dst)


def run_sequential(controller, ops):
    """Reference semantics: one in-process call per op; exceptions are
    part of the outcome."""
    outcomes = []
    for kind, arg in ops:
        try:
            if kind == "admit":
                decision = controller.admit(arg)
                outcomes.append(("decision", decision.admitted, decision.reason))
            else:
                controller.release(arg)
                outcomes.append(("released", True, ""))
        except ReproError as exc:
            outcomes.append(("error", type(exc).__name__, str(exc)))
    return outcomes


async def run_coalesced(controller, ops, **kwargs):
    """The same ops through a coalescer, submitted in order up front."""
    coalescer = MicroBatchCoalescer(controller, **kwargs)
    coalescer.start()
    futures = []
    for kind, arg in ops:
        if kind == "admit":
            futures.append(coalescer.submit_admit(arg))
        else:
            futures.append(coalescer.submit_release(arg))
    outcomes = []
    for future in futures:
        try:
            outcome = await future
        except ReproError as exc:
            outcomes.append(("error", type(exc).__name__, str(exc)))
            continue
        if outcome is True:
            outcomes.append(("released", True, ""))
        else:
            outcomes.append(("decision", outcome.admitted, outcome.reason))
    await coalescer.stop()
    return outcomes, coalescer


class TestSequentialIdentity:
    def check(self, ops, alpha=0.3, **kwargs):
        wire_controller, _ = make_controller(alpha)
        seq_controller, _ = make_controller(alpha)
        wire, coalescer = asyncio.run(
            run_coalesced(wire_controller, ops, **kwargs)
        )
        seq = run_sequential(seq_controller, ops)
        assert wire == seq
        assert (
            wire_controller.num_established
            == seq_controller.num_established
        )
        assert set(
            f.flow_id for f in wire_controller.established_flows
        ) == set(f.flow_id for f in seq_controller.established_flows)
        return wire, coalescer

    def test_plain_admits_coalesce_into_one_batch(self):
        ops = [("admit", flow(i)) for i in range(32)]
        wire, coalescer = self.check(ops)
        assert all(kind == "decision" for kind, _, _ in wire)
        # All 32 were queued before the drain loop first ran.
        assert coalescer.batches == 1
        assert coalescer.largest_batch == 32
        assert coalescer.coalesced_ops == 32

    def test_admit_release_interleaving(self):
        ops = []
        for i in range(8):
            ops.append(("admit", flow(i)))
        for i in range(0, 8, 2):
            ops.append(("release", f"f{i}"))
        ops.append(("admit", flow(100)))
        ops.append(("release", "f100"))
        self.check(ops)

    def test_duplicate_admit_of_admitted_flow_errors(self):
        ops = [("admit", flow(1)), ("admit", flow(1))]
        wire, _ = self.check(ops)
        assert wire[0][0] == "decision" and wire[0][1] is True
        assert wire[1] == (
            "error",
            "AdmissionError",
            "flow 'f1' is already established",
        )

    def test_duplicate_admit_after_rejection_is_fresh_attempt(self):
        # Tiny alpha: capacity is a handful of flows on r0->r3.  Fill
        # it, then submit the same id twice; both attempts must be
        # *decisions* (rejections), not already-established errors.
        controller, _ = make_controller(0.002)
        fill = 0
        while controller.admit(flow(1000 + fill)).admitted:
            fill += 1
        assert fill > 0
        ops = [("admit", flow(1)), ("admit", flow(1))]
        seq_controller, _ = make_controller(0.002)
        for i in range(fill + 1):
            seq_controller.admit(flow(1000 + i))
        wire, _ = asyncio.run(run_coalesced(controller, ops))
        seq = run_sequential(seq_controller, ops)
        assert wire == seq
        assert wire[0][0] == "decision" and wire[0][1] is False
        assert wire[1][0] == "decision" and wire[1][1] is False

    def test_release_of_unknown_flow_errors(self):
        wire, _ = self.check([("release", "ghost")])
        assert wire[0][0] == "error"
        assert wire[0][1] == "AdmissionError"

    def test_duplicate_release_in_one_batch(self):
        ops = [
            ("admit", flow(1)),
            ("release", "f1"),
            ("release", "f1"),
        ]
        wire, _ = self.check(ops)
        assert wire[1] == ("released", True, "")
        assert wire[2][0] == "error"

    def test_unknown_class_is_rejected_per_request(self):
        ops = [
            ("admit", flow(1)),
            ("admit", FlowSpec("f2", "no-such-class", "r0", "r3")),
            ("admit", flow(3)),
        ]
        wire, _ = self.check(ops)
        assert wire[0][0] == "decision" and wire[0][1] is True
        assert wire[1][0] == "error"
        assert wire[2][0] == "decision" and wire[2][1] is True

    def test_unroutable_pair_is_rejected_per_request(self):
        ops = [
            ("admit", FlowSpec("f1", "voice", "r0", "nowhere")),
            ("admit", flow(2)),
        ]
        wire, _ = self.check(ops)
        assert wire[0][0] == "error"
        assert wire[1][0] == "decision" and wire[1][1] is True


class TestLifecycle:
    def test_validation(self):
        controller, _ = make_controller()
        with pytest.raises(ServiceError):
            MicroBatchCoalescer(controller, max_batch=0)
        with pytest.raises(ServiceError):
            MicroBatchCoalescer(controller, max_delay=-1.0)

    def test_submit_after_stop_raises(self):
        controller, _ = make_controller()

        async def scenario():
            coalescer = MicroBatchCoalescer(controller)
            coalescer.start()
            await coalescer.stop()
            with pytest.raises(ServiceError):
                coalescer.submit_admit(flow(1))

        asyncio.run(scenario())

    def test_stop_decides_everything_still_queued(self):
        controller, _ = make_controller()

        async def scenario():
            coalescer = MicroBatchCoalescer(controller)
            coalescer.start()
            futures = [coalescer.submit_admit(flow(i)) for i in range(5)]
            await coalescer.stop()
            return [await f for f in futures]

        decisions = asyncio.run(scenario())
        assert all(d.admitted for d in decisions)

    def test_flush_waits_for_prior_ops(self):
        controller, _ = make_controller()

        async def scenario():
            coalescer = MicroBatchCoalescer(controller)
            coalescer.start()
            future = coalescer.submit_admit(flow(1))
            await coalescer.flush()
            assert future.done()
            assert coalescer.pending == 0
            await coalescer.stop()

        asyncio.run(scenario())

    def test_pause_holds_the_backlog(self):
        controller, _ = make_controller()

        async def scenario():
            coalescer = MicroBatchCoalescer(
                controller, max_delay=0.0
            )
            coalescer.start()
            coalescer.pause()
            futures = [coalescer.submit_admit(flow(i)) for i in range(7)]
            await asyncio.sleep(0.02)
            assert coalescer.pending == 7
            assert not any(f.done() for f in futures)
            coalescer.resume()
            await coalescer.flush()
            assert coalescer.pending == 0
            assert all(f.done() for f in futures)
            await coalescer.stop()

        asyncio.run(scenario())

    def test_max_batch_splits_large_backlogs(self):
        controller, _ = make_controller()

        async def scenario():
            coalescer = MicroBatchCoalescer(
                controller, max_batch=8, max_delay=0.0
            )
            coalescer.start()
            futures = [
                coalescer.submit_admit(flow(i)) for i in range(20)
            ]
            await coalescer.flush()
            await coalescer.stop()
            for future in futures:
                assert (await future).admitted
            return coalescer

        coalescer = asyncio.run(scenario())
        assert coalescer.largest_batch <= 8
        assert coalescer.coalesced_ops >= 20

    def test_delay_window_collects_trickled_ops(self):
        controller, _ = make_controller()

        async def scenario():
            coalescer = MicroBatchCoalescer(
                controller, max_delay=0.2
            )
            coalescer.start()
            first = coalescer.submit_admit(flow(0))
            # Trickle more ops in while the window is open; they must
            # land in the same batch as the first.
            for i in range(1, 5):
                await asyncio.sleep(0.005)
                coalescer.submit_admit(flow(i))
            await coalescer.flush()
            await coalescer.stop()
            await first
            return coalescer

        coalescer = asyncio.run(scenario())
        assert coalescer.largest_batch >= 5


class TestDrainLoopResilience:
    def test_poisoned_batch_fails_callers_not_the_loop(self):
        """An op whose payload blows up inside the batch step (here an
        unhashable flow id, bypassing the wire layer's validation) must
        fail its own future — not kill the drain loop and wedge every
        queued and future request."""
        controller, _ = make_controller()

        async def scenario():
            coalescer = MicroBatchCoalescer(controller, max_delay=0)
            coalescer.start()
            bad = coalescer.submit_release(["not", "hashable"])
            with pytest.raises(TypeError):
                await bad
            # The loop survives: later ops are still decided, and
            # flush/stop do not deadlock.
            decision = await coalescer.submit_admit(flow(1))
            assert decision.admitted
            await coalescer.flush()
            await coalescer.stop()
            assert coalescer.pending == 0

        asyncio.run(scenario())

    def test_poisoned_batch_resolves_interleaved_barriers(self):
        controller, _ = make_controller()

        async def scenario():
            coalescer = MicroBatchCoalescer(controller, max_delay=0)
            coalescer.start()
            coalescer.pause()
            bad = coalescer.submit_release({"k": 1})
            flush = asyncio.ensure_future(coalescer.flush())
            coalescer.resume()
            with pytest.raises(TypeError):
                await bad
            await asyncio.wait_for(flush, 5)
            await coalescer.stop()

        asyncio.run(scenario())


class TestObsIntegration:
    def test_counters_recorded_when_enabled(self):
        from repro import obs

        controller, _ = make_controller()

        async def scenario():
            coalescer = MicroBatchCoalescer(controller)
            coalescer.start()
            futures = [coalescer.submit_admit(flow(i)) for i in range(4)]
            await asyncio.gather(*futures)
            await coalescer.stop()

        obs.enable(fresh=True)
        try:
            asyncio.run(scenario())
            text = obs.prometheus_text()
        finally:
            obs.disable()
        assert "repro_service_batches_total" in text
        assert "repro_service_batch_fill" in text
        assert "repro_service_coalesce_seconds" in text


class TestBulkSubmission:
    """The v2 bulk frame path: inline fast path vs the queue fallback."""

    @staticmethod
    def admit_entries(coalescer, n, start_index=0):
        return [
            (start_index + i, "admit", flow(start_index + i))
            for i in range(n)
        ]

    def test_idle_frame_is_decided_inline(self):
        controller, _ = make_controller()

        async def scenario():
            coalescer = MicroBatchCoalescer(controller)
            coalescer.start()
            slots = coalescer.open_bulk(4)
            coalescer.submit_bulk(
                slots, self.admit_entries(coalescer, 4)
            )
            # Inline: everything settled synchronously, no queue round.
            assert slots.remaining == 0
            await slots.wait()  # returns immediately
            assert all(
                outcome.admitted for outcome in slots.outcomes
            )
            assert coalescer.batches == 1
            assert coalescer.pending == 0
            await coalescer.stop()

        asyncio.run(scenario())

    def test_inline_chunks_by_max_batch(self):
        controller, _ = make_controller()

        async def scenario():
            coalescer = MicroBatchCoalescer(controller, max_batch=3)
            coalescer.start()
            slots = coalescer.open_bulk(8)
            coalescer.submit_bulk(
                slots, self.admit_entries(coalescer, 8)
            )
            await slots.wait()
            # 8 ops through max_batch=3 -> 3 kernel batches.
            assert coalescer.batches == 3
            assert coalescer.largest_batch == 3
            await coalescer.stop()

        asyncio.run(scenario())

    def test_paused_coalescer_falls_back_to_the_queue(self):
        controller, _ = make_controller()

        async def scenario():
            coalescer = MicroBatchCoalescer(controller, max_delay=0)
            coalescer.start()
            coalescer.pause()
            slots = coalescer.open_bulk(2)
            coalescer.submit_bulk(
                slots, self.admit_entries(coalescer, 2)
            )
            # Queued, not decided: the pause holds the backlog.
            assert slots.remaining == 2
            assert coalescer.pending == 2
            coalescer.resume()
            await asyncio.wait_for(slots.wait(), 5)
            assert all(o.admitted for o in slots.outcomes)
            await coalescer.stop()

        asyncio.run(scenario())

    def test_pending_ops_force_the_queue_for_ordering(self):
        controller, _ = make_controller()

        async def scenario():
            coalescer = MicroBatchCoalescer(controller, max_delay=0)
            coalescer.start()
            coalescer.pause()
            first = coalescer.submit_admit(flow(0))
            slots = coalescer.open_bulk(1)
            # An undecided op is in flight: the frame must queue behind
            # it, not jump the order.
            coalescer.submit_bulk(slots, [(0, "release", "f0")])
            assert slots.remaining == 1
            coalescer.resume()
            decision = await first
            await asyncio.wait_for(slots.wait(), 5)
            assert decision.admitted
            assert slots.outcomes[0] is True  # released after admit
            await coalescer.stop()

        asyncio.run(scenario())

    def test_audit_log_disables_the_inline_path(self, tmp_path):
        from repro.service.audit import AuditLog

        controller, _ = make_controller()

        async def scenario():
            coalescer = MicroBatchCoalescer(controller)
            coalescer.start()
            coalescer.audit = AuditLog(str(tmp_path / "audit.jsonl"))
            slots = coalescer.open_bulk(1)
            coalescer.submit_bulk(
                slots, self.admit_entries(coalescer, 1)
            )
            # Not inline: the audit record is written at commit time by
            # the drain loop, so the op must travel through the queue.
            assert slots.remaining == 1
            await asyncio.wait_for(slots.wait(), 5)
            assert slots.outcomes[0].admitted
            await coalescer.stop()
            coalescer.audit.close()

        asyncio.run(scenario())

    def test_inline_and_queued_outcomes_identical(self):
        ops = []
        for i in (0, 1, 0, 2):  # duplicate admit of f0 in one frame
            ops.append((len(ops), "admit", flow(i)))
        ops.append((len(ops), "release", "f1"))
        ops.append((len(ops), "release", "nope"))

        def shape(outcome):
            if isinstance(outcome, Exception):
                return ("error", type(outcome).__name__, str(outcome))
            if outcome is True:
                return ("released",)
            return ("decision", outcome.admitted, outcome.reason)

        async def run_frame(paused):
            controller, _ = make_controller()
            coalescer = MicroBatchCoalescer(controller, max_delay=0)
            coalescer.start()
            if paused:
                coalescer.pause()
            slots = coalescer.open_bulk(len(ops))
            coalescer.submit_bulk(slots, list(ops))
            if paused:
                coalescer.resume()
            await asyncio.wait_for(slots.wait(), 5)
            await coalescer.stop()
            return [shape(o) for o in slots.outcomes]

        inline = asyncio.run(run_frame(paused=False))
        queued = asyncio.run(run_frame(paused=True))
        assert inline == queued
        assert inline[0] == ("decision", True, "")
        assert inline[2][0] == "error"  # duplicate admit of f0

    def test_submit_bulk_after_stop_raises(self):
        controller, _ = make_controller()

        async def scenario():
            coalescer = MicroBatchCoalescer(controller)
            coalescer.start()
            await coalescer.stop()
            slots = coalescer.open_bulk(1)
            with pytest.raises(ServiceError):
                coalescer.submit_bulk(
                    slots, self.admit_entries(coalescer, 1)
                )

        asyncio.run(scenario())

    def test_poisoned_inline_frame_fails_only_its_callers(self):
        controller, _ = make_controller()

        async def scenario():
            coalescer = MicroBatchCoalescer(controller)
            coalescer.start()
            slots = coalescer.open_bulk(1)
            # An unhashable flow id detonates inside the batch step.
            bad_flow = FlowSpec({"k": 1}, "voice", "r0", "r3")
            coalescer.submit_bulk(slots, [(0, "admit", bad_flow)])
            assert isinstance(slots.outcomes[0], TypeError)
            # The coalescer survives and keeps deciding.
            good = coalescer.open_bulk(1)
            coalescer.submit_bulk(
                good, [(0, "admit", flow(9))]
            )
            await good.wait()
            assert good.outcomes[0].admitted
            await coalescer.stop()

        asyncio.run(scenario())
