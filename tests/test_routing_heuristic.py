"""The Section 5.2 safe route selection heuristic."""

import numpy as np
import pytest

from repro.analysis import single_class_delays
from repro.errors import RoutingError
from repro.routing import HeuristicOptions, SafeRouteSelector
from repro.topology import LinkServerGraph
from repro.traffic import TrafficClass


SUBSET = [
    ("Seattle", "Miami"),
    ("Boston", "Phoenix"),
    ("SanFrancisco", "Orlando"),
    ("Detroit", "Houston"),
    ("NewYork", "LosAngeles"),
    ("Denver", "WashingtonDC"),
    ("Chicago", "Dallas"),
    ("Atlanta", "Seattle"),
]


@pytest.fixture(scope="module")
def selector(mci, voice):
    return SafeRouteSelector(mci, voice)


def test_success_routes_every_pair(selector):
    out = selector.select(SUBSET, alpha=0.4)
    assert out.success
    assert set(out.routes) == set(SUBSET)
    assert out.failed_pair is None


def test_routes_are_valid_paths(mci, selector):
    out = selector.select(SUBSET, alpha=0.4)
    for (src, dst), path in out.routes.items():
        assert path[0] == src and path[-1] == dst
        for a, b in zip(path, path[1:]):
            assert mci.has_link(a, b)
        assert len(set(path)) == len(path)  # simple


def test_outcome_is_certified_safe(mci, mci_graph, voice, selector):
    """Independent verification of the returned route set."""
    alpha = 0.45
    out = selector.select(SUBSET, alpha=alpha)
    assert out.success
    check = single_class_delays(
        mci_graph, list(out.routes.values()), voice, alpha
    )
    assert check.safe
    assert check.worst_route_delay == pytest.approx(
        out.worst_route_delay, rel=1e-6
    )


def test_failure_at_absurd_alpha(selector, mci_pairs):
    out = selector.select(mci_pairs, alpha=0.99)
    assert not out.success
    assert out.failed_pair is not None
    assert out.num_routed < len(mci_pairs)


def test_duplicate_pairs_rejected(selector):
    with pytest.raises(RoutingError):
        selector.select([("Seattle", "Miami")] * 2, alpha=0.3)


def test_best_effort_class_rejected(mci):
    with pytest.raises(RoutingError):
        SafeRouteSelector(mci, TrafficClass.best_effort())


def test_distance_ordering(mci, voice):
    """With ordering on, the farthest pair is routed first (and logged
    in insertion order of the routes dict)."""
    sel = SafeRouteSelector(mci, voice)
    out = sel.select(SUBSET, alpha=0.35)
    first_pair = next(iter(out.routes))
    import networkx as nx

    dist = lambda p: nx.shortest_path_length(mci.graph, p[0], p[1])
    assert dist(first_pair) == max(dist(p) for p in SUBSET)


def test_order_toggle_changes_processing(mci, voice):
    sel = SafeRouteSelector(
        mci, voice, options=HeuristicOptions(order_by_distance=False)
    )
    out = sel.select(SUBSET, alpha=0.35)
    assert out.success
    assert list(out.routes) == SUBSET  # given order preserved


def test_options_validation():
    with pytest.raises(RoutingError):
        HeuristicOptions(k_candidates=0)
    with pytest.raises(RoutingError):
        HeuristicOptions(detour_slack=-1)


def test_full_heuristic_beats_or_matches_crippled(mci, voice, mci_pairs):
    """The full heuristic survives at an alpha where the no-frills variant
    (first-candidate, no ordering, no cycle avoidance) fails — or at
    least never does worse on this scenario."""
    alpha = 0.5
    full = SafeRouteSelector(mci, voice).select(mci_pairs, alpha)
    crippled = SafeRouteSelector(
        mci,
        voice,
        options=HeuristicOptions(
            order_by_distance=False,
            prefer_acyclic=False,
            min_delay_choice=False,
        ),
    ).select(mci_pairs, alpha)
    assert full.success
    if crippled.success:
        assert full.worst_route_delay <= crippled.worst_route_delay + 1e-9


def test_selector_reusable_across_alphas(selector):
    a = selector.select(SUBSET, alpha=0.35)
    b = selector.select(SUBSET, alpha=0.45)
    assert a.success and b.success
    # Internal state (delays) must not leak across calls: re-running the
    # first alpha reproduces the first result exactly.
    a2 = selector.select(SUBSET, alpha=0.35)
    assert a.routes == a2.routes
    assert a.worst_route_delay == pytest.approx(a2.worst_route_delay)


def test_monotone_worst_delay_in_alpha(selector):
    a = selector.select(SUBSET, alpha=0.30)
    b = selector.select(SUBSET, alpha=0.45)
    assert a.worst_route_delay <= b.worst_route_delay + 1e-12
