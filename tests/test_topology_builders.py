"""Built-in topologies, including the paper's Figure 4 reconstruction."""

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.topology import (
    MCI_EDGES,
    MCI_ROUTERS,
    dumbbell_network,
    full_mesh,
    grid_network,
    line_network,
    mci_backbone,
    random_network,
    ring_network,
    star_network,
    tree_network,
)


class TestMCIBackbone:
    """Figure 4 properties the paper states and the analysis consumes."""

    def test_router_count(self, mci):
        assert mci.num_routers == 18

    def test_diameter_is_four(self, mci):
        assert mci.diameter() == 4  # the paper's L

    def test_max_degree_is_six(self, mci):
        assert mci.max_degree() == 6  # the paper's N

    def test_connected(self, mci):
        assert mci.is_connected()

    def test_default_capacity_100mbps(self, mci):
        for link in mci.directed_links():
            assert link.capacity == 100e6

    def test_all_routers_are_edge_routers(self, mci):
        # "all routers can act as edge routers" (Section 6)
        assert sorted(mci.edge_routers()) == sorted(mci.routers())

    def test_edge_list_matches_constant(self, mci):
        assert mci.num_physical_links == len(MCI_EDGES)
        for u, v in MCI_EDGES:
            assert mci.has_link(u, v)

    def test_router_names_unique(self):
        assert len(set(MCI_ROUTERS)) == len(MCI_ROUTERS)

    def test_custom_capacity(self):
        net = mci_backbone(capacity=1e9)
        assert net.capacity("Seattle", "Denver") == 1e9

    def test_some_pair_at_diameter(self, mci):
        lengths = dict(nx.all_pairs_shortest_path_length(mci.graph))
        assert lengths["Boston"]["Phoenix"] == 4


class TestSyntheticBuilders:
    def test_line(self):
        net = line_network(5)
        assert net.num_routers == 5
        assert net.diameter() == 4

    def test_line_too_small(self):
        with pytest.raises(TopologyError):
            line_network(1)

    def test_ring(self):
        net = ring_network(6)
        assert net.num_physical_links == 6
        assert net.diameter() == 3

    def test_ring_too_small(self):
        with pytest.raises(TopologyError):
            ring_network(2)

    def test_star(self):
        net = star_network(5)
        assert net.max_degree() == 5
        assert net.diameter() == 2

    def test_full_mesh(self):
        net = full_mesh(4)
        assert net.num_physical_links == 6
        assert net.diameter() == 1

    def test_grid(self):
        net = grid_network(3, 4)
        assert net.num_routers == 12
        assert net.diameter() == 5  # (3-1) + (4-1)

    def test_grid_invalid(self):
        with pytest.raises(TopologyError):
            grid_network(1, 1)

    def test_tree(self):
        net = tree_network(2, 3)
        assert net.num_routers == 15
        assert net.diameter() == 6

    def test_dumbbell_bottleneck(self):
        net = dumbbell_network(3, 2, bottleneck_capacity=10e6)
        assert net.capacity("hubL", "hubR") == 10e6
        assert net.capacity("L0", "hubL") == 100e6
        # only leaves are edge routers
        assert "hubL" not in net.edge_routers()
        assert len(net.edge_routers()) == 5

    def test_random_connected_and_deterministic(self):
        a = random_network(12, 0.3, seed=7)
        b = random_network(12, 0.3, seed=7)
        assert a.is_connected()
        assert set(l.key for l in a.directed_links()) == set(
            l.key for l in b.directed_links()
        )

    def test_random_different_seed_differs(self):
        a = random_network(12, 0.3, seed=7)
        b = random_network(12, 0.3, seed=8)
        assert set(l.key for l in a.directed_links()) != set(
            l.key for l in b.directed_links()
        )

    def test_random_validation(self):
        with pytest.raises(TopologyError):
            random_network(1, 0.5, seed=0)
        with pytest.raises(TopologyError):
            random_network(5, 0.0, seed=0)
