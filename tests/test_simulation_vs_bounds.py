"""Cross-validation: simulated delays never exceed the analytic bounds.

These are the strongest correctness tests in the repository: the
configuration-time bound (Theorems 1-3) must dominate every packet's
measured end-to-end delay for any admissible, envelope-compliant traffic,
including the adversarial greedy pattern.
"""

import numpy as np
import pytest

from repro.analysis import multi_class_delays, single_class_delays
from repro.simulation import PacketPattern, Simulator
from repro.topology import LinkServerGraph, line_network, star_network
from repro.traffic import ClassRegistry, FlowSpec, video_class, voice_class


def _sf_allowance(hops: int, packet_bits: float, capacity: float) -> float:
    """Store-and-forward constant vs the fluid analysis.

    The Cruz-style bounds are fluid (bits drain continuously); a packet
    network adds up to one packet transmission per hop plus one at the
    ingress wire.  The paper folds such constants into the deadline
    (Section 3); the tests add them back explicitly.
    """
    return (hops + 1) * packet_bits / capacity


@pytest.mark.parametrize("pattern_kind", ["greedy", "periodic", "poisson"])
def test_line_network_bound_dominates(pattern_kind, voice, voice_registry):
    net = line_network(4)
    graph = LinkServerGraph(net)
    route = ["r0", "r1", "r2", "r3"]
    alpha = 0.05
    n_flows = 40  # 40 * 32k = 1.28 Mbps << alpha*C = 5 Mbps

    sim = Simulator(graph, voice_registry)
    for i in range(n_flows):
        sim.add_flow(
            FlowSpec(f"v{i}", "voice", "r0", "r3"),
            route,
            PacketPattern(pattern_kind, packet_size=640, seed=i),
        )
    report = sim.run(horizon=1.0)
    bound = single_class_delays(graph, [route], voice, alpha)
    assert bound.safe
    allowance = _sf_allowance(3, 640, 100e6)
    assert report.max_e2e("voice") <= bound.worst_route_delay + allowance


def test_star_convergence_bound_dominates(voice, voice_registry):
    """Flows converging from distinct input links — real contention."""
    net = star_network(4)
    graph = LinkServerGraph(net)
    alpha = 0.05
    routes = [[f"leaf{b}", "hub", "leaf3"] for b in range(3)]
    per_branch = 50  # 150 flows * 32k = 4.8 Mbps <= 5 Mbps

    sim = Simulator(graph, voice_registry)
    for b in range(3):
        for i in range(per_branch):
            sim.add_flow(
                FlowSpec(f"v{b}_{i}", "voice", f"leaf{b}", "leaf3"),
                routes[b],
                PacketPattern("greedy", packet_size=640, seed=b * 100 + i),
            )
    report = sim.run(horizon=1.0)
    bound = single_class_delays(
        graph, routes, voice, alpha, n_mode="per_server"
    )
    assert bound.safe
    measured = report.max_e2e("voice")
    allowance = _sf_allowance(2, 640, 100e6)
    assert measured <= bound.worst_route_delay + allowance
    # The bound should be doing real work (non-trivial traffic).
    assert measured > 2 * 640 / 100e6


def test_per_hop_bounds_dominate(voice, voice_registry):
    """Not just end-to-end: each server's measured residence stays below
    its analytic per-server bound."""
    net = star_network(4)
    graph = LinkServerGraph(net)
    alpha = 0.04
    routes = [[f"leaf{b}", "hub", "leaf3"] for b in range(3)]
    sim = Simulator(graph, voice_registry)
    for b in range(3):
        for i in range(40):
            sim.add_flow(
                FlowSpec(f"v{b}_{i}", "voice", f"leaf{b}", "leaf3"),
                routes[b],
                PacketPattern("greedy", packet_size=640, seed=7 * b + i),
            )
    report = sim.run(horizon=1.0)
    bound = single_class_delays(
        graph, routes, voice, alpha, n_mode="per_server"
    )
    per_hop_allowance = 2 * 640 / 100e6  # own transmission + quantization
    for s in range(graph.num_servers):
        measured = report.recorder.max_hop_delay(s, "voice")
        assert measured <= float(bound.server_delays[s]) + per_hop_allowance


def test_multiclass_bounds_dominate():
    """Voice + video together under Theorem 5 bounds."""
    voice = voice_class()
    video = video_class()
    registry = ClassRegistry([voice, video])
    net = star_network(4)
    graph = LinkServerGraph(net)
    routes = [[f"leaf{b}", "hub", "leaf3"] for b in range(3)]
    alphas = {"voice": 0.03, "video": 0.10}

    sim = Simulator(graph, registry)
    for b in range(3):
        for i in range(30):  # 90 voice flows: 2.88 Mbps <= 3 Mbps
            sim.add_flow(
                FlowSpec(f"v{b}_{i}", "voice", f"leaf{b}", "leaf3"),
                routes[b],
                PacketPattern("greedy", packet_size=640, seed=i),
            )
        for i in range(3):  # 9 video flows: 9 Mbps <= 10 Mbps
            sim.add_flow(
                FlowSpec(f"w{b}_{i}", "video", f"leaf{b}", "leaf3"),
                routes[b],
                PacketPattern("greedy", packet_size=8_000, seed=i),
            )
    report = sim.run(horizon=1.0)
    # Uniform fan-in (paper convention): per-server mode would need the
    # fan-in >= 2 guard, which leaf servers of a star violate.
    bound = multi_class_delays(
        graph,
        {"voice": routes, "video": routes},
        registry,
        alphas,
        n_mode="uniform",
    )
    assert bound.safe
    # Largest packet on the path (video, 8 kb) sets the SF constant.
    allowance = _sf_allowance(2, 8_000, 100e6)
    assert report.max_e2e("voice") <= (
        bound.per_class["voice"].route_delays.max() + allowance
    )
    assert report.max_e2e("video") <= (
        bound.per_class["video"].route_delays.max() + allowance
    )


def test_mci_subset_bound_dominates(mci, mci_graph, voice, voice_registry):
    """A converging pattern on the real evaluation topology."""
    alpha = 0.02
    routes = [
        ["Seattle", "Chicago", "NewYork", "Boston"],
        ["Denver", "Chicago", "NewYork", "Boston"],
        ["KansasCity", "Chicago", "NewYork", "Boston"],
        ["Atlanta", "Chicago", "NewYork", "Boston"],
    ]
    sim = Simulator(mci_graph, voice_registry)
    fid = 0
    for route in routes:
        for i in range(15):  # 60 flows * 32k = 1.92 Mbps <= 2 Mbps
            sim.add_flow(
                FlowSpec(f"v{fid}", "voice", route[0], route[-1]),
                route,
                PacketPattern("greedy", packet_size=640, seed=fid),
            )
            fid += 1
    report = sim.run(horizon=1.0)
    bound = single_class_delays(mci_graph, routes, voice, alpha)
    assert bound.safe
    allowance = _sf_allowance(3, 640, 100e6)
    assert report.max_e2e("voice") <= bound.worst_route_delay + allowance
