"""Chaos harness: fault replay against the live admission co-simulation."""

import pytest

from repro.config import configure
from repro.errors import FaultInjectionError
from repro.faults import (
    BackoffPolicy,
    ChaosHarness,
    DegradedModePolicy,
    FaultEvent,
    FaultSchedule,
    configured_flow_schedule,
    default_link_failure_scenario,
    most_loaded_link,
)
from repro.topology import ring_network
from repro.traffic import ClassRegistry
from repro.traffic.generators import voice_class

PAIRS = [
    ("Seattle", "Miami"),
    ("Boston", "Phoenix"),
    ("Chicago", "Dallas"),
    ("NewYork", "LosAngeles"),
    ("Denver", "WashingtonDC"),
]

HORIZON = 2.0


@pytest.fixture(scope="module")
def cfg(mci, voice_registry):
    return configure(
        mci, voice_registry, {"voice": 0.35}, pairs=PAIRS,
        routing="shortest-path",
    )


@pytest.fixture(scope="module")
def flows(cfg):
    return configured_flow_schedule(
        cfg, "voice", arrival_rate=30.0, mean_holding=1.0,
        horizon=HORIZON, seed=7,
    )


@pytest.fixture(scope="module")
def link_faults(cfg):
    return default_link_failure_scenario(cfg, horizon=HORIZON)


def run_chaos(cfg, flows, faults, **kwargs):
    kwargs.setdefault(
        "policy", DegradedModePolicy(repair_latency=0.02)
    )
    controller = kwargs.pop("controller", "utilization")
    harness = ChaosHarness(
        cfg,
        controller=controller,
        policy=kwargs.pop("policy"),
        batch_admission=kwargs.pop("batch_admission", False),
    )
    return harness.run(
        flows, faults, horizon=HORIZON, seed=7, **kwargs
    )


class TestScenarioHelpers:
    def test_flow_schedule_restricted_to_configured_pairs(self, cfg, flows):
        pairs = set(cfg.routes)
        assert flows
        assert all(e.flow.pair in pairs for e in flows)

    def test_flow_schedule_deterministic(self, cfg, flows):
        again = configured_flow_schedule(
            cfg, "voice", arrival_rate=30.0, mean_holding=1.0,
            horizon=HORIZON, seed=7,
        )
        assert [
            (e.time, e.kind, e.flow.flow_id) for e in again
        ] == [(e.time, e.kind, e.flow.flow_id) for e in flows]

    def test_every_arrival_has_departure(self, flows):
        arrivals = {e.flow.flow_id for e in flows if e.kind == "arrival"}
        departures = {
            e.flow.flow_id for e in flows if e.kind == "departure"
        }
        assert arrivals == departures

    def test_most_loaded_link_is_configured(self, cfg):
        u, v = most_loaded_link(cfg)
        assert cfg.network.has_link(u, v)
        assert any(
            (u, v) in zip(path, path[1:])
            or (v, u) in zip(path, path[1:])
            for path in cfg.routes.values()
        )


class TestLinkFailureTransition:
    """The acceptance scenario: link failure + repair on MCI."""

    @pytest.fixture(scope="class")
    def report(self, cfg, flows, link_faults):
        return run_chaos(cfg, flows, link_faults)

    def test_every_flow_accounted(self, report, flows):
        assert report.accounts_for(
            e.flow.flow_id for e in flows
        )
        assert len(report.flows) == len(
            {e.flow.flow_id for e in flows}
        )

    def test_zero_survivor_deadline_misses(self, report):
        assert report.simulated
        assert report.packets_injected > 0
        assert report.survivors_held()

    def test_transition_repaired_online(self, report):
        down = [t for t in report.transitions if t.kind == "link_down"]
        assert len(down) == 1
        record = down[0]
        assert record.repair_attempted and record.repair_success
        assert record.casualties  # the failed link actually carried flows
        # Every casualty of the transition was rerouted or shed.
        assert set(record.casualties) == set(
            record.rerouted
        ) | set(record.shed)
        assert record.time_to_resolve == pytest.approx(0.02)

    def test_casualties_flagged_and_rerouted(self, report):
        casualties = [
            a for a in report.flows.values() if a.casualty
        ]
        assert casualties
        assert any(a.reroutes > 0 for a in casualties)

    def test_deterministic_replay_bit_identical(
        self, cfg, flows, link_faults, report
    ):
        again = run_chaos(cfg, flows, link_faults)
        assert again.to_json() == report.to_json()

    def test_flow_level_only_run_skips_packets(
        self, cfg, flows, link_faults
    ):
        report = run_chaos(
            cfg, flows, link_faults, simulate_packets=False
        )
        assert not report.simulated
        assert report.packets_injected == 0

    def test_report_json_schema(self, report):
        data = report.to_dict()
        assert data["schema"] == "repro-transition-report/v1"
        assert data["controller"] == "utilization"
        total = sum(data["outcomes"].values())
        assert total == len(data["flows"])


class TestShardedController:
    def test_sharded_survives_link_failure(self, cfg, flows, link_faults):
        report = run_chaos(
            cfg, flows, link_faults, controller="sharded"
        )
        assert report.survivors_held()
        assert report.accounts_for(e.flow.flow_id for e in flows)

    def test_sharded_rejects_controller_faults(self, cfg, flows):
        faults = FaultSchedule(
            [
                FaultEvent(0.5, "controller_crash"),
                FaultEvent(0.9, "controller_restore"),
            ]
        )
        with pytest.raises(FaultInjectionError):
            run_chaos(cfg, flows, faults, controller="sharded")


class TestBatchAdmissionMode:
    """The vectorized admission path under faults.

    ``batch_admission=True`` routes every harness admission through
    ``admit_batch`` as single-flow batches; the transition report must
    be indistinguishable from the scalar path.
    """

    def test_report_identical_to_scalar_path(
        self, cfg, flows, link_faults
    ):
        scalar = run_chaos(
            cfg, flows, link_faults, simulate_packets=False
        )
        batch = run_chaos(
            cfg, flows, link_faults, simulate_packets=False,
            batch_admission=True,
        )
        assert batch.to_dict() == scalar.to_dict()

    def test_batch_mode_survivors_hold_under_failure(
        self, cfg, flows, link_faults
    ):
        report = run_chaos(
            cfg, flows, link_faults, batch_admission=True
        )
        assert report.survivors_held()
        assert report.accounts_for(e.flow.flow_id for e in flows)

    def test_batch_mode_sharded_controller(
        self, cfg, flows, link_faults
    ):
        scalar = run_chaos(
            cfg, flows, link_faults, controller="sharded",
            simulate_packets=False,
        )
        batch = run_chaos(
            cfg, flows, link_faults, controller="sharded",
            simulate_packets=False, batch_admission=True,
        )
        assert batch.to_dict() == scalar.to_dict()


class TestRouterDown:
    def test_endpoint_flows_shed_others_rerouted(self, cfg, flows):
        faults = FaultSchedule(
            [FaultEvent(0.6, "router_down", "Chicago")],
            network=cfg.network,
        )
        report = run_chaos(cfg, flows, faults)
        assert report.survivors_held()
        record = report.transitions[0]
        assert record.repair_attempted
        # (Chicago, Dallas) flows terminate at the dead router: any of
        # them established at fault time must be shed, never rerouted.
        for account in report.flows.values():
            if "Chicago" in account.pair and account.casualty:
                assert account.outcome == "shed"
                assert account.reroutes == 0


class TestControllerCrash:
    def test_crash_loses_arrivals_but_keeps_established(
        self, cfg, flows
    ):
        faults = FaultSchedule(
            [
                FaultEvent(0.5, "controller_crash"),
                FaultEvent(0.9, "controller_restore"),
            ]
        )
        report = run_chaos(cfg, flows, faults)
        outcomes = report.outcomes
        assert outcomes.get("lost_outage", 0) > 0
        # Established flows sail through the outage untouched: no
        # casualties, no drops, no misses.
        assert not any(a.casualty for a in report.flows.values())
        assert report.survivors_held()
        crash = [
            t for t in report.transitions
            if t.kind == "controller_crash"
        ][0]
        assert crash.time_to_resolve == pytest.approx(0.4)

    def test_admissions_resume_after_restore(self, cfg, flows):
        faults = FaultSchedule(
            [
                FaultEvent(0.2, "controller_crash"),
                FaultEvent(0.3, "controller_restore"),
            ]
        )
        report = run_chaos(cfg, flows, faults)
        admitted_after = [
            a
            for a in report.flows.values()
            if a.admitted_at is not None and a.admitted_at > 0.3
        ]
        assert admitted_after


class TestGracefulDegradation:
    """No safe repair exists: fall back to degraded admission."""

    @pytest.fixture(scope="class")
    def ring_cfg(self):
        # A skinny ring at alpha 0.5 verifies, but after losing r1--r2
        # no replacement route set verifies (the detour is too long), so
        # the harness must degrade rather than repair.
        net = ring_network(8, capacity=10e6)
        reg = ClassRegistry([voice_class()])
        pairs = [(f"r{i}", f"r{(i + 2) % 8}") for i in range(8)]
        return configure(
            net, reg, {"voice": 0.5}, pairs=pairs,
            routing="shortest-path",
        )

    @pytest.fixture(scope="class")
    def ring_report(self, ring_cfg):
        flows = configured_flow_schedule(
            ring_cfg, "voice", arrival_rate=40.0, mean_holding=1.0,
            horizon=HORIZON, seed=3,
        )
        faults = FaultSchedule(
            [
                FaultEvent(0.6, "link_down", ("r1", "r2")),
                FaultEvent(1.5, "link_up", ("r1", "r2")),
            ],
            network=ring_cfg.network,
        )
        harness = ChaosHarness(
            ring_cfg,
            policy=DegradedModePolicy(
                alpha_factor=0.5,
                backoff=BackoffPolicy(base=0.05, max_retries=3),
                repair_latency=0.02,
            ),
        )
        return harness.run(flows, faults, horizon=HORIZON, seed=3)

    def test_enters_degraded_mode(self, ring_report):
        down = [
            t for t in ring_report.transitions
            if t.kind == "link_down"
        ][0]
        assert down.repair_attempted and not down.repair_success
        assert down.repair_reason
        assert down.degraded_mode_entered

    def test_casualties_accounted(self, ring_report):
        down = [
            t for t in ring_report.transitions
            if t.kind == "link_down"
        ][0]
        # Every casualty ends rerouted or shed (possibly after retries).
        finished = set(down.rerouted) | set(down.shed)
        pending = {
            str(a.flow_id)
            for a in ring_report.flows.values()
            if str(a.flow_id) in set(down.casualties)
            and a.outcome == "active"
        }
        assert set(down.casualties) <= finished | pending | {
            str(a.flow_id)
            for a in ring_report.flows.values()
            if a.outcome in ("completed", "shed")
        }

    def test_deterministic(self, ring_cfg, ring_report):
        flows = configured_flow_schedule(
            ring_cfg, "voice", arrival_rate=40.0, mean_holding=1.0,
            horizon=HORIZON, seed=3,
        )
        faults = FaultSchedule(
            [
                FaultEvent(0.6, "link_down", ("r1", "r2")),
                FaultEvent(1.5, "link_up", ("r1", "r2")),
            ],
            network=ring_cfg.network,
        )
        harness = ChaosHarness(
            ring_cfg,
            policy=DegradedModePolicy(
                alpha_factor=0.5,
                backoff=BackoffPolicy(base=0.05, max_retries=3),
                repair_latency=0.02,
            ),
        )
        again = harness.run(flows, faults, horizon=HORIZON, seed=3)
        assert again.to_json() == ring_report.to_json()


class TestBackoffRetry:
    """Rejected re-admissions back off, retry, and eventually shed."""

    @pytest.fixture(scope="class")
    def hot_cfg(self):
        net = ring_network(8, capacity=10e6)
        reg = ClassRegistry([voice_class()])
        pairs = [(f"r{i}", f"r{(i + 2) % 8}") for i in range(8)]
        return configure(
            net, reg, {"voice": 0.5}, pairs=pairs,
            routing="shortest-path",
        )

    @staticmethod
    def hot_events(early_departure: float):
        # Ten flows crowd the (r1, r3) pair; after r1--r2 dies their
        # only detour is the counterclockwise ring, and at
        # alpha_factor=0.05 its degraded ledger holds just 7 of them.
        from repro.traffic.flows import FlowSpec
        from repro.traffic.generators import FlowEvent

        events = []
        for i in range(10):
            flow = FlowSpec(f"hot{i}", "voice", "r1", "r3")
            events.append(
                FlowEvent(0.1 + 0.01 * i, "arrival", flow)
            )
            events.append(
                FlowEvent(
                    early_departure if i < 3 else 1.8,
                    "departure",
                    flow,
                )
            )
        return events

    @staticmethod
    def hot_faults(net):
        return FaultSchedule(
            [FaultEvent(0.6, "link_down", ("r1", "r2"))],
            network=net,
        )

    def test_retries_succeed_once_capacity_drains(self, hot_cfg):
        harness = ChaosHarness(
            hot_cfg,
            policy=DegradedModePolicy(
                alpha_factor=0.05,
                backoff=BackoffPolicy(
                    base=0.05, factor=2.0, max_retries=5
                ),
                repair_latency=0.02,
            ),
        )
        report = harness.run(
            self.hot_events(0.9),
            self.hot_faults(hot_cfg.network),
            horizon=2.0,
            seed=1,
        )
        down = report.transitions[0]
        assert not down.repair_success
        assert len(down.rerouted) == 7  # degraded cap: floor(156*0.05)
        assert down.retries > 0
        assert report.total_retries == down.retries
        # The three overflow flows got in after the 0.9 departures.
        assert report.outcomes == {"completed": 10}
        assert down.time_to_resolve is not None
        assert down.time_to_resolve > 0.02
        assert report.survivors_held()

    def test_exhausted_retries_shed_the_flow(self, hot_cfg):
        harness = ChaosHarness(
            hot_cfg,
            policy=DegradedModePolicy(
                alpha_factor=0.05,
                backoff=BackoffPolicy(
                    base=0.05, factor=2.0, max_retries=2
                ),
                repair_latency=0.02,
            ),
        )
        # Blockers hold until 1.8, so both retries (t=0.67, 0.77) fail.
        report = harness.run(
            self.hot_events(1.8),
            self.hot_faults(hot_cfg.network),
            horizon=2.0,
            seed=1,
        )
        down = report.transitions[0]
        assert report.flows_shed == 3
        assert len(down.shed) == 3
        assert set(down.casualties) == set(down.rerouted) | set(
            down.shed
        )


class TestValidation:
    def test_empty_flow_schedule_rejected(self, cfg):
        faults = FaultSchedule(
            [FaultEvent(0.5, "link_down", ("Chicago", "Denver"))]
        )
        with pytest.raises(FaultInjectionError):
            ChaosHarness(cfg).run([], faults, horizon=1.0)

    def test_unknown_controller_rejected(self, cfg):
        with pytest.raises(FaultInjectionError):
            ChaosHarness(cfg, controller="quantum")
