"""Flow-aware (general delay formula) analysis."""

import numpy as np
import pytest

from repro.analysis import flow_aware_delays, static_priority_delay
from repro.analysis.netcalc import FlowAwareResult
from repro.errors import AnalysisError
from repro.topology import LinkServerGraph, line_network
from repro.traffic import (
    ClassRegistry,
    Envelope,
    FlowSpec,
    TrafficClass,
    leaky_bucket_envelope,
    video_class,
    voice_class,
)


def _voice_flow(i, route):
    return FlowSpec(
        flow_id=f"v{i}",
        class_name="voice",
        source=route[0],
        destination=route[-1],
        route=tuple(route),
    )


class TestStaticPriorityDelay:
    def test_no_higher_priority_is_fifo(self):
        own = leaky_bucket_envelope(640, 32_000).scale(10)
        assert static_priority_delay([], own, 1e6) == pytest.approx(
            own.max_delay(1e6)
        )

    def test_higher_priority_increases_delay(self):
        own = leaky_bucket_envelope(640, 32_000).scale(5)
        higher = leaky_bucket_envelope(8_000, 1e6)
        d0 = static_priority_delay([], own, 10e6)
        d1 = static_priority_delay([higher], own, 10e6)
        assert d1 > d0

    def test_two_bucket_hand_case(self):
        # d = (T_h + T_own)/C when rates are small: burst clearance.
        own = leaky_bucket_envelope(1_000, 1_000)
        high = leaky_bucket_envelope(2_000, 1_000)
        d = static_priority_delay([high], own, 1e6)
        assert d == pytest.approx(3_000 / 1e6, rel=1e-2)

    def test_unstable_rejected(self):
        own = leaky_bucket_envelope(640, 0.9e6)
        high = leaky_bucket_envelope(640, 0.9e6)
        with pytest.raises(AnalysisError):
            static_priority_delay([high], own, 1e6)

    def test_invalid_capacity(self):
        own = leaky_bucket_envelope(640, 100)
        with pytest.raises(AnalysisError):
            static_priority_delay([], own, 0.0)


class TestFlowAware:
    def test_single_flow_single_hop(self, line4_graph, voice_registry):
        flow = _voice_flow(0, ["r0", "r1"])
        res = flow_aware_delays(line4_graph, [flow], voice_registry)
        assert res.converged
        # One clamped leaky bucket through 100 Mbps: tiny positive delay.
        d = res.flow_delays["v0"]
        assert 0 <= d < 1e-4

    def test_requires_routes(self, line4_graph, voice_registry):
        flow = FlowSpec(1, "voice", "r0", "r1")
        with pytest.raises(AnalysisError):
            flow_aware_delays(line4_graph, [flow], voice_registry)

    def test_unknown_class(self, line4_graph, voice_registry):
        flow = FlowSpec(1, "ghost", "r0", "r1", route=("r0", "r1"))
        with pytest.raises(AnalysisError):
            flow_aware_delays(line4_graph, [flow], voice_registry)

    def test_single_wire_causes_no_queueing(self, line4_graph,
                                            voice_registry):
        """All flows on one input link of equal capacity: zero delay.

        Per-input clamping captures the physics: a single wire cannot
        oversubscribe an equal-rate output link.
        """
        route = ["r0", "r1", "r2", "r3"]
        flows = [_voice_flow(i, route) for i in range(100)]
        res = flow_aware_delays(line4_graph, flows, voice_registry)
        assert res.converged
        assert max(res.flow_delays.values()) == pytest.approx(0.0, abs=1e-12)

    @staticmethod
    def _converging(n_per_branch):
        """Flows converging on the shared hub->sink link of a star."""
        from repro.topology import star_network

        net = star_network(4)
        graph = LinkServerGraph(net)
        flows = []
        for b in range(3):
            for i in range(n_per_branch):
                flows.append(
                    FlowSpec(
                        f"v{b}_{i}",
                        "voice",
                        f"leaf{b}",
                        "leaf3",
                        route=(f"leaf{b}", "hub", "leaf3"),
                    )
                )
        return graph, flows

    def test_delay_grows_with_population(self, voice_registry):
        delays = []
        for n in (1, 20, 80):
            graph, flows = self._converging(n)
            res = flow_aware_delays(graph, flows, voice_registry)
            assert res.converged
            delays.append(max(res.flow_delays.values()))
        assert delays == sorted(delays)
        assert delays[-1] > delays[0] >= 0.0

    def test_contention_point_carries_the_delay(self, voice_registry):
        graph, flows = self._converging(50)
        res = flow_aware_delays(graph, flows, voice_registry)
        d = res.server_delays["voice"]
        shared = graph.server_index("hub", "leaf3")
        access = graph.server_index("leaf0", "hub")
        assert d[shared] > 0.0
        assert d[access] == pytest.approx(0.0, abs=1e-12)

    def test_meets_deadlines_api(self, line4_graph, voice_registry, voice):
        route = ["r0", "r1", "r2", "r3"]
        flows = [_voice_flow(i, route) for i in range(10)]
        res = flow_aware_delays(line4_graph, flows, voice_registry)
        assert res.meets_deadlines(voice_registry, flows)

    def test_best_effort_flows_ignored(self, line4_graph):
        registry = ClassRegistry.two_class(voice_class())
        be_flow = FlowSpec(
            "be1", "best-effort", "r0", "r1", route=("r0", "r1")
        )
        v_flow = _voice_flow(0, ["r0", "r1"])
        res = flow_aware_delays(line4_graph, [be_flow, v_flow], registry)
        assert "be1" not in res.flow_delays
        assert "v0" in res.flow_delays

    def test_priority_isolation(self, line4_graph):
        """Voice delay must not depend on video (lower priority) load."""
        registry = ClassRegistry([voice_class(), video_class()])
        route = ["r0", "r1", "r2"]
        voice_flows = [_voice_flow(i, route) for i in range(5)]
        video_flows = [
            FlowSpec(f"w{i}", "video", "r0", "r2", route=tuple(route))
            for i in range(5)
        ]
        alone = flow_aware_delays(line4_graph, voice_flows, registry)
        mixed = flow_aware_delays(
            line4_graph, voice_flows + video_flows, registry
        )
        for i in range(5):
            assert mixed.flow_delays[f"v{i}"] == pytest.approx(
                alone.flow_delays[f"v{i}"], rel=1e-9
            )
        # ... while video sees the voice interference.
        assert all(
            mixed.flow_delays[f"w{i}"] >= mixed.flow_delays["v0"] - 1e-12
            for i in range(5)
        )

    def test_dominated_by_configuration_bound(self, voice_registry, voice):
        """For a conforming population, the flow-aware bound stays below
        the configuration-time (worst-case over populations) bound."""
        from repro.analysis import single_class_delays

        graph, flows = self._converging(60)
        # 180 flows of 32 kbps = 5.76 Mbps; pick alpha covering them.
        alpha = 0.06
        assert 180 * voice.rate <= alpha * 100e6
        routes = [list(f.route) for f in flows]
        flow_res = flow_aware_delays(graph, flows, voice_registry)
        cfg_res = single_class_delays(
            graph, routes, voice, alpha, n_mode="per_server"
        )
        assert flow_res.converged and cfg_res.safe
        assert max(flow_res.flow_delays.values()) <= (
            cfg_res.worst_route_delay + 1e-9
        )
