"""End-to-end integration: configuration -> admission -> simulation.

This is the full life cycle the paper describes: configure off-line
(bounds, route selection, verification), run utilization-based admission
at "run time", then push packets through the simulator and check that the
admitted traffic meets its deadline with room to spare.
"""

import numpy as np
import pytest

import repro
from repro import (
    PacketPattern,
    Simulator,
    UtilizationAdmissionController,
    select_safe_routes,
    single_class_delays,
    utilization_bounds,
    verify_safe_assignment,
)
from repro.traffic import FlowSpec


def test_public_api_surface():
    """Everything advertised in __all__ resolves."""
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_full_lifecycle(mci, mci_graph, voice, voice_registry):
    # --- configuration time -------------------------------------------
    pairs = [
        ("Seattle", "Boston"),
        ("Miami", "Seattle"),
        ("LosAngeles", "NewYork"),
        ("Houston", "Detroit"),
    ]
    bounds = utilization_bounds(6, 4, voice.burst, voice.rate, voice.deadline)
    alpha = bounds.lower  # certified safe for any selection within L

    selection = select_safe_routes(mci, pairs, voice, alpha)
    assert selection.success

    verification = verify_safe_assignment(
        mci, list(selection.routes.values()), voice_registry,
        {"voice": alpha},
    )
    assert verification.success

    # --- run time: admission ------------------------------------------
    ctrl = UtilizationAdmissionController(
        mci_graph, voice_registry, {"voice": alpha}, selection.routes
    )
    flows = []
    for i, pair in enumerate(pairs * 5):  # 20 flows
        flow = FlowSpec(f"f{i}", "voice", pair[0], pair[1])
        decision = ctrl.admit(flow)
        assert decision.admitted  # far below the utilization limit
        flows.append(flow)

    # --- run time: packets --------------------------------------------
    sim = Simulator(mci_graph, voice_registry)
    for flow in flows:
        sim.add_flow(
            flow,
            selection.routes[flow.pair],
            PacketPattern("greedy", packet_size=640, seed=hash(flow.flow_id) % 97),
        )
    report = sim.run(horizon=1.0)
    assert report.conserved
    # Every admitted packet is comfortably within the verified deadline.
    assert report.max_e2e("voice") < voice.deadline
    # And within the analytic bound that verification computed (+SF).
    check = single_class_delays(
        mci_graph, list(selection.routes.values()), voice, alpha
    )
    hops = max(len(r) - 1 for r in selection.routes.values())
    allowance = (hops + 1) * 640 / 100e6
    assert report.max_e2e("voice") <= check.worst_route_delay + allowance


def test_admission_saturation_matches_slots(mci, mci_graph, voice,
                                            voice_registry):
    """Admission stops exactly at the configured utilization."""
    pair = ("Boston", "NewYork")
    routes = {pair: ["Boston", "NewYork"]}
    alpha = 0.001024  # floor(alpha*C/rho) = 3 slots
    ctrl = UtilizationAdmissionController(
        mci_graph, voice_registry, {"voice": alpha}, routes
    )
    slots = int(alpha * 100e6 / voice.rate)
    for i in range(slots):
        assert ctrl.admit(FlowSpec(i, "voice", *pair)).admitted
    assert not ctrl.admit(FlowSpec("extra", "voice", *pair)).admitted
    util = ctrl.class_utilization("voice")
    assert np.all(util <= alpha)


def test_version():
    assert repro.__version__ == "1.0.0"
