"""The utilization ledger."""

import numpy as np
import pytest

from repro.admission import UtilizationLedger
from repro.errors import AdmissionError
from repro.topology import LinkServerGraph, line_network
from repro.traffic import ClassRegistry, video_class, voice_class


@pytest.fixture()
def ledger(line4_graph, voice_registry):
    return UtilizationLedger(line4_graph, voice_registry, {"voice": 0.3})


def test_slot_arithmetic(ledger, voice):
    # floor(0.3 * 100e6 / 32000) = 937
    assert np.all(ledger.slots("voice") == 937)


def test_reserve_release_roundtrip(ledger, line4_graph):
    servers = line4_graph.route_servers(["r0", "r1", "r2"])
    ledger.reserve("voice", servers)
    assert np.all(ledger.used("voice")[servers] == 1)
    ledger.release("voice", servers)
    assert np.all(ledger.used("voice") == 0)


def test_available_respects_capacity(line4_graph, voice_registry):
    # Tiny alpha: only 3 slots per server.
    tiny = UtilizationLedger(
        line4_graph, voice_registry, {"voice": 0.001008}
    )
    servers = line4_graph.route_servers(["r0", "r1"])
    n = int(tiny.slots("voice")[servers[0]])
    assert n == 3
    for _ in range(n):
        assert tiny.available("voice", servers)
        tiny.reserve("voice", servers)
    assert not tiny.available("voice", servers)
    with pytest.raises(AdmissionError):
        tiny.reserve("voice", servers)


def test_reserve_is_atomic(line4_graph, voice_registry):
    """A failed reserve leaves no partial reservation."""
    tiny = UtilizationLedger(
        line4_graph, voice_registry, {"voice": 0.001008}
    )
    short = line4_graph.route_servers(["r1", "r2"])
    long = line4_graph.route_servers(["r0", "r1", "r2", "r3"])
    for _ in range(3):
        tiny.reserve("voice", short)  # fill the middle link
    before = tiny.used("voice").copy()
    with pytest.raises(AdmissionError):
        tiny.reserve("voice", long)
    np.testing.assert_array_equal(tiny.used("voice"), before)


def test_release_unreserved_raises(ledger, line4_graph):
    with pytest.raises(AdmissionError):
        ledger.release("voice", line4_graph.route_servers(["r0", "r1"]))


def test_unknown_class(ledger):
    with pytest.raises(AdmissionError):
        ledger.available("ghost", [0])


def test_missing_alpha_rejected(line4_graph, voice_registry):
    with pytest.raises(AdmissionError):
        UtilizationLedger(line4_graph, voice_registry, {})


def test_alpha_sum_capped(line4_graph):
    registry = ClassRegistry([voice_class(), video_class()])
    with pytest.raises(AdmissionError):
        UtilizationLedger(
            line4_graph, registry, {"voice": 0.6, "video": 0.6}
        )


def test_utilization_fraction(ledger, line4_graph, voice):
    servers = line4_graph.route_servers(["r0", "r1"])
    for _ in range(10):
        ledger.reserve("voice", servers)
    util = ledger.utilization("voice")
    assert util[servers[0]] == pytest.approx(10 * voice.rate / 100e6)
    assert util[servers[0]] <= 0.3  # never exceeds alpha


def test_utilization_never_exceeds_alpha(line4_graph, voice_registry):
    """Invariant: a full ledger still respects the configured fraction."""
    alpha = 0.01
    ledger = UtilizationLedger(line4_graph, voice_registry, {"voice": alpha})
    servers = line4_graph.route_servers(["r0", "r1"])
    while ledger.available("voice", servers):
        ledger.reserve("voice", servers)
    assert np.all(ledger.utilization("voice") <= alpha + 1e-12)


def test_bottleneck(ledger, line4_graph):
    servers = line4_graph.route_servers(["r1", "r2"])
    ledger.reserve("voice", servers)
    k, ratio = ledger.bottleneck("voice")
    assert k == servers[0]
    assert 0 < ratio <= 1


def test_total_reserved_rate(line4_graph, voice):
    registry = ClassRegistry([voice_class(), video_class()])
    ledger = UtilizationLedger(
        line4_graph, registry, {"voice": 0.3, "video": 0.3}
    )
    servers = line4_graph.route_servers(["r0", "r1"])
    ledger.reserve("voice", servers)
    ledger.reserve("video", servers)
    total = ledger.total_reserved_rate()
    assert total[servers[0]] == pytest.approx(voice.rate + video_class().rate)
