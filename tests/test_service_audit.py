"""Decision audit log: durability bookkeeping, rotation, verification."""

import json
import os

import pytest

from repro.errors import ServiceError
from repro.service.audit import (
    AUDIT_SCHEMA,
    AuditLog,
    audit_to_trace_events,
    flow_set_digest,
    iter_audit,
    verify_audit,
)
from repro.traffic.flows import FlowSpec


def flow(i, src="r0", dst="r3"):
    return FlowSpec(f"f{i}", "voice", src, dst)


def make_log(tmp_path, **kwargs):
    return AuditLog(str(tmp_path / "audit.jsonl"), **kwargs)


class TestAuditLog:
    def test_header_then_sequenced_records(self, tmp_path):
        log = make_log(tmp_path, fsync_every=1)
        log.record_admit(
            flow(1), admitted=True, route=["r0", "r1"], headroom=7
        )
        log.record_release("f1", ok=True)
        log.close()
        with open(log.path, encoding="utf-8") as fh:
            lines = [json.loads(l) for l in fh]
        assert lines[0] == {"schema": AUDIT_SCHEMA}
        admit, release = lines[1], lines[2]
        assert admit["seq"] == 1 and release["seq"] == 2
        assert admit["kind"] == "admit"
        assert admit["flow"]["id"] == "f1"
        assert admit["route"] == ["r0", "r1"]
        assert admit["headroom"] == 7
        assert release["kind"] == "release"
        assert release["released"] is True

    def test_sequence_continues_across_reopen(self, tmp_path):
        log = make_log(tmp_path, fsync_every=1)
        log.record_admit(flow(1), admitted=True)
        log.close()
        log = make_log(tmp_path, fsync_every=1)
        seq = log.record_admit(flow(2), admitted=True)
        log.close()
        assert seq == 2
        records = list(iter_audit(log.path))
        assert [r["seq"] for r in records] == [1, 2]

    def test_fsync_batching_counts(self, tmp_path):
        log = make_log(tmp_path, fsync_every=3)
        for i in range(5):
            log.record_admit(flow(i), admitted=True)
        # 3 synced at the batch boundary, 2 still buffered.
        assert log.records_written == 5
        assert log._unsynced == 2
        log.sync()
        assert log._unsynced == 0
        log.close()

    def test_markers_force_fsync(self, tmp_path):
        log = make_log(tmp_path, fsync_every=1000)
        log.record_admit(flow(1), admitted=True)
        log.mark_snapshot(["f1"])
        assert log._unsynced == 0
        log.close()

    def test_rotation_keeps_bounded_history(self, tmp_path):
        log = make_log(tmp_path, fsync_every=1, max_bytes=1024, keep=2)
        for i in range(200):
            log.record_admit(flow(i), admitted=True)
        log.close()
        assert os.path.exists(log.path + ".1")
        assert not os.path.exists(log.path + ".3")
        # Reads cross rotated files oldest-first with seqs increasing,
        # and each rotated file restates the schema header.
        records = list(iter_audit(log.path))
        seqs = [r["seq"] for r in records]
        assert seqs == sorted(seqs)
        assert seqs[-1] == 200
        with open(log.path + ".1", encoding="utf-8") as fh:
            assert json.loads(fh.readline()) == {"schema": AUDIT_SCHEMA}

    def test_closed_log_rejects_appends(self, tmp_path):
        log = make_log(tmp_path)
        log.close()
        with pytest.raises(ServiceError):
            log.record_release("f1", ok=True)

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ServiceError):
            AuditLog("")
        with pytest.raises(ServiceError):
            make_log(tmp_path, fsync_every=0)
        with pytest.raises(ServiceError):
            make_log(tmp_path, max_bytes=10)
        with pytest.raises(ServiceError):
            make_log(tmp_path, keep=0)

    def test_torn_tail_line_is_ignored(self, tmp_path):
        log = make_log(tmp_path, fsync_every=1)
        log.record_admit(flow(1), admitted=True)
        log.close()
        with open(log.path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "admit", "seq": 2, "trunc')
        assert [r["seq"] for r in iter_audit(log.path)] == [1]
        # A reopened log does not reuse the torn record's seq... it
        # scans only parsable lines, so the next seq may collide with
        # the torn one — which was never durable, so that is correct.
        log = make_log(tmp_path, fsync_every=1)
        assert log.record_admit(flow(2), admitted=True) == 2
        log.close()


class TestVerifyAudit:
    def run_log(self, tmp_path):
        log = make_log(tmp_path, fsync_every=1)
        log.mark_restore([])
        log.record_admit(flow(1), admitted=True)
        log.record_admit(flow(2), admitted=False, reason="utilization")
        log.record_release("f1", ok=True)
        log.record_release("zz", ok=False, error="not established")
        log.record_admit(flow(3), admitted=True)
        log.mark_snapshot(["f3"])
        log.close()
        return log

    def test_consistent_history_verifies(self, tmp_path):
        log = self.run_log(tmp_path)
        report = verify_audit(iter_audit(log.path))
        assert report["ok"], report["problems"]
        assert report["admits"] == 3
        assert report["admitted"] == 2
        assert report["rejected"] == 1
        assert report["released"] == 1
        assert report["release_errors"] == 1
        assert report["established"] == ["f3"]

    def test_restart_resumes_from_snapshot_marker(self, tmp_path):
        log = self.run_log(tmp_path)
        # Second launch: restore the snapshot cut, keep deciding.
        log = make_log(tmp_path, fsync_every=1)
        log.mark_restore(["f3"])
        log.record_release("f3", ok=True)
        log.close()
        report = verify_audit(iter_audit(log.path))
        assert report["ok"], report["problems"]
        assert report["restores"] == 2
        assert report["established"] == []

    def test_restore_from_unknown_cut_is_flagged(self, tmp_path):
        log = make_log(tmp_path, fsync_every=1)
        log.record_admit(flow(1), admitted=True)
        log.mark_restore(["ghost"])  # no snapshot marker recorded this
        log.close()
        report = verify_audit(iter_audit(log.path))
        assert not report["ok"]
        assert any("unknown snapshot" in p for p in report["problems"])

    def test_seq_gap_detected(self, tmp_path):
        log = self.run_log(tmp_path)
        records = [
            r for r in iter_audit(log.path) if r["seq"] != 3
        ]
        report = verify_audit(records)
        assert not report["ok"]
        assert any("gap" in p for p in report["problems"])

    def test_double_admit_and_phantom_release_detected(self):
        base = {"ts": 0.0}
        records = [
            {**base, "seq": 1, "kind": "admit", "admitted": True,
             "flow": {"id": "a", "cls": "voice", "src": "x", "dst": "y"}},
            {**base, "seq": 2, "kind": "admit", "admitted": True,
             "flow": {"id": "a", "cls": "voice", "src": "x", "dst": "y"}},
            {**base, "seq": 3, "kind": "release", "released": True,
             "flow_id": "nope"},
        ]
        report = verify_audit(records)
        assert any("admitted twice" in p for p in report["problems"])
        assert any("non-established" in p for p in report["problems"])

    def test_snapshot_file_cross_check(self, tmp_path):
        log = self.run_log(tmp_path)
        snap = tmp_path / "snap.json"
        snap.write_text(json.dumps({"flows": [{"flow_id": "f3"}]}))
        report = verify_audit(
            iter_audit(log.path), snapshot=str(snap)
        )
        assert report["ok"], report["problems"]
        # A snapshot no durable marker accounts for must fail.
        snap.write_text(json.dumps({"flows": [{"flow_id": "other"}]}))
        report = verify_audit(
            iter_audit(log.path), snapshot=str(snap)
        )
        assert not report["ok"]
        assert any("no durable snapshot" in p for p in report["problems"])

    def test_snapshot_path_must_hold_an_object(self, tmp_path):
        snap = tmp_path / "bad.json"
        snap.write_text("[1, 2, 3]")
        with pytest.raises(ServiceError):
            verify_audit([], snapshot=str(snap))


class TestFlowSetDigest:
    def test_order_independent(self):
        assert flow_set_digest(["a", "b"]) == flow_set_digest(["b", "a"])

    def test_distinguishes_sets(self):
        assert flow_set_digest(["a"]) != flow_set_digest(["b"])
        assert flow_set_digest([]) != flow_set_digest(["a"])

    def test_empty_set_digest_is_stable(self):
        # Restore markers on fresh boots carry this exact digest.
        assert flow_set_digest([]) == "e3b0c44298fc1c14"


class TestAuditToTraceEvents:
    def test_accepted_load_becomes_replayable_events(self, tmp_path):
        log = make_log(tmp_path, fsync_every=1)
        log.record_admit(
            flow(1), admitted=True, route=["r0", "r1", "r2", "r3"]
        )
        log.record_admit(flow(2), admitted=False, reason="full")
        log.record_release("f1", ok=True)
        log.record_release("zz", ok=False, error="unknown")
        log.close()
        events = audit_to_trace_events(iter_audit(log.path))
        assert [e.kind for e in events] == ["arrival", "departure"]
        arrival, departure = events
        assert arrival.flow_id == "f1"
        assert arrival.route == ("r0", "r1", "r2", "r3")
        assert departure.flow_id == "f1"
        assert events[0].time == 0.0  # rebased to start at zero
        assert departure.time >= arrival.time
