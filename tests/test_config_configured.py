"""ConfiguredNetwork facade: one-call configuration and serialization."""

import json
import math

import pytest

from repro.config import ConfiguredNetwork, configure
from repro.errors import ConfigurationError
from repro.routing import shortest_path_routes
from repro.topology import line_network, mci_backbone
from repro.traffic import ClassRegistry, TrafficClass, video_class, voice_class

PAIRS = [
    ("Seattle", "Miami"),
    ("Boston", "Phoenix"),
    ("Chicago", "Dallas"),
    ("NewYork", "LosAngeles"),
]


@pytest.fixture(scope="module")
def cfg(mci, voice_registry):
    return configure(
        mci, voice_registry, {"voice": 0.35}, pairs=PAIRS,
        routing="shortest-path",
    )


class TestConfigure:
    def test_shortest_path_configuration(self, cfg):
        assert cfg.verification.success
        assert set(cfg.routes) == set(PAIRS)

    def test_heuristic_configuration(self, mci, voice_registry):
        cfg = configure(
            mci, voice_registry, {"voice": 0.45}, pairs=PAIRS,
            routing="heuristic",
        )
        assert cfg.verification.success

    def test_default_demand_is_all_pairs(self, mci, voice_registry):
        cfg = configure(
            mci, voice_registry, {"voice": 0.30}, routing="shortest-path"
        )
        assert len(cfg.routes) == 18 * 17

    def test_infeasible_alpha_raises(self, mci, voice_registry):
        with pytest.raises(ConfigurationError):
            configure(
                mci, voice_registry, {"voice": 0.95}, pairs=PAIRS,
                routing="shortest-path",
            )

    def test_heuristic_failure_raises(self, mci, voice_registry):
        with pytest.raises(ConfigurationError):
            configure(
                mci, voice_registry, {"voice": 0.95}, pairs=PAIRS,
                routing="heuristic",
            )

    def test_unknown_routing(self, mci, voice_registry):
        with pytest.raises(ConfigurationError):
            configure(
                mci, voice_registry, {"voice": 0.3}, routing="oracle"
            )

    def test_heuristic_multiclass_rejected(self, mci):
        registry = ClassRegistry([voice_class(), video_class()])
        with pytest.raises(ConfigurationError):
            configure(
                mci, registry, {"voice": 0.1, "video": 0.1},
                pairs=PAIRS, routing="heuristic",
            )

    def test_multiclass_via_shortest_path(self, mci):
        registry = ClassRegistry([voice_class(), video_class()])
        cfg = configure(
            mci, registry, {"voice": 0.1, "video": 0.2},
            pairs=PAIRS, routing="shortest-path",
        )
        assert cfg.verification.success
        assert set(cfg.alphas) == {"voice", "video"}


class TestBundle:
    def test_unverified_bundle_rejected(self, mci, voice_registry):
        routes = shortest_path_routes(mci, PAIRS)
        with pytest.raises(ConfigurationError):
            ConfiguredNetwork(
                network=mci,
                registry=voice_registry,
                alphas={"voice": 0.95},
                routes=dict(routes),
            )

    def test_route_for(self, cfg):
        path = cfg.route_for("Seattle", "Miami")
        assert path[0] == "Seattle" and path[-1] == "Miami"
        with pytest.raises(ConfigurationError):
            cfg.route_for("Miami", "Seattle")  # not in the demand

    def test_slots_per_link(self, cfg):
        assert cfg.slots_per_link("voice") == int(0.35 * 100e6 / 32_000)

    def test_controller_factory(self, cfg):
        from repro.traffic import FlowSpec

        ctrl = cfg.controller()
        assert ctrl.admit(
            FlowSpec("x", "voice", "Seattle", "Miami")
        ).admitted

    def test_simulator_factory(self, cfg):
        from repro.simulation import PacketPattern
        from repro.traffic import FlowSpec

        sim = cfg.simulator()
        sim.add_flow(
            FlowSpec("x", "voice", "Seattle", "Miami"),
            cfg.route_for("Seattle", "Miami"),
            PacketPattern("periodic", packet_size=640),
        )
        report = sim.run(horizon=0.1)
        assert report.conserved


class TestSerialization:
    def test_roundtrip(self, cfg):
        back = ConfiguredNetwork.from_dict(cfg.to_dict())
        assert back.alphas == cfg.alphas
        assert back.routes == cfg.routes
        assert back.registry.names() == cfg.registry.names()
        assert back.verification.success

    def test_best_effort_deadline_roundtrip(self, mci):
        registry = ClassRegistry.two_class(voice_class())
        cfg = configure(
            mci, registry, {"voice": 0.3}, pairs=PAIRS,
            routing="shortest-path",
        )
        back = ConfiguredNetwork.from_dict(cfg.to_dict())
        be = back.registry.best_effort_classes()[0]
        assert math.isinf(be.deadline)

    def test_json_file_roundtrip(self, cfg, tmp_path):
        path = tmp_path / "cfg.json"
        cfg.save(str(path))
        loaded = ConfiguredNetwork.load(str(path))
        assert loaded.routes == cfg.routes
        # The file is plain JSON a router-management plane could consume.
        data = json.loads(path.read_text())
        assert data["schema_version"] == 1

    def test_unknown_schema_version_rejected(self, cfg):
        data = cfg.to_dict()
        data["schema_version"] = 99
        with pytest.raises(ConfigurationError):
            ConfiguredNetwork.from_dict(data)

    def test_tampered_configuration_fails_verification(self, cfg):
        """Deserialization re-verifies: bumping alpha out of the safe
        region must be caught."""
        data = cfg.to_dict()
        data["alphas"]["voice"] = 0.99
        with pytest.raises(ConfigurationError):
            ConfiguredNetwork.from_dict(data)


class TestSimulationValidation:
    def test_validate_returns_zero_misses(self, mci, voice_registry):
        cfg = configure(
            mci, voice_registry, {"voice": 0.35},
            pairs=PAIRS, routing="shortest-path",
        )
        misses = cfg.validate_by_simulation(
            flows_per_route=2, horizon=0.4
        )
        assert misses == {"voice": 0}

    def test_validate_multiclass(self, mci):
        registry = ClassRegistry([voice_class(), video_class()])
        cfg = configure(
            mci, registry, {"voice": 0.05, "video": 0.15},
            pairs=PAIRS, routing="shortest-path",
        )
        misses = cfg.validate_by_simulation(
            flows_per_route=1, horizon=0.4
        )
        assert misses == {"voice": 0, "video": 0}
