"""Per-hop reshaping analysis (the flow-aware counterpoint)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import beta_coefficient
from repro.analysis.reshaped import reshaped_delay_bound, reshaped_max_alpha
from repro.config import theorem4_lower_bound, theorem4_upper_bound
from repro.errors import AnalysisError

PAPER = dict(fan_in=6, diameter=4, burst=640.0, rate=32_000.0, deadline=0.1)


def test_delay_is_hops_times_fresh_bound():
    beta = beta_coefficient(0.3, 32_000.0, 6)
    assert reshaped_delay_bound(640, 32_000, 0.3, 6, 4) == pytest.approx(
        4 * beta * 640
    )


def test_paper_scenario_reaches_full_utilization():
    """With per-hop reshaping, the VoIP scenario certifies alpha = 1.0 —
    jitter inflation is the entire reason the aggregated system stops at
    0.30-0.61."""
    assert reshaped_max_alpha(**PAPER) == 1.0


def test_dominates_theorem4_bounds():
    """Reshaping can only help: its certified alpha is >= the paper's
    upper bound for every parameterization."""
    for deadline in (0.01, 0.05, 0.1, 0.5):
        params = dict(PAPER, deadline=deadline)
        shaped = reshaped_max_alpha(**params)
        assert shaped >= theorem4_upper_bound(**params) - 1e-12
        assert shaped >= theorem4_lower_bound(**params) - 1e-12


def test_equals_lower_bound_without_jitter_term():
    """The closed form is exactly Theorem 4's LB with (L-1) -> 0."""
    tight = dict(PAPER, deadline=0.004)  # small enough not to cap at 1
    n, l = tight["fan_in"], tight["diameter"]
    ratio = l * tight["burst"] / (tight["deadline"] * tight["rate"])
    expected = n / (ratio * (n - 1) + 1)
    assert reshaped_max_alpha(**tight) == pytest.approx(expected)


def test_single_hop_equals_unshaped():
    """With L = 1 there is no jitter to remove: shaped == LB == UB."""
    params = dict(PAPER, diameter=1, deadline=0.004)
    assert reshaped_max_alpha(**params) == pytest.approx(
        theorem4_lower_bound(**params)
    )
    assert reshaped_max_alpha(**params) == pytest.approx(
        theorem4_upper_bound(**params)
    )


def test_validation():
    with pytest.raises(AnalysisError):
        reshaped_delay_bound(640, 32_000, 0.3, 6, 0)
    with pytest.raises(AnalysisError):
        reshaped_max_alpha(1, 4, 640, 32_000, 0.1)
    with pytest.raises(AnalysisError):
        reshaped_max_alpha(6, 0, 640, 32_000, 0.1)
    with pytest.raises(AnalysisError):
        reshaped_max_alpha(6, 4, 0, 32_000, 0.1)


@settings(max_examples=150, deadline=None)
@given(
    fan_in=st.integers(min_value=2, max_value=32),
    diameter=st.integers(min_value=1, max_value=12),
    burst=st.floats(min_value=1.0, max_value=1e6),
    rate=st.floats(min_value=1.0, max_value=1e9),
    deadline=st.floats(min_value=1e-4, max_value=10.0),
)
def test_prop_reshaping_never_hurts(fan_in, diameter, burst, rate,
                                    deadline):
    shaped = reshaped_max_alpha(fan_in, diameter, burst, rate, deadline)
    ub = theorem4_upper_bound(fan_in, diameter, burst, rate, deadline)
    assert 0.0 < shaped <= 1.0
    assert shaped >= ub - 1e-9
