"""`repro-ubac verify` bounded mode, `loadgen/faults --adversarial`."""

import json

import pytest

from repro.experiments.cli import main
from repro.verify import validate_verify_report
from repro.verify.smt import HAVE_Z3
from repro.workload import read_trace, validate_adversarial_events

SMALL = ["--bound", "2", "--max-capacity", "1"]


class TestVerifyBounded:
    def test_default_run_proves_the_default_bound(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "no_overcommit" in out
        assert "batch_equivalence" in out
        assert "all invariants hold within the bound" in out

    def test_report_out_and_validate_round_trip(self, tmp_path, capsys):
        report_path = str(tmp_path / "report.json")
        assert main(
            ["verify", *SMALL, "--backend", "exhaustive",
             "--out", report_path]
        ) == 0
        report = json.load(open(report_path))
        validate_verify_report(report)
        assert report["ok"] is True
        assert main(["verify", "--validate", report_path]) == 0
        assert "valid repro-verify-report/v1" in capsys.readouterr().out

    def test_validate_rejects_a_tampered_report(self, tmp_path, capsys):
        report_path = str(tmp_path / "report.json")
        assert main(
            ["verify", *SMALL, "--backend", "exhaustive",
             "--out", report_path]
        ) == 0
        report = json.load(open(report_path))
        report["ok"] = False
        json.dump(report, open(report_path, "w"))
        assert main(["verify", "--validate", report_path]) == 1
        assert "FAILURE" in capsys.readouterr().out

    def test_single_check_selection(self, capsys):
        assert main(
            ["verify", *SMALL, "--check", "batch_equivalence"]
        ) == 0
        out = capsys.readouterr().out
        assert "batch_equivalence" in out
        assert "no_overcommit" not in out

    @pytest.mark.parametrize(
        "mutant", ["admit_on_full", "ignore_contention"]
    )
    def test_mutants_caught_with_replayable_traces(
        self, tmp_path, mutant, capsys
    ):
        cx_dir = tmp_path / "cx"
        assert main(
            ["verify", *SMALL, "--backend", "exhaustive",
             "--mutant", mutant, "--cx-dir", str(cx_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "violated" in out
        assert "replay reproduces the violation" in out
        assert f"mutant {mutant!r} caught, decoded, and replayed" in out
        traces = sorted(p.name for p in cx_dir.iterdir())
        assert "cx_batch_equivalence.jsonl" in traces
        for trace in cx_dir.iterdir():
            meta, events = read_trace(str(trace))
            assert meta["mutant"] == mutant
            validate_adversarial_events(events)
            assert events

    def test_counterexample_trace_replays_through_loadgen(
        self, tmp_path, capsys
    ):
        cx_dir = tmp_path / "cx"
        assert main(
            ["verify", *SMALL, "--backend", "exhaustive",
             "--mutant", "admit_on_full", "--cx-dir", str(cx_dir)]
        ) == 0
        capsys.readouterr()
        # cx routes live on the verification chain, not a backbone —
        # loadgen must pick the chain up from the trace meta.
        trace = str(cx_dir / "cx_no_overcommit.jsonl")
        assert main(["loadgen", "--replay", trace]) == 0
        out = capsys.readouterr().out
        assert "replaying" in out
        assert "utilization controller" in out

    def test_z3_backend_without_solver_fails_cleanly(self, capsys):
        if HAVE_Z3:
            pytest.skip("z3 installed; the guard cannot fire")
        assert main(["verify", *SMALL, "--backend", "z3"]) == 1
        assert "repro[smt]" in capsys.readouterr().out

    def test_alpha_and_bounded_flags_are_exclusive(self):
        with pytest.raises(SystemExit):
            main(["verify", "0.25", "--bound", "2"])

    def test_out_of_range_bound_fails_cleanly(self, capsys):
        assert main(["verify", "--bound", "99"]) == 1
        assert "FAILURE" in capsys.readouterr().out


class TestAdversarialLoadgen:
    def test_end_to_end_with_recorded_trace(self, tmp_path, capsys):
        trace = str(tmp_path / "adv.jsonl")
        assert main(
            ["loadgen", "--adversarial", "--flows", "200",
             "--burst", "16", "--arrival-rate", "400",
             "--seed", "3", "--record", trace]
        ) == 0
        out = capsys.readouterr().out
        assert "adversarial workload" in out
        meta, events = read_trace(trace)
        assert meta["adversarial"] is True
        assert meta["burst"] == 16
        validate_adversarial_events(events)
        arrivals = [e for e in events if e.kind == "arrival"]
        assert len(arrivals) == 200

    def test_replay_of_adversarial_trace(self, tmp_path, capsys):
        trace = str(tmp_path / "adv.jsonl")
        assert main(
            ["loadgen", "--adversarial", "--flows", "100",
             "--record", trace]
        ) == 0
        capsys.readouterr()
        assert main(
            ["loadgen", "--replay", trace, "--controller", "sharded"]
        ) == 0
        assert "sharded controller" in capsys.readouterr().out


class TestAdversarialFaults:
    def test_chaos_run_under_adversarial_load(self, capsys):
        assert main(
            ["faults", "--adversarial", "--arrival-rate", "40",
             "--burst", "8", "--horizon", "1.0", "--no-packets"]
        ) == 0
        out = capsys.readouterr().out
        assert "chaos run" in out
        assert "survivor guarantees held" in out
