"""Traffic sources and the token-bucket policer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.simulation import PacketPattern, TokenBucketPolicer, emission_times
from repro.traffic import voice_class


def conforms(times, sizes, burst, rate, tol=1e-6):
    """Check a release sequence against the (burst, rate) envelope."""
    times = np.asarray(times)
    if np.any(np.diff(times) < -tol):
        return False
    for i in range(len(times)):
        # cumulative bits in (t_j, t_i] must be <= burst + rate*(t_i - t_j)
        for j in range(i + 1):
            window = times[i] - times[j]
            bits = sizes * (i - j + 1)
            if bits > burst + rate * window + tol * rate + 1e-6:
                return False
    return True


class TestPolicer:
    def test_burst_passes_immediately(self):
        p = TokenBucketPolicer(burst=1000, rate=100)
        assert p.conform(0.0, 500) == 0.0
        assert p.conform(0.0, 500) == 0.0  # second half of the burst

    def test_excess_is_delayed_to_refill(self):
        p = TokenBucketPolicer(burst=1000, rate=100)
        p.conform(0.0, 1000)  # drain
        t = p.conform(0.0, 100)
        assert t == pytest.approx(1.0)  # 100 bits / 100 bps

    def test_idle_time_refills(self):
        p = TokenBucketPolicer(burst=1000, rate=100)
        p.conform(0.0, 1000)
        # after 5 s the bucket holds 500 bits
        assert p.conform(5.0, 400) == pytest.approx(5.0)

    def test_refill_caps_at_burst(self):
        p = TokenBucketPolicer(burst=100, rate=100)
        p.conform(0.0, 100)
        # 1000 s of idle cannot store more than `burst`
        p.conform(1000.0, 100)
        t = p.conform(1000.0, 100)
        assert t == pytest.approx(1001.0)

    def test_oversized_packet_rejected(self):
        p = TokenBucketPolicer(burst=100, rate=10)
        with pytest.raises(SimulationError):
            p.conform(0.0, 200)

    def test_validation(self):
        with pytest.raises(SimulationError):
            TokenBucketPolicer(0, 1)
        with pytest.raises(SimulationError):
            TokenBucketPolicer(1, 0)


class TestEmissionTimes:
    def test_greedy_starts_with_burst(self, voice):
        times = emission_times(
            PacketPattern("greedy", packet_size=640), voice, horizon=1.0
        )
        assert times[0] == 0.0
        # Burst = 640 bits = exactly one max-size packet at t=0, then the
        # rate paces one packet per 640/32000 = 20 ms.
        assert times[1] == pytest.approx(0.02)

    def test_greedy_small_packets_burst_together(self, voice):
        times = emission_times(
            PacketPattern("greedy", packet_size=160), voice, horizon=0.5
        )
        assert np.count_nonzero(times == 0.0) == 4  # 640/160

    def test_periodic_spacing(self, voice):
        times = emission_times(
            PacketPattern("periodic", packet_size=640), voice, horizon=1.0
        )
        np.testing.assert_allclose(np.diff(times), 0.02, rtol=1e-9)

    def test_poisson_deterministic_per_seed(self, voice):
        p = PacketPattern("poisson", packet_size=640, seed=9)
        a = emission_times(p, voice, horizon=2.0)
        b = emission_times(p, voice, horizon=2.0)
        np.testing.assert_array_equal(a, b)

    def test_all_patterns_conform_to_envelope(self, voice):
        for kind in ("greedy", "periodic", "poisson"):
            times = emission_times(
                PacketPattern(kind, packet_size=640, seed=3),
                voice,
                horizon=1.0,
            )
            assert conforms(times, 640, voice.burst, voice.rate), kind

    def test_greedy_saturates_envelope(self, voice):
        """Greedy is the worst case: long-run rate equals rho."""
        times = emission_times(
            PacketPattern("greedy", packet_size=640), voice, horizon=10.0
        )
        achieved = len(times) * 640 / 10.0
        assert achieved == pytest.approx(voice.rate, rel=0.02)

    def test_within_horizon(self, voice):
        times = emission_times(
            PacketPattern("poisson", packet_size=640, seed=1),
            voice,
            horizon=1.5,
        )
        assert np.all(times < 1.5)

    def test_packet_larger_than_burst_rejected(self, voice):
        with pytest.raises(SimulationError):
            emission_times(
                PacketPattern("greedy", packet_size=10_000), voice, 1.0
            )

    def test_invalid_pattern_kind(self):
        with pytest.raises(SimulationError):
            PacketPattern("fractal", packet_size=100)

    def test_invalid_horizon(self, voice):
        with pytest.raises(SimulationError):
            emission_times(
                PacketPattern("greedy", packet_size=640), voice,
                horizon=0.0,
            )


@settings(max_examples=40, deadline=None)
@given(
    kind=st.sampled_from(["greedy", "periodic", "poisson"]),
    size=st.sampled_from([80, 160, 320, 640]),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_prop_emissions_always_conform(kind, size, seed):
    vc = voice_class()
    times = emission_times(
        PacketPattern(kind, packet_size=size, seed=seed), vc, horizon=0.6
    )
    assert conforms(times, size, vc.burst, vc.rate)
