"""Shortest-path routing baseline."""

import networkx as nx
import pytest

from repro.errors import NoRouteError
from repro.routing import route_lengths, shortest_path_route, shortest_path_routes
from repro.topology import Network


def test_single_route(mci):
    path = shortest_path_route(mci, "Seattle", "Miami")
    assert path[0] == "Seattle" and path[-1] == "Miami"
    assert len(path) - 1 == nx.shortest_path_length(
        mci.graph, "Seattle", "Miami"
    )


def test_routes_are_shortest(mci, mci_pairs):
    routes = shortest_path_routes(mci, mci_pairs)
    lengths = dict(nx.all_pairs_shortest_path_length(mci.graph))
    for (u, v), path in routes.items():
        assert len(path) - 1 == lengths[u][v]


def test_all_pairs_covered(mci, mci_pairs):
    routes = shortest_path_routes(mci, mci_pairs)
    assert set(routes) == set(mci_pairs)


def test_deterministic(mci, mci_pairs):
    a = shortest_path_routes(mci, mci_pairs)
    b = shortest_path_routes(mci, mci_pairs)
    assert a == b


def test_routes_within_diameter(mci, mci_pairs):
    routes = shortest_path_routes(mci, mci_pairs)
    assert max(route_lengths(routes).values()) == 4  # = L


def test_no_route_raises():
    net = Network()
    net.add_router("u")
    net.add_router("v")
    with pytest.raises(NoRouteError):
        shortest_path_route(net, "u", "v")


def test_unknown_source_raises(mci):
    with pytest.raises(NoRouteError):
        shortest_path_routes(mci, [("Atlantis", "Miami")])


def test_route_lengths_helper():
    assert route_lengths({("a", "c"): ["a", "b", "c"]}) == {("a", "c"): 2}
