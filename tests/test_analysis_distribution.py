"""Lemma 1/2 and Theorem 2: flow-distribution delay bounds.

These tests pin the paper's appendix math against two independent
references: the envelope (network-calculus) machinery, and the Theorem 3
closed form it feeds into.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import theorem3_delay
from repro.analysis.distribution import (
    aggregate_envelope_delay,
    busy_period_terms,
    even_split,
    lemma2_delay,
    theorem2_worst_delay,
)
from repro.errors import AnalysisError

T, RHO, C = 640.0, 32_000.0, 100e6


class TestBusyPeriod:
    def test_formula(self):
        taus = busy_period_terms([10, 20], T, RHO, 0.0, C)
        assert taus[0] == pytest.approx(10 * T / (C - 10 * RHO))
        assert taus[1] == pytest.approx(20 * T / (C - 20 * RHO))

    def test_upstream_inflation(self):
        no_jitter = busy_period_terms([10], T, RHO, 0.0, C)
        jittered = busy_period_terms([10], T, RHO, 0.01, C)
        assert jittered[0] > no_jitter[0]

    def test_monotone_in_count(self):
        taus = busy_period_terms([1, 10, 100, 1000], T, RHO, 0.0, C)
        assert np.all(np.diff(taus) > 0)


class TestLemma2:
    def test_zero_flows(self):
        assert lemma2_delay([0, 0], T, RHO, 0.0, C) == 0.0

    def test_matches_envelope_machinery_hand_cases(self):
        for counts in ([5], [10, 20], [100, 0, 50], [937, 937, 937]):
            lemma = lemma2_delay(counts, T, RHO, 0.005, C)
            envelope = aggregate_envelope_delay(counts, T, RHO, 0.005, C)
            assert lemma == pytest.approx(envelope, rel=1e-9), counts

    def test_single_link_is_zero_delay(self):
        # One C-clamped input into a C output builds no queue beyond the
        # clamp — eq. 39 with N=1 gives d = tau*(rho*M - C)/C + ... = 0
        # exactly when the clamp is active from I=0 up to tau.
        d = lemma2_delay([100], T, RHO, 0.0, C)
        env = aggregate_envelope_delay([100], T, RHO, 0.0, C)
        assert d == pytest.approx(env, abs=1e-12)

    def test_unstable_rejected(self):
        with pytest.raises(AnalysisError):
            lemma2_delay([2000, 2000], T, RHO, 0.0, C)  # 128 Mbps > C

    def test_per_link_overload_rejected(self):
        with pytest.raises(AnalysisError):
            lemma2_delay([3200], T, RHO, 0.0, C)  # 102.4 Mbps on one wire

    def test_validation(self):
        with pytest.raises(AnalysisError):
            lemma2_delay([], T, RHO, 0.0, C)
        with pytest.raises(AnalysisError):
            lemma2_delay([-1], T, RHO, 0.0, C)
        with pytest.raises(AnalysisError):
            lemma2_delay([1], T, RHO, -0.1, C)


class TestEvenSplit:
    def test_exact_division(self):
        np.testing.assert_array_equal(even_split(12, 4), [3, 3, 3, 3])

    def test_remainder(self):
        np.testing.assert_array_equal(even_split(14, 4), [4, 4, 3, 3])

    def test_ceiling_property(self):
        counts = even_split(937, 6)
        assert counts.sum() == 937
        assert counts.max() == -(-937 // 6)  # ceil


class TestTheorem2:
    """Even distribution maximizes the delay bound."""

    def test_even_beats_hand_picked_distributions(self):
        m, n = 900, 6
        worst = theorem2_worst_delay(m, n, T, RHO, 0.0, C)
        for counts in (
            [900, 0, 0, 0, 0, 0],
            [450, 450, 0, 0, 0, 0],
            [300, 300, 300, 0, 0, 0],
            [400, 100, 100, 100, 100, 100],
        ):
            assert lemma2_delay(counts, T, RHO, 0.0, C) <= worst + 1e-15

    @settings(max_examples=150, deadline=None)
    @given(
        splits=st.lists(
            st.integers(min_value=0, max_value=500), min_size=2, max_size=6
        ),
        y=st.floats(min_value=0.0, max_value=0.05),
    )
    def test_prop_even_split_dominates(self, splits, y):
        counts = np.asarray(splits)
        m = int(counts.sum())
        n = counts.size
        if m == 0 or m * RHO >= C or np.any(counts * RHO >= C):
            return  # inadmissible draw
        distributed = lemma2_delay(counts, T, RHO, y, C)
        worst = theorem2_worst_delay(m, n, T, RHO, y, C)
        assert distributed <= worst + 1e-12

    @settings(max_examples=100, deadline=None)
    @given(
        splits=st.lists(
            st.integers(min_value=0, max_value=400), min_size=2, max_size=6
        ),
        y=st.floats(min_value=0.0, max_value=0.05),
    )
    def test_prop_lemma2_equals_envelope(self, splits, y):
        """eq. 39 is exact, not just a bound, for the clamped aggregate."""
        counts = np.asarray(splits)
        if counts.sum() == 0 or counts.sum() * RHO >= C or np.any(
            counts * RHO >= C
        ):
            return
        lemma = lemma2_delay(counts, T, RHO, y, C)
        env = aggregate_envelope_delay(counts, T, RHO, y, C)
        assert lemma == pytest.approx(env, rel=1e-9, abs=1e-15)


class TestChainToTheorem3:
    """Theorem 3 dominates every admissible distribution (the paper's
    whole point: the closed form is safe without knowing the counts)."""

    @settings(max_examples=150, deadline=None)
    @given(
        alpha=st.floats(min_value=0.05, max_value=0.9),
        n=st.integers(min_value=2, max_value=8),
        y=st.floats(min_value=0.0, max_value=0.05),
        data=st.data(),
    )
    def test_prop_theorem3_dominates_admissible(self, alpha, n, y, data):
        m_max = int(alpha * C / RHO)  # admission-control constraint (8)
        if m_max == 0:
            return
        m = data.draw(st.integers(min_value=1, max_value=m_max))
        # A random admissible distribution of m flows over n links.
        cuts = sorted(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=m),
                    min_size=n - 1,
                    max_size=n - 1,
                )
            )
        )
        counts = np.diff([0] + cuts + [m])
        if np.any(counts * RHO >= C):
            return
        bound = theorem3_delay(T, RHO, alpha, n, y)
        distributed = lemma2_delay(counts, T, RHO, y, C)
        assert distributed <= bound + 1e-12

    def test_even_split_approaches_theorem3(self):
        """At the maximal population the even-split bound approaches the
        Theorem 3 closed form from below (continuous relaxation)."""
        alpha, n = 0.3, 6
        m = int(alpha * C / RHO)  # 937
        discrete = theorem2_worst_delay(m, n, T, RHO, 0.0, C)
        closed = theorem3_delay(T, RHO, alpha, n, 0.0)
        assert discrete <= closed + 1e-12
        assert discrete == pytest.approx(closed, rel=0.01)
