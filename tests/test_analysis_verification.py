"""The Figure 2 verification procedure."""

import pytest

from repro.analysis import verify_assignment
from repro.errors import ConfigurationError
from repro.routing import shortest_path_routes
from repro.topology import LinkServerGraph
from repro.traffic import ClassRegistry, TrafficClass, video_class, voice_class


def test_success_on_mci_at_lower_bound(mci, mci_pairs, voice_registry,
                                       voice):
    routes = list(shortest_path_routes(mci, mci_pairs).values())
    result = verify_assignment(
        mci, routes, voice_registry, {"voice": 0.2999}
    )
    assert result.success
    assert result.reason == ""
    assert result.worst_route_delay["voice"] <= voice.deadline
    assert result.slack["voice"] >= 0


def test_failure_reports_reason(mci, mci_pairs, voice_registry):
    routes = list(shortest_path_routes(mci, mci_pairs).values())
    result = verify_assignment(mci, routes, voice_registry, {"voice": 0.95})
    assert not result.success
    assert result.reason  # human-readable explanation present


def test_accepts_prebuilt_graph(mci, mci_graph, mci_pairs, voice_registry):
    routes = list(shortest_path_routes(mci, mci_pairs).values())
    a = verify_assignment(mci, routes, voice_registry, {"voice": 0.25})
    b = verify_assignment(mci_graph, routes, voice_registry, {"voice": 0.25})
    assert a.success == b.success
    assert a.worst_route_delay["voice"] == pytest.approx(
        b.worst_route_delay["voice"]
    )


def test_alpha_validation(line4, voice_registry):
    with pytest.raises(ConfigurationError):
        verify_assignment(
            line4, [["r0", "r1"]], voice_registry, {"voice": 0.0}
        )
    with pytest.raises(ConfigurationError):
        verify_assignment(line4, [["r0", "r1"]], voice_registry, {})


def test_requires_realtime_class(line4):
    registry = ClassRegistry([TrafficClass.best_effort()])
    with pytest.raises(ConfigurationError):
        verify_assignment(line4, [["r0", "r1"]], registry, {})


def test_multiclass_shared_routes(line4):
    registry = ClassRegistry([voice_class(), video_class()])
    routes = [["r0", "r1", "r2"]]
    result = verify_assignment(
        line4, routes, registry, {"voice": 0.1, "video": 0.2}
    )
    assert result.success
    assert set(result.worst_route_delay) == {"voice", "video"}


def test_multiclass_per_class_routes(line4):
    registry = ClassRegistry([voice_class(), video_class()])
    result = verify_assignment(
        line4,
        {"voice": [["r0", "r1"]], "video": [["r2", "r3"]]},
        registry,
        {"voice": 0.2, "video": 0.2},
    )
    assert result.success


def test_multiclass_missing_route_map_entry(line4):
    registry = ClassRegistry([voice_class(), video_class()])
    with pytest.raises(ConfigurationError):
        verify_assignment(
            line4,
            {"voice": [["r0", "r1"]]},
            registry,
            {"voice": 0.2, "video": 0.2},
        )


def test_multiclass_failure_names_class(line4):
    tight = video_class(deadline=1e-6)
    registry = ClassRegistry([voice_class(), tight])
    result = verify_assignment(
        line4,
        [["r0", "r1", "r2", "r3"]],
        registry,
        {"voice": 0.2, "video": 0.2},
    )
    assert not result.success
    assert "video" in result.reason or "deadline" in result.reason


def test_single_and_multi_paths_agree(line4):
    """The single-class fast path and the multi-class machinery agree."""
    from repro.analysis import multi_class_delays

    vc = voice_class()
    registry = ClassRegistry.two_class(vc)
    routes = [["r0", "r1", "r2"], ["r3", "r2", "r1"]]
    single = verify_assignment(line4, routes, registry, {"voice": 0.3})
    multi = multi_class_delays(
        LinkServerGraph(line4), {"voice": routes}, registry, {"voice": 0.3}
    )
    assert single.success == multi.safe
    assert single.worst_route_delay["voice"] == pytest.approx(
        multi.per_class["voice"].worst_route_delay, rel=1e-9
    )


def test_verification_monotone_in_alpha(mci, mci_pairs, voice_registry):
    """If verification fails at alpha, it fails at any larger alpha."""
    routes = list(shortest_path_routes(mci, mci_pairs).values())
    succeeded_after_failure = False
    failed = False
    for alpha in (0.2, 0.3, 0.4, 0.5, 0.6):
        ok = verify_assignment(
            mci, routes, voice_registry, {"voice": alpha}
        ).success
        if failed and ok:
            succeeded_after_failure = True
        failed = failed or not ok
    assert not succeeded_after_failure
