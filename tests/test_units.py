"""Unit-helper conversions."""

import pytest

from repro import units


def test_bits_identity():
    assert units.bits(640) == 640.0


def test_kilobits():
    assert units.kilobits(2) == 2_000.0


def test_megabits():
    assert units.megabits(1.5) == 1_500_000.0


def test_bytes_to_bits():
    assert units.bytes_(80) == 640.0


def test_rate_helpers():
    assert units.bps(5) == 5.0
    assert units.kbps(32) == 32_000.0
    assert units.mbps(100) == 100e6
    assert units.gbps(1) == 1e9


def test_time_helpers():
    assert units.seconds(2) == 2.0
    assert units.milliseconds(100) == pytest.approx(0.1)
    assert units.microseconds(250) == pytest.approx(2.5e-4)


def test_reporting_helpers():
    assert units.as_milliseconds(0.1) == pytest.approx(100.0)
    assert units.as_mbps(100e6) == pytest.approx(100.0)


def test_roundtrip_ms():
    assert units.as_milliseconds(units.milliseconds(37.5)) == pytest.approx(
        37.5
    )


def test_paper_constants_spellable():
    # The Section 6 scenario reads naturally with the helpers.
    assert units.kbps(32) == 32_000.0
    assert units.milliseconds(100) == 0.1
    assert units.mbps(100) == 100_000_000.0
