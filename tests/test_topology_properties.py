"""Topology reports and derived properties."""

import math

import pytest

from repro.errors import TopologyError
from repro.topology import (
    Network,
    analyze,
    eccentricities,
    farthest_pairs,
    line_network,
    mci_backbone,
)


def test_report_mci(mci):
    report = analyze(mci)
    assert report.diameter == 4
    assert report.max_degree == 6
    assert report.num_routers == 18
    assert report.num_link_servers == 2 * report.num_physical_links
    assert report.is_uniform_capacity
    assert report.capacity == 100e6
    assert report.min_degree >= 2
    assert 2.0 < report.average_shortest_path < 4.0
    assert report.radius <= report.diameter


def test_report_as_dict(mci):
    d = analyze(mci).as_dict()
    assert d["diameter"] == 4
    assert set(d) >= {"name", "diameter", "max_degree", "capacity"}


def test_report_heterogeneous_capacity():
    net = Network()
    for n in "abc":
        net.add_router(n)
    net.add_link("a", "b", 1e6)
    net.add_link("b", "c", 2e6)
    report = analyze(net)
    assert not report.is_uniform_capacity
    assert math.isnan(report.capacity)


def test_report_requires_connected():
    net = Network()
    net.add_router("u")
    net.add_router("v")
    with pytest.raises(TopologyError):
        analyze(net)


def test_eccentricities_line():
    ecc = eccentricities(line_network(5))
    assert ecc["r0"] == 4
    assert ecc["r2"] == 2


def test_farthest_pairs_line():
    pairs = farthest_pairs(line_network(4))
    assert pairs == (("r0", "r3"),)


def test_farthest_pairs_at_diameter(mci):
    pairs = farthest_pairs(mci)
    assert pairs  # the diameter is realized
    ecc = eccentricities(mci)
    for u, v in pairs:
        assert ecc[u] == 4 or ecc[v] == 4
