"""Overload ramp schedules and priority-mix stamping.

The ramp generator must stay column-compatible with the constant-rate
schedule it overloads (same seed ⇒ same holdings/pairs, only the
arrival gaps rescaled), and the priority stamping must be a pure,
deterministic, arrival-only transform.
"""

import numpy as np
import pytest

from repro.errors import TrafficError
from repro.workload import (
    RAMP_SHAPES,
    ZipfPairPopularity,
    assign_priorities,
    open_loop_schedule,
    parse_priority_mix,
    ramp_schedule,
)
from repro.workload.trace import TraceEvent

POP = ZipfPairPopularity(num_pairs=12, skew=1.0)
N = 400


def base_schedule(seed=3):
    return open_loop_schedule(
        N, arrival_rate=100.0, mean_holding=0.5,
        popularity=POP, seed=seed,
    )


def ramp(shape="linear", factor=2.0, seed=3):
    return ramp_schedule(
        N, arrival_rate=100.0, ramp_factor=factor,
        mean_holding=0.5, popularity=POP, shape=shape, seed=seed,
    )


class TestRampSchedule:
    def test_shapes_registered(self):
        assert RAMP_SHAPES == ("linear", "step")

    def test_deterministic(self):
        a, b = ramp(), ramp()
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.holdings, b.holdings)
        assert np.array_equal(a.pair_indices, b.pair_indices)

    def test_same_holdings_and_pairs_as_constant_rate(self):
        base, ramped = base_schedule(), ramp()
        assert np.array_equal(base.holdings, ramped.holdings)
        assert np.array_equal(base.pair_indices, ramped.pair_indices)
        # But the arrivals finish earlier: every post-start gap is
        # compressed by a rate that only ever exceeds the base rate.
        assert ramped.times[-1] < base.times[-1]
        assert np.all(np.diff(ramped.times) > 0)

    def test_linear_ramp_compresses_the_tail_most(self):
        base, ramped = base_schedule(), ramp(factor=3.0)
        base_gaps = np.diff(base.times)
        ramp_gaps = np.diff(ramped.times)
        ratio = ramp_gaps / base_gaps
        # The instantaneous rate rises monotonically, so the gap
        # compression deepens monotonically toward 1/factor.
        assert np.all(np.diff(ratio) < 1e-12)
        assert ratio[-1] == pytest.approx(1 / 3.0, rel=1e-6)

    def test_step_ramp_is_piecewise(self):
        base, stepped = base_schedule(), ramp(shape="step", factor=2.0)
        base_gaps = np.diff(base.times)
        step_gaps = np.diff(stepped.times)
        ratio = step_gaps / base_gaps
        # First half untouched, second half at exactly half the gap.
        first = ratio[: N // 2 - 1]
        second = ratio[N // 2 :]
        assert np.allclose(first, 1.0)
        assert np.allclose(second, 0.5)

    def test_unknown_shape_rejected(self):
        with pytest.raises(TrafficError):
            ramp(shape="quadratic")

    def test_nonpositive_factor_rejected(self):
        with pytest.raises(TrafficError):
            ramp(factor=0.0)


class TestPriorityMix:
    def test_parse_round_trip(self):
        mix = parse_priority_mix("hard_rt=1,soft_rt=2,elastic=7")
        assert mix == {"hard_rt": 1.0, "soft_rt": 2.0, "elastic": 7.0}

    def test_parse_tolerates_whitespace_and_gaps(self):
        assert parse_priority_mix(" hard_rt = 2 ,, elastic=1 ") == {
            "hard_rt": 2.0,
            "elastic": 1.0,
        }

    @pytest.mark.parametrize(
        "spec",
        [
            "interactive=1",          # unknown priority
            "hard_rt=banana",         # unparsable weight
            "hard_rt=-1",             # negative weight
            "hard_rt=0,elastic=0",    # zero total
            "",                       # empty
        ],
    )
    def test_parse_rejects(self, spec):
        with pytest.raises(TrafficError):
            parse_priority_mix(spec)


def trace_events(n=60):
    events = []
    for i in range(n):
        events.append(
            TraceEvent(
                time=0.01 * i,
                kind="arrival",
                flow_id=f"f{i}",
                class_name="voice",
                source="r0",
                destination="r2",
            )
        )
        events.append(
            TraceEvent(
                time=1.0 + 0.01 * i, kind="departure", flow_id=f"f{i}"
            )
        )
    return events


class TestAssignPriorities:
    def test_arrivals_stamped_departures_untouched(self):
        events = trace_events()
        out = assign_priorities(
            events, {"hard_rt": 1, "elastic": 3}, seed=1
        )
        assert len(out) == len(events)
        for before, after in zip(events, out):
            if after.kind == "arrival":
                assert after.priority in ("hard_rt", "elastic")
            else:
                assert after is before  # pass-through, same object
        # Inputs are never mutated.
        assert all(e.priority is None for e in events)

    def test_deterministic_in_seed(self):
        events = trace_events()
        mix = {"hard_rt": 1, "soft_rt": 1, "elastic": 2}
        a = assign_priorities(events, mix, seed=7)
        b = assign_priorities(events, mix, seed=7)
        c = assign_priorities(events, mix, seed=8)
        assert [e.priority for e in a] == [e.priority for e in b]
        assert [e.priority for e in a] != [e.priority for e in c]

    def test_weights_shape_the_draw(self):
        events = trace_events(n=300)
        out = assign_priorities(
            events, {"hard_rt": 1, "elastic": 9}, seed=0
        )
        stamped = [
            e.priority for e in out if e.kind == "arrival"
        ]
        hard = stamped.count("hard_rt")
        # ~10% of 300 with generous slack; both present.
        assert 0 < hard < 90
        assert stamped.count("elastic") == 300 - hard
