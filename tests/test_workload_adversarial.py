"""Adversarial ``(w, b)``-bounded workload generation."""

import pytest

from repro.admission import UtilizationAdmissionController
from repro.errors import TrafficError
from repro.routing.shortest import shortest_path_routes
from repro.topology import LinkServerGraph, line_network
from repro.traffic import ClassRegistry, voice_class
from repro.traffic.generators import all_ordered_pairs
from repro.workload import (
    AdversaryModel,
    adversarial_events,
    drive,
    hot_servers,
    validate_adversarial_events,
)
from repro.workload.trace import TraceEvent

pytestmark = pytest.mark.adversarial


@pytest.fixture(scope="module")
def chain():
    network = line_network(5)
    graph = LinkServerGraph(network)
    routes = shortest_path_routes(network, all_ordered_pairs(network))
    return graph, routes


class TestAdversaryModel:
    def test_defaults(self):
        model = AdversaryModel()
        assert model.rate == 64.0
        assert model.burst == 16
        assert model.window == 1.0

    def test_arrivals_allowed_is_affine(self):
        model = AdversaryModel(rate=10.0, burst=4)
        assert model.arrivals_allowed(0.0) == 4
        assert model.arrivals_allowed(2.0) == 24

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate": 0.0},
            {"rate": -1.0},
            {"burst": 0},
            {"window": 0.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(TrafficError):
            AdversaryModel(**kwargs)


class TestHotServers:
    def test_middle_of_a_chain_is_hottest(self, chain):
        graph, routes = chain
        # On a line every all-pairs route set crosses the middle links
        # the most; the extremes are crossed least.
        ranking = hot_servers(graph, routes, top=graph.num_servers)
        crossings = [0] * graph.num_servers
        for path in routes.values():
            for s in graph.route_servers(path):
                crossings[int(s)] += 1
        assert crossings[ranking[0]] == max(crossings)
        assert crossings[ranking[-1]] == min(crossings)

    def test_deterministic_and_distinct(self, chain):
        graph, routes = chain
        first = hot_servers(graph, routes, top=3)
        assert first == hot_servers(graph, routes, top=3)
        assert len(set(first)) == 3

    def test_invalid_arguments_rejected(self, chain):
        graph, routes = chain
        with pytest.raises(TrafficError):
            hot_servers(graph, routes, top=0)
        with pytest.raises(TrafficError):
            hot_servers(graph, {}, top=1)


class TestAdversarialEvents:
    MODEL = AdversaryModel(rate=100.0, burst=8)

    def make(self, chain, **kwargs):
        graph, routes = chain
        kwargs.setdefault("num_flows", 40)
        kwargs.setdefault("model", self.MODEL)
        return adversarial_events(graph, routes, "voice", **kwargs)

    def test_burst_packing_is_extremal(self, chain):
        events = self.make(chain)
        arrivals = [e for e in events if e.kind == "arrival"]
        by_time = {}
        for e in arrivals:
            by_time.setdefault(e.time, []).append(e)
        sizes = [len(v) for _, v in sorted(by_time.items())]
        # Every burst is flush against the bucket depth: the first
        # burst drains the full bucket and refills are complete.
        assert sizes[0] == self.MODEL.burst
        assert all(s == self.MODEL.burst for s in sizes[:-1])
        assert sum(sizes) == 40

    def test_every_arrival_has_one_departure(self, chain):
        events = self.make(chain)
        arrived = {e.flow_id for e in events if e.kind == "arrival"}
        departed = [e.flow_id for e in events if e.kind == "departure"]
        assert len(arrived) == 40
        assert sorted(arrived) == sorted(departed)

    def test_departures_break_ties_first(self, chain):
        events = self.make(chain, churn_fraction=1.0)
        for earlier, later in zip(events, events[1:]):
            if earlier.time == later.time:
                # departure (0) may precede arrival (1), never the
                # other way around within one timestamp.
                assert not (
                    earlier.kind == "arrival"
                    and later.kind == "departure"
                )

    def test_thundering_herd_lands_on_burst_instants(self, chain):
        events = self.make(chain, churn_fraction=1.0)
        burst_instants = {
            e.time for e in events if e.kind == "arrival"
        }
        last_burst = max(burst_instants)
        for e in events:
            if e.kind == "departure" and e.time <= last_burst:
                assert e.time in burst_instants

    def test_zero_churn_pins_slots_past_the_attack(self, chain):
        events = self.make(chain, churn_fraction=0.0)
        last_arrival = max(
            e.time for e in events if e.kind == "arrival"
        )
        for e in events:
            if e.kind == "departure":
                assert e.time > last_arrival

    def test_deterministic_in_seed(self, chain):
        one = self.make(chain, seed=5)
        two = self.make(chain, seed=5)
        other = self.make(chain, seed=6)
        key = lambda evs: [
            (e.time, e.kind, e.flow_id, e.source, e.destination)
            for e in evs
        ]
        assert key(one) == key(two)
        assert key(one) != key(other)

    def test_flow_ids_carry_prefix_and_seed(self, chain):
        events = self.make(chain, seed=9, id_prefix="atk")
        assert all(e.flow_id.startswith("atk9_") for e in events)

    def test_targets_only_hot_routes(self, chain):
        graph, routes = chain
        events = self.make(chain, hot_edges=1)
        hot = set(hot_servers(graph, routes, top=1))
        for e in events:
            if e.kind == "arrival":
                servers = graph.route_servers(
                    routes[(e.source, e.destination)]
                ).tolist()
                assert hot.intersection(servers)

    def test_invalid_parameters_rejected(self, chain):
        with pytest.raises(TrafficError):
            self.make(chain, num_flows=0)
        with pytest.raises(TrafficError):
            self.make(chain, churn_fraction=1.5)

    def test_drives_the_batch_pipeline(self, chain):
        graph, routes = chain
        events = self.make(chain)
        controller = UtilizationAdmissionController(
            graph,
            ClassRegistry.two_class(voice_class()),
            {"voice": 0.4},
            routes,
        )
        result = drive(controller, events, batch_size=8, mode="batch")
        assert result.num_arrivals == 40
        assert result.num_admitted + result.num_rejected == 40
        # Every admitted flow is eventually released by the stream.
        assert result.num_released == result.num_admitted


class TestValidateAdversarialEvents:
    def test_release_of_never_arrived_flow_rejected(self):
        events = [
            TraceEvent(0.0, "arrival", "a", "voice", "r0", "r1"),
            TraceEvent(1.0, "departure", "ghost"),
        ]
        with pytest.raises(TrafficError, match="never arrived"):
            validate_adversarial_events(events)

    def test_double_release_rejected(self):
        events = [
            TraceEvent(0.0, "arrival", "a", "voice", "r0", "r1"),
            TraceEvent(1.0, "departure", "a"),
            TraceEvent(2.0, "departure", "a"),
        ]
        with pytest.raises(TrafficError, match="twice"):
            validate_adversarial_events(events)

    def test_re_arrival_rejected(self):
        events = [
            TraceEvent(0.0, "arrival", "a", "voice", "r0", "r1"),
            TraceEvent(1.0, "arrival", "a", "voice", "r0", "r1"),
        ]
        with pytest.raises(TrafficError, match="re-arrives"):
            validate_adversarial_events(events)

    def test_unsorted_stream_rejected(self):
        events = [
            TraceEvent(1.0, "arrival", "a", "voice", "r0", "r1"),
            TraceEvent(0.0, "arrival", "b", "voice", "r0", "r1"),
        ]
        with pytest.raises(TrafficError, match="not time-sorted"):
            validate_adversarial_events(events)

    def test_envelope_violation_rejected(self):
        model = AdversaryModel(rate=1.0, burst=2)
        events = [
            TraceEvent(0.0, "arrival", f"f{i}", "voice", "r0", "r1")
            for i in range(3)
        ]
        with pytest.raises(TrafficError, match="envelope"):
            validate_adversarial_events(events, model)

    def test_compliant_stream_accepted(self):
        model = AdversaryModel(rate=1.0, burst=2)
        events = [
            TraceEvent(0.0, "arrival", "a", "voice", "r0", "r1"),
            TraceEvent(0.0, "arrival", "b", "voice", "r0", "r1"),
            TraceEvent(1.0, "arrival", "c", "voice", "r0", "r1"),
            TraceEvent(2.0, "departure", "a"),
        ]
        validate_adversarial_events(events, model)
