"""Experiment record persistence and report rendering."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments import sweep_deadline
from repro.experiments.persistence import (
    ExperimentRecord,
    load_records,
    render_markdown_report,
    save_records,
    sweep_record,
    table1_record,
)


@pytest.fixture()
def record():
    return ExperimentRecord(
        experiment_id="demo",
        title="Demo experiment",
        measured={"alpha": 0.45, "probes": 7},
        reference={"alpha": 0.45},
        notes="all good",
    )


def test_roundtrip_dict(record):
    back = ExperimentRecord.from_dict(record.to_dict())
    assert back.experiment_id == record.experiment_id
    assert back.measured == record.measured
    assert back.reference == record.reference
    assert back.notes == record.notes


def test_unknown_schema_rejected(record):
    data = record.to_dict()
    data["schema_version"] = 42
    with pytest.raises(ConfigurationError):
        ExperimentRecord.from_dict(data)


def test_save_load_file(record, tmp_path):
    path = tmp_path / "records.json"
    save_records([record, record], str(path))
    loaded = load_records(str(path))
    assert len(loaded) == 2
    assert loaded[0].measured == record.measured
    # plain JSON on disk
    assert isinstance(json.loads(path.read_text()), list)


def test_load_rejects_non_list(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{}")
    with pytest.raises(ConfigurationError):
        load_records(str(path))


def test_table1_record_contains_reference():
    from repro.config import UtilizationBounds
    from repro.config.maximize import MaximizationResult
    from repro.experiments.table1 import Table1Result

    bounds = UtilizationBounds(
        lower=0.30, upper=0.61, fan_in=6, diameter=4, burst=640,
        rate=32_000, deadline=0.1,
    )

    def fake(alpha, method):
        return MaximizationResult(
            alpha=alpha, routes={}, bounds=bounds, evaluations=[],
            method=method,
        )

    result = Table1Result(
        bounds=bounds,
        shortest_path=fake(0.40, "shortest-path"),
        heuristic=fake(0.50, "heuristic"),
        scenario=None,
    )
    record = table1_record(result)
    assert record.reference["heuristic"] == 0.45
    assert record.measured["heuristic"] == 0.50
    assert "Ordering holds: True" in record.notes


def test_sweep_record_and_report(mci):
    from repro.experiments import paper_scenario

    sweep = sweep_deadline(deadlines=(0.05, 0.1))
    record = sweep_record(sweep, "sweep-deadline")
    assert record.measured["parameter"] == "deadline"
    assert len(record.measured["points"]) == 2

    report = render_markdown_report([record])
    assert "## Sweep: max utilization vs deadline" in report
    assert "| 0.05 |" in report
    assert "| 0.1 |" in report


def test_report_with_reference_table(record):
    report = render_markdown_report([record])
    assert "| quantity | paper | measured |" in report
    assert "| alpha | 0.45 | 0.45 |" in report
    assert "| probes | — | 7 |" in report
    assert "> all good" in report


def test_report_plain_measured_only():
    record = ExperimentRecord(
        experiment_id="x", title="X", measured={"k": 1}
    )
    report = render_markdown_report([record])
    assert "| quantity | measured |" in report
    assert "| k | 1 |" in report
