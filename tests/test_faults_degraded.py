"""Backoff and degraded-mode policies."""

import pytest

from repro.errors import FaultInjectionError
from repro.faults import BackoffPolicy, DegradedModePolicy


class TestBackoffPolicy:
    def test_exponential_delays(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, max_retries=3)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(FaultInjectionError):
            BackoffPolicy(base=0.0)
        with pytest.raises(FaultInjectionError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(FaultInjectionError):
            BackoffPolicy(max_retries=-1)


class TestDegradedModePolicy:
    def test_defaults_valid(self):
        policy = DegradedModePolicy()
        assert 0 < policy.alpha_factor <= 1
        assert policy.repair_latency == 0.0

    def test_validation(self):
        with pytest.raises(FaultInjectionError):
            DegradedModePolicy(alpha_factor=0.0)
        with pytest.raises(FaultInjectionError):
            DegradedModePolicy(alpha_factor=1.5)
        with pytest.raises(FaultInjectionError):
            DegradedModePolicy(repair_latency=-1.0)
