"""Kernel differential suite: every slot-kernel backend is bit-identical.

The batch slot decision has one semantics — the sequential
test-then-commit loop in :mod:`repro.admission.kernels` — and two fast
implementations (the vectorized numpy interval iteration, and the
numba-compiled twin when numba is installed).  This suite pins all
backends to the sequential reference on:

* chain instances shaped like the ``repro.verify`` bounded models
  (interval routes over a line network),
* adversarial random traces (negative free counts, duplicate servers
  on one route, saturated and uncontended extremes, the padding slot),
* and edge cases that exercise each numpy fast path (uncontended
  bincount exit, scalar tail, zero-width, empty batch).

It also proves the differential harness *can* fail: each planted
mutant from :mod:`repro.verify.mutants` must diverge from the
reference on at least one instance while the real backends agree.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.admission.batch import (
    PADDING_FREE,
    batch_slot_decisions,
    batch_slot_decisions_numpy,
    pad_server_matrix,
)
from repro.admission.kernels import (
    HAVE_NUMBA,
    NUMBA_PIN,
    active_slot_kernel,
    available_slot_kernels,
    batch_slot_decisions_sequential,
    default_slot_kernel,
    get_slot_kernel,
    set_slot_kernel,
    use_slot_kernel,
    warm_slot_kernel,
)
from repro.verify.mutants import MUTANTS

# ---------------------------------------------------------------------------
# Instance generators
# ---------------------------------------------------------------------------


def chain_instance(servers, routes, free_per_server):
    """Interval routes over a chain, like the repro.verify instances.

    ``routes`` is a list of ``(start, stop)`` half-open server
    intervals; the returned matrix is padded with a virtual slot.
    """
    rows = [
        np.arange(a, b, dtype=np.int64) for a, b in routes
    ]
    matrix, _ = pad_server_matrix(rows, pad=servers)
    free = np.empty(servers + 1, dtype=np.int64)
    free[:servers] = free_per_server
    free[servers] = PADDING_FREE
    return matrix, free


def random_instance(rng, *, allow_duplicates=True, allow_negative=True):
    """An adversarial random (matrix, free) pair."""
    servers = int(rng.integers(1, 9))
    b = int(rng.integers(1, 33))
    width = int(rng.integers(1, 5))
    if allow_duplicates:
        matrix = rng.integers(0, servers + 1, size=(b, width))
    else:
        width = min(width, servers)
        matrix = np.stack(
            [
                rng.choice(servers, size=width, replace=False)
                for _ in range(b)
            ]
        )
    matrix = matrix.astype(np.int64)
    low = -3 if allow_negative else 0
    free = rng.integers(low, b * width + 2, size=servers + 1).astype(
        np.int64
    )
    free[servers] = PADDING_FREE
    return matrix, free


def all_backends():
    kernels = {
        "sequential": batch_slot_decisions_sequential,
        "numpy": batch_slot_decisions_numpy,
    }
    if HAVE_NUMBA:
        from repro.admission.kernels import _numba_dispatch

        kernels["numba"] = _numba_dispatch
    return kernels


def assert_all_backends_agree(matrix, free):
    reference = batch_slot_decisions_sequential(matrix, free.copy())
    for name, kernel in all_backends().items():
        got = kernel(matrix, free.copy())
        assert got.dtype == np.bool_
        assert (got == reference).all(), (
            f"backend {name!r} diverged from sequential\n"
            f"matrix={matrix.tolist()} free={free.tolist()}\n"
            f"sequential={reference.tolist()} {name}={got.tolist()}"
        )
    return reference


# ---------------------------------------------------------------------------
# Differential: chain instances (verify-shaped)
# ---------------------------------------------------------------------------


def test_differential_chain_instances():
    rng = np.random.default_rng(0xC0FFEE)
    for trial in range(120):
        servers = int(rng.integers(2, 8))
        n = int(rng.integers(1, 40))
        routes = []
        for _ in range(n):
            a = int(rng.integers(0, servers))
            b = int(rng.integers(a + 1, servers + 1))
            routes.append((a, b))
        # Tight capacities force mixed admit/reject verdicts.
        matrix, free = chain_instance(
            servers, routes, free_per_server=int(rng.integers(0, 4))
        )
        assert_all_backends_agree(matrix, free)


def test_differential_chain_saturating_prefix():
    # All flows share server 0: exactly ``free[0]`` are admitted, in
    # batch order — the canonical intra-batch contention case.
    matrix, free = chain_instance(
        4, [(0, 4)] * 10, free_per_server=3
    )
    verdict = assert_all_backends_agree(matrix, free)
    assert verdict.tolist() == [True] * 3 + [False] * 7


# ---------------------------------------------------------------------------
# Differential: adversarial random traces
# ---------------------------------------------------------------------------


def test_differential_random_traces():
    rng = np.random.default_rng(2026)
    for trial in range(400):
        matrix, free = random_instance(rng)
        assert_all_backends_agree(matrix, free)


def test_differential_random_traces_realistic_routes():
    # No duplicate servers on a route, no negative free — the shape
    # production controllers actually feed the kernel.
    rng = np.random.default_rng(8_0_8)
    for trial in range(200):
        matrix, free = random_instance(
            rng, allow_duplicates=False, allow_negative=False
        )
        assert_all_backends_agree(matrix, free)


def test_duplicate_server_on_route_tests_precommit_value():
    # A route visiting one server twice must test the same pre-commit
    # free count for both occurrences (test-then-commit), yet commit
    # one slot per occurrence once admitted.
    matrix = np.array([[0, 0, 1], [1, 1, 2], [0, 2, 2]], dtype=np.int64)
    free = np.array([1, 2, 1], dtype=np.int64)
    verdict = assert_all_backends_agree(matrix, free)
    assert verdict.tolist() == [True, True, False]


def test_negative_free_rejects_but_only_on_crossed_servers():
    matrix = np.array([[0], [1], [1]], dtype=np.int64)
    free = np.array([-2, 1], dtype=np.int64)
    verdict = assert_all_backends_agree(matrix, free)
    assert verdict.tolist() == [False, True, False]


# ---------------------------------------------------------------------------
# Numpy fast-path edges
# ---------------------------------------------------------------------------


def test_empty_batch_and_zero_width():
    for matrix in (
        np.zeros((0, 3), dtype=np.int64),
        np.zeros((4, 0), dtype=np.int64),
    ):
        free = np.array([1, 1, 1], dtype=np.int64)
        verdict = assert_all_backends_agree(matrix, free)
        assert verdict.shape == (matrix.shape[0],)
        assert verdict.all()


def test_uncontended_bincount_boundary():
    # totals == free exactly: still all-admit (the fast path's edge).
    matrix = np.array([[0], [0], [1]], dtype=np.int64)
    free = np.array([2, 1], dtype=np.int64)
    verdict = assert_all_backends_agree(matrix, free)
    assert verdict.all()
    # One more occurrence than free tips the last request over.
    free_tight = np.array([1, 1], dtype=np.int64)
    verdict = assert_all_backends_agree(matrix, free_tight)
    assert verdict.tolist() == [True, False, True]


def test_scalar_tail_on_contended_batch():
    # A large batch at 3/4 capacity drives the interval iteration into
    # its scalar-tail finish; the verdict must still be bit-identical.
    rng = np.random.default_rng(7)
    servers, width, b = 32, 4, 1024
    rows = np.stack(
        [rng.choice(servers, size=width, replace=False) for _ in range(b)]
    ).astype(np.int64)
    matrix, _ = pad_server_matrix(list(rows), pad=servers)
    free = np.empty(servers + 1, dtype=np.int64)
    free[:servers] = (3 * b * width) // (4 * servers)
    free[servers] = PADDING_FREE
    verdict = assert_all_backends_agree(matrix, free)
    # The workload is genuinely contended: both verdicts occur.
    assert verdict.any() and not verdict.all()


# ---------------------------------------------------------------------------
# Planted mutants: the differential must be falsifiable
# ---------------------------------------------------------------------------


def test_planted_mutants_diverge_where_backends_agree():
    rng = np.random.default_rng(31337)
    caught = {name: False for name in MUTANTS}
    for trial in range(200):
        matrix, free = random_instance(
            rng, allow_duplicates=False, allow_negative=False
        )
        reference = assert_all_backends_agree(matrix, free)
        for name, mutant in MUTANTS.items():
            got = mutant(matrix, free.copy())
            if (got != reference).any():
                caught[name] = True
        if all(caught.values()):
            break
    missed = [name for name, hit in caught.items() if not hit]
    assert not missed, (
        f"mutants never diverged from the reference: {missed} — "
        "the differential suite could not catch these bugs"
    )


# ---------------------------------------------------------------------------
# Selection registry
# ---------------------------------------------------------------------------


def test_available_kernels_always_include_reference_pair():
    names = available_slot_kernels()
    assert "numpy" in names
    assert "sequential" in names
    assert ("numba" in names) == HAVE_NUMBA


def test_default_kernel_env_override(monkeypatch):
    monkeypatch.delenv("REPRO_SLOT_KERNEL", raising=False)
    assert default_slot_kernel() == ("numba" if HAVE_NUMBA else "numpy")
    monkeypatch.setenv("REPRO_SLOT_KERNEL", "sequential")
    assert default_slot_kernel() == "sequential"
    monkeypatch.setenv("REPRO_SLOT_KERNEL", "not-a-kernel")
    with pytest.raises(ValueError, match="not an available slot kernel"):
        default_slot_kernel()


def test_set_slot_kernel_rejects_unknown_and_restores():
    before = active_slot_kernel()
    with pytest.raises(ValueError, match="unknown slot kernel"):
        set_slot_kernel("fortran")
    assert active_slot_kernel() == before
    with use_slot_kernel("sequential"):
        assert active_slot_kernel() == "sequential"
        assert get_slot_kernel() is batch_slot_decisions_sequential
    assert active_slot_kernel() == before


def test_dispatcher_uses_selected_backend():
    matrix = np.array([[0], [0]], dtype=np.int64)
    free = np.array([1], dtype=np.int64)
    with use_slot_kernel("sequential"):
        verdict = batch_slot_decisions(matrix, free)
    assert verdict.tolist() == [True, False]
    with use_slot_kernel("numpy"):
        verdict = batch_slot_decisions(matrix, free)
    assert verdict.tolist() == [True, False]


def test_warm_slot_kernel():
    assert warm_slot_kernel("numpy") == "numpy"
    assert warm_slot_kernel() == active_slot_kernel()
    with pytest.raises(ValueError, match="unknown slot kernel"):
        warm_slot_kernel("fortran")


def test_numba_pin_matches_the_packaging_extra():
    """The CI job, the `jit` extra, and `NUMBA_PIN` must agree."""
    import os

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    with open(os.path.join(root, "pyproject.toml")) as fh:
        pyproject = fh.read()
    assert f"numba=={NUMBA_PIN}" in pyproject
    with open(
        os.path.join(root, ".github", "workflows", "ci.yml")
    ) as fh:
        workflow = fh.read()
    assert f"numba=={NUMBA_PIN}" in workflow


@pytest.mark.jit
def test_numba_backend_matches_reference_on_chain():
    # Only collected when numba is installed (see conftest's jit skip).
    with use_slot_kernel("numba"):
        warm_slot_kernel()
        matrix, free = chain_instance(
            5, [(0, 5), (1, 3), (0, 2), (2, 5)] * 4, free_per_server=2
        )
        got = batch_slot_decisions(matrix, free.copy())
    expected = batch_slot_decisions_sequential(matrix, free.copy())
    assert (got == expected).all()
