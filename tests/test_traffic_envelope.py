"""Envelope algebra: unit tests plus hypothesis properties.

The envelope class is the numerical foundation of both the paper's
configuration-time bound (Theorem 1 uses shifted leaky buckets) and the
flow-aware baseline, so its algebra is tested heavily: closure of the
concave class under +/min/shift/scale, functional correctness of each
operation, and the queueing quantities against hand-computed cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EnvelopeError
from repro.traffic import Envelope, constant_rate_envelope, leaky_bucket_envelope


# --------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------- #

# Moderate ranges: the strategy reconstructs y-values by accumulation, so
# extreme magnitude mixes would re-derive slopes with catastrophic
# cancellation and trip the constructor's concavity validation.
reasonable = st.floats(
    min_value=1e-2, max_value=1e3, allow_nan=False, allow_infinity=False
)


@st.composite
def concave_envelopes(draw) -> Envelope:
    """Random concave nondecreasing PL envelopes via decreasing slopes."""
    n = draw(st.integers(min_value=1, max_value=5))
    widths = draw(
        st.lists(reasonable, min_size=max(n - 1, 0), max_size=max(n - 1, 0))
    )
    xs = np.concatenate([[0.0], np.cumsum(widths)]) if widths else np.array([0.0])
    y0 = draw(st.floats(min_value=0.0, max_value=1e3))
    slopes = sorted(
        draw(st.lists(reasonable, min_size=n, max_size=n)), reverse=True
    )
    ys = [y0]
    for i in range(len(xs) - 1):
        ys.append(ys[-1] + slopes[i] * (xs[i + 1] - xs[i]))
    return Envelope(xs, ys, slopes[-1])


@st.composite
def buckets(draw):
    burst = draw(st.floats(min_value=1.0, max_value=1e5))
    rate = draw(st.floats(min_value=1.0, max_value=1e6))
    return leaky_bucket_envelope(burst, rate)


def _sample_points(*envelopes: Envelope) -> np.ndarray:
    xs = np.unique(np.concatenate([e.breaks_x for e in envelopes]))
    extra = np.array([xs[-1] + 0.5, xs[-1] + 3.0, xs[-1] + 17.0])
    mids = (xs[:-1] + xs[1:]) / 2 if xs.size > 1 else np.empty(0)
    return np.unique(np.concatenate([xs, mids, extra]))


# --------------------------------------------------------------------- #
# construction
# --------------------------------------------------------------------- #

class TestConstruction:
    def test_leaky_bucket_values(self):
        env = leaky_bucket_envelope(640, 32_000)
        assert env(0.0) == 640.0
        assert env(1.0) == pytest.approx(640 + 32_000)
        assert env.burst == 640.0
        assert env.long_term_rate == 32_000.0

    def test_leaky_bucket_clamped(self):
        env = leaky_bucket_envelope(640, 32_000, line_rate=100e6)
        # Before the kink the wire limits: F(I) = C*I.
        kink = 640 / (100e6 - 32_000)
        assert env(kink / 2) == pytest.approx(100e6 * kink / 2)
        assert env(1.0) == pytest.approx(640 + 32_000, rel=1e-9)
        assert env.burst == 0.0  # clamp removes the instantaneous burst

    def test_clamp_requires_line_faster_than_rate(self):
        with pytest.raises(EnvelopeError):
            leaky_bucket_envelope(640, 32_000, line_rate=1_000)

    def test_constant_rate(self):
        env = constant_rate_envelope(5.0)
        assert env(3.0) == pytest.approx(15.0)

    def test_zero(self):
        z = Envelope.zero()
        assert z(123.0) == 0.0

    def test_negative_burst_rejected(self):
        with pytest.raises(EnvelopeError):
            leaky_bucket_envelope(-1.0, 10.0)

    def test_non_concave_rejected(self):
        with pytest.raises(EnvelopeError):
            Envelope([0.0, 1.0], [0.0, 1.0], final_slope=5.0)  # slope rises

    def test_decreasing_rejected(self):
        with pytest.raises(EnvelopeError):
            Envelope([0.0, 1.0], [5.0, 1.0], final_slope=0.0)

    def test_first_break_must_be_zero(self):
        with pytest.raises(EnvelopeError):
            Envelope([1.0], [0.0], 1.0)

    def test_immutability(self):
        env = leaky_bucket_envelope(10, 1)
        with pytest.raises(AttributeError):
            env.final_slope = 2.0

    def test_collinear_simplification(self):
        env = Envelope([0.0, 1.0, 2.0], [0.0, 2.0, 4.0], final_slope=2.0)
        assert env.breaks_x.size == 1  # pure line collapses to one point

    def test_negative_argument_rejected(self):
        env = leaky_bucket_envelope(10, 1)
        with pytest.raises(EnvelopeError):
            env(-0.5)


# --------------------------------------------------------------------- #
# algebra: functional correctness
# --------------------------------------------------------------------- #

class TestAlgebra:
    def test_sum_pointwise(self):
        a = leaky_bucket_envelope(100, 10)
        b = leaky_bucket_envelope(50, 20, line_rate=1_000)
        s = a + b
        for x in (0.0, 0.01, 0.5, 2.0, 100.0):
            assert s(x) == pytest.approx(a(x) + b(x), rel=1e-12)

    def test_sum_builtin(self):
        envs = [leaky_bucket_envelope(10 * i, i) for i in range(1, 4)]
        total = sum(envs)  # uses __radd__ with 0
        assert total(1.0) == pytest.approx(sum(e(1.0) for e in envs))

    def test_scale_matches_repeated_sum(self):
        e = leaky_bucket_envelope(640, 32_000)
        assert e.scale(3).almost_equal(e + e + e)

    def test_scale_zero_is_zero(self):
        assert leaky_bucket_envelope(1, 1).scale(0).almost_equal(
            Envelope.zero()
        )

    def test_scale_negative_rejected(self):
        with pytest.raises(EnvelopeError):
            leaky_bucket_envelope(1, 1).scale(-1)

    def test_shift_is_translation(self):
        e = leaky_bucket_envelope(640, 32_000, line_rate=1e6)
        s = e.shift(0.25)
        for x in (0.0, 0.1, 1.0, 5.0):
            assert s(x) == pytest.approx(e(x + 0.25), rel=1e-12)

    def test_shift_zero_identity(self):
        e = leaky_bucket_envelope(640, 32_000)
        assert e.shift(0.0) is e

    def test_shift_negative_rejected(self):
        with pytest.raises(EnvelopeError):
            leaky_bucket_envelope(1, 1).shift(-0.1)

    def test_shift_beyond_breakpoints(self):
        e = leaky_bucket_envelope(640, 32_000, line_rate=1e6)
        far = e.shift(10.0)
        assert far.breaks_x.size == 1
        assert far(0.0) == pytest.approx(e(10.0))

    def test_minimum_pointwise(self):
        a = leaky_bucket_envelope(1000, 10)
        b = constant_rate_envelope(500)
        m = a.minimum(b)
        for x in (0.0, 0.5, 1.0, 2.0, 3.0, 10.0):
            assert m(x) == pytest.approx(min(a(x), b(x)), rel=1e-9)

    def test_clamp_rate_is_min_with_line(self):
        e = leaky_bucket_envelope(640, 32_000)
        clamped = e.clamp_rate(100e6)
        line = constant_rate_envelope(100e6)
        assert clamped.almost_equal(e.minimum(line))


# --------------------------------------------------------------------- #
# queueing quantities
# --------------------------------------------------------------------- #

class TestQueueing:
    def test_leaky_bucket_delay_is_burst_over_rate(self):
        # Classic single-server result: d = T / C for an (T, rho) source.
        e = leaky_bucket_envelope(640, 32_000)
        assert e.max_delay(1e6) == pytest.approx(640 / 1e6)

    def test_aggregate_delay(self):
        # n homogeneous buckets through rate C: d = n*T / C.
        e = leaky_bucket_envelope(640, 32_000).scale(10)
        assert e.max_delay(1e6) == pytest.approx(6_400 / 1e6)

    def test_unstable_raises(self):
        e = leaky_bucket_envelope(640, 2e6)
        with pytest.raises(EnvelopeError):
            e.max_delay(1e6)

    def test_backlog_hand_case(self):
        # F = min(1000*I, 100 + 10*I), C = 50:
        # max at the kink I* = 100/990, F = 1000*I* ~ 101.0101
        e = leaky_bucket_envelope(100, 10, line_rate=1000)
        kink = 100 / 990
        expected = 1000 * kink - 50 * kink
        assert e.max_backlog(50) == pytest.approx(expected)

    def test_busy_period_hand_case(self):
        # F = 100 + 10*I vs C = 60: crossing at I = 100/50 = 2.
        e = leaky_bucket_envelope(100, 10)
        assert e.busy_period(60) == pytest.approx(2.0)

    def test_busy_period_zero_when_below(self):
        e = constant_rate_envelope(5.0)
        assert e.busy_period(10.0) == 0.0

    def test_busy_period_interior_crossing(self):
        # Clamped bucket whose crossing falls inside a middle segment.
        e = leaky_bucket_envelope(100, 10, line_rate=1000)
        c = 200.0
        tau = e.busy_period(c)
        assert e(tau) == pytest.approx(c * tau, rel=1e-9)

    def test_delay_zero_for_smooth_traffic(self):
        e = constant_rate_envelope(10.0)
        assert e.max_delay(10.0) == 0.0


# --------------------------------------------------------------------- #
# hypothesis properties
# --------------------------------------------------------------------- #

@settings(max_examples=60, deadline=None)
@given(concave_envelopes(), concave_envelopes())
def test_prop_sum_matches_pointwise(a, b):
    s = a + b
    xs = _sample_points(a, b, s)
    np.testing.assert_allclose(s(xs), a(xs) + b(xs), rtol=1e-9, atol=1e-6)


@settings(max_examples=60, deadline=None)
@given(concave_envelopes(), concave_envelopes())
def test_prop_min_matches_pointwise(a, b):
    m = a.minimum(b)
    xs = _sample_points(a, b, m)
    np.testing.assert_allclose(
        m(xs), np.minimum(a(xs), b(xs)), rtol=1e-9, atol=1e-6
    )


@settings(max_examples=60, deadline=None)
@given(
    concave_envelopes(),
    st.floats(min_value=0.0, max_value=100.0),
)
def test_prop_shift_translates(e, delay):
    s = e.shift(delay)
    xs = _sample_points(e, s)
    np.testing.assert_allclose(s(xs), e(xs + delay), rtol=1e-9, atol=1e-6)


@settings(max_examples=60, deadline=None)
@given(
    concave_envelopes(),
    st.floats(min_value=0.1, max_value=50.0),
    st.floats(min_value=0.1, max_value=50.0),
)
def test_prop_shift_composes(e, a, b):
    assert e.shift(a).shift(b).almost_equal(e.shift(a + b), tol=1e-4)


@settings(max_examples=60, deadline=None)
@given(concave_envelopes())
def test_prop_operations_preserve_class(e):
    # Every result re-validates its own invariants in __init__;
    # reaching here means closure held.
    (e + e).scale(2).shift(1.0).minimum(e)


@settings(max_examples=60, deadline=None)
@given(buckets(), st.floats(min_value=0.0, max_value=10.0))
def test_prop_shift_dominates(e, delay):
    # Jitter only inflates a constraint function: F(I+y) >= F(I).
    s = e.shift(delay)
    xs = _sample_points(e, s)
    assert np.all(s(xs) >= e(xs) - 1e-9)


@settings(max_examples=60, deadline=None)
@given(buckets())
def test_prop_delay_nonnegative_and_stable(e):
    c = e.long_term_rate * 2 + 1.0
    d = e.max_delay(c)
    assert d >= 0.0
    # Backlog/delay consistency.
    assert e.max_backlog(c) == pytest.approx(d * c)


@settings(max_examples=60, deadline=None)
@given(buckets())
def test_prop_busy_period_is_crossing(e):
    c = e.long_term_rate * 1.5 + 1.0
    tau = e.busy_period(c)
    if tau > 0:
        assert e(tau) == pytest.approx(c * tau, rel=1e-6, abs=1e-3)
    # Beyond tau the envelope stays below the service line.
    probe = tau + 1.0
    assert e(probe) <= c * probe + 1e-6
