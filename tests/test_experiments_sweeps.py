"""Sensitivity sweeps (analytic parts; searches are exercised in benches)."""

import pytest

from repro.experiments import (
    bounds_vs_diameter,
    paper_scenario,
    sweep_burst,
    sweep_deadline,
)


@pytest.fixture(scope="module")
def sc():
    return paper_scenario()


def test_deadline_sweep_monotone(sc):
    sweep = sweep_deadline(scenario=sc)
    assert sweep.monotone_lower_bound(increasing=True)
    ubs = [p.upper_bound for p in sweep.points]
    assert ubs == sorted(ubs)


def test_deadline_sweep_contains_paper_point(sc):
    sweep = sweep_deadline(deadlines=(0.1,), scenario=sc)
    point = sweep.points[0]
    assert point.lower_bound == pytest.approx(0.30)
    assert point.upper_bound == pytest.approx(0.609, abs=1e-3)


def test_burst_sweep_monotone_decreasing(sc):
    sweep = sweep_burst(scenario=sc)
    assert sweep.monotone_lower_bound(increasing=False)


def test_bounds_always_ordered_in_sweeps(sc):
    for sweep in (sweep_deadline(scenario=sc), sweep_burst(scenario=sc)):
        for p in sweep.points:
            assert p.lower_bound <= p.upper_bound + 1e-9


def test_diameter_sweep_analytic():
    sweep = bounds_vs_diameter(diameters=(1, 2, 4, 8))
    lbs = [p.lower_bound for p in sweep.points]
    assert lbs == sorted(lbs, reverse=True)
    # L = 1 degenerates to the single-server case: LB == UB.
    p1 = sweep.points[0]
    assert p1.lower_bound == pytest.approx(p1.upper_bound)


def test_render_produces_table(sc):
    out = sweep_deadline(deadlines=(0.05, 0.1), scenario=sc).render()
    assert "deadline" in out
    assert "LB" in out and "UB" in out
    assert len(out.splitlines()) == 5  # title + header + rule + 2 rows


def test_searches_included_when_requested(sc):
    sweep = sweep_deadline(
        deadlines=(0.1,), scenario=sc, include_searches=True,
        resolution=0.05,
    )
    p = sweep.points[0]
    assert p.shortest_path is not None
    assert p.heuristic is not None
    assert p.lower_bound - 1e-9 <= p.shortest_path <= p.upper_bound + 1e-9
    assert p.heuristic >= p.shortest_path - 0.05


def test_parallel_sweep_matches_serial(sc):
    """workers=N must be bit-identical to serial, in the same order."""
    kwargs = dict(
        deadlines=(0.08, 0.1), scenario=sc, include_searches=True,
        resolution=0.05,
    )
    serial = sweep_deadline(**kwargs)
    parallel = sweep_deadline(workers=2, **kwargs)
    assert serial.points == parallel.points

    analytic = bounds_vs_diameter(diameters=(1, 2, 4))
    analytic_par = bounds_vs_diameter(diameters=(1, 2, 4), workers=2)
    assert analytic.points == analytic_par.points


def test_workers_must_be_positive():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        bounds_vs_diameter(diameters=(1, 2), workers=0)


def test_cross_topology_table_rows_in_input_order():
    from repro.experiments import cross_topology_table
    from repro.topology import mci_backbone, nsfnet_backbone
    from repro.traffic import voice_class

    rows = cross_topology_table(
        [("NSFNET", nsfnet_backbone()), ("MCI", mci_backbone())],
        voice_class(),
        resolution=0.05,
    )
    assert [r.name for r in rows] == ["NSFNET", "MCI"]
    for row in rows:
        assert row.ordering_holds
