"""TSpec (dual leaky bucket) envelopes and their class mapping."""

import pytest

from repro.errors import EnvelopeError
from repro.traffic import (
    class_from_tspec,
    leaky_bucket_envelope,
    tspec_envelope,
)

# A video-like TSpec: 12 kb packets at 10 Mbps peak, 80 kb bucket at 2 Mbps.
M, P, B, R = 12_000.0, 10e6, 80_000.0, 2e6


def test_pointwise_minimum_of_buckets():
    env = tspec_envelope(M, P, B, R)
    peak = leaky_bucket_envelope(M, P)
    sustained = leaky_bucket_envelope(B, R)
    for i in (0.0, 0.001, 0.0085, 0.02, 0.1, 1.0):
        assert env(i) == pytest.approx(min(peak(i), sustained(i)))


def test_kink_at_bucket_intersection():
    env = tspec_envelope(M, P, B, R)
    # Buckets cross where M + p*I = b + r*I.
    kink = (B - M) / (P - R)
    assert env(kink) == pytest.approx(M + P * kink, rel=1e-12)
    # Before: peak-limited; after: sustained-limited.
    assert env.long_term_rate == R


def test_burst_is_max_packet():
    assert tspec_envelope(M, P, B, R).burst == M


def test_line_rate_clamp():
    env = tspec_envelope(M, P, B, R, line_rate=100e6)
    assert env(0.0) == 0.0
    assert env.long_term_rate == R


def test_peak_slower_than_sustained_rejected():
    with pytest.raises(EnvelopeError):
        tspec_envelope(M, 1e6, B, 2e6)


def test_bucket_smaller_than_packet_rejected():
    with pytest.raises(EnvelopeError):
        tspec_envelope(12_000, P, 6_000, R)


def test_line_rate_below_sustained_rejected():
    with pytest.raises(EnvelopeError):
        tspec_envelope(M, P, B, R, line_rate=1e6)


def test_tighter_than_single_bucket():
    """The TSpec is dominated by its sustained bucket everywhere —
    the property that makes the conservative class mapping safe."""
    env = tspec_envelope(M, P, B, R)
    single = leaky_bucket_envelope(B, R)
    for i in (0.0, 0.001, 0.01, 0.05, 1.0):
        assert env(i) <= single(i) + 1e-9


def test_delay_not_worse_than_single_bucket():
    env = tspec_envelope(M, P, B, R)
    single = leaky_bucket_envelope(B, R)
    assert env.max_delay(20e6) <= single.max_delay(20e6) + 1e-15


class TestClassMapping:
    def test_class_uses_sustained_bucket(self):
        cls = class_from_tspec(
            "tspec-video", M, P, B, R, deadline=0.2, priority=2
        )
        assert cls.burst == B
        assert cls.rate == R
        assert cls.deadline == 0.2

    def test_class_envelope_dominates_tspec(self):
        cls = class_from_tspec(
            "tspec-video", M, P, B, R, deadline=0.2, priority=2
        )
        tspec = tspec_envelope(M, P, B, R)
        class_env = cls.envelope()
        for i in (0.0, 0.005, 0.02, 0.1):
            assert tspec(i) <= class_env(i) + 1e-9

    def test_invalid_tspec_rejected_by_mapping(self):
        with pytest.raises(EnvelopeError):
            class_from_tspec("x", M, 1e3, B, R, deadline=0.2, priority=2)
