"""Static-priority link server mechanics."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation import Packet, StaticPriorityServer


def _packet(pid, priority=1, size=1000.0):
    return Packet(
        packet_id=pid,
        flow_id="f",
        class_name="c",
        priority=priority,
        size_bits=size,
        servers=np.array([0], dtype=np.int64),
        created_at=0.0,
    )


def test_service_time_is_size_over_capacity():
    srv = StaticPriorityServer(0, capacity=1e6)
    srv.enqueue(_packet(1, size=5000))
    pkt, done = srv.start_service(now=2.0)
    assert pkt.packet_id == 1
    assert done == pytest.approx(2.0 + 5000 / 1e6)


def test_fifo_within_class():
    srv = StaticPriorityServer(0, capacity=1e6)
    for i in range(3):
        srv.enqueue(_packet(i, priority=1))
    order = []
    now = 0.0
    for _ in range(3):
        pkt, done = srv.start_service(now)
        order.append(pkt.packet_id)
        srv.complete_service()
        now = done
    assert order == [0, 1, 2]


def test_priority_order_across_classes():
    srv = StaticPriorityServer(0, capacity=1e6)
    srv.enqueue(_packet(1, priority=5))
    srv.enqueue(_packet(2, priority=1))
    srv.enqueue(_packet(3, priority=3))
    pkt, _ = srv.start_service(0.0)
    assert pkt.packet_id == 2  # smallest priority number first
    srv.complete_service()
    pkt, _ = srv.start_service(0.0)
    assert pkt.packet_id == 3


def test_non_preemptive_state():
    srv = StaticPriorityServer(0, capacity=1e6)
    srv.enqueue(_packet(1, priority=5))
    srv.start_service(0.0)
    # A higher-priority arrival waits: server stays busy with packet 1.
    srv.enqueue(_packet(2, priority=1))
    assert srv.busy
    assert srv.in_service.packet_id == 1
    with pytest.raises(SimulationError):
        srv.start_service(0.0)  # cannot double-start
    done = srv.complete_service()
    assert done.packet_id == 1
    pkt, _ = srv.start_service(0.1)
    assert pkt.packet_id == 2


def test_complete_without_start_raises():
    srv = StaticPriorityServer(0, capacity=1e6)
    with pytest.raises(SimulationError):
        srv.complete_service()


def test_start_empty_raises():
    srv = StaticPriorityServer(0, capacity=1e6)
    with pytest.raises(SimulationError):
        srv.start_service(0.0)


def test_counters():
    srv = StaticPriorityServer(0, capacity=1e6)
    for i in range(2):
        srv.enqueue(_packet(i, size=100))
    assert srv.backlog_packets == 2
    assert srv.backlog_bits() == 200
    assert srv.max_backlog_packets == 2
    srv.start_service(0.0)
    srv.complete_service()
    assert srv.packets_served == 1
    assert srv.bits_served == 100


def test_invalid_capacity():
    with pytest.raises(SimulationError):
        StaticPriorityServer(0, capacity=0.0)
