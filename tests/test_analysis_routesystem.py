"""Compiled route systems: vectorized kernels vs a naive reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import RouteSystem
from repro.errors import AnalysisError


def naive_upstream(routes, d, num_servers):
    """Reference implementation of eq. (6), plain Python."""
    y = np.zeros(num_servers)
    for route in routes:
        acc = 0.0
        for s in route:
            y[s] = max(y[s], acc)
            acc += d[s]
    return y


def naive_route_delays(routes, d):
    return np.asarray([sum(d[s] for s in route) for route in routes])


class TestConstruction:
    def test_basic_shapes(self):
        rs = RouteSystem([[0, 1, 2], [2, 3]], num_servers=5)
        assert rs.num_routes == 2
        assert rs.num_occurrences == 5
        np.testing.assert_array_equal(rs.route(0), [0, 1, 2])
        np.testing.assert_array_equal(rs.route(1), [2, 3])
        np.testing.assert_array_equal(rs.route_lengths(), [3, 2])

    def test_empty_route_rejected(self):
        with pytest.raises(AnalysisError):
            RouteSystem([[]], num_servers=3)

    def test_out_of_range_rejected(self):
        with pytest.raises(AnalysisError):
            RouteSystem([[0, 5]], num_servers=3)
        with pytest.raises(AnalysisError):
            RouteSystem([[-1]], num_servers=3)

    def test_no_routes(self):
        rs = RouteSystem([], num_servers=4)
        d = np.ones(4)
        assert rs.route_delays(d).size == 0
        np.testing.assert_array_equal(rs.upstream_delays(d), np.zeros(4))

    def test_touched_servers(self):
        rs = RouteSystem([[1, 2]], num_servers=4)
        np.testing.assert_array_equal(
            rs.touched_servers, [False, True, True, False]
        )

    def test_with_route_appends(self):
        rs = RouteSystem([[0, 1]], num_servers=4)
        rs2 = rs.with_route([2, 3])
        assert rs.num_routes == 1  # immutability of the original
        assert rs2.num_routes == 2
        np.testing.assert_array_equal(rs2.route(1), [2, 3])

    def test_server_route_count(self):
        rs = RouteSystem([[0, 1], [1, 2], [1, 3]], num_servers=4)
        np.testing.assert_array_equal(
            rs.server_route_count(), [1, 3, 1, 1]
        )


class TestKernels:
    def test_upstream_hand_case(self):
        # Route A: 0 -> 1 -> 2, route B: 2 -> 0.
        rs = RouteSystem([[0, 1, 2], [2, 0]], num_servers=3)
        d = np.array([1.0, 2.0, 4.0])
        y = rs.upstream_delays(d)
        # server 0: first hop of A (0) vs second hop of B (4) -> 4
        # server 1: after 0 on A -> 1
        # server 2: after 0,1 on A (3) vs first hop of B (0) -> 3
        np.testing.assert_allclose(y, [4.0, 1.0, 3.0])

    def test_route_delays_hand_case(self):
        rs = RouteSystem([[0, 1, 2], [2, 0]], num_servers=3)
        d = np.array([1.0, 2.0, 4.0])
        np.testing.assert_allclose(rs.route_delays(d), [7.0, 5.0])

    def test_repeated_server_across_routes(self):
        rs = RouteSystem([[0, 1], [2, 1]], num_servers=3)
        d = np.array([5.0, 1.0, 3.0])
        y = rs.upstream_delays(d)
        assert y[1] == 5.0  # worst upstream over both routes


@st.composite
def random_system(draw):
    num_servers = draw(st.integers(min_value=2, max_value=12))
    n_routes = draw(st.integers(min_value=1, max_value=8))
    routes = [
        draw(
            st.lists(
                st.integers(min_value=0, max_value=num_servers - 1),
                min_size=1,
                max_size=6,
            )
        )
        for _ in range(n_routes)
    ]
    delays = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=num_servers,
            max_size=num_servers,
        )
    )
    return routes, np.asarray(delays), num_servers


@settings(max_examples=100, deadline=None)
@given(random_system())
def test_prop_upstream_matches_naive(case):
    routes, d, num_servers = case
    rs = RouteSystem(routes, num_servers)
    np.testing.assert_allclose(
        rs.upstream_delays(d),
        naive_upstream(routes, d, num_servers),
        rtol=1e-12,
        atol=1e-12,
    )


@settings(max_examples=100, deadline=None)
@given(random_system())
def test_prop_route_delays_match_naive(case):
    routes, d, num_servers = case
    rs = RouteSystem(routes, num_servers)
    np.testing.assert_allclose(
        rs.route_delays(d),
        naive_route_delays(routes, d),
        rtol=1e-9,
        atol=1e-9,
    )


@settings(max_examples=50, deadline=None)
@given(random_system())
def test_prop_upstream_monotone_in_delays(case):
    """Y is a monotone function of d — the basis of fixed-point soundness."""
    routes, d, num_servers = case
    rs = RouteSystem(routes, num_servers)
    bigger = d + 1.0
    assert np.all(
        rs.upstream_delays(bigger) >= rs.upstream_delays(d) - 1e-12
    )
