"""Compiled route systems: vectorized kernels vs a naive reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import RouteSystem
from repro.errors import AnalysisError


def naive_upstream(routes, d, num_servers):
    """Reference implementation of eq. (6), plain Python."""
    y = np.zeros(num_servers)
    for route in routes:
        acc = 0.0
        for s in route:
            y[s] = max(y[s], acc)
            acc += d[s]
    return y


def naive_route_delays(routes, d):
    return np.asarray([sum(d[s] for s in route) for route in routes])


class TestConstruction:
    def test_basic_shapes(self):
        rs = RouteSystem([[0, 1, 2], [2, 3]], num_servers=5)
        assert rs.num_routes == 2
        assert rs.num_occurrences == 5
        np.testing.assert_array_equal(rs.route(0), [0, 1, 2])
        np.testing.assert_array_equal(rs.route(1), [2, 3])
        np.testing.assert_array_equal(rs.route_lengths(), [3, 2])

    def test_empty_route_rejected(self):
        with pytest.raises(AnalysisError):
            RouteSystem([[]], num_servers=3)

    def test_out_of_range_rejected(self):
        with pytest.raises(AnalysisError):
            RouteSystem([[0, 5]], num_servers=3)
        with pytest.raises(AnalysisError):
            RouteSystem([[-1]], num_servers=3)

    def test_no_routes(self):
        rs = RouteSystem([], num_servers=4)
        d = np.ones(4)
        assert rs.route_delays(d).size == 0
        np.testing.assert_array_equal(rs.upstream_delays(d), np.zeros(4))

    def test_touched_servers(self):
        rs = RouteSystem([[1, 2]], num_servers=4)
        np.testing.assert_array_equal(
            rs.touched_servers, [False, True, True, False]
        )

    def test_with_route_appends(self):
        rs = RouteSystem([[0, 1]], num_servers=4)
        rs2 = rs.with_route([2, 3])
        assert rs.num_routes == 1  # immutability of the original
        assert rs2.num_routes == 2
        np.testing.assert_array_equal(rs2.route(1), [2, 3])

    def test_server_route_count(self):
        rs = RouteSystem([[0, 1], [1, 2], [1, 3]], num_servers=4)
        np.testing.assert_array_equal(
            rs.server_route_count(), [1, 3, 1, 1]
        )


class TestKernels:
    def test_upstream_hand_case(self):
        # Route A: 0 -> 1 -> 2, route B: 2 -> 0.
        rs = RouteSystem([[0, 1, 2], [2, 0]], num_servers=3)
        d = np.array([1.0, 2.0, 4.0])
        y = rs.upstream_delays(d)
        # server 0: first hop of A (0) vs second hop of B (4) -> 4
        # server 1: after 0 on A -> 1
        # server 2: after 0,1 on A (3) vs first hop of B (0) -> 3
        np.testing.assert_allclose(y, [4.0, 1.0, 3.0])

    def test_route_delays_hand_case(self):
        rs = RouteSystem([[0, 1, 2], [2, 0]], num_servers=3)
        d = np.array([1.0, 2.0, 4.0])
        np.testing.assert_allclose(rs.route_delays(d), [7.0, 5.0])

    def test_repeated_server_across_routes(self):
        rs = RouteSystem([[0, 1], [2, 1]], num_servers=3)
        d = np.array([5.0, 1.0, 3.0])
        y = rs.upstream_delays(d)
        assert y[1] == 5.0  # worst upstream over both routes


@st.composite
def random_system(draw):
    num_servers = draw(st.integers(min_value=2, max_value=12))
    n_routes = draw(st.integers(min_value=1, max_value=8))
    routes = [
        draw(
            st.lists(
                st.integers(min_value=0, max_value=num_servers - 1),
                min_size=1,
                max_size=6,
            )
        )
        for _ in range(n_routes)
    ]
    delays = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=num_servers,
            max_size=num_servers,
        )
    )
    return routes, np.asarray(delays), num_servers


@settings(max_examples=100, deadline=None)
@given(random_system())
def test_prop_upstream_matches_naive(case):
    routes, d, num_servers = case
    rs = RouteSystem(routes, num_servers)
    np.testing.assert_allclose(
        rs.upstream_delays(d),
        naive_upstream(routes, d, num_servers),
        rtol=1e-12,
        atol=1e-12,
    )


@settings(max_examples=100, deadline=None)
@given(random_system())
def test_prop_route_delays_match_naive(case):
    routes, d, num_servers = case
    rs = RouteSystem(routes, num_servers)
    np.testing.assert_allclose(
        rs.route_delays(d),
        naive_route_delays(routes, d),
        rtol=1e-9,
        atol=1e-9,
    )


@settings(max_examples=50, deadline=None)
@given(random_system())
def test_prop_upstream_monotone_in_delays(case):
    """Y is a monotone function of d — the basis of fixed-point soundness."""
    routes, d, num_servers = case
    rs = RouteSystem(routes, num_servers)
    bigger = d + 1.0
    assert np.all(
        rs.upstream_delays(bigger) >= rs.upstream_delays(d) - 1e-12
    )


class TestGrowableRouteSystem:
    def test_push_pop_roundtrip(self):
        from repro.analysis import GrowableRouteSystem

        grow = GrowableRouteSystem(5, occ_capacity=1, route_capacity=1)
        assert grow.num_routes == 0 and grow.num_occurrences == 0
        grow.push([0, 1, 2])
        grow.push([2, 3])
        assert grow.num_routes == 2
        assert grow.num_occurrences == 5
        assert list(grow.occ_server) == [0, 1, 2, 2, 3]
        assert list(grow.route_start) == [0, 3, 5]
        assert list(grow.occ_start) == [0, 0, 0, 3, 3]
        assert list(grow.route(1)) == [2, 3]
        grow.pop()
        assert grow.num_routes == 1
        assert list(grow.occ_server) == [0, 1, 2]
        assert grow.pushes == 2 and grow.pops == 1

    def test_touched_and_counts_track_pops(self):
        from repro.analysis import GrowableRouteSystem

        grow = GrowableRouteSystem(4, [[0, 1], [1, 2]])
        assert list(grow.server_route_count()) == [1, 2, 1, 0]
        assert list(grow.touched_servers) == [True, True, True, False]
        grow.pop()
        assert list(grow.server_route_count()) == [1, 1, 0, 0]
        assert list(grow.touched_servers) == [True, True, False, False]

    def test_matches_immutable_system(self):
        from repro.analysis import GrowableRouteSystem

        routes = [[0, 1, 2], [2, 3], [3, 0, 1]]
        rs = RouteSystem(routes, num_servers=4)
        grow = GrowableRouteSystem(4, routes, occ_capacity=1)
        d = np.asarray([0.5, 1.0, 0.25, 2.0])
        assert np.array_equal(grow.route_delays(d), rs.route_delays(d))
        assert np.array_equal(grow.upstream_delays(d), rs.upstream_delays(d))
        frozen = grow.freeze()
        assert np.array_equal(frozen.occ_server, rs.occ_server)
        assert np.array_equal(frozen.occ_route, rs.occ_route)
        assert np.array_equal(frozen.route_start, rs.route_start)

    def test_validation_errors(self):
        from repro.analysis import GrowableRouteSystem

        grow = GrowableRouteSystem(3)
        with pytest.raises(AnalysisError):
            grow.push([])
        with pytest.raises(AnalysisError):
            grow.push([0, 3])
        with pytest.raises(AnalysisError):
            grow.push([-1])
        with pytest.raises(AnalysisError):
            grow.pop()
        with pytest.raises(AnalysisError):
            GrowableRouteSystem(0)
        # failed pushes must leave no partial state behind
        assert grow.num_routes == 0 and grow.num_occurrences == 0
        assert not grow.touched_servers.any()
