"""Differential property suite: ``admit_batch`` == sequential ``admit``.

For every controller the batch engine must be *bit-identical* to the
per-flow loop: same verdicts, same rejection reasons, same ledger
occupancy, same established set, and the same observability counters.
Hypothesis drives randomized interleavings of batches and releases under
tight utilization assignments (so intra-batch contention and mid-batch
rejections actually occur) and compares a batch-driven controller
against a sequentially driven twin after every step.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro import obs  # noqa: E402
from repro.admission import (  # noqa: E402
    FlowAwareAdmissionController,
    ShardedAdmissionController,
    UtilizationAdmissionController,
)
from repro.routing.shortest import shortest_path_routes  # noqa: E402
from repro.topology import LinkServerGraph, line_network  # noqa: E402
from repro.traffic import ClassRegistry, voice_class  # noqa: E402
from repro.traffic.flows import FlowSpec  # noqa: E402
from repro.traffic.generators import all_ordered_pairs  # noqa: E402

#: Small line topology -> few servers -> heavy contention at tiny alpha.
NET = line_network(4)
GRAPH = LinkServerGraph(NET)
PAIRS = all_ordered_pairs(NET)
ROUTES = shortest_path_routes(NET, PAIRS)
REGISTRY = ClassRegistry.two_class(voice_class())

#: Tight assignment: only a handful of slots per server, so batches see
#: mid-batch rejections and rejection-then-admission interleavings.
TIGHT_ALPHA = {"voice": 0.002}
ROOMY_ALPHA = {"voice": 0.05}

_COUNTER_NAMES = (
    "repro_admission_decisions_total",
    "repro_admission_rejections_total",
    "repro_admission_releases_total",
    "repro_ledger_reserves_total",
    "repro_ledger_releases_total",
    "repro_ledger_slots_in_use",
)


def _make(kind, alphas):
    if kind == "utilization":
        return UtilizationAdmissionController(
            GRAPH, REGISTRY, alphas, ROUTES
        )
    if kind == "sharded":
        return ShardedAdmissionController(GRAPH, REGISTRY, alphas, ROUTES)
    return FlowAwareAdmissionController(GRAPH, REGISTRY, ROUTES)


#: One step is a batch of (pair_index, class_choice) plus a release plan.
_step = st.tuples(
    st.lists(
        st.tuples(
            st.integers(0, len(PAIRS) - 1),
            st.sampled_from(["voice", "voice", "best-effort"]),
        ),
        min_size=1,
        max_size=12,
    ),
    st.integers(0, 2 ** 16),  # release-selection seed
)
_script = st.lists(_step, min_size=1, max_size=6)


def _flows_of(step_index, batch):
    return [
        FlowSpec(
            flow_id=f"s{step_index}_{i}",
            class_name=cls,
            source=PAIRS[k][0],
            destination=PAIRS[k][1],
        )
        for i, (k, cls) in enumerate(batch)
    ]


def _decision_key(decision):
    return (decision.flow_id, decision.admitted, decision.reason)


def _ledger_state(controller):
    if isinstance(controller, UtilizationAdmissionController):
        return {
            name: controller.ledger.used(name).tolist()
            for name in controller.alphas
        }
    if isinstance(controller, ShardedAdmissionController):
        return {
            name: used.tolist()
            for name, used in sorted(controller._used.items())
        }
    return None


def _run_script(kind, alphas, script):
    """Drive batch and sequential twins; assert equivalence throughout."""
    batch_ctrl = _make(kind, alphas)
    seq_ctrl = _make(kind, alphas)
    live = []
    for step_index, (batch, release_seed) in enumerate(script):
        flows = _flows_of(step_index, batch)
        got = batch_ctrl.admit_batch(flows)
        want = [seq_ctrl.admit(flow) for flow in flows]
        assert [_decision_key(d) for d in got] == [
            _decision_key(d) for d in want
        ]
        live.extend(d.flow_id for d in got if d.admitted)

        rng = np.random.default_rng(release_seed)
        rng.shuffle(live)
        cut = len(live) // 2
        to_release, live = live[:cut], live[cut:]
        if to_release:
            batch_ctrl.release_batch(to_release)
            for fid in to_release:
                seq_ctrl.release(fid)

        assert set(batch_ctrl._established) == set(seq_ctrl._established)
        assert _ledger_state(batch_ctrl) == _ledger_state(seq_ctrl)
    assert batch_ctrl.num_established == seq_ctrl.num_established
    return batch_ctrl, seq_ctrl


class TestUtilizationEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(script=_script)
    def test_tight_assignment(self, script):
        _run_script("utilization", TIGHT_ALPHA, script)

    @settings(max_examples=10, deadline=None)
    @given(script=_script)
    def test_roomy_assignment(self, script):
        _run_script("utilization", ROOMY_ALPHA, script)


class TestShardedEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(script=_script)
    def test_tight_assignment(self, script):
        _run_script("sharded", {"voice": 0.01}, script)

    @settings(max_examples=10, deadline=None)
    @given(script=_script)
    def test_roomy_assignment(self, script):
        _run_script("sharded", ROOMY_ALPHA, script)


class TestFlowAwareEquivalence:
    # The flow-aware baseline recomputes delay bounds per admission, so
    # scripts stay small; it exercises the base-class sequential
    # fallback for admit_batch/release_batch.
    @settings(max_examples=8, deadline=None)
    @given(script=st.lists(_step, min_size=1, max_size=3))
    def test_equivalence(self, script):
        _run_script("flow-aware", None, script)


class TestObsCounterEquivalence:
    def _counter_totals(self, registry):
        totals = {}
        for series in registry.series():
            name = getattr(series, "name", None)
            value = getattr(series, "value", None)
            if name in _COUNTER_NAMES and value is not None:
                totals[name] = totals.get(name, 0.0) + value
        return totals

    def _drive(self, mode, script):
        """Run one controller under a fresh registry; return totals."""
        obs.enable(fresh=True)
        controller = _make("utilization", TIGHT_ALPHA)
        live = []
        final = 0
        for step_index, (batch, release_seed) in enumerate(script):
            flows = _flows_of(step_index, batch)
            if mode == "batch":
                decisions = controller.admit_batch(flows)
            else:
                decisions = [controller.admit(flow) for flow in flows]
            live.extend(d.flow_id for d in decisions if d.admitted)
            rng = np.random.default_rng(release_seed)
            rng.shuffle(live)
            cut = len(live) // 2
            to_release, live = live[:cut], live[cut:]
            if to_release:
                if mode == "batch":
                    controller.release_batch(to_release)
                else:
                    for fid in to_release:
                        controller.release(fid)
        final = controller.num_established
        totals = {}
        for series in obs.get_registry().series():
            name = getattr(series, "name", None)
            if name not in _COUNTER_NAMES:
                continue
            key = (name, tuple(sorted(dict(series.labels).items())))
            totals[key] = totals.get(key, 0.0) + series.value
        gauge = obs.get_registry().get(
            "repro_admission_established_flows",
            controller="UtilizationAdmissionController",
        )
        gauge_value = None if gauge is None else gauge.value
        obs.disable()
        obs.reset()
        return totals, final, gauge_value

    @settings(max_examples=10, deadline=None)
    @given(script=_script)
    def test_totals_match_sequential(self, script):
        try:
            batch_totals, batch_final, batch_gauge = self._drive(
                "batch", script
            )
            seq_totals, seq_final, seq_gauge = self._drive(
                "sequential", script
            )
            assert batch_totals == seq_totals
            assert batch_final == seq_final
            assert batch_gauge == seq_gauge == batch_final
        finally:
            obs.disable()
            obs.reset()

    def test_batch_metrics_recorded(self):
        try:
            obs.enable(fresh=True)
            controller = _make("utilization", ROOMY_ALPHA)
            flows = _flows_of(0, [(i % len(PAIRS), "voice")
                                  for i in range(5)])
            controller.admit_batch(flows)
            registry = obs.get_registry()
            calls = registry.get(
                "repro_admission_batch_calls_total",
                controller="UtilizationAdmissionController",
            )
            requests = registry.get(
                "repro_admission_batch_requests_total",
                controller="UtilizationAdmissionController",
            )
            decisions = registry.get(
                "repro_admission_decisions_total",
                controller="UtilizationAdmissionController",
                result="admitted",
            )
            assert calls is not None and calls.value == 1
            assert requests is not None and requests.value == 5
            assert decisions is not None and decisions.value == 5
        finally:
            obs.disable()
            obs.reset()
