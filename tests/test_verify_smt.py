"""z3 bounded-model checking (the ``verify-smt`` CI job).

Every test here is marked ``smt`` and auto-skips when z3 is not
installed (tests/conftest.py), so tier-1 stays solver-free.  In the
``verify-smt`` job these must actually run: the two safety properties
are proved UNSAT-for-violation at the CI bound, each deliberately
broken kernel flips the query to SAT, and every decoded model replays
through the real code.
"""

import pytest

from repro.verify import (
    MUTANTS,
    VerifyBound,
    replay_batch_equivalence,
    replay_no_overcommit,
    run_verify,
    smt_batch_equivalence,
    smt_no_overcommit,
    validate_verify_report,
)
from repro.verify.bounded import (
    exhaustive_batch_equivalence,
    exhaustive_no_overcommit,
)
from repro.verify.smt import HAVE_Z3

pytestmark = pytest.mark.smt

#: The acceptance bound: >= 3 flows x 2 servers x 3 intervals.
CI_BOUND = VerifyBound(flows=3, servers=2, max_capacity=2)
SMALL = VerifyBound(flows=2, servers=2, max_capacity=1)


def test_solver_is_actually_present():
    # The job exists to run these tests; a silent skip-everything run
    # must fail loudly instead.
    assert HAVE_Z3


class TestProofs:
    def test_no_overcommit_proved_at_the_ci_bound(self):
        result = smt_no_overcommit(CI_BOUND)
        assert result.backend == "z3"
        assert result.status == "proved"
        assert result.counterexample is None

    def test_batch_equivalence_proved_at_the_ci_bound(self):
        result = smt_batch_equivalence(CI_BOUND)
        assert result.status == "proved"
        assert result.counterexample is None

    def test_proofs_hold_on_a_wider_chain(self):
        bound = VerifyBound(flows=3, servers=3, max_capacity=2)
        assert smt_no_overcommit(bound).status == "proved"
        assert smt_batch_equivalence(bound).status == "proved"


class TestFalsifiability:
    def test_admit_on_full_flips_no_overcommit_to_sat(self):
        result = smt_no_overcommit(CI_BOUND, mutant="admit_on_full")
        assert result.status == "violated"
        cx = result.counterexample
        assert cx is not None
        replay = replay_no_overcommit(cx, admit_on_full=True)
        assert replay["reproduced"]
        # The shipped controller replays the decoded trace clean.
        assert replay["controller_overcommits"] == []
        assert replay["controller_invariant_problems"] == []

    @pytest.mark.parametrize(
        "mutant", ["admit_on_full", "ignore_contention"]
    )
    def test_kernel_mutants_flip_equivalence_to_sat(self, mutant):
        result = smt_batch_equivalence(CI_BOUND, mutant=mutant)
        assert result.status == "violated"
        cx = result.counterexample
        assert cx is not None
        # The decoded model splits the matching concrete mutant from
        # the sequential reference, and the real kernel agrees with
        # the reference on the same instance.
        assert replay_batch_equivalence(
            cx, kernel=MUTANTS[mutant]
        )["diverged"]
        assert not replay_batch_equivalence(cx)["diverged"]


class TestBackendAgreement:
    def test_statuses_agree_with_the_exhaustive_backend(self):
        assert (
            smt_no_overcommit(SMALL).status,
            smt_batch_equivalence(SMALL).status,
        ) == ("proved", "proved")
        assert exhaustive_no_overcommit(SMALL).status == "passed"
        assert exhaustive_batch_equivalence(SMALL).status == "passed"

    def test_both_backends_catch_the_same_mutants(self):
        z3_cx = smt_no_overcommit(
            SMALL, mutant="admit_on_full"
        ).counterexample
        ex_cx = exhaustive_no_overcommit(
            SMALL, admit_on_full=True
        ).counterexample
        assert z3_cx is not None and ex_cx is not None
        # Different search orders may find different witnesses; both
        # must reproduce the same class of violation.
        for cx in (z3_cx, ex_cx):
            assert replay_no_overcommit(
                cx, admit_on_full=True
            )["reproduced"]


class TestRunnerZ3:
    def test_end_to_end_report(self):
        report, results = run_verify(CI_BOUND, backend="z3")
        validate_verify_report(report)
        assert report["backend"] == "z3"
        assert report["ok"] is True
        assert all(r.status == "proved" for r in results)

    def test_auto_prefers_z3_when_installed(self):
        report, _ = run_verify(SMALL, backend="auto")
        assert report["backend"] == "z3"
