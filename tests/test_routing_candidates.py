"""Candidate route generation."""

import networkx as nx
import pytest

from repro.errors import NoRouteError, RoutingError
from repro.routing import CandidateGenerator, candidate_routes
from repro.topology import Network, line_network


def test_first_candidate_is_shortest(mci):
    cands = candidate_routes(mci, "Seattle", "Miami", k=5)
    sp = nx.shortest_path_length(mci.graph, "Seattle", "Miami")
    assert len(cands[0]) - 1 == sp


def test_lengths_nondecreasing(mci):
    cands = candidate_routes(mci, "Seattle", "Boston", k=8)
    lengths = [len(c) - 1 for c in cands]
    assert lengths == sorted(lengths)


def test_detour_slack_respected(mci):
    sp = nx.shortest_path_length(mci.graph, "Seattle", "Miami")
    for slack in (0, 1, 2):
        cands = candidate_routes(
            mci, "Seattle", "Miami", k=50, detour_slack=slack
        )
        assert all(len(c) - 1 <= sp + slack for c in cands)


def test_k_limit(mci):
    cands = candidate_routes(mci, "Seattle", "Miami", k=3, detour_slack=4)
    assert len(cands) == 3


def test_simple_paths_only(mci):
    for c in candidate_routes(mci, "Seattle", "Miami", k=8):
        assert len(set(c)) == len(c)


def test_distinct_candidates(mci):
    cands = candidate_routes(mci, "Chicago", "Atlanta", k=8)
    assert len({tuple(c) for c in cands}) == len(cands)


def test_line_has_single_candidate():
    net = line_network(4)
    cands = candidate_routes(net, "r0", "r3", k=8, detour_slack=5)
    assert len(cands) == 1


def test_validation(mci):
    with pytest.raises(RoutingError):
        candidate_routes(mci, "Seattle", "Miami", k=0)
    with pytest.raises(RoutingError):
        candidate_routes(mci, "Seattle", "Miami", detour_slack=-1)


def test_no_route():
    net = Network()
    net.add_router("u")
    net.add_router("v")
    with pytest.raises(NoRouteError):
        candidate_routes(net, "u", "v")


def test_generator_caches(mci):
    gen = CandidateGenerator(mci, k=4)
    a = gen("Seattle", "Miami")
    b = gen("Seattle", "Miami")
    assert a is b  # cached object identity
    assert len(gen("Miami", "Seattle")) >= 1  # direction-sensitive key
