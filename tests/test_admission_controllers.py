"""Run-time admission controllers: utilization-based and flow-aware."""

import numpy as np
import pytest

from repro.admission import (
    FlowAwareAdmissionController,
    UtilizationAdmissionController,
)
from repro.errors import AdmissionError
from repro.routing import shortest_path_routes
from repro.topology import LinkServerGraph, line_network, star_network
from repro.traffic import ClassRegistry, FlowSpec, voice_class


@pytest.fixture()
def line_routes(line4):
    pairs = [("r0", "r3"), ("r3", "r0"), ("r0", "r2"), ("r1", "r3")]
    return shortest_path_routes(line4, pairs)


def _controller(graph, registry, routes, alpha=0.3):
    return UtilizationAdmissionController(
        graph, registry, {"voice": alpha}, routes
    )


def _flow(i, src="r0", dst="r3", cls="voice"):
    return FlowSpec(flow_id=i, class_name=cls, source=src, destination=dst)


class TestUtilizationController:
    def test_admit_and_release(self, line4_graph, voice_registry,
                               line_routes):
        ctrl = _controller(line4_graph, voice_registry, line_routes)
        decision = ctrl.admit(_flow(1))
        assert decision.admitted
        assert ctrl.num_established == 1
        ctrl.release(1)
        assert ctrl.num_established == 0

    def test_rejects_when_full(self, line4_graph, voice_registry,
                               line_routes):
        # alpha giving exactly 3 slots per server
        ctrl = _controller(
            line4_graph, voice_registry, line_routes, alpha=0.001008
        )
        for i in range(3):
            assert ctrl.admit(_flow(i)).admitted
        d = ctrl.admit(_flow(99))
        assert not d.admitted
        assert "utilization" in d.reason
        assert ctrl.num_rejected == 1

    def test_release_reopens_capacity(self, line4_graph, voice_registry,
                                      line_routes):
        ctrl = _controller(
            line4_graph, voice_registry, line_routes, alpha=0.001008
        )
        for i in range(3):
            ctrl.admit(_flow(i))
        assert not ctrl.admit(_flow(3)).admitted
        ctrl.release(0)
        assert ctrl.admit(_flow(4)).admitted

    def test_disjoint_paths_independent(self, line4_graph, voice_registry,
                                        line_routes):
        ctrl = _controller(
            line4_graph, voice_registry, line_routes, alpha=0.001008
        )
        for i in range(3):
            ctrl.admit(_flow(i, "r0", "r2"))
        # r0->r2 full on its servers, but the reverse direction is free.
        assert ctrl.admit(_flow("rev", "r3", "r0")).admitted

    def test_double_admit_rejected(self, line4_graph, voice_registry,
                                   line_routes):
        ctrl = _controller(line4_graph, voice_registry, line_routes)
        ctrl.admit(_flow(1))
        with pytest.raises(AdmissionError):
            ctrl.admit(_flow(1))

    def test_release_unknown_rejected(self, line4_graph, voice_registry,
                                      line_routes):
        ctrl = _controller(line4_graph, voice_registry, line_routes)
        with pytest.raises(AdmissionError):
            ctrl.release(42)

    def test_unconfigured_pair_rejected(self, line4_graph, voice_registry,
                                        line_routes):
        ctrl = _controller(line4_graph, voice_registry, line_routes)
        with pytest.raises(AdmissionError):
            ctrl.admit(_flow(1, "r2", "r0"))  # pair not in route map

    def test_explicit_route_overrides_map(self, line4_graph, voice_registry,
                                          line_routes):
        ctrl = _controller(line4_graph, voice_registry, line_routes)
        flow = FlowSpec(
            "x", "voice", "r0", "r3", route=("r0", "r1", "r2", "r3")
        )
        assert ctrl.admit(flow).admitted

    def test_best_effort_never_blocked(self, line4_graph, line_routes):
        registry = ClassRegistry.two_class(voice_class())
        ctrl = UtilizationAdmissionController(
            line4_graph, registry, {"voice": 0.001008}, line_routes
        )
        for i in range(50):
            d = ctrl.admit(_flow(f"be{i}", cls="best-effort"))
            assert d.admitted
        ctrl.release("be0")  # releases cleanly too

    def test_headroom(self, line4_graph, voice_registry, line_routes):
        ctrl = _controller(
            line4_graph, voice_registry, line_routes, alpha=0.001008
        )
        assert ctrl.headroom("voice", ("r0", "r3")) == 3
        ctrl.admit(_flow(1))
        assert ctrl.headroom("voice", ("r0", "r3")) == 2

    def test_statistics(self, line4_graph, voice_registry, line_routes):
        ctrl = _controller(
            line4_graph, voice_registry, line_routes, alpha=0.001008
        )
        for i in range(5):
            ctrl.admit(_flow(i))
        assert ctrl.num_admitted == 3
        assert ctrl.num_rejected == 2
        assert ctrl.acceptance_ratio == pytest.approx(0.6)
        assert ctrl.mean_decision_seconds() >= 0

    def test_utilization_invariant_under_churn(self, line4_graph,
                                               voice_registry, line_routes):
        """Admitted load never exceeds alpha on any server, ever."""
        rng = np.random.default_rng(0)
        alpha = 0.001008
        ctrl = _controller(
            line4_graph, voice_registry, line_routes, alpha=alpha
        )
        live = []
        for step in range(200):
            if live and rng.random() < 0.4:
                ctrl.release(live.pop(rng.integers(len(live))))
            else:
                fid = f"f{step}"
                pair = [("r0", "r3"), ("r3", "r0"), ("r0", "r2"),
                        ("r1", "r3")][int(rng.integers(4))]
                if ctrl.admit(_flow(fid, *pair)).admitted:
                    live.append(fid)
            util = ctrl.class_utilization("voice")
            assert np.all(util <= alpha + 1e-12)


class TestFlowAwareController:
    def test_admits_light_load(self, line4_graph, voice_registry,
                               line_routes):
        ctrl = FlowAwareAdmissionController(
            line4_graph, voice_registry, line_routes
        )
        for i in range(5):
            assert ctrl.admit(_flow(i)).admitted
        assert ctrl.num_established == 5

    def test_rejects_overload(self, voice_registry):
        """Saturating a shared 1 Mbps bottleneck must be refused."""
        net = star_network(3, capacity=1e6)
        graph = LinkServerGraph(net)
        routes = {
            ("leaf0", "leaf2"): ["leaf0", "hub", "leaf2"],
            ("leaf1", "leaf2"): ["leaf1", "hub", "leaf2"],
        }
        ctrl = FlowAwareAdmissionController(graph, voice_registry, routes)
        admitted = 0
        for i in range(40):  # 40 * 32 kbps = 1.28 Mbps > 1 Mbps
            src = "leaf0" if i % 2 == 0 else "leaf1"
            if ctrl.admit(_flow(i, src, "leaf2")).admitted:
                admitted += 1
        assert admitted < 40
        # Stability: admitted rate below the wire.
        assert admitted * 32_000 <= 1e6

    def test_release_allows_readmission(self, line4_graph, voice_registry,
                                        line_routes):
        ctrl = FlowAwareAdmissionController(
            line4_graph, voice_registry, line_routes
        )
        ctrl.admit(_flow(1))
        ctrl.release(1)
        assert ctrl.admit(_flow(2)).admitted

    def test_decision_cost_grows_with_population(self, line4_graph,
                                                 voice_registry,
                                                 line_routes):
        """The paper's scalability argument, functionally: the flow-aware
        controller's work grows with established flows while the
        utilization controller's does not (checked via analysis calls,
        not wall-clock, to stay robust in CI)."""
        ctrl = FlowAwareAdmissionController(
            line4_graph, voice_registry, line_routes
        )
        for i in range(20):
            ctrl.admit(_flow(i))
        # It keeps per-flow state:
        assert ctrl.num_established == 20
        # whereas the utilization controller's ledger is O(servers):
        u = _controller(line4_graph, voice_registry, line_routes)
        for i in range(20):
            u.admit(_flow(i))
        assert u.ledger.used("voice").shape == (line4_graph.num_servers,)
