"""Exception hierarchy contracts."""

import pytest

from repro import errors


def test_all_derive_from_repro_error():
    for name in errors.__all__:
        exc = getattr(errors, name)
        assert issubclass(exc, errors.ReproError)


def test_unknown_node_carries_value():
    e = errors.UnknownNodeError("Chicago")
    assert e.node == "Chicago"
    assert "Chicago" in str(e)


def test_unknown_link_carries_endpoints():
    e = errors.UnknownLinkError("a", "b")
    assert (e.tail, e.head) == ("a", "b")


def test_fixed_point_divergence_attributes():
    e = errors.FixedPointDivergence(iterations=42, last_residual=1.5e-3)
    assert e.iterations == 42
    assert e.last_residual == pytest.approx(1.5e-3)
    assert "42" in str(e)


def test_route_selection_failure_attributes():
    e = errors.RouteSelectionFailure(pair=("a", "b"), routed=3, total=10)
    assert e.pair == ("a", "b")
    assert e.routed == 3 and e.total == 10


def test_infeasible_utilization_interval():
    e = errors.InfeasibleUtilization(0.1, 0.6)
    assert (e.low, e.high) == (0.1, 0.6)


def test_family_catchable_together():
    with pytest.raises(errors.ReproError):
        raise errors.AdmissionError("nope")
    with pytest.raises(errors.TopologyError):
        raise errors.UnknownNodeError("x")
    with pytest.raises(errors.TrafficError):
        raise errors.EnvelopeError("bad")
    with pytest.raises(errors.RoutingError):
        raise errors.NoRouteError("a", "b")
    with pytest.raises(errors.AnalysisError):
        raise errors.FixedPointDivergence(1, 0.0)
    with pytest.raises(errors.ConfigurationError):
        raise errors.InfeasibleUtilization(0.0, 1.0)
