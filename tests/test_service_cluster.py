"""Multi-core scale-out: shard planning, consistent-hash routing, and
cluster snapshot merge/split — plus the live cluster end to end.

The safety argument, property-tested:

* :func:`plan_slot_shards` partitions the verified slot capacity so
  the shard quotas sum to **exactly** the certified slots per server —
  never more, so no interleaving of independent workers can admit past
  what the analysis verified;
* :class:`HashRing` assignment is a pure function of (flow id, worker
  count, salt): a worker restart cannot remap anything, and growing
  the ring only moves flows *to* the new worker;
* :func:`merge_cluster_snapshot` / :func:`split_cluster_snapshot`
  round-trip the established set exactly, committed routes pinned.

The e2e tests launch a real ``serve --workers 2`` cluster (supervisor
subprocess, shard-worker grandchildren) and exercise the front door,
the kill -9 worker chaos path, and the merged-manifest restart.
"""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.admission import (
    SlotShardController,
    UtilizationAdmissionController,
    plan_slot_shards,
)
from repro.errors import AdmissionError, FaultInjectionError, ServiceError
from repro.faults import ClusterProcess, kill_worker_restart_check
from repro.routing.shortest import shortest_path_routes
from repro.service import merge_cluster_snapshot, split_cluster_snapshot
from repro.service.cluster import ClusterConfig, worker_serve_command
from repro.service.router import HashRing
from repro.service.snapshots import SNAPSHOT_SCHEMA
from repro.topology import LinkServerGraph, mci_backbone
from repro.traffic import ClassRegistry, voice_class
from repro.traffic.flows import FlowSpec
from repro.traffic.generators import all_ordered_pairs

# --------------------------------------------------------------------- #
# shard planning: quotas never exceed verified capacity
# --------------------------------------------------------------------- #

slot_totals = st.lists(
    st.integers(min_value=0, max_value=10_000), min_size=1, max_size=40
)


class TestPlanSlotShards:
    @given(totals=slot_totals, shards=st.integers(1, 12))
    @settings(deadline=None, max_examples=120)
    def test_columns_sum_exactly_to_verified_totals(self, totals, shards):
        plan = plan_slot_shards(np.array(totals, dtype=np.int64), shards)
        assert plan.shape == (shards, len(totals))
        assert np.all(plan >= 0)
        # The safety invariant: per server, shard quotas sum to the
        # certified slot count — equality, not just <=, so no capacity
        # is silently stranded either.
        assert np.array_equal(plan.sum(axis=0), np.array(totals))

    @given(
        totals=slot_totals,
        shards=st.integers(1, 8),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(deadline=None, max_examples=60)
    def test_weighted_plans_respect_the_same_invariant(
        self, totals, shards, seed
    ):
        rng = np.random.default_rng(seed)
        weights = rng.random((shards, len(totals)))
        plan = plan_slot_shards(
            np.array(totals, dtype=np.int64), shards, weights=weights
        )
        assert np.all(plan >= 0)
        assert np.array_equal(plan.sum(axis=0), np.array(totals))

    def test_rejects_bad_inputs(self):
        with pytest.raises(AdmissionError):
            plan_slot_shards(np.array([1, 2]), 0)
        with pytest.raises(AdmissionError):
            plan_slot_shards(np.array([-1]), 2)
        with pytest.raises(AdmissionError):
            plan_slot_shards(
                np.array([5]), 2, weights=np.array([[1.0], [-0.5]])
            )


class TestSlotShardController:
    @pytest.fixture(scope="class")
    def setup(self):
        network = mci_backbone()
        graph = LinkServerGraph(network)
        voice = voice_class()
        registry = ClassRegistry.two_class(voice)
        pairs = all_ordered_pairs(network)
        routes = shortest_path_routes(network, pairs)
        return graph, registry, voice, routes

    def test_shards_sum_to_verified_slots_per_link(self, setup):
        graph, registry, voice, routes = setup
        full = UtilizationAdmissionController(
            graph, registry, {voice.name: 0.3}, routes
        )
        verified = full.ledger.slots(voice.name)
        shards = [
            SlotShardController(
                graph,
                registry,
                {voice.name: 0.3},
                routes,
                shard_index=i,
                shard_count=4,
            )
            for i in range(4)
        ]
        total = sum(s.shard_slots(voice.name) for s in shards)
        assert np.array_equal(total, verified)
        for s in shards:
            assert np.all(s.shard_slots(voice.name) <= verified)
            assert np.array_equal(s.verified_slots(voice.name), verified)

    def test_reshard_keeps_established_flows(self, setup):
        graph, registry, voice, routes = setup
        shard = SlotShardController(
            graph,
            registry,
            {voice.name: 0.3},
            routes,
            shard_index=0,
            shard_count=2,
        )
        admitted = []
        pairs = list(routes.keys())
        for i in range(10):
            src, dst = pairs[i % len(pairs)]
            if shard.admit(FlowSpec(f"f{i}", voice.name, src, dst)).admitted:
                admitted.append(f"f{i}")
        assert admitted
        shard.reshard(1, 3)
        assert shard.num_established == len(admitted)
        assert shard.shard_index == 1 and shard.shard_count == 3


# --------------------------------------------------------------------- #
# consistent-hash routing
# --------------------------------------------------------------------- #

flow_ids = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.text(min_size=0, max_size=24),
)


class TestHashRing:
    @given(fid=flow_ids, workers=st.integers(1, 16))
    @settings(deadline=None, max_examples=200)
    def test_assignment_is_deterministic_across_ring_rebuilds(
        self, fid, workers
    ):
        # A worker restart rebuilds nothing: two rings with the same
        # parameters are the same function, so routing is stable.
        a = HashRing(workers)
        b = HashRing(workers)
        owner = a.worker_of(fid)
        assert 0 <= owner < workers
        assert b.worker_of(fid) == owner

    @given(fid=flow_ids, workers=st.integers(1, 8))
    @settings(deadline=None, max_examples=200)
    def test_growing_the_ring_only_moves_flows_to_the_new_worker(
        self, fid, workers
    ):
        before = HashRing(workers).worker_of(fid)
        after = HashRing(workers + 1).worker_of(fid)
        assert after == before or after == workers

    def test_type_tagged_ids_do_not_collide(self):
        ring = HashRing(2)
        # "1" and 1 are distinct flows; hashing must not conflate them
        # (their owners may or may not differ, but the keys must be
        # computed from distinct material — spot-check via many ids).
        strs = [ring.worker_of(str(i)) for i in range(200)]
        ints = [ring.worker_of(i) for i in range(200)]
        assert strs != ints

    def test_balance_is_reasonable(self):
        ring = HashRing(4)
        counts = [0, 0, 0, 0]
        for i in range(4000):
            counts[ring.worker_of(f"flow-{i}")] += 1
        # 64 virtual nodes per worker keep the spread well inside a
        # factor of two of the mean.
        assert min(counts) > 4000 / 4 / 2
        assert max(counts) < 4000 / 4 * 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(ServiceError):
            HashRing(0)
        with pytest.raises(ServiceError):
            HashRing(2, virtual_nodes=0)

    def test_different_salts_give_different_rings(self):
        a = HashRing(4, salt="a")
        b = HashRing(4, salt="b")
        assignments_a = [a.worker_of(f"f{i}") for i in range(300)]
        assignments_b = [b.worker_of(f"f{i}") for i in range(300)]
        assert assignments_a != assignments_b


# --------------------------------------------------------------------- #
# cluster snapshot merge / split
# --------------------------------------------------------------------- #

def _shard_snapshot(flows):
    return {
        "schema": SNAPSHOT_SCHEMA,
        "alphas": {"voice": 0.3},
        "flows": [
            {
                "flow_id": fid,
                "class_name": "voice",
                "source": "A",
                "destination": "B",
                "route": ["A", "B"],
            }
            for fid in flows
        ],
    }


unique_ids = st.lists(
    st.one_of(st.integers(0, 10_000), st.text(min_size=1, max_size=8)),
    max_size=60,
    unique=True,
)


class TestClusterSnapshots:
    @given(ids=unique_ids, workers=st.integers(1, 6))
    @settings(deadline=None, max_examples=80)
    def test_merge_then_split_restores_exact_shards(self, ids, workers):
        ring = HashRing(workers)
        shards = [[] for _ in range(workers)]
        for fid in ids:
            shards[ring.worker_of(fid)].append(fid)
        manifest = merge_cluster_snapshot(
            [_shard_snapshot(s) for s in shards]
        )
        assert manifest["schema"] == SNAPSHOT_SCHEMA
        assert manifest["cluster"]["workers"] == workers
        assert len(manifest["flows"]) == len(ids)
        # Same worker count: the stored partition is reproduced
        # exactly, whatever assign function is passed.
        out = split_cluster_snapshot(
            manifest, workers, lambda fid: 0
        )
        for i in range(workers):
            assert [f["flow_id"] for f in out[i]["flows"]] == shards[i]
            assert out[i]["alphas"] == {"voice": 0.3}
            for f in out[i]["flows"]:
                assert f["route"] == ["A", "B"]

    @given(
        ids=unique_ids,
        workers=st.integers(1, 5),
        new_workers=st.integers(1, 5),
    )
    @settings(deadline=None, max_examples=60)
    def test_resize_split_covers_every_flow_exactly_once(
        self, ids, workers, new_workers
    ):
        ring = HashRing(workers)
        shards = [[] for _ in range(workers)]
        for fid in ids:
            shards[ring.worker_of(fid)].append(fid)
        manifest = merge_cluster_snapshot(
            [_shard_snapshot(s) for s in shards]
        )
        new_ring = HashRing(new_workers)
        out = split_cluster_snapshot(
            manifest, new_workers, new_ring.worker_of
        )
        flat = [
            ("s" if isinstance(f["flow_id"], str) else "i", f["flow_id"])
            for shard in out
            for f in shard["flows"]
        ]
        expected = [
            ("s" if isinstance(fid, str) else "i", fid) for fid in ids
        ]
        assert sorted(map(repr, flat)) == sorted(map(repr, expected))
        if new_workers != workers:
            # Resize path: flows land where the new ring says.
            for i, shard in enumerate(out):
                for f in shard["flows"]:
                    assert new_ring.worker_of(f["flow_id"]) == i

    def test_merge_rejects_overlapping_shards(self):
        with pytest.raises(ServiceError, match="not disjoint"):
            merge_cluster_snapshot(
                [_shard_snapshot(["x"]), _shard_snapshot(["x"])]
            )

    def test_merge_rejects_mixed_alphas(self):
        a = _shard_snapshot(["x"])
        b = _shard_snapshot(["y"])
        b["alphas"] = {"voice": 0.4}
        with pytest.raises(ServiceError, match="different"):
            merge_cluster_snapshot([a, b])

    def test_merge_tolerates_missing_shards(self):
        manifest = merge_cluster_snapshot(
            [None, _shard_snapshot(["x"]), None]
        )
        assert manifest["cluster"] == {"workers": 3, "present": [1]}
        assert manifest["flows"][0]["worker"] == 1

    def test_plain_single_server_snapshot_scales_out(self):
        # A v1 snapshot with no cluster section splits by the ring —
        # the scale-up path from one server to a cluster.
        snap = _shard_snapshot(["a", "b", "c", 7])
        ring = HashRing(3)
        out = split_cluster_snapshot(snap, 3, ring.worker_of)
        total = sum(len(s["flows"]) for s in out)
        assert total == 4
        for i, shard in enumerate(out):
            for f in shard["flows"]:
                assert ring.worker_of(f["flow_id"]) == i


# --------------------------------------------------------------------- #
# config plumbing
# --------------------------------------------------------------------- #

class TestClusterConfig:
    def test_derived_paths(self):
        cfg = ClusterConfig(
            workers=3, socket_path="/tmp/x.sock", snapshot_path="/tmp/m.json"
        )
        assert cfg.worker_socket(1) == "/tmp/x.sock.w1"
        assert cfg.worker_snapshot(2) == "/tmp/m.json.w2"
        assert ClusterConfig(
            workers=1, socket_path="/tmp/x.sock"
        ).worker_snapshot(0) is None

    def test_validation(self):
        with pytest.raises(ServiceError):
            ClusterConfig(workers=0, socket_path="/tmp/x.sock")
        with pytest.raises(ServiceError):
            ClusterConfig(workers=2, socket_path="")
        with pytest.raises(ServiceError):
            ClusterConfig(
                workers=2, socket_path="/tmp/x.sock", snapshot_interval=5.0
            )

    def test_worker_serve_command_argv(self):
        command = worker_serve_command(
            shard_count=4, topology="mci", alpha=0.25, snapshot_interval=3.0
        )
        argv = command(2, "/tmp/x.sock.w2", "/tmp/m.json.w2")
        joined = " ".join(argv)
        assert "--shard-index 2" in joined
        assert "--shard-count 4" in joined
        assert "--socket /tmp/x.sock.w2" in joined
        assert "--snapshot /tmp/m.json.w2" in joined
        assert "--snapshot-interval 3.0" in joined
        assert "--topology mci" in joined
        # No snapshot path -> no snapshot flags at all.
        bare = command(0, "/tmp/x.sock.w0", None)
        assert "--snapshot" not in " ".join(bare)


# --------------------------------------------------------------------- #
# the live cluster, end to end
# --------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def mci_pairs():
    return all_ordered_pairs(mci_backbone())


class TestClusterEndToEnd:
    def test_front_door_spreads_flows_and_routes_ops_home(
        self, tmp_path, mci_pairs
    ):
        sock = str(tmp_path / "front.sock")
        snap = str(tmp_path / "manifest.json")
        with ClusterProcess(
            workers=2,
            socket_path=sock,
            snapshot_path=snap,
            topology="mci",
        ) as cluster:
            cluster.start()
            with cluster.client() as client:
                info = client.cluster()
                assert info["workers"] == 2
                assert len(info["sockets"]) == 2
                admitted = []
                for i, (src, dst) in enumerate(mci_pairs[:30]):
                    decision = client.admit(
                        FlowSpec(f"e{i}", "voice", src, dst)
                    )
                    if decision.admitted:
                        admitted.append(f"e{i}")
                assert admitted
                stats = client.stats()
                assert stats["workers"] == 2
                assert stats["established"] == len(admitted)
                per_worker = [
                    w["established"] for w in stats["per_worker"]
                ]
                assert sum(per_worker) == len(admitted)
                # Both shards took flows — the hash spread them.
                assert all(count > 0 for count in per_worker)
                # query and release land on the committing worker.
                assert client.query(admitted[0]) is True
                assert client.release(admitted[0]) is True
                assert client.query(admitted[0]) is False
                snap_result = client.snapshot()
                assert snap_result["flows"] == len(admitted) - 1
            manifest = json.load(open(snap))
            assert manifest["cluster"]["workers"] == 2
            assert len(manifest["flows"]) == len(admitted) - 1

    def test_kill9_of_one_worker_preserves_every_established_flow(
        self, tmp_path, mci_pairs
    ):
        sock = str(tmp_path / "front.sock")
        snap = str(tmp_path / "manifest.json")
        with ClusterProcess(
            workers=2,
            socket_path=sock,
            snapshot_path=snap,
            topology="mci",
            snapshot_interval=60.0,
        ) as cluster:
            cluster.start()
            with cluster.client() as client:
                admitted = []
                for i, (src, dst) in enumerate(mci_pairs[:25]):
                    if client.admit(
                        FlowSpec(f"k{i}", "voice", src, dst)
                    ).admitted:
                        admitted.append(f"k{i}")
                assert admitted
                client.snapshot()  # durable shard cuts before the kill
            report = kill_worker_restart_check(cluster, 0, admitted)
            assert report["lost"] == []
            assert report["worker_restarts"] >= 1
            assert report["new_pid"] != report["old_pid"]
            # The reborn shard serves new traffic on the restored ledger.
            with cluster.client() as client:
                src, dst = mci_pairs[40]
                assert client.admit(
                    FlowSpec("post-chaos", "voice", src, dst)
                ).admitted
                assert (
                    client.stats()["established"] == len(admitted) + 1
                )

    def test_drain_merges_manifest_and_resized_restart_readmits(
        self, tmp_path, mci_pairs
    ):
        sock = str(tmp_path / "front.sock")
        snap = str(tmp_path / "manifest.json")
        with ClusterProcess(
            workers=2, socket_path=sock, snapshot_path=snap, topology="mci"
        ) as cluster:
            cluster.start()
            admitted = []
            with cluster.client() as client:
                for i, (src, dst) in enumerate(mci_pairs[:20]):
                    if client.admit(
                        FlowSpec(f"r{i}", "voice", src, dst)
                    ).admitted:
                        admitted.append(f"r{i}")
            assert cluster.terminate() == 0
            assert os.path.exists(snap)
        # Restart at a different worker count: the manifest re-splits
        # by the ring and every survivor is re-admitted.
        with ClusterProcess(
            workers=3, socket_path=sock, snapshot_path=snap, topology="mci"
        ) as bigger:
            bigger.start()
            with bigger.client() as client:
                stats = client.stats()
                assert stats["workers"] == 3
                assert stats["established"] == len(admitted)
                lost = [f for f in admitted if not client.query(f)]
                assert lost == []

    def test_worker_kill_guard_rails(self, tmp_path):
        cluster = ClusterProcess(
            workers=2, socket_path=str(tmp_path / "front.sock")
        )
        with pytest.raises(FaultInjectionError):
            cluster.kill_worker(0)  # never started
        cluster.stop()
