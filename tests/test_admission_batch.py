"""Unit tests for the vectorized batch-admission machinery.

Covers the :mod:`repro.admission.batch` slot kernel in isolation, the
array-backed :class:`~repro.admission.flowtable.FlowTable`, and the
batch-aware :class:`~repro.admission.base.AdmissionDecision` records
(amortized per-request timing).  The end-to-end sequential/batch
equivalence lives in ``test_property_batch_admission.py``.
"""

import numpy as np
import pytest

from repro.admission import (
    FlowTable,
    PADDING_FREE,
    UtilizationAdmissionController,
    batch_slot_decisions,
    flat_committed_servers,
    pad_server_matrix,
)
from repro.admission.base import AdmissionDecision
from repro.admission.flowtable import NO_CLASS
from repro.errors import AdmissionError
from repro.routing.shortest import shortest_path_routes
from repro.traffic.flows import FlowSpec
from repro.traffic.generators import all_ordered_pairs


def _free(values):
    """Free-slot vector with the virtual padding slot appended."""
    out = np.empty(len(values) + 1, dtype=np.int64)
    out[:-1] = values
    out[-1] = PADDING_FREE
    return out


class TestPadServerMatrix:
    def test_pads_ragged_rows_to_sentinel(self):
        rows = [
            np.array([0, 1, 2], dtype=np.int64),
            np.array([3], dtype=np.int64),
        ]
        matrix, lengths = pad_server_matrix(rows, pad=9)
        assert matrix.tolist() == [[0, 1, 2], [3, 9, 9]]
        assert lengths.tolist() == [3, 1]

    def test_empty_rows_allowed(self):
        matrix, lengths = pad_server_matrix(
            [np.empty(0, dtype=np.int64)], pad=4
        )
        assert lengths.tolist() == [0]
        assert (matrix == 4).all() if matrix.size else True


class TestBatchSlotDecisions:
    def test_independent_flows_all_admitted(self):
        matrix, _ = pad_server_matrix(
            [np.array([0]), np.array([1]), np.array([2])], pad=3
        )
        admitted = batch_slot_decisions(matrix, _free([1, 1, 1]))
        assert admitted.tolist() == [True, True, True]

    def test_contention_resolved_in_batch_order(self):
        # One slot on server 0; the first requester wins.
        matrix, _ = pad_server_matrix(
            [np.array([0]), np.array([0]), np.array([0])], pad=1
        )
        admitted = batch_slot_decisions(matrix, _free([1]))
        assert admitted.tolist() == [True, False, False]

    def test_rejection_frees_slots_for_later_flow(self):
        # Server 0 is full, server 1 has one slot.  Flow 0 needs both
        # servers -> rejected; flow 1 (server 1 only) must then be
        # admitted, exactly as a sequential replay would decide.
        matrix, _ = pad_server_matrix(
            [np.array([0, 1]), np.array([1])], pad=2
        )
        admitted = batch_slot_decisions(matrix, _free([0, 1]))
        assert admitted.tolist() == [False, True]

    def test_matches_sequential_greedy_reference(self):
        rng = np.random.default_rng(3)
        num_servers = 6
        for _ in range(25):
            rows = [
                np.unique(
                    rng.integers(0, num_servers, size=rng.integers(1, 4))
                ).astype(np.int64)
                for _ in range(rng.integers(1, 20))
            ]
            free = rng.integers(0, 3, size=num_servers).astype(np.int64)
            matrix, _ = pad_server_matrix(rows, pad=num_servers)
            got = batch_slot_decisions(matrix, _free(free))
            # Greedy per-flow reference.
            remaining = free.copy()
            want = []
            for servers in rows:
                ok = bool((remaining[servers] > 0).all())
                if ok:
                    remaining[servers] -= 1
                want.append(ok)
            assert got.tolist() == want

    def test_flat_committed_servers_excludes_padding(self):
        matrix, _ = pad_server_matrix(
            [np.array([0, 1]), np.array([2])], pad=3
        )
        admitted = np.array([True, True])
        flat = flat_committed_servers(matrix, admitted, pad=3)
        assert sorted(flat.tolist()) == [0, 1, 2]


class TestFlowTable:
    def test_add_pop_roundtrip(self):
        table = FlowTable(pad=7)
        table.add("a", 0, np.array([1, 2], dtype=np.int64), tag=5)
        assert "a" in table and len(table) == 1
        code, servers, tag = table.pop("a")
        assert (code, tag) == (0, 5)
        assert servers.tolist() == [1, 2]
        assert "a" not in table and len(table) == 0

    def test_row_reuse_clears_stale_tail(self):
        table = FlowTable(pad=9, width=2, capacity=1)
        table.add("long", 0, np.array([1, 2, 3, 4], dtype=np.int64))
        table.pop("long")
        # The recycled row previously held a 4-wide route; a 1-wide
        # batch must not resurrect the stale columns.
        matrix, lengths = pad_server_matrix(
            [np.array([5], dtype=np.int64)], pad=9
        )
        table.add_batch(["short"], 1, matrix, lengths)
        _, servers, _ = table.pop("short")
        assert servers.tolist() == [5]

    def test_pop_batch_returns_all_columns(self):
        table = FlowTable(pad=9)
        matrix, lengths = pad_server_matrix(
            [np.array([1, 2]), np.array([3])], pad=9
        )
        table.add_batch(["a", "b"], 2, matrix, lengths)
        codes, out, out_len, tags = table.pop_batch(["b", "a"])
        assert codes.tolist() == [2, 2]
        assert out_len.tolist() == [1, 2]
        assert out[0, 0] == 3 and out[1].tolist() == [1, 2]
        assert tags.tolist() == [-1, -1]
        assert len(table) == 0

    def test_growth_beyond_initial_capacity(self):
        table = FlowTable(pad=5, capacity=2)
        for i in range(100):
            table.add(i, NO_CLASS, np.empty(0, dtype=np.int64))
        assert len(table) == 100
        for i in range(100):
            table.pop(i)
        assert len(table) == 0

    def test_duplicate_and_missing_ids_raise(self):
        table = FlowTable(pad=5)
        table.add("a", 0, np.array([1], dtype=np.int64))
        with pytest.raises(AdmissionError):
            table.add("a", 0, np.array([2], dtype=np.int64))
        with pytest.raises(AdmissionError):
            table.pop("missing")
        with pytest.raises(AdmissionError):
            table.pop_batch(["a", "missing"])

    def test_servers_of_returns_copy(self):
        table = FlowTable(pad=5)
        table.add("a", 0, np.array([1, 2], dtype=np.int64))
        view = table.servers_of("a")
        view[:] = 0
        assert table.servers_of("a").tolist() == [1, 2]


class TestDecisionRecords:
    def test_per_request_seconds_amortizes_batch(self):
        decision = AdmissionDecision(
            flow_id="f", admitted=True, reason="",
            decision_seconds=1.0, batch_size=10,
        )
        assert decision.per_request_seconds == pytest.approx(0.1)

    def test_single_decision_defaults_to_batch_of_one(self):
        decision = AdmissionDecision(
            flow_id="f", admitted=True, reason="", decision_seconds=0.5,
        )
        assert decision.batch_size == 1
        assert decision.per_request_seconds == pytest.approx(0.5)

    def test_mean_decision_seconds_amortizes_batches(self, mci, mci_graph,
                                                     mci_pairs,
                                                     voice_registry):
        # Regression: summing raw decision_seconds would count a
        # k-request batch k times over.
        routes = shortest_path_routes(mci, mci_pairs)
        controller = UtilizationAdmissionController(
            mci_graph, voice_registry, {"voice": 0.3}, routes
        )
        flows = [
            FlowSpec(
                flow_id=f"f{i}", class_name="voice",
                source=pair[0], destination=pair[1],
            )
            for i, pair in enumerate(mci_pairs[:20])
        ]
        decisions = controller.admit_batch(flows)
        assert all(d.batch_size == len(flows) for d in decisions)
        batch_cost = decisions[0].decision_seconds
        assert controller.mean_decision_seconds() == pytest.approx(
            batch_cost / len(flows)
        )


class TestAdmitBatchValidation:
    @pytest.fixture()
    def controller(self, mci, mci_graph, mci_pairs, voice_registry):
        routes = shortest_path_routes(mci, mci_pairs)
        return UtilizationAdmissionController(
            mci_graph, voice_registry, {"voice": 0.3}, routes
        )

    def _flow(self, pair, fid):
        return FlowSpec(
            flow_id=fid, class_name="voice",
            source=pair[0], destination=pair[1],
        )

    def test_duplicate_ids_rejected_before_commit(
        self, controller, mci_pairs
    ):
        flows = [
            self._flow(mci_pairs[0], "dup"),
            self._flow(mci_pairs[1], "dup"),
        ]
        with pytest.raises(AdmissionError, match="duplicate"):
            controller.admit_batch(flows)
        assert controller.num_established == 0

    def test_established_id_rejected_before_commit(
        self, controller, mci_pairs
    ):
        controller.admit(self._flow(mci_pairs[0], "a"))
        with pytest.raises(AdmissionError, match="already established"):
            controller.admit_batch(
                [self._flow(mci_pairs[1], "b"),
                 self._flow(mci_pairs[2], "a")]
            )
        assert not controller.is_established("b")

    def test_release_batch_is_all_or_nothing(self, controller, mci_pairs):
        controller.admit_batch(
            [self._flow(mci_pairs[0], "a"), self._flow(mci_pairs[1], "b")]
        )
        with pytest.raises(AdmissionError, match="not established"):
            controller.release_batch(["a", "ghost"])
        assert controller.is_established("a")
        with pytest.raises(AdmissionError, match="duplicate"):
            controller.release_batch(["a", "a"])
        assert controller.is_established("a")
        with pytest.raises(AdmissionError, match="not established"):
            controller.release_batch(["ghost", "ghost"])
        controller.release_batch(["b", "a"])
        assert controller.num_established == 0

    def test_empty_batch_is_a_no_op(self, controller):
        assert controller.admit_batch([]) == []
        controller.release_batch([])
        assert controller.decisions == []

    def test_unknown_class_raises_without_mutation(
        self, controller, mci_pairs
    ):
        flows = [
            self._flow(mci_pairs[0], "a"),
            FlowSpec(
                flow_id="x", class_name="no-such-class",
                source=mci_pairs[1][0], destination=mci_pairs[1][1],
            ),
        ]
        with pytest.raises(Exception):
            controller.admit_batch(flows)
        assert controller.num_established == 0
        assert (controller.ledger.used("voice") == 0).all()


def test_all_pairs_helper_nonempty(mci, mci_pairs):
    # Sanity anchor for the fixtures the suites above lean on.
    assert len(mci_pairs) == len(all_ordered_pairs(mci))
    assert mci_pairs
