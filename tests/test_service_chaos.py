"""Process-level chaos: kill -9 the real server, restart, verify
survivors.

These tests launch ``repro-ubac serve`` as a genuine subprocess (via
:class:`repro.faults.ServiceProcess`), drive it over its Unix socket,
SIGKILL it mid-run, restart it on the same snapshot path, and assert
the survivor guarantee end to end: every flow whose admission reached a
crash-safe snapshot is established again — on its pinned route — before
the reborn server takes new traffic.
"""

import os

import pytest

from repro.errors import FaultInjectionError
from repro.faults import ServiceProcess, kill_restart_check
from repro.topology import nsfnet_backbone
from repro.traffic.flows import FlowSpec
from repro.traffic.generators import all_ordered_pairs


@pytest.fixture(scope="module")
def pairs():
    return all_ordered_pairs(nsfnet_backbone())


class TestServiceProcess:
    def test_kill9_restart_preserves_established_flows(
        self, tmp_path, pairs
    ):
        sock = str(tmp_path / "s.sock")
        snap = str(tmp_path / "snap.json")
        with ServiceProcess(
            socket_path=sock,
            snapshot_path=snap,
            snapshot_interval=30.0,  # rely on the explicit snapshot op
        ) as proc:
            proc.start()
            admitted = []
            with proc.client() as client:
                for i, (src, dst) in enumerate(pairs[:25]):
                    decision = client.admit(
                        FlowSpec(f"c{i}", "voice", src, dst)
                    )
                    if decision.admitted:
                        admitted.append(f"c{i}")
                assert admitted
                client.snapshot()  # durable cut before the kill
            report = kill_restart_check(proc, admitted)
            assert report["lost"] == []
            assert report["restored"] == len(admitted)
            assert proc.launches == 2
            # The reborn server serves new traffic on top of the
            # restored ledger.
            with proc.client() as client:
                src, dst = pairs[30]
                decision = client.admit(
                    FlowSpec("post-restart", "voice", src, dst)
                )
                assert decision.admitted
                assert client.stats()["established"] == len(admitted) + 1

    def test_admissions_after_snapshot_are_lost_by_design(
        self, tmp_path, pairs
    ):
        # kill -9 semantics: only snapshotted admissions survive.  A
        # flow admitted after the last durable cut must be gone — and
        # report as lost when claimed as established.
        sock = str(tmp_path / "s.sock")
        snap = str(tmp_path / "snap.json")
        with ServiceProcess(
            socket_path=sock, snapshot_path=snap, snapshot_interval=60.0
        ) as proc:
            proc.start()
            with proc.client() as client:
                src, dst = pairs[0]
                assert client.admit(
                    FlowSpec("durable", "voice", src, dst)
                ).admitted
                client.snapshot()
                src, dst = pairs[1]
                assert client.admit(
                    FlowSpec("ephemeral", "voice", src, dst)
                ).admitted
            with pytest.raises(FaultInjectionError) as err:
                kill_restart_check(proc, ["durable", "ephemeral"])
            assert "ephemeral" in str(err.value)
            with proc.client() as client:
                assert client.query("durable") is True
                assert client.query("ephemeral") is False

    def test_sigterm_drains_and_snapshots(self, tmp_path, pairs):
        sock = str(tmp_path / "s.sock")
        snap = str(tmp_path / "snap.json")
        with ServiceProcess(
            socket_path=sock, snapshot_path=snap
        ) as proc:
            proc.start()
            with proc.client() as client:
                src, dst = pairs[0]
                assert client.admit(
                    FlowSpec("f1", "voice", src, dst)
                ).admitted
            # Graceful path: SIGTERM writes the final snapshot even
            # though no explicit snapshot op ever ran.
            assert proc.terminate() == 0
            assert os.path.exists(snap)
            proc.restart()
            with proc.client() as client:
                assert client.query("f1") is True

    def test_startup_failure_surfaces_the_captured_log(self, tmp_path):
        # Server output goes to a per-launch log file, not an undrained
        # pipe (which a chatty server could fill and block on); startup
        # failures quote it.
        proc = ServiceProcess(
            socket_path=str(tmp_path / "s.sock"),
            topology="no-such-topology",
        )
        with pytest.raises(FaultInjectionError, match="exited"):
            proc.start()
        assert os.path.exists(proc.log_path)
        assert proc.read_log()
        proc.stop()

    def test_lifecycle_guards(self, tmp_path):
        proc = ServiceProcess(socket_path=str(tmp_path / "s.sock"))
        with pytest.raises(FaultInjectionError):
            proc.kill()
        with pytest.raises(FaultInjectionError):
            proc.terminate()
        proc.stop()  # no-op on a never-started process
