"""Process-level chaos: kill -9 the real server, restart, verify
survivors.

These tests launch ``repro-ubac serve`` as a genuine subprocess (via
:class:`repro.faults.ServiceProcess`), drive it over its Unix socket,
SIGKILL it mid-run, restart it on the same snapshot path, and assert
the survivor guarantee end to end: every flow whose admission reached a
crash-safe snapshot is established again — on its pinned route — before
the reborn server takes new traffic.
"""

import os

import pytest

from repro.errors import FaultInjectionError
from repro.faults import ServiceProcess, kill_restart_check
from repro.topology import nsfnet_backbone
from repro.traffic.flows import FlowSpec
from repro.traffic.generators import all_ordered_pairs


@pytest.fixture(scope="module")
def pairs():
    return all_ordered_pairs(nsfnet_backbone())


class TestServiceProcess:
    def test_kill9_restart_preserves_established_flows(
        self, tmp_path, pairs
    ):
        sock = str(tmp_path / "s.sock")
        snap = str(tmp_path / "snap.json")
        with ServiceProcess(
            socket_path=sock,
            snapshot_path=snap,
            snapshot_interval=30.0,  # rely on the explicit snapshot op
        ) as proc:
            proc.start()
            admitted = []
            with proc.client() as client:
                for i, (src, dst) in enumerate(pairs[:25]):
                    decision = client.admit(
                        FlowSpec(f"c{i}", "voice", src, dst)
                    )
                    if decision.admitted:
                        admitted.append(f"c{i}")
                assert admitted
                client.snapshot()  # durable cut before the kill
            report = kill_restart_check(proc, admitted)
            assert report["lost"] == []
            assert report["restored"] == len(admitted)
            assert proc.launches == 2
            # The reborn server serves new traffic on top of the
            # restored ledger.
            with proc.client() as client:
                src, dst = pairs[30]
                decision = client.admit(
                    FlowSpec("post-restart", "voice", src, dst)
                )
                assert decision.admitted
                assert client.stats()["established"] == len(admitted) + 1

    def test_admissions_after_snapshot_are_lost_by_design(
        self, tmp_path, pairs
    ):
        # kill -9 semantics: only snapshotted admissions survive.  A
        # flow admitted after the last durable cut must be gone — and
        # report as lost when claimed as established.
        sock = str(tmp_path / "s.sock")
        snap = str(tmp_path / "snap.json")
        with ServiceProcess(
            socket_path=sock, snapshot_path=snap, snapshot_interval=60.0
        ) as proc:
            proc.start()
            with proc.client() as client:
                src, dst = pairs[0]
                assert client.admit(
                    FlowSpec("durable", "voice", src, dst)
                ).admitted
                client.snapshot()
                src, dst = pairs[1]
                assert client.admit(
                    FlowSpec("ephemeral", "voice", src, dst)
                ).admitted
            with pytest.raises(FaultInjectionError) as err:
                kill_restart_check(proc, ["durable", "ephemeral"])
            assert "ephemeral" in str(err.value)
            with proc.client() as client:
                assert client.query("durable") is True
                assert client.query("ephemeral") is False

    def test_sigterm_drains_and_snapshots(self, tmp_path, pairs):
        sock = str(tmp_path / "s.sock")
        snap = str(tmp_path / "snap.json")
        with ServiceProcess(
            socket_path=sock, snapshot_path=snap
        ) as proc:
            proc.start()
            with proc.client() as client:
                src, dst = pairs[0]
                assert client.admit(
                    FlowSpec("f1", "voice", src, dst)
                ).admitted
            # Graceful path: SIGTERM writes the final snapshot even
            # though no explicit snapshot op ever ran.
            assert proc.terminate() == 0
            assert os.path.exists(snap)
            proc.restart()
            with proc.client() as client:
                assert client.query("f1") is True

    def test_audit_log_accounts_for_every_decision_across_kill9(
        self, tmp_path, pairs
    ):
        # The telemetry acceptance bar: after a kill -9 and restart,
        # the audit log — fsynced per record — replays to a consistent
        # history whose durable snapshot marker matches the snapshot
        # the reborn server actually recovered from.
        from repro.service import iter_audit, verify_audit

        sock = str(tmp_path / "s.sock")
        snap = str(tmp_path / "snap.json")
        audit = str(tmp_path / "audit.jsonl")
        with ServiceProcess(
            socket_path=sock,
            snapshot_path=snap,
            snapshot_interval=60.0,
            audit_path=audit,
            audit_fsync_every=1,
        ) as proc:
            proc.start()
            admitted = []
            with proc.client() as client:
                for i, (src, dst) in enumerate(pairs[:12]):
                    if client.admit(
                        FlowSpec(f"a{i}", "voice", src, dst)
                    ).admitted:
                        admitted.append(f"a{i}")
                assert client.release(admitted[0])
                survivors = admitted[1:]
                client.snapshot()  # durable cut + audit marker
            report = kill_restart_check(proc, survivors)
            assert report["lost"] == []
            with proc.client() as client:
                src, dst = pairs[20]
                assert client.admit(
                    FlowSpec("post-kill", "voice", src, dst)
                ).admitted
            proc.terminate()
        records = list(iter_audit(audit))
        # Both launches mark what they resumed from; every decision of
        # both lives is present, in one gap-free sequence.
        kinds = [r["kind"] for r in records]
        assert kinds.count("restore") == 2
        assert kinds.count("admit") == len(admitted) + 1
        assert kinds.count("release") == 1
        seqs = [r["seq"] for r in records]
        assert seqs == list(range(1, len(seqs) + 1))
        audit_report = verify_audit(records, snapshot=snap)
        assert audit_report["ok"], audit_report["problems"]
        assert audit_report["admitted"] == len(admitted) + 1
        assert sorted(audit_report["established"]) == sorted(
            survivors + ["post-kill"]
        )

    def test_startup_failure_surfaces_the_captured_log(self, tmp_path):
        # Server output goes to a per-launch log file, not an undrained
        # pipe (which a chatty server could fill and block on); startup
        # failures quote it.
        proc = ServiceProcess(
            socket_path=str(tmp_path / "s.sock"),
            topology="no-such-topology",
        )
        with pytest.raises(FaultInjectionError, match="exited"):
            proc.start()
        assert os.path.exists(proc.log_path)
        assert proc.read_log()
        proc.stop()

    def test_lifecycle_guards(self, tmp_path):
        proc = ServiceProcess(socket_path=str(tmp_path / "s.sock"))
        with pytest.raises(FaultInjectionError):
            proc.kill()
        with pytest.raises(FaultInjectionError):
            proc.terminate()
        proc.stop()  # no-op on a never-started process
