"""CLI surface of the admission service: serve, client, loadgen --socket."""

import json
import os
import threading
import time

import pytest

from repro.experiments.cli import main
from repro.workload.trace import TraceEvent, write_trace


class ServeThread:
    """``repro-ubac serve`` running in a daemon thread (the
    ``--serve-seconds`` test hook drains it after a fixed budget)."""

    def __init__(self, argv):
        self.argv = argv
        self.rc = None
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _run(self):
        self.rc = main(self.argv)

    def wait_for_socket(self, sock, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if os.path.exists(sock):
                return
            time.sleep(0.02)
        raise AssertionError(f"socket {sock} never appeared")

    def join(self, timeout=60.0):
        self.thread.join(timeout)
        assert not self.thread.is_alive()
        return self.rc


@pytest.fixture()
def served(tmp_path):
    sock = str(tmp_path / "s.sock")
    snap = str(tmp_path / "snap.json")
    server = ServeThread(
        [
            "serve",
            "--socket",
            sock,
            "--snapshot",
            snap,
            "--max-delay-ms",
            "1",
            "--serve-seconds",
            "20",
        ]
    )
    server.wait_for_socket(sock)
    yield sock, snap, server


def last_json(out):
    """Last JSON line in captured output (the serve thread may
    interleave its own status prints)."""
    lines = [l for l in out.strip().splitlines() if l.startswith("{")]
    return json.loads(lines[-1])


def test_serve_client_roundtrip(served, capsys):
    sock, snap, _server = served
    assert (
        main(["client", "health", "--socket", sock]) == 0
    )
    health = last_json(capsys.readouterr().out)
    assert health["status"] == "ok"

    assert (
        main(
            [
                "client",
                "admit",
                "--socket",
                sock,
                "--flow-id",
                "cli-f1",
                "--src",
                "Seattle",
                "--dst",
                "Princeton",
            ]
        )
        == 0
    )
    decision = last_json(capsys.readouterr().out)
    assert decision["admitted"] is True

    assert main(["client", "query", "--socket", sock, "--flow-id", "cli-f1"]) == 0
    assert last_json(capsys.readouterr().out)["established"] is True

    assert main(["client", "snapshot", "--socket", sock]) == 0
    assert last_json(capsys.readouterr().out)["flows"] == 1
    assert os.path.exists(snap)

    assert main(["client", "release", "--socket", sock, "--flow-id", "cli-f1"]) == 0
    assert last_json(capsys.readouterr().out)["released"] is True

    assert main(["client", "stats", "--socket", sock]) == 0
    stats = last_json(capsys.readouterr().out)
    assert stats["established"] == 0
    assert stats["requests"] >= 5


def test_loadgen_drives_the_service(served, capsys):
    sock, _snap, _server = served
    assert (
        main(
            [
                "loadgen",
                "--socket",
                sock,
                "--flows",
                "500",
                "--batch-size",
                "128",
                "--seed",
                "11",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "admission service at" in out
    assert "0 errors" in out
    assert "ops/s over the wire" in out


def test_loadgen_replays_a_trace_at_the_service(
    served, tmp_path, capsys
):
    sock, _snap, _server = served
    trace = str(tmp_path / "trace.jsonl")
    events = [
        TraceEvent(
            float(i), "arrival", f"t{i}", "voice", "Seattle", "Princeton"
        )
        for i in range(5)
    ] + [TraceEvent(9.0, "departure", "t0")]
    write_trace(trace, events, meta={})
    assert (
        main(["loadgen", "--socket", sock, "--replay", trace]) == 0
    )
    out = capsys.readouterr().out
    assert "replaying 6 events" in out
    assert "5 admitted" in out
    assert "1 released" in out


def test_client_argument_validation(tmp_path, capsys):
    # Exactly one of --target/--socket.
    with pytest.raises(SystemExit):
        main(["client", "health"])
    with pytest.raises(SystemExit):
        main(
            [
                "client",
                "health",
                "--socket",
                "x",
                "--target",
                "localhost:1",
            ]
        )
    with pytest.raises(SystemExit):
        main(["loadgen", "--target", "not-a-target", "--flows", "1"])


def test_client_requires_flow_id_for_query(served, capsys):
    sock, _snap, _server = served
    assert main(["client", "query", "--socket", sock]) == 2
    assert "FAILURE" in capsys.readouterr().out
    assert main(["client", "admit", "--socket", sock]) == 2
    assert "FAILURE" in capsys.readouterr().out


def test_client_connect_failure(tmp_path, capsys):
    rc = main(
        ["client", "health", "--socket", str(tmp_path / "nope.sock")]
    )
    assert rc == 1
    assert "FAILURE" in capsys.readouterr().out


def test_serve_requires_a_listener(capsys):
    assert main(["serve"]) == 2
    assert "FAILURE" in capsys.readouterr().out


def test_serve_rejects_bad_watermarks(capsys):
    assert (
        main(
            [
                "serve",
                "--socket",
                "/tmp/unused.sock",
                "--high-water",
                "1",
                "--low-water",
                "2",
            ]
        )
        == 2
    )
    assert "FAILURE" in capsys.readouterr().out


def test_serve_seconds_drains_cleanly(tmp_path, capsys):
    sock = str(tmp_path / "quick.sock")
    rc = main(
        ["serve", "--socket", sock, "--serve-seconds", "0.3"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "listening on" in out
    assert "drained after" in out


def test_serve_preempt_max_victims(tmp_path, capsys):
    # An invalid cap fails at startup, before the listener exists.
    sock = str(tmp_path / "pre.sock")
    rc = main(
        ["serve", "--socket", sock, "--preempt",
         "--preempt-max-victims", "0"]
    )
    assert rc == 2
    assert "max_victims" in capsys.readouterr().out
    # A valid cap reaches the preemptor and the server comes up.
    rc = main(
        ["serve", "--socket", sock, "--preempt",
         "--preempt-max-victims", "3", "--serve-seconds", "0.3"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "priority preemption on" in out
    assert "drained after" in out


def test_serve_full_telemetry_pipeline(tmp_path, capsys):
    """serve with every telemetry flag + loadgen --summary-out, then
    audit --verify against the drain snapshot and the span stream."""
    sock = str(tmp_path / "s.sock")
    snap = str(tmp_path / "snap.json")
    audit = str(tmp_path / "audit.jsonl")
    spans = str(tmp_path / "spans.jsonl")
    summary = str(tmp_path / "summary.json")
    server = ServeThread(
        [
            "serve",
            "--socket",
            sock,
            "--snapshot",
            snap,
            "--audit",
            audit,
            "--audit-fsync-every",
            "1",
            "--metrics-port",
            "0",
            "--span-out",
            spans,
            "--slo-p99-ms",
            "5000",
            "--max-delay-ms",
            "1",
            "--serve-seconds",
            "8",
        ]
    )
    server.wait_for_socket(sock)
    assert (
        main(
            [
                "loadgen",
                "--socket",
                sock,
                "--flows",
                "80",
                "--batch-size",
                "32",
                "--seed",
                "3",
                "--summary-out",
                summary,
            ]
        )
        == 0
    )
    loadgen_out = capsys.readouterr().out
    assert "frame latency p50" in loadgen_out
    with open(summary, encoding="utf-8") as fh:
        report = json.load(fh)
    assert report["schema"] == "repro-bench-summary/v1"
    assert report["mode"] == "service"
    assert report["ops"] > 0
    assert set(report["latency_ms"]) == {"p50_ms", "p90_ms", "p99_ms"}
    assert (
        report["latency_ms"]["p99_ms"] >= report["latency_ms"]["p50_ms"]
    )

    assert server.join() == 0
    # The serve thread's prints interleave with the captures above, so
    # look across everything captured so far.
    serve_out = loadgen_out + capsys.readouterr().out
    assert "telemetry endpoint on http://" in serve_out
    assert "wrote span stream" in serve_out

    # The span stream is self-describing and non-empty.
    from repro.obs.sinks import read_span_lines

    _header, span_objs = read_span_lines(spans)
    names = {s["name"] for s in span_objs}
    assert "service.request" in names
    assert "service.batch" in names

    # The audit log verifies against the final drain snapshot.
    rc = main(["audit", audit, "--verify", "--snapshot", snap])
    assert rc == 0
    out = capsys.readouterr().out
    assert "audit log is consistent" in out
    assert "restores" in out


def test_audit_cli_filters_and_trace_export(tmp_path, capsys):
    from repro.service.audit import AuditLog
    from repro.traffic.flows import FlowSpec
    from repro.workload.trace import read_trace

    log_path = str(tmp_path / "audit.jsonl")
    with AuditLog(log_path, fsync_every=1) as log:
        log.mark_restore([])
        for i in range(3):
            log.record_admit(
                FlowSpec(f"f{i}", "voice", "r0", "r3"),
                admitted=True,
                route=["r0", "r1", "r2", "r3"],
            )
        log.record_release("f0", ok=True)

    assert (
        main(["audit", log_path, "--kind", "admit", "--json"]) == 0
    )
    lines = [
        json.loads(l)
        for l in capsys.readouterr().out.strip().splitlines()
    ]
    assert [r["flow"]["id"] for r in lines] == ["f0", "f1", "f2"]

    assert (
        main(
            ["audit", log_path, "--flow-id", "f0", "--limit", "1"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "release" in out
    assert "2 matching, 1 shown" in out

    trace = str(tmp_path / "replay.jsonl")
    assert main(["audit", log_path, "--to-trace", trace]) == 0
    assert "4 replayable events" in capsys.readouterr().out
    _meta, events = read_trace(trace)
    assert [e.kind for e in events] == [
        "arrival",
        "arrival",
        "arrival",
        "departure",
    ]
    assert events[0].route == ("r0", "r1", "r2", "r3")


def test_audit_cli_detects_an_inconsistent_log(tmp_path, capsys):
    log_path = tmp_path / "audit.jsonl"
    log_path.write_text(
        json.dumps({"schema": "repro-admission-audit/v1"})
        + "\n"
        + json.dumps(
            {
                "seq": 1,
                "ts": 0.0,
                "kind": "release",
                "flow_id": "ghost",
                "released": True,
            }
        )
        + "\n"
    )
    assert main(["audit", str(log_path), "--verify"]) == 1
    out = capsys.readouterr().out
    assert "PROBLEM" in out
    assert "ghost" in out


def test_audit_cli_missing_file(tmp_path, capsys):
    rc = main(["audit", str(tmp_path / "nope.jsonl")])
    assert rc == 1
    assert "FAILURE" in capsys.readouterr().out


def test_top_renders_live_stats(served, capsys):
    sock, _snap, _server = served
    assert (
        main(
            [
                "top",
                "--socket",
                sock,
                "--count",
                "2",
                "--interval",
                "0.05",
                "--no-clear",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "repro-ubac top" in out
    assert "requests" in out
    assert "SLO" in out
    assert out.count("uptime") == 2  # one header per refresh


def test_top_connect_failure(tmp_path, capsys):
    rc = main(
        ["top", "--socket", str(tmp_path / "nope.sock"), "--count", "1"]
    )
    assert rc == 1
    assert "FAILURE" in capsys.readouterr().out


def test_loadgen_fans_out_over_multiple_connections(served, capsys):
    sock, _snap, _server = served
    assert (
        main(
            [
                "loadgen",
                "--socket",
                sock,
                "--flows",
                "400",
                "--batch-size",
                "64",
                "--connections",
                "3",
                "--seed",
                "13",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "3 connections" in out
    assert "0 errors" in out


def test_loadgen_rejects_bad_connections(served, capsys):
    sock, _snap, _server = served
    with pytest.raises(SystemExit, match="connections"):
        main(
            ["loadgen", "--socket", sock, "--flows", "10",
             "--connections", "0"]
        )


def test_serve_workers_argument_validation(tmp_path, capsys):
    sock = str(tmp_path / "front.sock")
    # Cluster serving is Unix-socket only.
    assert main(["serve", "--workers", "2", "--port", "0"]) == 2
    assert "Unix socket" in capsys.readouterr().out
    # The cluster always shards the utilization controller.
    assert (
        main(
            ["serve", "--workers", "2", "--socket", sock,
             "--controller", "sharded"]
        )
        == 2
    )
    assert "utilization" in capsys.readouterr().out
    # Shard flags belong to workers, not the supervisor.
    assert (
        main(
            ["serve", "--workers", "2", "--socket", sock,
             "--shard-index", "0", "--shard-count", "2"]
        )
        == 2
    )
    assert "per-worker" in capsys.readouterr().out
    # Per-worker state that is not plumbed through yet is refused
    # loudly instead of silently dropped.  (--audit used to sit in
    # this list; it now fans out to per-worker logs.)
    assert (
        main(
            ["serve", "--workers", "2", "--socket", sock,
             "--span-out", str(tmp_path / "spans.jsonl")]
        )
        == 2
    )
    assert "--span-out" in capsys.readouterr().out
    assert main(["serve", "--workers", "0", "--socket", sock]) == 2
    assert ">= 1" in capsys.readouterr().out


def test_serve_shard_flags_must_pair(tmp_path, capsys):
    sock = str(tmp_path / "s.sock")
    assert (
        main(["serve", "--socket", sock, "--shard-index", "0"]) == 2
    )
    assert "go together" in capsys.readouterr().out
    assert (
        main(
            ["serve", "--socket", sock, "--shard-index", "0",
             "--shard-count", "2", "--controller", "sharded"]
        )
        == 2
    )
    assert "utilization" in capsys.readouterr().out


def test_serve_single_shard_worker(tmp_path, capsys):
    # A shard worker is just the ordinary server with a quota slice:
    # boot shard 0 of 2 directly and check it reports its identity.
    sock = str(tmp_path / "w0.sock")
    server = ServeThread(
        [
            "serve", "--socket", sock, "--shard-index", "0",
            "--shard-count", "2", "--max-delay-ms", "1",
            "--serve-seconds", "15",
        ]
    )
    server.wait_for_socket(sock)
    assert main(["client", "stats", "--socket", sock]) == 0
    stats = last_json(capsys.readouterr().out)
    assert stats["worker_index"] == 0
    assert stats["controller"] == "SlotShardController"
    assert stats["pid"] == os.getpid() or stats["pid"] > 0
