"""CLI surface of the admission service: serve, client, loadgen --socket."""

import json
import os
import threading
import time

import pytest

from repro.experiments.cli import main
from repro.workload.trace import TraceEvent, write_trace


class ServeThread:
    """``repro-ubac serve`` running in a daemon thread (the
    ``--serve-seconds`` test hook drains it after a fixed budget)."""

    def __init__(self, argv):
        self.argv = argv
        self.rc = None
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _run(self):
        self.rc = main(self.argv)

    def wait_for_socket(self, sock, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if os.path.exists(sock):
                return
            time.sleep(0.02)
        raise AssertionError(f"socket {sock} never appeared")

    def join(self, timeout=60.0):
        self.thread.join(timeout)
        assert not self.thread.is_alive()
        return self.rc


@pytest.fixture()
def served(tmp_path):
    sock = str(tmp_path / "s.sock")
    snap = str(tmp_path / "snap.json")
    server = ServeThread(
        [
            "serve",
            "--socket",
            sock,
            "--snapshot",
            snap,
            "--max-delay-ms",
            "1",
            "--serve-seconds",
            "20",
        ]
    )
    server.wait_for_socket(sock)
    yield sock, snap, server


def last_json(out):
    """Last JSON line in captured output (the serve thread may
    interleave its own status prints)."""
    lines = [l for l in out.strip().splitlines() if l.startswith("{")]
    return json.loads(lines[-1])


def test_serve_client_roundtrip(served, capsys):
    sock, snap, _server = served
    assert (
        main(["client", "health", "--socket", sock]) == 0
    )
    health = last_json(capsys.readouterr().out)
    assert health["status"] == "ok"

    assert (
        main(
            [
                "client",
                "admit",
                "--socket",
                sock,
                "--flow-id",
                "cli-f1",
                "--src",
                "Seattle",
                "--dst",
                "Princeton",
            ]
        )
        == 0
    )
    decision = last_json(capsys.readouterr().out)
    assert decision["admitted"] is True

    assert main(["client", "query", "--socket", sock, "--flow-id", "cli-f1"]) == 0
    assert last_json(capsys.readouterr().out)["established"] is True

    assert main(["client", "snapshot", "--socket", sock]) == 0
    assert last_json(capsys.readouterr().out)["flows"] == 1
    assert os.path.exists(snap)

    assert main(["client", "release", "--socket", sock, "--flow-id", "cli-f1"]) == 0
    assert last_json(capsys.readouterr().out)["released"] is True

    assert main(["client", "stats", "--socket", sock]) == 0
    stats = last_json(capsys.readouterr().out)
    assert stats["established"] == 0
    assert stats["requests"] >= 5


def test_loadgen_drives_the_service(served, capsys):
    sock, _snap, _server = served
    assert (
        main(
            [
                "loadgen",
                "--socket",
                sock,
                "--flows",
                "500",
                "--batch-size",
                "128",
                "--seed",
                "11",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "admission service at" in out
    assert "0 errors" in out
    assert "ops/s over the wire" in out


def test_loadgen_replays_a_trace_at_the_service(
    served, tmp_path, capsys
):
    sock, _snap, _server = served
    trace = str(tmp_path / "trace.jsonl")
    events = [
        TraceEvent(
            float(i), "arrival", f"t{i}", "voice", "Seattle", "Princeton"
        )
        for i in range(5)
    ] + [TraceEvent(9.0, "departure", "t0")]
    write_trace(trace, events, meta={})
    assert (
        main(["loadgen", "--socket", sock, "--replay", trace]) == 0
    )
    out = capsys.readouterr().out
    assert "replaying 6 events" in out
    assert "5 admitted" in out
    assert "1 released" in out


def test_client_argument_validation(tmp_path, capsys):
    # Exactly one of --target/--socket.
    with pytest.raises(SystemExit):
        main(["client", "health"])
    with pytest.raises(SystemExit):
        main(
            [
                "client",
                "health",
                "--socket",
                "x",
                "--target",
                "localhost:1",
            ]
        )
    with pytest.raises(SystemExit):
        main(["loadgen", "--target", "not-a-target", "--flows", "1"])


def test_client_requires_flow_id_for_query(served, capsys):
    sock, _snap, _server = served
    assert main(["client", "query", "--socket", sock]) == 2
    assert "FAILURE" in capsys.readouterr().out
    assert main(["client", "admit", "--socket", sock]) == 2
    assert "FAILURE" in capsys.readouterr().out


def test_client_connect_failure(tmp_path, capsys):
    rc = main(
        ["client", "health", "--socket", str(tmp_path / "nope.sock")]
    )
    assert rc == 1
    assert "FAILURE" in capsys.readouterr().out


def test_serve_requires_a_listener(capsys):
    assert main(["serve"]) == 2
    assert "FAILURE" in capsys.readouterr().out


def test_serve_rejects_bad_watermarks(capsys):
    assert (
        main(
            [
                "serve",
                "--socket",
                "/tmp/unused.sock",
                "--high-water",
                "1",
                "--low-water",
                "2",
            ]
        )
        == 2
    )
    assert "FAILURE" in capsys.readouterr().out


def test_serve_seconds_drains_cleanly(tmp_path, capsys):
    sock = str(tmp_path / "quick.sock")
    rc = main(
        ["serve", "--socket", sock, "--serve-seconds", "0.3"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "listening on" in out
    assert "drained after" in out
