"""Event queue semantics."""

import pytest

from repro.errors import SimulationError
from repro.simulation import EventQueue


def test_time_ordering():
    q = EventQueue()
    q.push(3.0, "c")
    q.push(1.0, "a")
    q.push(2.0, "b")
    kinds = [q.pop()[2] for _ in range(3)]
    assert kinds == ["a", "b", "c"]


def test_tie_break_is_insertion_order():
    q = EventQueue()
    q.push(1.0, "first")
    q.push(1.0, "second")
    q.push(1.0, "third")
    kinds = [q.pop()[2] for _ in range(3)]
    assert kinds == ["first", "second", "third"]


def test_payload_roundtrip():
    q = EventQueue()
    payload = {"x": 1}
    q.push(0.5, "evt", payload)
    time, _, kind, got = q.pop()
    assert time == 0.5 and kind == "evt" and got is payload


def test_unorderable_payloads_ok():
    q = EventQueue()
    q.push(1.0, "a", object())
    q.push(1.0, "b", object())  # would raise if heap compared payloads
    assert q.pop()[2] == "a"


def test_len_and_bool():
    q = EventQueue()
    assert not q and len(q) == 0
    q.push(1.0, "a")
    assert q and len(q) == 1


def test_peek_time():
    q = EventQueue()
    assert q.peek_time() is None
    q.push(2.5, "a")
    assert q.peek_time() == 2.5
    q.pop()
    assert q.peek_time() is None


def test_pop_empty_raises():
    with pytest.raises(SimulationError):
        EventQueue().pop()


def test_scheduling_into_past_rejected():
    q = EventQueue()
    q.push(5.0, "a")
    q.pop()
    with pytest.raises(SimulationError):
        q.push(4.0, "late")
    q.push(5.0, "same-time-ok")
