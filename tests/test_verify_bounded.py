"""Bounded machine-checking of the admission safety argument.

Everything here runs on the exhaustive backend (the real controller
and the real batch kernel) — no solver required.  The z3 twin of this
suite is ``tests/test_verify_smt.py``.
"""

import os

import pytest

from repro.errors import VerificationError
from repro.verify import (
    MUTANTS,
    Counterexample,
    VerifyBound,
    Z3_PIN,
    build_chain_controller,
    build_verify_report,
    exhaustive_batch_equivalence,
    exhaustive_no_overcommit,
    load_verify_report,
    replay_batch_equivalence,
    replay_no_overcommit,
    run_verify,
    sequential_slot_decisions,
    simulate_sequential,
    validate_verify_report,
    write_verify_report,
)
from repro.verify.smt import HAVE_Z3, require_z3

SMALL = VerifyBound(flows=2, servers=2, max_capacity=1)


class TestVerifyBound:
    def test_defaults_match_the_ci_bound(self):
        bound = VerifyBound()
        assert (bound.flows, bound.servers, bound.max_capacity) == (
            3, 2, 2,
        )
        assert bound.intervals == bound.flows

    def test_interval_routes_enumerates_all_contiguous_spans(self):
        routes = VerifyBound(servers=3).interval_routes()
        assert routes == [
            (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
        ]

    def test_to_dict_round_trips_through_report_validation(self):
        d = SMALL.to_dict()
        assert d["intervals"] == d["flows"]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"flows": 0},
            {"flows": 7},
            {"servers": 0},
            {"servers": 5},
            {"max_capacity": -1},
            {"max_capacity": 5},
        ],
    )
    def test_guard_rails(self, kwargs):
        with pytest.raises(VerificationError):
            VerifyBound(**kwargs)


class TestSequentialModel:
    def test_strict_rule_never_overcommits(self):
        verdicts, violations = simulate_sequential(
            [1, 1], [(0, 2), (0, 2), (0, 1)], [None, None, None]
        )
        assert verdicts == [True, False, False]
        assert violations == []

    def test_release_frees_the_slot(self):
        verdicts, violations = simulate_sequential(
            [1, 1], [(0, 2), (0, 2)], [1, None]
        )
        # Flow 0 departs right before arrival 1 is decided.
        assert verdicts == [True, True]
        assert violations == []

    def test_admit_on_full_mutant_violates(self):
        verdicts, violations = simulate_sequential(
            [0], [(0, 1)], [None], admit_on_full=True
        )
        assert verdicts == [True]
        assert violations == [(0, 0, 1, 0)]

    def test_slot_decisions_respect_negative_free(self):
        # Degraded ledgers can go negative; nothing may be admitted
        # through such a server.
        assert sequential_slot_decisions([(0, 1), (1, 2)], [-1, 1]) == [
            False, True,
        ]


class TestChainController:
    def test_real_controller_matches_the_model(self):
        capacities = (1, 2)
        routes = ((0, 2), (0, 2), (1, 2))
        expected, _ = simulate_sequential(
            capacities, routes, (None, None, None)
        )
        controller = build_chain_controller(2, capacities)
        from repro.traffic.flows import FlowSpec

        got = []
        for i, (lo, hi) in enumerate(routes):
            path = tuple(f"r{s}" for s in range(lo, hi + 1))
            decision = controller.admit(FlowSpec(
                flow_id=f"m{i}", class_name="voice",
                source=path[0], destination=path[-1], route=path,
            ))
            got.append(decision.admitted)
        assert got == expected
        assert controller.verify_invariants() == []


class TestExhaustiveBackend:
    def test_no_overcommit_passes_and_counts_instances(self):
        result = exhaustive_no_overcommit(SMALL)
        assert result.name == "no_overcommit"
        assert result.backend == "exhaustive"
        assert result.status == "passed"
        assert result.counterexample is None
        assert result.instances > 0

    def test_batch_equivalence_passes(self):
        result = exhaustive_batch_equivalence(SMALL)
        assert result.status == "passed"
        assert result.counterexample is None

    def test_admit_on_full_mutant_is_caught_and_replays(self):
        result = exhaustive_no_overcommit(SMALL, admit_on_full=True)
        assert result.status == "violated"
        cx = result.counterexample
        assert cx is not None
        replay = replay_no_overcommit(cx, admit_on_full=True)
        assert replay["reproduced"]
        assert replay["model_violations"]
        # The real controller replays the same trace clean: the bug
        # lives in the mutant rule, not in the shipped code.
        assert replay["controller_overcommits"] == []
        assert replay["controller_invariant_problems"] == []

    @pytest.mark.parametrize("mutant", sorted(MUTANTS))
    def test_kernel_mutants_split_from_sequential(self, mutant):
        result = exhaustive_batch_equivalence(
            SMALL, kernel=MUTANTS[mutant]
        )
        assert result.status == "violated"
        cx = result.counterexample
        assert cx is not None
        assert replay_batch_equivalence(
            cx, kernel=MUTANTS[mutant]
        )["diverged"]
        # The real kernel agrees with the sequential reference on the
        # very same instance.
        assert not replay_batch_equivalence(cx)["diverged"]

    def test_unfalsifiable_bound_is_an_error(self):
        # A single one-request batch cannot distinguish the
        # contention-blind kernel from the sequential loop; the
        # verifier must refuse to claim falsification.
        tiny = VerifyBound(flows=1, servers=1, max_capacity=1)
        with pytest.raises(VerificationError, match="bound"):
            exhaustive_batch_equivalence(
                tiny, kernel=MUTANTS["ignore_contention"]
            )


class TestCounterexample:
    def cx(self):
        return exhaustive_no_overcommit(
            SMALL, admit_on_full=True
        ).counterexample

    def test_dict_round_trip(self):
        cx = self.cx()
        again = Counterexample.from_dict(cx.to_dict())
        assert again == cx

    def test_trace_events_are_replayable(self):
        from repro.workload import validate_adversarial_events

        events = self.cx().to_trace_events()
        validate_adversarial_events(events)
        arrivals = [e for e in events if e.kind == "arrival"]
        assert [e.time for e in arrivals] == [
            float(i + 1) for i in range(len(arrivals))
        ]
        assert all(e.route is not None for e in arrivals)


class TestRunner:
    def test_auto_backend_resolution(self):
        report, results = run_verify(SMALL, backend="auto")
        expected = "z3" if HAVE_Z3 else "exhaustive"
        assert report["backend"] == expected
        assert report["ok"] is True
        assert {r.name for r in results} == {
            "no_overcommit", "batch_equivalence",
        }

    def test_report_file_round_trip(self, tmp_path):
        report, _results = run_verify(SMALL, backend="exhaustive")
        path = str(tmp_path / "report.json")
        write_verify_report(path, report)
        loaded = load_verify_report(path)
        validate_verify_report(loaded)
        assert loaded == report

    def test_mutant_run_reports_ok_when_caught(self):
        report, results = run_verify(
            SMALL, backend="exhaustive", mutant="admit_on_full"
        )
        assert report["ok"] is True
        assert all(r.status == "violated" for r in results)

    def test_ignore_contention_skips_the_overcommit_check(self):
        _report, results = run_verify(
            SMALL, backend="exhaustive", mutant="ignore_contention"
        )
        assert [r.name for r in results] == ["batch_equivalence"]

    def test_unknown_inputs_rejected(self):
        with pytest.raises(VerificationError):
            run_verify(SMALL, backend="cvc5")
        with pytest.raises(VerificationError):
            run_verify(SMALL, checks=("nonsense",))
        with pytest.raises(VerificationError):
            run_verify(SMALL, checks=())
        with pytest.raises(VerificationError):
            run_verify(SMALL, mutant="off_by_two")

    def test_z3_backend_requires_the_solver(self):
        if HAVE_Z3:
            pytest.skip("z3 installed; the guard cannot fire")
        with pytest.raises(VerificationError, match="repro\\[smt\\]"):
            run_verify(SMALL, backend="z3")
        with pytest.raises(VerificationError):
            require_z3()


class TestReportValidation:
    def report(self):
        report, _ = run_verify(SMALL, backend="exhaustive")
        return report

    def test_tampered_schema_rejected(self):
        report = self.report()
        report["schema"] = "repro-verify-report/v0"
        with pytest.raises(VerificationError, match="schema"):
            validate_verify_report(report)

    def test_contradictory_ok_flag_rejected(self):
        report = self.report()
        report["ok"] = False
        with pytest.raises(VerificationError, match="ok"):
            validate_verify_report(report)

    def test_violated_check_without_counterexample_rejected(self):
        report, _ = run_verify(
            SMALL, backend="exhaustive", mutant="admit_on_full"
        )
        report["checks"][0]["counterexample"] = None
        with pytest.raises(VerificationError, match="counterexample"):
            validate_verify_report(report)

    def test_truncated_report_rejected(self):
        report = self.report()
        report["checks"] = []
        with pytest.raises(VerificationError):
            validate_verify_report(report)

    def test_empty_results_rejected(self):
        with pytest.raises(VerificationError):
            build_verify_report(SMALL, [], backend="exhaustive")


def test_z3_pin_matches_the_packaging_extra():
    """The CI job, the `smt` extra, and `Z3_PIN` must agree."""
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    with open(os.path.join(root, "pyproject.toml")) as fh:
        pyproject = fh.read()
    assert f'z3-solver=={Z3_PIN}' in pyproject
    with open(
        os.path.join(root, ".github", "workflows", "ci.yml")
    ) as fh:
        workflow = fh.read()
    assert f"z3-solver=={Z3_PIN}" in workflow
