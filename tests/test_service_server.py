"""In-process tests for the asyncio admission server.

Covers the protocol-hardening surface (malformed JSON, unknown op,
duplicate request id, oversized frame, mid-request disconnect — each
must produce a structured error or a clean close without wedging the
coalescer), backpressure shedding with hysteresis, graceful drain, and
snapshot/restore over the wire.
"""

import asyncio
import json
import os

import pytest

from repro.admission import UtilizationAdmissionController
from repro.errors import ServiceError
from repro.routing.shortest import shortest_path_routes
from repro.service import (
    AdmissionService,
    AsyncServiceClient,
    ServiceConfig,
    SnapshotStore,
    protocol,
    service_snapshot,
)
from repro.topology import LinkServerGraph, line_network
from repro.traffic import ClassRegistry, voice_class
from repro.traffic.flows import FlowSpec
from repro.traffic.generators import all_ordered_pairs


def make_controller(alpha=0.3):
    network = line_network(4)
    graph = LinkServerGraph(network)
    voice = voice_class()
    registry = ClassRegistry.two_class(voice)
    pairs = all_ordered_pairs(network)
    routes = shortest_path_routes(network, pairs)
    return UtilizationAdmissionController(
        graph, registry, {voice.name: alpha}, routes
    )


def flow_obj(i, src="r0", dst="r3"):
    return {"id": f"f{i}", "cls": "voice", "src": src, "dst": dst}


async def start_service(tmp_path, name="s.sock", **config_kwargs):
    service = AdmissionService(
        make_controller(config_kwargs.pop("alpha", 0.3)),
        ServiceConfig(**config_kwargs),
    )
    sock = str(tmp_path / name)
    await service.start_unix(sock)
    return service, sock


async def raw_connection(sock):
    return await asyncio.open_unix_connection(sock)


async def rpc(reader, writer, obj_or_bytes):
    """Send one frame (object or raw bytes) and read one response."""
    if isinstance(obj_or_bytes, bytes):
        writer.write(obj_or_bytes)
    else:
        writer.write(protocol.encode_frame(obj_or_bytes))
    await writer.drain()
    line = await asyncio.wait_for(reader.readline(), 10)
    assert line.endswith(b"\n")
    return json.loads(line)


class TestProtocolHardening:
    def test_malformed_json_yields_structured_error(self, tmp_path):
        async def scenario():
            service, sock = await start_service(tmp_path)
            reader, writer = await raw_connection(sock)
            resp = await rpc(reader, writer, b"{not json}\n")
            assert resp["ok"] is False
            assert resp["id"] is None
            assert resp["error"]["code"] == "bad_request"
            # The connection (and the coalescer behind it) still works.
            resp = await rpc(
                reader, writer, {"id": 1, "op": "admit", "flow": flow_obj(1)}
            )
            assert resp["ok"] is True and resp["result"]["admitted"]
            writer.close()
            await service.drain()

        asyncio.run(scenario())

    def test_unknown_op_echoes_the_request_id(self, tmp_path):
        async def scenario():
            service, sock = await start_service(tmp_path)
            reader, writer = await raw_connection(sock)
            resp = await rpc(reader, writer, {"id": "r9", "op": "explode"})
            assert resp == {
                "id": "r9",
                "ok": False,
                "error": resp["error"],
            }
            assert resp["error"]["code"] == "unknown_op"
            writer.close()
            await service.drain()

        asyncio.run(scenario())

    def test_duplicate_inflight_request_id_is_rejected(self, tmp_path):
        async def scenario():
            service, sock = await start_service(tmp_path)
            reader, writer = await raw_connection(sock)
            # Hold the first request in flight so the duplicate is
            # detectable deterministically.
            service.coalescer.pause()
            writer.write(
                protocol.encode_frame(
                    {"id": 5, "op": "admit", "flow": flow_obj(1)}
                )
            )
            resp = await rpc(
                reader, writer, {"id": 5, "op": "admit", "flow": flow_obj(2)}
            )
            assert resp["ok"] is False
            assert resp["error"]["code"] == "duplicate_id"
            assert resp["id"] == 5
            service.coalescer.resume()
            line = await asyncio.wait_for(reader.readline(), 10)
            first = json.loads(line)
            assert first["id"] == 5 and first["ok"] is True
            # After completion the id is free again.
            resp = await rpc(
                reader, writer, {"id": 5, "op": "admit", "flow": flow_obj(3)}
            )
            assert resp["ok"] is True
            writer.close()
            await service.drain()

        asyncio.run(scenario())

    def test_oversized_frame_errors_and_closes_cleanly(self, tmp_path):
        async def scenario():
            service, sock = await start_service(
                tmp_path, max_frame_bytes=512
            )
            reader, writer = await raw_connection(sock)
            frame = (
                b'{"id":1,"op":"admit","pad":"' + b"x" * 2048 + b'"}\n'
            )
            resp = await rpc(reader, writer, frame)
            assert resp["ok"] is False
            assert resp["error"]["code"] == "frame_too_large"
            # Clean close: EOF, not a hang or a reset mid-frame.
            rest = await asyncio.wait_for(reader.read(), 10)
            assert rest == b""
            writer.close()
            # The server survives and takes new connections.
            reader2, writer2 = await raw_connection(sock)
            resp = await rpc(reader2, writer2, {"id": 1, "op": "health"})
            assert resp["ok"] is True
            writer2.close()
            await service.drain()

        asyncio.run(scenario())

    def test_mid_request_disconnect_does_not_wedge(self, tmp_path):
        async def scenario():
            service, sock = await start_service(tmp_path)
            # Half a frame, then vanish.
            _reader, writer = await raw_connection(sock)
            writer.write(b'{"id":1,"op":"adm')
            await writer.drain()
            writer.close()
            # A full frame whose response has nowhere to go: the
            # decision must still commit.
            _reader2, writer2 = await raw_connection(sock)
            writer2.write(
                protocol.encode_frame(
                    {"id": 1, "op": "admit", "flow": flow_obj(7)}
                )
            )
            await writer2.drain()
            writer2.close()
            await asyncio.sleep(0.05)
            await service.coalescer.flush()
            # Fresh connection: the coalescer is alive and the
            # orphaned admit was committed.
            reader3, writer3 = await raw_connection(sock)
            resp = await rpc(
                reader3, writer3, {"id": 1, "op": "query", "flow_id": "f7"}
            )
            assert resp["ok"] is True
            assert resp["result"]["established"] is True
            writer3.close()
            await service.drain()

        asyncio.run(scenario())

    @pytest.mark.parametrize(
        "frame,code",
        [
            ({"id": 1, "op": "query"}, "bad_request"),
            ({"id": 1, "op": "release"}, "bad_request"),
            ({"id": 1, "op": "admit"}, "bad_request"),
            ({"id": 1, "op": "admit", "flow": "nope"}, "bad_request"),
            ({"id": 1, "op": "batch"}, "bad_request"),
            ({"id": 1, "op": "batch", "ops": 7}, "bad_request"),
            # Unhashable / non-scalar flow ids must be rejected at the
            # wire, never reach the controller's ledger lookups.
            ({"id": 1, "op": "query", "flow_id": ["x"]}, "bad_request"),
            ({"id": 1, "op": "query", "flow_id": None}, "bad_request"),
            ({"id": 1, "op": "release", "flow_id": ["x"]}, "bad_request"),
            ({"id": 1, "op": "release", "flow_id": True}, "bad_request"),
            ({"id": 1, "op": "release", "flow_id": 1.5}, "bad_request"),
            (
                {
                    "id": 1,
                    "op": "admit",
                    "flow": {
                        "id": ["f"],
                        "cls": "voice",
                        "src": "r0",
                        "dst": "r3",
                    },
                },
                "bad_request",
            ),
        ],
    )
    def test_body_validation_errors_carry_the_id(
        self, tmp_path, frame, code
    ):
        async def scenario():
            service, sock = await start_service(tmp_path)
            reader, writer = await raw_connection(sock)
            resp = await rpc(reader, writer, frame)
            assert resp["ok"] is False
            assert resp["id"] == 1
            assert resp["error"]["code"] == code
            writer.close()
            await service.drain()

        asyncio.run(scenario())

    def test_unhashable_flow_id_does_not_wedge_the_coalescer(
        self, tmp_path
    ):
        async def scenario():
            service, sock = await start_service(tmp_path)
            reader, writer = await raw_connection(sock)
            # Historically this frame raised TypeError inside the
            # coalescer's drain loop, killing it permanently: every
            # queued and future request would hang.
            resp = await rpc(
                reader, writer, {"id": 1, "op": "release", "flow_id": ["x"]}
            )
            assert resp["ok"] is False
            assert resp["error"]["code"] == "bad_request"
            # Same poison via a batch sub-op keeps its slot as an
            # inline error while the well-formed sibling proceeds.
            resp = await rpc(
                reader,
                writer,
                {
                    "id": 2,
                    "op": "batch",
                    "ops": [
                        {"op": "release", "flow_id": {"k": 1}},
                        {"op": "admit", "flow": flow_obj(1)},
                    ],
                },
            )
            assert resp["ok"] is True
            results = resp["result"]["results"]
            assert not results[0]["ok"]
            assert results[0]["error"]["code"] == "bad_request"
            assert results[1]["ok"] and results[1]["result"]["admitted"]
            # The coalescer is alive and still deciding traffic.
            resp = await rpc(
                reader, writer, {"id": 3, "op": "query", "flow_id": "f1"}
            )
            assert resp["ok"] is True
            assert resp["result"]["established"] is True
            writer.close()
            await service.drain()

        asyncio.run(scenario())

    def test_batch_with_malformed_subops_keeps_slots(self, tmp_path):
        async def scenario():
            service, sock = await start_service(tmp_path)
            reader, writer = await raw_connection(sock)
            resp = await rpc(
                reader,
                writer,
                {
                    "id": 1,
                    "op": "batch",
                    "ops": [
                        {"op": "admit", "flow": flow_obj(1)},
                        "garbage",
                        {"op": "frobnicate"},
                        {"op": "release", "flow_id": "f1"},
                    ],
                },
            )
            assert resp["ok"] is True
            results = resp["result"]["results"]
            assert len(results) == 4
            assert results[0]["ok"] and results[0]["result"]["admitted"]
            assert not results[1]["ok"]
            assert not results[2]["ok"]
            assert results[3]["ok"] and results[3]["result"]["released"]
            writer.close()
            await service.drain()

        asyncio.run(scenario())


class TestBackpressure:
    def test_shed_past_high_water_resume_at_low_water(self, tmp_path):
        async def scenario():
            service, sock = await start_service(
                tmp_path, high_water=5, low_water=2
            )
            reader, writer = await raw_connection(sock)
            service.coalescer.pause()
            for i in range(5):
                writer.write(
                    protocol.encode_frame(
                        {"id": i, "op": "admit", "flow": flow_obj(i)}
                    )
                )
            await writer.drain()
            # Wait until all five are submitted (pending == 5) so the
            # sixth deterministically crosses the high-water mark.
            for _ in range(200):
                if service.coalescer.pending >= 5:
                    break
                await asyncio.sleep(0.005)
            resp = await rpc(
                reader,
                writer,
                {"id": 99, "op": "admit", "flow": flow_obj(99)},
            )
            assert resp["ok"] is False
            assert resp["error"]["code"] == "overloaded"
            assert service.counts["shed"] == 1
            # Hysteresis: still shedding until pending <= low_water.
            assert service.shedding() is True
            service.coalescer.resume()
            await service.coalescer.flush()
            assert service.shedding() is False
            # The five held admits were decided, never dropped.
            decided = 0
            while decided < 5:
                frame = json.loads(
                    await asyncio.wait_for(reader.readline(), 10)
                )
                if frame["id"] in range(5):
                    assert frame["ok"] is True
                    decided += 1
            # Back under the low-water mark requests flow again.
            resp = await rpc(
                reader,
                writer,
                {"id": 100, "op": "admit", "flow": flow_obj(100)},
            )
            assert resp["ok"] is True
            writer.close()
            await service.drain()

        asyncio.run(scenario())

    def test_overload_responses_are_explicit_not_silent(self, tmp_path):
        async def scenario():
            service, sock = await start_service(
                tmp_path, high_water=1, low_water=0
            )
            reader, writer = await raw_connection(sock)
            service.coalescer.pause()
            writer.write(
                protocol.encode_frame(
                    {"id": 0, "op": "admit", "flow": flow_obj(0)}
                )
            )
            await writer.drain()
            for _ in range(200):
                if service.coalescer.pending >= 1:
                    break
                await asyncio.sleep(0.005)
            # Every extra request gets its own overloaded response.
            for i in range(1, 4):
                resp = await rpc(
                    reader,
                    writer,
                    {"id": i, "op": "admit", "flow": flow_obj(i)},
                )
                assert resp["error"]["code"] == "overloaded"
            assert service.counts["shed"] == 3
            service.coalescer.resume()
            await service.coalescer.flush()
            writer.close()
            await service.drain()

        asyncio.run(scenario())


class TestLifecycleAndSnapshots:
    def test_config_validation(self):
        with pytest.raises(ServiceError):
            ServiceConfig(high_water=1, low_water=2)
        with pytest.raises(ServiceError):
            ServiceConfig(high_water=0)
        with pytest.raises(ServiceError):
            ServiceConfig(snapshot_interval=1.0)  # no path
        with pytest.raises(ServiceError):
            ServiceConfig(
                snapshot_path="x.json", snapshot_interval=0.0
            )

    def test_snapshot_op_without_store_is_unavailable(self, tmp_path):
        async def scenario():
            service, sock = await start_service(tmp_path)
            reader, writer = await raw_connection(sock)
            resp = await rpc(reader, writer, {"id": 1, "op": "snapshot"})
            assert resp["ok"] is False
            assert resp["error"]["code"] == "unavailable"
            writer.close()
            await service.drain()

        asyncio.run(scenario())

    def test_drain_answers_inflight_and_writes_final_snapshot(
        self, tmp_path
    ):
        snap = str(tmp_path / "snap.json")

        async def scenario():
            service, sock = await start_service(
                tmp_path, snapshot_path=snap
            )
            client = await AsyncServiceClient.connect_unix(sock)
            decision = await client.admit(
                FlowSpec("f1", "voice", "r0", "r3")
            )
            assert decision.admitted
            await client.close()
            await service.drain()
            assert service._stopped.is_set()
            # drain() is idempotent.
            await service.drain()
            return service

        service = asyncio.run(scenario())
        assert os.path.exists(snap)
        data = json.load(open(snap))
        assert data["schema"] == "repro-admission-snapshot/v1"
        assert [f["flow_id"] for f in data["flows"]] == ["f1"]

    def test_requests_during_drain_are_unavailable(self, tmp_path):
        async def scenario():
            service, sock = await start_service(tmp_path)
            reader, writer = await raw_connection(sock)
            service._draining = True
            resp = await rpc(
                reader, writer, {"id": 1, "op": "admit", "flow": flow_obj(1)}
            )
            assert resp["error"]["code"] == "unavailable"
            service._draining = False
            writer.close()
            await service.drain()

        asyncio.run(scenario())

    def test_restart_restores_flows_on_pinned_routes(self, tmp_path):
        snap = str(tmp_path / "snap.json")

        async def first_life():
            service, sock = await start_service(
                tmp_path, snapshot_path=snap
            )
            client = await AsyncServiceClient.connect_unix(sock)
            for i in range(10):
                await client.admit(FlowSpec(f"f{i}", "voice", "r0", "r3"))
            await client.snapshot()
            routes = {
                f"f{i}": service.controller.committed_route(f"f{i}")
                for i in range(10)
            }
            await client.close()
            # Crash, not drain: just abandon the process state.
            service._server.close()
            return routes

        async def second_life(routes):
            service, sock = await start_service(
                tmp_path, name="s2.sock", snapshot_path=snap
            )
            assert service.counts["restored"] == 10
            client = await AsyncServiceClient.connect_unix(sock)
            for fid, route in routes.items():
                assert await client.query(fid) is True
                assert service.controller.committed_route(fid) == route
            stats = await client.stats()
            assert stats["established"] == 10
            await client.close()
            await service.drain()

        routes = asyncio.run(first_life())
        asyncio.run(second_life(routes))

    def test_periodic_snapshot_task_writes(self, tmp_path):
        snap = str(tmp_path / "snap.json")

        async def scenario():
            service, sock = await start_service(
                tmp_path,
                snapshot_path=snap,
                snapshot_interval=0.05,
            )
            client = await AsyncServiceClient.connect_unix(sock)
            await client.admit(FlowSpec("f1", "voice", "r0", "r3"))
            for _ in range(100):
                if service.store.writes > 0:
                    break
                await asyncio.sleep(0.02)
            assert service.store.writes > 0
            await client.close()
            await service.drain()

        asyncio.run(scenario())
        data = json.load(open(snap))
        assert [f["flow_id"] for f in data["flows"]] == ["f1"]

    def test_tcp_listener(self, tmp_path):
        async def scenario():
            service = AdmissionService(make_controller())
            await service.start_tcp("127.0.0.1", 0)
            assert service.port
            client = await AsyncServiceClient.connect_tcp(
                "127.0.0.1", service.port
            )
            health = await client.health()
            assert health["status"] == "ok"
            decision = await client.admit(
                FlowSpec("f1", "voice", "r0", "r3")
            )
            assert decision.admitted
            await client.close()
            await service.drain()

        asyncio.run(scenario())

    def test_serve_forever_unblocks_on_drain(self, tmp_path):
        async def scenario():
            service, _sock = await start_service(tmp_path)
            waiter = asyncio.get_running_loop().create_task(
                service.serve_forever()
            )
            await asyncio.sleep(0.01)
            assert not waiter.done()
            await service.drain()
            await asyncio.wait_for(waiter, 10)

        asyncio.run(scenario())

    def test_stats_shape(self, tmp_path):
        async def scenario():
            service, sock = await start_service(tmp_path)
            client = await AsyncServiceClient.connect_unix(sock)
            await client.admit(FlowSpec("f1", "voice", "r0", "r3"))
            await client.release("f1")
            stats = await client.stats()
            await client.close()
            await service.drain()
            return stats

        stats = asyncio.run(scenario())
        assert stats["admitted"] == 1
        assert stats["released"] == 1
        assert stats["requests"] == 3
        assert stats["batches"] >= 1
        assert stats["mean_batch_fill"] >= 1.0
        assert stats["controller"] == "UtilizationAdmissionController"

    def test_snapshot_requires_restorable_controller(self, tmp_path):
        class NoRestore:
            restore = None

        with pytest.raises(ServiceError):
            AdmissionService(
                NoRestore(),
                ServiceConfig(snapshot_path=str(tmp_path / "s.json")),
            )


class TestSnapshotStore:
    def test_empty_path_rejected(self):
        with pytest.raises(ServiceError):
            SnapshotStore("")

    def test_load_missing_returns_none(self, tmp_path):
        store = SnapshotStore(str(tmp_path / "nope.json"))
        assert not store.exists()
        assert store.load() is None
        assert store.restore_into(make_controller()) == 0

    def test_corrupt_json_raises(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text("{truncated")
        with pytest.raises(ServiceError, match="corrupt"):
            SnapshotStore(str(path)).load()

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps({"schema": "other/v9", "flows": []}))
        with pytest.raises(ServiceError, match="schema"):
            SnapshotStore(str(path)).load()
        path.write_text(json.dumps(["not", "an", "object"]))
        with pytest.raises(ServiceError, match="schema"):
            SnapshotStore(str(path)).load()

    def test_write_is_atomic_and_counted(self, tmp_path):
        controller = make_controller()
        controller.admit(FlowSpec("f1", "voice", "r0", "r3"))
        store = SnapshotStore(str(tmp_path / "snap.json"))
        store.write(service_snapshot(controller))
        store.write(service_snapshot(controller))
        assert store.writes == 2
        assert not os.path.exists(store.path + ".tmp")
        restored = SnapshotStore(store.path).restore_into(
            make_controller()
        )
        assert restored == 1

    def test_restore_requires_restore_support(self, tmp_path):
        store = SnapshotStore(str(tmp_path / "snap.json"))
        store.write(service_snapshot(make_controller()))

        class NoRestore:
            restore = None

        with pytest.raises(ServiceError, match="restore"):
            store.restore_into(NoRestore())


class TestProtocolNegotiation:
    """The hello exchange happens before any ordinary request id."""

    def hello_line(self, proposed=protocol.PROTOCOL_SCHEMA_V2):
        return {
            "id": protocol.HELLO_ID,
            "op": protocol.HELLO_OP,
            "protocol": proposed,
        }

    def test_v2_hello_upgrades_and_answers_ok(self, tmp_path):
        async def scenario():
            service, sock = await start_service(tmp_path)
            reader, writer = await raw_connection(sock)
            resp = await rpc(reader, writer, self.hello_line())
            assert resp["ok"] and resp["id"] == protocol.HELLO_ID
            assert (
                resp["result"]["protocol"] == protocol.PROTOCOL_SCHEMA_V2
            )
            # The connection is binary now: a framed stats request
            # round-trips, with id 1 as the first ordinary id.
            frame = protocol.encode_frame_v2({"id": 1, "op": "stats"})
            writer.write(frame)
            await writer.drain()
            header = await reader.readexactly(protocol.FRAME_HEADER_BYTES)
            payload = await reader.readexactly(
                int.from_bytes(header, "big")
            )
            tag, obj = protocol.decode_payload_v2(payload)
            assert tag == protocol.TAG_JSON
            assert obj["id"] == 1 and obj["ok"]
            writer.close()
            await service.stop()

        asyncio.run(scenario())

    def test_v1_hello_is_acknowledged_without_upgrade(self, tmp_path):
        async def scenario():
            service, sock = await start_service(tmp_path)
            reader, writer = await raw_connection(sock)
            resp = await rpc(
                reader, writer, self.hello_line(protocol.PROTOCOL_SCHEMA)
            )
            assert resp["ok"]
            assert resp["result"]["protocol"] == protocol.PROTOCOL_SCHEMA
            # Still newline JSON.
            resp = await rpc(reader, writer, {"id": 1, "op": "health"})
            assert resp["ok"]
            writer.close()
            await service.stop()

        asyncio.run(scenario())

    def test_unsupported_proposal_refused_connection_stays_v1(
        self, tmp_path
    ):
        async def scenario():
            service, sock = await start_service(tmp_path)
            reader, writer = await raw_connection(sock)
            resp = await rpc(
                reader, writer, self.hello_line("repro-admission-rpc/v9")
            )
            assert not resp["ok"]
            assert resp["error"]["code"] == protocol.BAD_REQUEST
            resp = await rpc(reader, writer, {"id": 1, "op": "health"})
            assert resp["ok"]
            writer.close()
            await service.stop()

        asyncio.run(scenario())

    def test_late_hello_is_refused(self, tmp_path):
        async def scenario():
            service, sock = await start_service(tmp_path)
            reader, writer = await raw_connection(sock)
            resp = await rpc(reader, writer, {"id": 1, "op": "health"})
            assert resp["ok"]
            resp = await rpc(reader, writer, self.hello_line())
            assert not resp["ok"]
            assert resp["error"]["code"] == protocol.BAD_REQUEST
            assert "first request" in resp["error"]["message"]
            # And the connection still serves v1.
            resp = await rpc(reader, writer, {"id": 2, "op": "stats"})
            assert resp["ok"]
            writer.close()
            await service.stop()

        asyncio.run(scenario())

    def test_pre_v2_server_answers_hello_with_unknown_op(self, tmp_path):
        async def scenario():
            service, sock = await start_service(
                tmp_path, negotiate_v2=False
            )
            reader, writer = await raw_connection(sock)
            resp = await rpc(reader, writer, self.hello_line())
            assert not resp["ok"]
            assert resp["error"]["code"] == protocol.UNKNOWN_OP
            writer.close()
            await service.stop()

        asyncio.run(scenario())

    def test_v2_client_falls_back_transparently_on_old_server(
        self, tmp_path
    ):
        """Satellite back-compat: a v2-preferring client against a
        pre-v2 server lands on v1 with ordinary ids starting at 1 —
        exactly as if v1 had been requested all along."""

        async def scenario():
            service, sock = await start_service(
                tmp_path, negotiate_v2=False
            )
            client = await AsyncServiceClient.connect_unix(
                sock, protocol="v2"
            )
            assert client.negotiated_protocol == "v1"
            # The hello consumed the reserved id 0 only; the first real
            # request is id 1.
            assert client._next_id == 0
            decision = await client.admit(
                FlowSpec("bc1", "voice", "r0", "r3")
            )
            assert decision.admitted
            assert client._next_id == 1
            assert await client.release("bc1")
            await client.close()
            await service.stop()

        asyncio.run(scenario())

    def test_v2_client_against_v2_server_same_first_request_id(
        self, tmp_path
    ):
        async def scenario():
            service, sock = await start_service(tmp_path)
            client = await AsyncServiceClient.connect_unix(
                sock, protocol="v2"
            )
            assert client.negotiated_protocol == "v2"
            decision = await client.admit(
                FlowSpec("bc2", "voice", "r0", "r3")
            )
            assert decision.admitted
            assert client._next_id == 1
            await client.close()
            await service.stop()

        asyncio.run(scenario())
