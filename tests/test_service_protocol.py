"""Unit tests for the admission-service wire protocol."""

import json

import pytest

from repro.errors import ProtocolError, ReproError, ServiceError
from repro.service import protocol
from repro.traffic.flows import FlowSpec


class TestFraming:
    def test_encode_is_canonical_one_line(self):
        frame = protocol.encode_frame({"b": 1, "a": {"y": 2, "x": 3}})
        assert frame == b'{"a":{"x":3,"y":2},"b":1}\n'

    def test_encode_decode_roundtrip(self):
        obj = {"id": 7, "op": "admit", "flow": {"id": "f1"}}
        assert protocol.decode_frame(protocol.encode_frame(obj)) == obj

    def test_decode_rejects_malformed_json(self):
        with pytest.raises(ProtocolError) as err:
            protocol.decode_frame(b"{nope")
        assert err.value.code == protocol.BAD_REQUEST

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError) as err:
            protocol.decode_frame(b"[1,2,3]")
        assert err.value.code == protocol.BAD_REQUEST

    def test_decode_rejects_oversized_frame(self):
        line = b'{"id":1,"op":"x","pad":"' + b"a" * 64 + b'"}'
        with pytest.raises(ProtocolError) as err:
            protocol.decode_frame(line, max_bytes=32)
        assert err.value.code == protocol.FRAME_TOO_LARGE

    def test_protocol_error_is_a_repro_error(self):
        exc = ProtocolError(protocol.BAD_REQUEST, "x")
        assert isinstance(exc, ServiceError)
        assert isinstance(exc, ReproError)
        assert exc.code == protocol.BAD_REQUEST


class TestParseRequest:
    def test_parses_id_op_and_body(self):
        req = protocol.parse_request(
            b'{"id":"r1","op":"release","flow_id":"f9"}'
        )
        assert req.id == "r1"
        assert req.op == "release"
        assert req.body == {"flow_id": "f9"}

    def test_integer_ids_allowed(self):
        assert protocol.parse_request(b'{"id":12,"op":"health"}').id == 12

    @pytest.mark.parametrize(
        "frame",
        [
            b'{"op":"health"}',  # missing id
            b'{"id":null,"op":"health"}',
            b'{"id":true,"op":"health"}',
            b'{"id":1.5,"op":"health"}',
            b'{"id":[1],"op":"health"}',
        ],
    )
    def test_rejects_bad_ids(self, frame):
        with pytest.raises(ProtocolError) as err:
            protocol.parse_request(frame)
        assert err.value.code == protocol.BAD_REQUEST

    def test_rejects_missing_or_non_string_op(self):
        for frame in (b'{"id":1}', b'{"id":1,"op":7}'):
            with pytest.raises(ProtocolError):
                protocol.parse_request(frame)


class TestFlowConversion:
    def test_roundtrip_without_route(self):
        flow = FlowSpec("f1", "voice", "r0", "r3")
        again = protocol.flow_from_obj(protocol.flow_to_obj(flow))
        assert again == flow

    def test_roundtrip_with_route(self):
        flow = FlowSpec(
            "f1", "voice", "r0", "r3", route=("r0", "r1", "r2", "r3")
        )
        obj = protocol.flow_to_obj(flow)
        assert obj["route"] == ["r0", "r1", "r2", "r3"]
        assert protocol.flow_from_obj(obj) == flow

    def test_wire_objects_are_json_safe(self):
        obj = protocol.flow_to_obj(FlowSpec(3, "voice", "a", "b"))
        assert json.loads(json.dumps(obj)) == obj

    @pytest.mark.parametrize(
        "obj",
        [
            None,
            "flow",
            {"id": "f", "cls": "voice", "src": "a"},  # missing dst
            {"id": "f", "cls": 7, "src": "a", "dst": "b"},
            {"id": "f", "cls": "v", "src": "a", "dst": "b", "route": "ab"},
            {"id": "f", "cls": "v", "src": "a", "dst": "b", "route": ["a"]},
            {"id": [1], "cls": "v", "src": "a", "dst": "b"},
            {"id": None, "cls": "v", "src": "a", "dst": "b"},
            {"id": True, "cls": "v", "src": "a", "dst": "b"},
            {"id": 1.5, "cls": "v", "src": "a", "dst": "b"},
        ],
    )
    def test_rejects_malformed_flow_objects(self, obj):
        with pytest.raises(ProtocolError) as err:
            protocol.flow_from_obj(obj)
        assert err.value.code == protocol.BAD_REQUEST

    def test_bad_flow_values_become_protocol_errors(self):
        # source == destination raises TrafficError in FlowSpec; the
        # protocol layer maps it onto bad_request.
        with pytest.raises(ProtocolError):
            protocol.flow_from_obj(
                {"id": "f", "cls": "v", "src": "a", "dst": "a"}
            )


class TestFlowIdValidation:
    @pytest.mark.parametrize("value", ["f1", "", 0, -3, 10**12])
    def test_accepts_string_and_integer_ids(self, value):
        assert protocol.validate_flow_id(value) == value

    @pytest.mark.parametrize(
        "value", [None, True, False, 1.5, ["x"], {"a": 1}]
    )
    def test_rejects_everything_else(self, value):
        with pytest.raises(ProtocolError) as err:
            protocol.validate_flow_id(value)
        assert err.value.code == protocol.BAD_REQUEST


class TestResponses:
    def test_ok_response_shape(self):
        assert protocol.ok_response(4, {"admitted": True}) == {
            "id": 4,
            "ok": True,
            "result": {"admitted": True},
        }

    def test_error_response_shape(self):
        resp = protocol.error_response(None, protocol.UNKNOWN_OP, "nope")
        assert resp == {
            "id": None,
            "ok": False,
            "error": {"code": "unknown_op", "message": "nope"},
        }

    def test_error_codes_are_unique(self):
        assert len(set(protocol.ERROR_CODES)) == len(protocol.ERROR_CODES)

    def test_ops_cover_the_documented_surface(self):
        assert set(protocol.OPS) == {
            "admit",
            "release",
            "batch",
            "query",
            "snapshot",
            "stats",
            "health",
        }


class TestJsonBackendSeam:
    """The orjson fast path is a drop-in behind one encode/decode seam."""

    def test_backend_is_advertised(self):
        assert protocol.JSON_BACKEND in ("orjson", "json")

    def test_canonical_form_is_backend_independent(self):
        # Sorted keys, no whitespace, one trailing newline — whichever
        # backend is active must produce the identical canonical bytes
        # for plain JSON-native payloads.
        import json as stdlib_json

        objs = [
            {"b": 1, "a": {"y": 2, "x": 3}},
            {"id": 1, "op": "admit", "flow": {"id": "f1", "cls": "voice"}},
            {"id": None, "ok": False, "error": {"code": "internal"}},
            {"n": [1, 2.5, -3], "s": "text", "t": True, "z": None},
        ]
        for obj in objs:
            frame = protocol.encode_frame(obj)
            assert frame.endswith(b"\n")
            assert stdlib_json.loads(frame) == obj
            canonical = stdlib_json.dumps(
                obj, sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
            # orjson emits raw UTF-8 rather than \u-escapes; for the
            # ASCII payloads above the bytes must match exactly.
            assert frame == canonical + b"\n"

    def test_non_ascii_round_trips(self):
        obj = {"id": "flöw-é", "op": "query", "flow_id": "号"}
        assert protocol.decode_frame(protocol.encode_frame(obj)) == obj

    def test_tuple_values_fall_back_to_the_stdlib_encoder(self):
        # orjson cannot serialize tuples; the seam must transparently
        # fall back instead of leaking a TypeError to the server loop.
        frame = protocol.encode_frame({"route": ("a", "b"), "id": 1})
        assert frame == b'{"id":1,"route":["a","b"]}\n'

    def test_decode_errors_stay_protocol_errors(self):
        for bad in (b"{nope", b"\xff\xfe", b"", b"nan"):
            with pytest.raises(ProtocolError) as err:
                protocol.decode_frame(bad)
            assert err.value.code == protocol.BAD_REQUEST
