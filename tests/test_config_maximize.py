"""Binary-search utilization maximization (Section 5.3)."""

import pytest

from repro.analysis import single_class_delays
from repro.config import (
    binary_search_max_alpha,
    max_utilization_heuristic,
    max_utilization_shortest_path,
)
from repro.errors import ConfigurationError, InfeasibleUtilization
from repro.routing import HeuristicOptions
from repro.topology import LinkServerGraph

SUBSET = [
    ("Seattle", "Miami"),
    ("Boston", "Phoenix"),
    ("SanFrancisco", "Orlando"),
    ("NewYork", "LosAngeles"),
    ("Denver", "WashingtonDC"),
    ("Chicago", "Dallas"),
]


class TestBinarySearch:
    def test_converges_to_threshold(self):
        threshold = 0.437

        def oracle(alpha):
            return {"routes": True} if alpha <= threshold else None

        best, routes, evals = binary_search_max_alpha(
            oracle, 0.1, 0.9, resolution=0.001
        )
        assert best == pytest.approx(threshold, abs=0.001)
        assert routes is not None
        assert evals[0] == (0.1, True)

    def test_infeasible_low_raises(self):
        with pytest.raises(InfeasibleUtilization):
            binary_search_max_alpha(lambda a: None, 0.1, 0.9)

    def test_entire_interval_feasible(self):
        best, _, _ = binary_search_max_alpha(
            lambda a: {}, 0.1, 0.9, resolution=0.01
        )
        assert best >= 0.9 - 0.01

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            binary_search_max_alpha(lambda a: {}, 0.5, 0.4)
        with pytest.raises(ConfigurationError):
            binary_search_max_alpha(lambda a: {}, 0.1, 0.9, resolution=0)


class TestShortestPathSearch:
    def test_result_within_bounds(self, mci, voice):
        res = max_utilization_shortest_path(
            mci, SUBSET, voice, resolution=0.01
        )
        assert res.bounds.lower - 1e-9 <= res.alpha <= res.bounds.upper
        assert res.method == "shortest-path"
        assert set(res.routes) == set(SUBSET)

    def test_result_is_certified(self, mci, mci_graph, voice):
        res = max_utilization_shortest_path(
            mci, SUBSET, voice, resolution=0.01
        )
        check = single_class_delays(
            mci_graph, list(res.routes.values()), voice, res.alpha
        )
        assert check.safe

    def test_evaluation_trace_recorded(self, mci, voice):
        res = max_utilization_shortest_path(
            mci, SUBSET, voice, resolution=0.02
        )
        assert res.num_probes >= 3
        assert res.evaluations[0][1]  # the lower bound succeeded


class TestHeuristicSearch:
    def test_beats_shortest_path_on_full_demand(self, mci, mci_pairs, voice):
        """The paper's headline claim at table-level granularity."""
        sp = max_utilization_shortest_path(
            mci, mci_pairs, voice, resolution=0.02
        )
        heur = max_utilization_heuristic(
            mci, mci_pairs, voice, resolution=0.02,
            options=HeuristicOptions(k_candidates=6, detour_slack=1),
        )
        assert heur.alpha > sp.alpha
        assert heur.method == "heuristic"

    def test_certified_on_subset(self, mci, mci_graph, voice):
        res = max_utilization_heuristic(mci, SUBSET, voice, resolution=0.02)
        check = single_class_delays(
            mci_graph, list(res.routes.values()), voice, res.alpha
        )
        assert check.safe
