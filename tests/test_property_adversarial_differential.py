"""Differential property: adversarial traces decide identically everywhere.

For any ``(w, b)``-bounded adversarial trace — burst-packed arrivals on
the hottest links, thundering-herd releases — the admission decisions
must be **bit-identical** through every execution path that claims to
implement the paper's rule over a shared ledger:

* the sequential admit/release loop,
* the vectorized batch kernel (whole bursts per epoch),
* the sharded controller (sequential vs batch against *itself* — its
  per-shard quota partition legitimately differs from the shared
  ledger, so it is compared within its own type), and
* the asyncio service over the wire (micro-batch coalescer included).

Extends the PR 4/5 differential suites with a Hypothesis strategy over
the adversary's parameter space instead of raw op lists.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.admission import (
    ShardedAdmissionController,
    UtilizationAdmissionController,
)
from repro.routing.shortest import shortest_path_routes
from repro.service import AdmissionService, AsyncServiceClient, ServiceConfig
from repro.topology import LinkServerGraph, line_network
from repro.traffic import ClassRegistry, voice_class
from repro.traffic.flows import FlowSpec
from repro.traffic.generators import all_ordered_pairs
from repro.workload import AdversaryModel, adversarial_events

pytestmark = pytest.mark.adversarial

_NETWORK = line_network(4)
_GRAPH = LinkServerGraph(_NETWORK)
_PAIRS_ROUTES = shortest_path_routes(
    _NETWORK, all_ordered_pairs(_NETWORK)
)
_VOICE = voice_class()

# Small alpha so the adversary's bursts actually hit rejections.
_ALPHA = 0.02


def make_controller(kind):
    cls = (
        UtilizationAdmissionController
        if kind == "utilization"
        else ShardedAdmissionController
    )
    return cls(
        _GRAPH,
        ClassRegistry.two_class(_VOICE),
        {_VOICE.name: _ALPHA},
        _PAIRS_ROUTES,
    )


adversary_strategy = st.builds(
    dict,
    num_flows=st.integers(min_value=1, max_value=48),
    burst=st.integers(min_value=1, max_value=12),
    rate=st.sampled_from([8.0, 64.0, 512.0]),
    seed=st.integers(min_value=0, max_value=31),
    churn_fraction=st.sampled_from([0.0, 0.5, 1.0]),
    hot_edges=st.integers(min_value=1, max_value=3),
)


def make_events(params):
    return adversarial_events(
        _GRAPH,
        _PAIRS_ROUTES,
        _VOICE.name,
        num_flows=params["num_flows"],
        model=AdversaryModel(
            rate=params["rate"], burst=params["burst"]
        ),
        seed=params["seed"],
        hot_edges=params["hot_edges"],
        churn_fraction=params["churn_fraction"],
    )


def flow_of(event):
    return FlowSpec(
        flow_id=event.flow_id,
        class_name=event.class_name,
        source=event.source,
        destination=event.destination,
    )


def sequential_decisions(controller, events):
    """{flow_id: admitted} via one admit/release call per event."""
    decisions = {}
    for event in events:
        if event.kind == "arrival":
            decisions[event.flow_id] = controller.admit(
                flow_of(event)
            ).admitted
        elif decisions.get(event.flow_id):
            controller.release(event.flow_id)
    return decisions


def batch_decisions(controller, events):
    """{flow_id: admitted} with each burst as one batch epoch.

    Epochs are the natural adversarial batches: all events sharing a
    timestamp, departures applied first (the replay tie-break), then
    the epoch's arrivals in one ``admit_batch`` call.
    """
    decisions = {}
    epoch = []

    def flush():
        if not epoch:
            return
        for verdict, event in zip(
            controller.admit_batch([flow_of(e) for e in epoch]), epoch
        ):
            decisions[event.flow_id] = verdict.admitted
        epoch.clear()

    current = None
    for event in events:
        if event.time != current:
            flush()
            current = event.time
        if event.kind == "arrival":
            epoch.append(event)
        else:
            flush()
            if decisions.get(event.flow_id):
                controller.release(event.flow_id)
    flush()
    return decisions


def ledger_state(controller):
    return {
        flow.flow_id: (
            flow.class_name,
            tuple(controller.committed_route(flow.flow_id)),
        )
        for flow in controller.established_flows
    }


@settings(deadline=None, max_examples=40)
@given(params=adversary_strategy)
def test_batch_kernel_identical_to_sequential(params):
    events = make_events(params)
    seq = make_controller("utilization")
    bat = make_controller("utilization")
    assert batch_decisions(bat, events) == sequential_decisions(
        seq, events
    )
    assert ledger_state(bat) == ledger_state(seq)


@settings(deadline=None, max_examples=25)
@given(params=adversary_strategy)
def test_sharded_batch_identical_to_sharded_sequential(params):
    events = make_events(params)
    seq = make_controller("sharded")
    bat = make_controller("sharded")
    assert batch_decisions(bat, events) == sequential_decisions(
        seq, events
    )
    assert ledger_state(bat) == ledger_state(seq)
    assert bat.verify_invariants() == []
    assert seq.verify_invariants() == []


@settings(deadline=None, max_examples=10)
@given(params=adversary_strategy)
def test_wire_path_identical_to_in_process(params):
    events = make_events(params)

    async def wire(controller):
        service = AdmissionService(
            controller, ServiceConfig(max_delay=0.005)
        )
        await service.start_tcp("127.0.0.1", 0)
        client = await AsyncServiceClient.connect_tcp(
            "127.0.0.1", service.port
        )
        decisions = {}
        admitted = set()
        for event in events:
            if event.kind == "arrival":
                decision = await client.admit(flow_of(event))
                decisions[event.flow_id] = decision.admitted
                if decision.admitted:
                    admitted.add(event.flow_id)
            elif event.flow_id in admitted:
                await client.release(event.flow_id)
                admitted.discard(event.flow_id)
        await client.close()
        await service.drain()
        return decisions

    wire_controller = make_controller("utilization")
    seq_controller = make_controller("utilization")
    assert asyncio.run(wire(wire_controller)) == sequential_decisions(
        seq_controller, events
    )
    assert ledger_state(wire_controller) == ledger_state(seq_controller)


@settings(deadline=None, max_examples=25)
@given(params=adversary_strategy)
def test_invariants_hold_at_every_burst_boundary(params):
    """The machine-checked invariants survive the worst-case stream."""
    events = make_events(params)
    controller = make_controller("utilization")
    decisions = {}
    prev_time = None
    for event in events:
        if event.time != prev_time:
            assert controller.verify_invariants() == []
            prev_time = event.time
        if event.kind == "arrival":
            decisions[event.flow_id] = controller.admit(
                flow_of(event)
            ).admitted
        elif decisions.get(event.flow_id):
            controller.release(event.flow_id)
    assert controller.verify_invariants() == []
