"""Multi-class safe route selection (Section 5.4 variation)."""

import pytest

from repro.analysis import multi_class_delays, single_class_delays
from repro.errors import RoutingError
from repro.routing import (
    HeuristicOptions,
    MultiClassRouteSelector,
    SafeRouteSelector,
)
from repro.topology import LinkServerGraph
from repro.traffic import ClassRegistry, TrafficClass, video_class, voice_class

VOICE_PAIRS = [
    ("Seattle", "Miami"),
    ("Boston", "Phoenix"),
    ("Chicago", "Dallas"),
]
VIDEO_PAIRS = [
    ("NewYork", "LosAngeles"),
    ("Denver", "WashingtonDC"),
]


@pytest.fixture(scope="module")
def registry():
    return ClassRegistry(
        [voice_class(), video_class(), TrafficClass.best_effort()]
    )


@pytest.fixture(scope="module")
def selector(mci, registry):
    return MultiClassRouteSelector(mci, registry)


ALPHAS = {"voice": 0.10, "video": 0.15}


def test_success_routes_all_classes(selector):
    out = selector.select(
        {"voice": VOICE_PAIRS, "video": VIDEO_PAIRS}, ALPHAS
    )
    assert out.success
    assert set(out.routes["voice"]) == set(VOICE_PAIRS)
    assert set(out.routes["video"]) == set(VIDEO_PAIRS)
    assert out.num_routed == 5
    assert out.verification is not None and out.verification.safe


def test_outcome_is_certified(mci, mci_graph, registry, selector):
    out = selector.select(
        {"voice": VOICE_PAIRS, "video": VIDEO_PAIRS}, ALPHAS
    )
    check = multi_class_delays(
        mci_graph, out.routes_by_class(), registry, ALPHAS
    )
    assert check.safe
    # The selector's final joint fixed point matches the re-verification.
    for name in ("voice", "video"):
        assert check.per_class[name].worst_route_delay == pytest.approx(
            out.verification.per_class[name].worst_route_delay, rel=1e-6
        )


def test_routes_are_valid_paths(mci, selector):
    out = selector.select(
        {"voice": VOICE_PAIRS, "video": VIDEO_PAIRS}, ALPHAS
    )
    for pair_map in out.routes.values():
        for (src, dst), path in pair_map.items():
            assert path[0] == src and path[-1] == dst
            for a, b in zip(path, path[1:]):
                assert mci.has_link(a, b)


def test_classes_can_be_partially_demanded(selector):
    out = selector.select({"voice": VOICE_PAIRS}, ALPHAS)
    assert out.success
    assert out.routes["video"] == {}


def test_failure_reports_class_and_pair(mci):
    # Video with a 2 ms deadline cannot absorb 50% voice interference:
    # every candidate route misses, and the failure names class and pair.
    registry = ClassRegistry([voice_class(), video_class(deadline=0.002)])
    sel = MultiClassRouteSelector(mci, registry)
    out = sel.select(
        {"voice": VOICE_PAIRS, "video": VIDEO_PAIRS},
        {"voice": 0.50, "video": 0.05},
    )
    assert not out.success
    assert out.failed_class == "video"
    assert out.failed_pair in VIDEO_PAIRS
    # The voice routes completed before the failure.
    assert set(out.routes["voice"]) == set(VOICE_PAIRS)


def test_unknown_class_rejected(selector):
    with pytest.raises(RoutingError):
        selector.select({"ghost": VOICE_PAIRS}, ALPHAS)


def test_duplicate_pairs_rejected(selector):
    with pytest.raises(RoutingError):
        selector.select({"voice": [VOICE_PAIRS[0]] * 2}, ALPHAS)


def test_single_class_agrees_with_single_selector(mci, mci_graph):
    """With one real-time class, the multi-class selector must reach the
    same worst-case delay as the Section 5.2 selector (same heuristics,
    Theorem 5 == Theorem 3)."""
    vc = voice_class()
    registry = ClassRegistry.two_class(vc)
    alpha = 0.35
    multi = MultiClassRouteSelector(mci, registry).select(
        {"voice": VOICE_PAIRS}, {"voice": alpha}
    )
    single = SafeRouteSelector(mci, vc).select(VOICE_PAIRS, alpha)
    assert multi.success and single.success
    assert multi.routes["voice"] == single.routes
    assert multi.verification.per_class[
        "voice"
    ].worst_route_delay == pytest.approx(
        single.worst_route_delay, rel=1e-6
    )


def test_higher_priority_protected_from_later_classes(selector, registry,
                                                      mci_graph):
    """Voice routed first stays within deadline after video is added —
    the joint check enforces it."""
    out = selector.select(
        {"voice": VOICE_PAIRS, "video": VIDEO_PAIRS},
        {"voice": 0.05, "video": 0.30},
    )
    assert out.success
    voice_res = out.verification.per_class["voice"]
    assert voice_res.meets_deadline
