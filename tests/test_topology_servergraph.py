"""Link-server expansion."""

import numpy as np
import pytest

from repro.errors import TopologyError, UnknownLinkError
from repro.topology import LinkServerGraph, Network, line_network, star_network


def test_index_roundtrip(line4_graph):
    for i in range(line4_graph.num_servers):
        tail, head = line4_graph.server_key(i)
        assert line4_graph.server_index(tail, head) == i


def test_server_count_two_per_link(line4_graph):
    assert line4_graph.num_servers == 6  # 3 physical links
    assert len(line4_graph) == 6


def test_unknown_link(line4_graph):
    with pytest.raises(UnknownLinkError):
        line4_graph.server_index("r0", "r2")


def test_empty_network_rejected():
    with pytest.raises(TopologyError):
        LinkServerGraph(Network())


def test_capacities_follow_links():
    net = Network()
    for n in "ab":
        net.add_router(n)
    net.add_link("a", "b", capacity=42e6)
    g = LinkServerGraph(net)
    assert g.capacity_of("a", "b") == 42e6
    assert g.capacity_of("b", "a") == 42e6


def test_uniform_capacity_raises_on_heterogeneous():
    net = Network()
    for n in "abc":
        net.add_router(n)
    net.add_link("a", "b", capacity=1e6)
    net.add_link("b", "c", capacity=2e6)
    g = LinkServerGraph(net)
    with pytest.raises(TopologyError):
        g.uniform_capacity()


def test_fan_in_is_tail_degree():
    g = LinkServerGraph(star_network(4))
    hub_out = g.server_index("hub", "leaf0")
    leaf_out = g.server_index("leaf0", "hub")
    assert g.fan_in[hub_out] == 4   # hub has 4 input links
    assert g.fan_in[leaf_out] == 1  # a leaf has only the hub link


def test_count_host_link_option():
    g = LinkServerGraph(star_network(4), count_host_link=True)
    leaf_out = g.server_index("leaf0", "hub")
    assert g.fan_in[leaf_out] == 2  # hub link + host injection


def test_uniform_fan_in_is_max(mci_graph):
    assert mci_graph.uniform_fan_in() == 6


def test_route_translation(line4_graph):
    servers = line4_graph.route_servers(["r0", "r1", "r2", "r3"])
    assert servers.shape == (3,)
    assert line4_graph.server_key(int(servers[0])) == ("r0", "r1")
    assert line4_graph.server_key(int(servers[-1])) == ("r2", "r3")


def test_route_translation_single_node(line4_graph):
    assert line4_graph.route_servers(["r0"]).size == 0


def test_route_translation_invalid_hop(line4_graph):
    with pytest.raises(UnknownLinkError):
        line4_graph.route_servers(["r0", "r2"])


def test_routes_servers_batch(line4_graph):
    routes = line4_graph.routes_servers([["r0", "r1"], ["r1", "r2", "r3"]])
    assert [r.size for r in routes] == [1, 2]


def test_servers_to_route_inverse(line4_graph):
    path = ["r0", "r1", "r2", "r3"]
    servers = line4_graph.route_servers(path)
    assert line4_graph.servers_to_route(servers) == path


def test_servers_to_route_rejects_broken_chain(line4_graph):
    a = line4_graph.server_index("r0", "r1")
    b = line4_graph.server_index("r2", "r3")  # does not chain after r0->r1
    with pytest.raises(TopologyError):
        line4_graph.servers_to_route([a, b])


def test_servers_to_route_rejects_empty(line4_graph):
    with pytest.raises(TopologyError):
        line4_graph.servers_to_route([])


def test_snapshot_semantics(line4):
    g = LinkServerGraph(line4)
    before = g.num_servers
    line4.add_router("extra")
    line4.add_link("r3", "extra")
    assert g.num_servers == before  # expansion is a snapshot
