"""Network (de)serialization."""

import json

import pytest

from repro.errors import TopologyError
from repro.topology import (
    Network,
    dumps,
    loads,
    mci_backbone,
    network_from_dict,
    network_to_dict,
)


def _assert_equivalent(a: Network, b: Network):
    assert a.name == b.name
    assert sorted(map(str, a.routers())) == sorted(map(str, b.routers()))
    a_links = {l.key: l.capacity for l in a.directed_links()}
    b_links = {l.key: l.capacity for l in b.directed_links()}
    assert a_links == b_links
    for name in a.routers():
        assert a.router(name).is_edge == b.router(name).is_edge


def test_roundtrip_mci(mci):
    _assert_equivalent(mci, network_from_dict(network_to_dict(mci)))


def test_roundtrip_json_string(mci):
    _assert_equivalent(mci, loads(dumps(mci)))


def test_dict_schema(mci):
    d = network_to_dict(mci)
    assert set(d) == {"name", "routers", "links"}
    assert len(d["links"]) == mci.num_physical_links  # one entry per link
    json.dumps(d)  # JSON-compatible


def test_core_router_flag_preserved():
    net = Network("x")
    net.add_router("edge")
    net.add_router("core", is_edge=False)
    net.add_link("edge", "core", capacity=5e6)
    back = network_from_dict(network_to_dict(net))
    assert not back.router("core").is_edge
    assert back.capacity("edge", "core") == 5e6


def test_missing_keys_rejected():
    with pytest.raises(TopologyError):
        network_from_dict({"name": "x", "routers": []})


def test_is_edge_defaults_true():
    net = network_from_dict(
        {
            "name": "y",
            "routers": [{"name": "a"}, {"name": "b"}],
            "links": [{"u": "a", "v": "b", "capacity": 1e6}],
        }
    )
    assert net.router("a").is_edge
