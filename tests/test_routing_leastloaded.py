"""Least-loaded routing baseline."""

import numpy as np
import pytest

from repro.analysis import RouteSystem
from repro.errors import RoutingError
from repro.routing import least_loaded_routes, shortest_path_routes
from repro.topology import LinkServerGraph, star_network


def test_all_pairs_routed(mci, mci_pairs):
    routes = least_loaded_routes(mci, mci_pairs)
    assert set(routes) == set(mci_pairs)
    for (src, dst), path in routes.items():
        assert path[0] == src and path[-1] == dst
        for a, b in zip(path, path[1:]):
            assert mci.has_link(a, b)


def test_deterministic(mci, mci_pairs):
    a = least_loaded_routes(mci, mci_pairs)
    b = least_loaded_routes(mci, mci_pairs)
    assert a == b


def test_duplicate_pairs_rejected(mci):
    with pytest.raises(RoutingError):
        least_loaded_routes(mci, [("Seattle", "Miami")] * 2)


def test_balances_better_than_shortest_path(mci, mci_graph, mci_pairs):
    """The defining property: a lower maximum per-server route count."""
    sp = shortest_path_routes(mci, mci_pairs)
    ll = least_loaded_routes(mci, mci_pairs)

    def max_occupancy(route_map):
        system = RouteSystem(
            mci_graph.routes_servers(list(route_map.values())),
            mci_graph.num_servers,
        )
        return int(system.server_route_count().max())

    assert max_occupancy(ll) <= max_occupancy(sp)


def test_spreads_parallel_demand():
    """Two demands sharing the same relay stage spread over relays.

    Shortest-path routing pins both a->t and b->t through the same relay
    (deterministic tie-break); least-loaded routing must split them.
    """
    from repro.topology import Network

    net = Network("parallel")
    for n in ("a", "b", "s", "t", "m1", "m2"):
        net.add_router(n)
    net.add_link("a", "s")
    net.add_link("b", "s")
    for m in ("m1", "m2"):
        net.add_link("s", m)
        net.add_link(m, "t")
    pairs = [("a", "t"), ("b", "t")]
    sp = shortest_path_routes(net, pairs)
    assert sp[pairs[0]][2] == sp[pairs[1]][2]  # SP piles on one relay
    routes = least_loaded_routes(net, pairs, k_candidates=6)
    relays = {routes[p][2] for p in pairs}
    assert relays == {"m1", "m2"}


def test_respects_detour_slack(mci, mci_pairs):
    sp = shortest_path_routes(mci, mci_pairs)
    ll = least_loaded_routes(mci, mci_pairs, detour_slack=1)
    for pair in mci_pairs:
        assert len(ll[pair]) - 1 <= (len(sp[pair]) - 1) + 1


def test_given_order_mode(mci):
    pairs = [("Seattle", "Denver"), ("Boston", "NewYork")]
    routes = least_loaded_routes(mci, pairs, order_by_distance=False)
    assert list(routes) == pairs
