"""Fast paths are result-identical to the reference paths.

This PR added three performance paths to the configuration-time pipeline:

* :class:`GrowableRouteSystem` — incremental push/pop instead of full
  :class:`RouteSystem` rebuilds,
* the scratch-buffer solver in :func:`solve_fixed_point` — zero-allocation
  iterations when handed a :class:`FixedPointWorkspace`,
* warm-started probes in the Section 5.3 binary searches.

None of them is allowed to change a single bit of any result: the
properties below assert **exact** equality (``np.array_equal``, not
``allclose``) between fast and reference paths over random topologies,
route subsets, and utilizations.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    FixedPointWorkspace,
    GrowableRouteSystem,
    RouteSystem,
    solve_fixed_point,
    theorem3_update,
)
from repro.analysis.delays import resolve_fan_in
from repro.config import max_utilization_heuristic, max_utilization_shortest_path
from repro.routing import shortest_path_routes
from repro.topology import LinkServerGraph, analyze, random_network
from repro.traffic import all_ordered_pairs, voice_class


def _server_routes(n, p, seed):
    """Random topology compiled to server-index routes."""
    net = random_network(n, p, seed=seed)
    graph = LinkServerGraph(net)
    pairs = all_ordered_pairs(net)
    paths = list(shortest_path_routes(net, pairs).values())
    return net, graph, graph.routes_servers(paths)


def _solve_reference(routes, graph, alpha, deadline):
    """Fresh immutable build + allocating solver (the reference path)."""
    system = RouteSystem(routes, graph.num_servers)
    voice = voice_class()
    update = theorem3_update(
        system, voice.burst, voice.rate, alpha, resolve_fan_in(graph)
    )
    return solve_fixed_point(system, update, deadlines=deadline)


def _solve_fast(grow, graph, alpha, deadline, workspace):
    """Incremental system + scratch-buffer solver (the fast path)."""
    voice = voice_class()
    update = theorem3_update(
        grow, voice.burst, voice.rate, alpha, resolve_fan_in(graph)
    )
    return solve_fixed_point(
        grow, update, deadlines=deadline, workspace=workspace
    )


def _assert_identical(ref, fast):
    assert np.array_equal(ref.delays, fast.delays)
    assert np.array_equal(ref.route_delays, fast.route_delays)
    assert ref.converged == fast.converged
    assert ref.deadline_violated == fast.deadline_violated
    assert ref.diverged == fast.diverged
    assert ref.iterations == fast.iterations
    assert ref.residual == fast.residual


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=5, max_value=10),
    p=st.floats(min_value=0.3, max_value=0.6),
    seed=st.integers(min_value=0, max_value=10_000),
    alpha=st.floats(min_value=0.05, max_value=0.95),
    keep=st.integers(min_value=1, max_value=10**6),
)
def test_prop_incremental_scratch_bit_identical(n, p, seed, alpha, keep):
    """Incremental append + scratch solve == fresh build + allocating solve,
    bit for bit, on a random prefix of the route set — including after
    push/pop churn on the growable system."""
    net, graph, routes = _server_routes(n, p, seed)
    k = 1 + keep % len(routes)
    deadline = voice_class().deadline

    grow = GrowableRouteSystem(graph.num_servers, occ_capacity=1)
    workspace = FixedPointWorkspace()
    for r in routes[:k]:
        grow.push(r)
    # Trial-style churn: push the next route (if any) and retract it.
    if k < len(routes):
        grow.push(routes[k])
        grow.pop()

    ref = _solve_reference(routes[:k], graph, alpha, deadline)
    fast = _solve_fast(grow, graph, alpha, deadline, workspace)
    _assert_identical(ref, fast)

    # Workspace reuse at a different size must not leak state between
    # solves: drop to a one-route system and compare again.
    ref1 = _solve_reference(routes[:1], graph, alpha, deadline)
    grow1 = GrowableRouteSystem(graph.num_servers, routes[:1])
    fast1 = _solve_fast(grow1, graph, alpha, deadline, workspace)
    _assert_identical(ref1, fast1)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=5, max_value=10),
    p=st.floats(min_value=0.3, max_value=0.6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_prop_with_route_matches_fresh_build(n, p, seed):
    """RouteSystem.with_route's direct concatenation equals a full rebuild;
    GrowableRouteSystem.freeze equals the same rebuild."""
    net, graph, routes = _server_routes(n, p, seed)
    base = RouteSystem(routes[:-1], graph.num_servers)
    appended = base.with_route(routes[-1])
    fresh = RouteSystem(routes, graph.num_servers)
    frozen = GrowableRouteSystem(graph.num_servers, routes).freeze()
    for fast in (appended, frozen):
        assert np.array_equal(fast.occ_server, fresh.occ_server)
        assert np.array_equal(fast.occ_route, fresh.occ_route)
        assert np.array_equal(fast.route_start, fresh.route_start)
        assert np.array_equal(fast.occ_start, fresh.occ_start)
        assert np.array_equal(fast.route_lengths(), fresh.route_lengths())
        assert np.array_equal(fast.touched_servers, fresh.touched_servers)
    d = np.linspace(0.0, 1.0, graph.num_servers)
    assert np.array_equal(appended.route_delays(d), fresh.route_delays(d))
    assert np.array_equal(
        appended.upstream_delays(d), fresh.upstream_delays(d)
    )


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=5, max_value=8),
    p=st.floats(min_value=0.35, max_value=0.6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_prop_warm_search_equals_cold_search(n, p, seed):
    """Warm-started binary-search probes return the same alpha*, the same
    route set, and the same probe trace as cold probes."""
    net = random_network(n, p, seed=seed)
    if analyze(net).max_degree < 2:
        return
    pairs = all_ordered_pairs(net)
    voice = voice_class()

    warm = max_utilization_shortest_path(
        net, pairs, voice, resolution=0.01, warm_probes=True
    )
    cold = max_utilization_shortest_path(
        net, pairs, voice, resolution=0.01, warm_probes=False
    )
    assert warm.alpha == cold.alpha
    assert warm.routes == cold.routes
    assert warm.evaluations == cold.evaluations

    warm_h = max_utilization_heuristic(
        net, pairs, voice, resolution=0.02, warm_probes=True
    )
    cold_h = max_utilization_heuristic(
        net, pairs, voice, resolution=0.02, warm_probes=False
    )
    assert warm_h.alpha == cold_h.alpha
    assert warm_h.routes == cold_h.routes
    assert warm_h.evaluations == cold_h.evaluations
