"""Statistical guarantees extension (Section 7 outlook)."""

import numpy as np
import pytest

from repro.errors import AdmissionError, ConfigurationError, SimulationError
from repro.statistical import (
    DelayDistribution,
    OverbookedAdmissionController,
    calibrate_overbooking,
    estimate_delay_distribution,
)
from repro.routing import shortest_path_routes
from repro.topology import LinkServerGraph, star_network
from repro.traffic import ClassRegistry, FlowSpec, voice_class


@pytest.fixture(scope="module")
def star():
    net = star_network(4)
    return net, LinkServerGraph(net)


def _converging_flows(graph_pair, n_per_branch):
    net, graph = graph_pair
    out = []
    for b in range(3):
        for i in range(n_per_branch):
            flow = FlowSpec(
                f"v{b}_{i}", "voice", f"leaf{b}", "leaf3",
            )
            out.append((flow, [f"leaf{b}", "hub", "leaf3"]))
    return out


class TestDelayDistribution:
    def test_quantile_and_miss(self):
        d = DelayDistribution(
            "voice", np.array([0.001, 0.002, 0.003, 0.004]), 1
        )
        assert d.count == 4
        assert d.max == 0.004
        assert d.quantile(0.5) == pytest.approx(0.0025)
        assert d.miss_probability(0.0025) == pytest.approx(0.5)
        assert d.miss_probability(1.0) == 0.0

    def test_upper_bound_dominates_point_estimate(self):
        d = DelayDistribution("voice", np.linspace(0, 0.01, 200), 1)
        for deadline in (0.002, 0.005, 0.009):
            assert d.miss_probability_upper(deadline) >= d.miss_probability(
                deadline
            )

    def test_zero_misses_rule_of_three(self):
        d = DelayDistribution("voice", np.full(300, 0.001), 1)
        upper = d.miss_probability_upper(0.01, 0.95)
        assert 0 < upper <= 3.0 / 300 * 1.1

    def test_invalid_quantile(self):
        d = DelayDistribution("voice", np.array([1.0]), 1)
        with pytest.raises(ValueError):
            d.quantile(1.5)

    def test_unsupported_confidence(self):
        d = DelayDistribution("voice", np.array([1.0]), 1)
        with pytest.raises(ValueError):
            d.miss_probability_upper(0.5, confidence=0.87)


class TestEstimator:
    def test_deterministic_per_seed(self, star, voice_registry):
        net, graph = star
        flows = _converging_flows(star, 10)
        a = estimate_delay_distribution(
            graph, voice_registry, flows, class_name="voice",
            packet_size=640, horizon=0.3, replications=2, seed=5,
        )
        b = estimate_delay_distribution(
            graph, voice_registry, flows, class_name="voice",
            packet_size=640, horizon=0.3, replications=2, seed=5,
        )
        np.testing.assert_array_equal(a.samples, b.samples)

    def test_pools_over_replications(self, star, voice_registry):
        flows = _converging_flows(star, 5)
        one = estimate_delay_distribution(
            star[1], voice_registry, flows, class_name="voice",
            packet_size=640, horizon=0.3, replications=1, seed=1,
        )
        three = estimate_delay_distribution(
            star[1], voice_registry, flows, class_name="voice",
            packet_size=640, horizon=0.3, replications=3, seed=1,
        )
        assert three.count > one.count
        assert three.replications == 3

    def test_typical_delays_below_worst_case(self, star, voice_registry,
                                             voice):
        """The statistical point: random phasing rarely approaches the
        deterministic worst case."""
        from repro.analysis import single_class_delays

        flows = _converging_flows(star, 40)  # 120 * 32k = 3.84 Mbps
        dist = estimate_delay_distribution(
            star[1], voice_registry, flows, class_name="voice",
            packet_size=640, horizon=0.5, replications=2, seed=2,
        )
        routes = [[f"leaf{b}", "hub", "leaf3"] for b in range(3)]
        bound = single_class_delays(
            star[1], routes, voice, 0.04, n_mode="per_server"
        )
        assert bound.safe
        assert dist.quantile(0.999) < bound.worst_route_delay

    def test_validation(self, star, voice_registry):
        with pytest.raises(SimulationError):
            estimate_delay_distribution(
                star[1], voice_registry, [], class_name="voice",
                packet_size=640,
            )


class TestOverbookedController:
    def test_factor_one_equals_deterministic(self, mci, mci_graph,
                                             voice_registry):
        routes = shortest_path_routes(mci, [("Boston", "NewYork")])
        ctrl = OverbookedAdmissionController(
            mci_graph, voice_registry, {"voice": 0.001024}, routes,
            factor=1.0,
        )
        slots = int(0.001024 * 100e6 / 32_000)
        for i in range(slots):
            assert ctrl.admit(
                FlowSpec(i, "voice", "Boston", "NewYork")
            ).admitted
        assert not ctrl.admit(
            FlowSpec("x", "voice", "Boston", "NewYork")
        ).admitted

    def test_factor_scales_slots(self, mci, mci_graph, voice_registry):
        routes = shortest_path_routes(mci, [("Boston", "NewYork")])
        ctrl = OverbookedAdmissionController(
            mci_graph, voice_registry, {"voice": 0.001024}, routes,
            factor=2.0,
        )
        base = int(0.001024 * 100e6 / 32_000)
        admitted = 0
        for i in range(3 * base):
            if ctrl.admit(
                FlowSpec(i, "voice", "Boston", "NewYork")
            ).admitted:
                admitted += 1
        assert admitted == 2 * base
        np.testing.assert_array_equal(
            ctrl.deterministic_slots("voice"),
            np.full(mci_graph.num_servers, base),
        )

    def test_factor_below_one_rejected(self, mci, mci_graph,
                                       voice_registry):
        routes = shortest_path_routes(mci, [("Boston", "NewYork")])
        with pytest.raises(AdmissionError):
            OverbookedAdmissionController(
                mci_graph, voice_registry, {"voice": 0.3}, routes,
                factor=0.5,
            )


class TestCalibration:
    def test_calibration_on_star(self, star, voice_registry, voice):
        """Poisson voice flows on a hub tolerate heavy overbooking."""
        net, graph = star

        def reference(factor):
            # Deterministic certificate for alpha=0.01: 31 flows/link;
            # scale the converging population with the factor.
            per_branch = max(1, int(31 * factor / 3))
            return _converging_flows(star, per_branch)

        # Note the statistics: with ~1k pooled packets, zero observed
        # misses still only certify ~3/n ≈ 3e-3, so the target must sit
        # above the rule-of-three floor for this sample size.
        result = calibrate_overbooking(
            graph,
            voice_registry,
            class_name="voice",
            deadline=voice.deadline,
            reference_flows=reference,
            target_miss=1e-2,
            packet_size=640,
            factors=(1.0, 2.0, 4.0),
            horizon=0.3,
            replications=2,
            seed=3,
        )
        # Voice at these levels never misses a 100 ms deadline on a
        # 100 Mbps hub: full overbooking range accepted.
        assert result.factor == 4.0
        assert result.extra_capacity == pytest.approx(3.0)
        assert result.distribution is not None
        assert all(u <= 1e-2 for _, _, u in result.evaluations)

    def test_calibration_stops_at_first_failure(self, star,
                                                voice_registry, voice):
        """A tight deadline caps the factor below the scan maximum."""
        net, graph = star

        # Deadline just above the lone-packet transmission time: any
        # queueing at all causes misses once the hub is oversubscribed.
        tight_deadline = 3 * 640 / 100e6 * 1.5

        def reference(factor):
            per_branch = max(1, int(400 * factor))
            return _converging_flows(star, per_branch)

        result = calibrate_overbooking(
            graph,
            voice_registry,
            class_name="voice",
            deadline=tight_deadline,
            reference_flows=reference,
            target_miss=1e-4,
            packet_size=640,
            factors=(1.0, 4.0, 16.0, 64.0),
            horizon=0.2,
            replications=1,
            seed=4,
        )
        assert result.factor < 64.0
        assert len(result.evaluations) < 4 or result.evaluations[-1][2] > 1e-4

    def test_validation(self, star, voice_registry, voice):
        with pytest.raises(ConfigurationError):
            calibrate_overbooking(
                star[1], voice_registry, class_name="voice",
                deadline=voice.deadline,
                reference_flows=lambda f: [], target_miss=0.0,
                packet_size=640,
            )
        with pytest.raises(ConfigurationError):
            calibrate_overbooking(
                star[1], voice_registry, class_name="voice",
                deadline=voice.deadline,
                reference_flows=lambda f: [], target_miss=0.5,
                packet_size=640, factors=(2.0, 1.0),
            )
