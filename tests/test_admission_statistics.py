"""Schedule replay and its statistics."""

import numpy as np
import pytest

from repro.admission import (
    UtilizationAdmissionController,
    replay_schedule,
)
from repro.routing import shortest_path_routes
from repro.traffic import FlowSpec
from repro.traffic.generators import FlowEvent, poisson_flow_schedule


def _events(times_kinds_flows):
    return [FlowEvent(t, k, f) for t, k, f in times_kinds_flows]


@pytest.fixture()
def controller(line4, line4_graph, voice_registry):
    pairs = [(u, v) for u in line4.routers() for v in line4.routers()
             if u != v]
    routes = shortest_path_routes(line4, pairs)
    return UtilizationAdmissionController(
        line4_graph, voice_registry, {"voice": 0.001008}, routes
    )


def _flow(i, src="r0", dst="r3"):
    return FlowSpec(i, "voice", src, dst)


def test_replay_counts(controller):
    flows = [_flow(i) for i in range(5)]
    events = _events(
        [(float(i), "arrival", f) for i, f in enumerate(flows)]
        + [(10.0 + i, "departure", f) for i, f in enumerate(flows)]
    )
    stats = replay_schedule(controller, events)
    # 3 slots: 3 admitted, 2 rejected.
    assert stats.attempts == 5
    assert stats.admitted == 3
    assert stats.rejected == 2
    assert stats.blocking_probability == pytest.approx(0.4)
    assert stats.peak_population == 3
    # After all departures the network is empty again.
    assert controller.num_established == 0


def test_departure_of_rejected_flow_ignored(controller):
    flows = [_flow(i) for i in range(4)]
    events = _events(
        [(float(i), "arrival", f) for i, f in enumerate(flows)]
        + [(9.0, "departure", flows[3])]  # flow 3 was rejected
    )
    stats = replay_schedule(controller, events)  # must not raise
    assert stats.admitted == 3


def test_population_trajectory_monotone_under_arrivals(controller):
    flows = [_flow(i) for i in range(3)]
    events = _events([(float(i), "arrival", f) for i, f in enumerate(flows)])
    stats = replay_schedule(controller, events)
    counts = [c for _, c in stats.population]
    assert counts == [1, 2, 3]


def test_decision_latency_stats(controller):
    events = _events([(0.0, "arrival", _flow(0))])
    stats = replay_schedule(controller, events)
    assert stats.decision_seconds.shape == (1,)
    assert stats.mean_decision_seconds >= 0
    assert stats.p99_decision_seconds >= 0


def test_empty_schedule(controller):
    stats = replay_schedule(controller, [])
    assert stats.attempts == 0
    assert np.isnan(stats.blocking_probability)
    assert np.isnan(stats.mean_decision_seconds)


def test_max_events_budget(controller):
    flows = [_flow(i) for i in range(5)]
    events = _events([(float(i), "arrival", f) for i, f in enumerate(flows)])
    stats = replay_schedule(controller, events, max_events=2)
    assert stats.attempts == 2


def test_replay_poisson_end_to_end(mci, mci_graph, voice_registry):
    """Full dynamic scenario on the MCI network."""
    pairs = [(u, v) for u in mci.routers() for v in mci.routers() if u != v]
    routes = shortest_path_routes(mci, pairs)
    ctrl = UtilizationAdmissionController(
        mci_graph, voice_registry, {"voice": 0.25}, routes
    )
    schedule = poisson_flow_schedule(
        mci, "voice", arrival_rate=20.0, mean_holding=5.0, horizon=10.0,
        seed=42,
    )
    stats = replay_schedule(ctrl, schedule)
    assert stats.attempts > 50
    # alpha=0.25 of 100 Mbps is ~780 slots/link: nothing should block.
    assert stats.rejected == 0
    assert stats.peak_population > 0
