"""Admission/packet co-simulation: the executable end-to-end guarantee."""

import numpy as np
import pytest

from repro.admission import UtilizationAdmissionController
from repro.errors import SimulationError
from repro.routing import shortest_path_routes
from repro.simulation import PacketPattern, Simulator, co_simulate
from repro.topology import LinkServerGraph, line_network, star_network
from repro.traffic import ClassRegistry, FlowSpec, voice_class
from repro.traffic.generators import FlowEvent, poisson_flow_schedule


class TestWindowedSources:
    def test_start_stop_bounds_emissions(self, line4_graph, voice_registry):
        sim = Simulator(line4_graph, voice_registry)
        sim.add_flow(
            FlowSpec("w", "voice", "r0", "r3"),
            ["r0", "r1", "r2", "r3"],
            PacketPattern("periodic", packet_size=640),
            start=0.2,
            stop=0.4,
        )
        report = sim.run(horizon=1.0)
        # 0.2 s of life at 50 packets/s.
        assert report.packets_injected == 10

    def test_lifetime_outside_horizon_is_silent(self, line4_graph,
                                                voice_registry):
        sim = Simulator(line4_graph, voice_registry)
        sim.add_flow(
            FlowSpec("w", "voice", "r0", "r1"),
            ["r0", "r1"],
            PacketPattern("periodic", packet_size=640),
            start=5.0,
        )
        sim.add_flow(
            FlowSpec("v", "voice", "r0", "r1"),
            ["r0", "r1"],
            PacketPattern("periodic", packet_size=640),
        )
        report = sim.run(horizon=1.0)
        worst = report.recorder.per_flow_worst()
        assert "w" not in worst and "v" in worst

    def test_invalid_window(self, line4_graph, voice_registry):
        sim = Simulator(line4_graph, voice_registry)
        with pytest.raises(SimulationError):
            sim.add_flow(
                FlowSpec("w", "voice", "r0", "r1"),
                ["r0", "r1"],
                PacketPattern("periodic", packet_size=640),
                start=-1.0,
            )
        with pytest.raises(SimulationError):
            sim.add_flow(
                FlowSpec("w", "voice", "r0", "r1"),
                ["r0", "r1"],
                PacketPattern("periodic", packet_size=640),
                start=0.5,
                stop=0.5,
            )


@pytest.fixture()
def mci_controller(mci, mci_graph, voice_registry):
    pairs = [(u, v) for u in mci.routers() for v in mci.routers() if u != v]
    routes = shortest_path_routes(mci, pairs)
    return UtilizationAdmissionController(
        mci_graph, voice_registry, {"voice": 0.35}, routes
    )


class TestCoSimulation:
    def test_verified_configuration_never_misses(
        self, mci, mci_graph, voice_registry, mci_controller
    ):
        """The headline property: alpha = 0.35 verified on SP routes =>
        zero deadline misses under dynamic churn."""
        schedule = poisson_flow_schedule(
            mci, "voice", arrival_rate=30.0, mean_holding=3.0,
            horizon=5.0, seed=9,
        )
        result = co_simulate(
            mci_graph,
            voice_registry,
            mci_controller,
            schedule,
            packet_size=640,
            pattern_kind="poisson",
        )
        assert result.flows_simulated > 20
        assert result.packets.conserved
        assert result.guarantees_held
        assert result.deadline_misses == {"voice": 0}

    def test_adversarial_sources_still_hold(
        self, mci, mci_graph, voice_registry, mci_controller
    ):
        schedule = poisson_flow_schedule(
            mci, "voice", arrival_rate=20.0, mean_holding=2.0,
            horizon=3.0, seed=4,
        )
        result = co_simulate(
            mci_graph,
            voice_registry,
            mci_controller,
            schedule,
            packet_size=640,
            pattern_kind="greedy",
        )
        assert result.guarantees_held

    def test_rejected_flows_not_simulated(self, voice_registry):
        """With one slot, the second overlapping flow is rejected and
        contributes no packets."""
        net = line_network(2)
        graph = LinkServerGraph(net)
        routes = {("r0", "r1"): ["r0", "r1"]}
        ctrl = UtilizationAdmissionController(
            graph, voice_registry, {"voice": 0.00034}, routes  # 1 slot
        )
        flows = [FlowSpec(i, "voice", "r0", "r1") for i in range(2)]
        schedule = [
            FlowEvent(0.1, "arrival", flows[0]),
            FlowEvent(0.2, "arrival", flows[1]),
            FlowEvent(2.0, "departure", flows[0]),
            FlowEvent(2.0, "departure", flows[1]),
        ]
        result = co_simulate(
            graph, voice_registry, ctrl, schedule, packet_size=640
        )
        assert result.admission.admitted == 1
        assert result.admission.rejected == 1
        assert result.flows_simulated == 1

    def test_departed_flows_stop_sending(self, voice_registry):
        net = line_network(2)
        graph = LinkServerGraph(net)
        routes = {("r0", "r1"): ["r0", "r1"]}
        ctrl = UtilizationAdmissionController(
            graph, voice_registry, {"voice": 0.3}, routes
        )
        flow = FlowSpec("f", "voice", "r0", "r1")
        schedule = [
            FlowEvent(0.0, "arrival", flow),
            FlowEvent(0.5, "departure", flow),
            FlowEvent(2.0, "arrival",
                      FlowSpec("g", "voice", "r0", "r1")),
        ]
        result = co_simulate(
            graph, voice_registry, ctrl, schedule, packet_size=640,
            pattern_kind="periodic", horizon=2.0,
        )
        # flow f lives 0.5 s at 50 pps = 25 packets; g starts at the
        # horizon and contributes nothing.
        assert result.packets.packets_injected == 25

    def test_empty_schedule_rejected(self, mci_graph, voice_registry,
                                     mci_controller):
        with pytest.raises(SimulationError):
            co_simulate(
                mci_graph, voice_registry, mci_controller, [],
                packet_size=640,
            )
