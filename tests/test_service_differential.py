"""Cross-protocol differential: v1 and v2 are decision-identical.

The binary v2 framing is pure transport: for any op interleaving, a v2
connection must produce exactly the outcomes, ledger state, committed
routes, and audit trail of the same ops over newline-JSON v1 — on a
single server and through a 2-worker sharded cluster front door.
"""

import asyncio
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.admission import SlotShardController
from repro.errors import ReproError
from repro.routing.shortest import shortest_path_routes
from repro.service import AdmissionService, AsyncServiceClient, ServiceConfig
from repro.service.audit import iter_audit, verify_audit
from repro.service.router import ClusterRouter
from repro.topology import LinkServerGraph, line_network
from repro.traffic import ClassRegistry, voice_class
from repro.traffic.flows import FlowSpec
from repro.traffic.generators import all_ordered_pairs

FLOW_IDS = [f"f{i}" for i in range(10)]

_NETWORK = line_network(4)
_PAIRS = all_ordered_pairs(_NETWORK)
_ROUTES = shortest_path_routes(_NETWORK, _PAIRS)
_VOICE = voice_class()
# Tight alpha: sequences hit both admits and utilization rejections.
_ALPHA = 0.005


def make_controller():
    from repro.admission import UtilizationAdmissionController

    return UtilizationAdmissionController(
        LinkServerGraph(_NETWORK),
        ClassRegistry.two_class(_VOICE),
        {_VOICE.name: _ALPHA},
        _ROUTES,
    )


def make_shard(index, count):
    return SlotShardController(
        LinkServerGraph(_NETWORK),
        ClassRegistry.two_class(_VOICE),
        {_VOICE.name: 0.3},
        _ROUTES,
        shard_index=index,
        shard_count=count,
    )


ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("admit"),
            st.sampled_from(FLOW_IDS),
            st.sampled_from(range(len(_PAIRS))),
        ),
        st.tuples(st.just("release"), st.sampled_from(FLOW_IDS)),
    ),
    max_size=30,
)


def flow_of(op):
    _kind, fid, pair_idx = op
    src, dst = _PAIRS[pair_idx]
    return FlowSpec(fid, _VOICE.name, src, dst)


def ledger_state(controller):
    return {
        flow.flow_id: (
            flow.class_name,
            tuple(controller.committed_route(flow.flow_id)),
        )
        for flow in controller.established_flows
    }


async def run_ops(client, ops):
    """Pipeline ``ops`` through one client; outcome tuple per op."""

    async def one(op):
        try:
            if op[0] == "admit":
                decision = await client.admit(flow_of(op))
                return ("decision", decision.admitted, decision.reason)
            await client.release(op[1])
            return ("released",)
        except ReproError as exc:
            return ("error", str(exc))

    return list(await asyncio.gather(*(one(op) for op in ops)))


async def single_server_run(ops, protocol, audit_path=None):
    controller = make_controller()
    config = ServiceConfig(max_delay=0.005, audit_path=audit_path)
    service = AdmissionService(controller, config)
    await service.start_tcp("127.0.0.1", 0)
    client = await AsyncServiceClient.connect_tcp(
        "127.0.0.1", service.port, protocol=protocol
    )
    assert client.negotiated_protocol == protocol
    outcomes = await run_ops(client, ops)
    await client.close()
    await service.drain()
    return outcomes, ledger_state(controller)


@settings(deadline=None, max_examples=20)
@given(ops=ops_strategy)
def test_single_server_v1_v2_identical(ops):
    out_v1, ledger_v1 = asyncio.run(single_server_run(ops, "v1"))
    out_v2, ledger_v2 = asyncio.run(single_server_run(ops, "v2"))
    assert out_v1 == out_v2
    assert ledger_v1 == ledger_v2


def normalized_audit(path):
    """The audit trail minus wall-clock noise (ts differs per run)."""
    records = []
    for obj in iter_audit(path):
        obj = dict(obj)
        obj.pop("ts", None)
        records.append(obj)
    return records


@settings(deadline=None, max_examples=8)
@given(ops=ops_strategy)
def test_audit_trail_identical_across_protocols(ops, tmp_path_factory):
    # An enabled audit log forces the coalescer's queue path, so this
    # differential also covers the non-inline pipeline.
    base = tmp_path_factory.mktemp("audits")
    trails = {}
    for protocol in ("v1", "v2"):
        audit = str(base / f"audit-{protocol}-{len(trails)}.jsonl")
        out, _ledger = asyncio.run(
            single_server_run(ops, protocol, audit_path=audit)
        )
        report = verify_audit(iter_audit(audit))
        assert report["ok"], report["problems"]
        trails[protocol] = (out, normalized_audit(audit))
    assert trails["v1"] == trails["v2"]


# --------------------------------------------------------------------- #
# 2-worker cluster front door
# --------------------------------------------------------------------- #


async def cluster_run(ops, protocol, tmp_path):
    shards = [make_shard(i, 2) for i in range(2)]
    services = [
        AdmissionService(shard, ServiceConfig(max_delay=0.002))
        for shard in shards
    ]
    sockets = []
    for i, service in enumerate(services):
        sock = str(tmp_path / f"worker-{protocol}-{i}.sock")
        await service.start_unix(sock)
        sockets.append(sock)
    router = ClusterRouter(sockets)
    front = str(tmp_path / f"front-{protocol}.sock")
    await router.start_unix(front)
    try:
        client = await AsyncServiceClient.connect_unix(
            front, protocol=protocol
        )
        assert client.negotiated_protocol == protocol
        outcomes = await run_ops(client, ops)
        await client.close()
    finally:
        await router.stop()
        for service in services:
            await service.drain()
    combined = {}
    for shard in shards:
        combined.update(ledger_state(shard))
    return outcomes, combined


def random_trace(seed, n=60):
    rng = random.Random(seed)
    ops = []
    for _ in range(n):
        if rng.random() < 0.7:
            ops.append(
                (
                    "admit",
                    rng.choice(FLOW_IDS),
                    rng.randrange(len(_PAIRS)),
                )
            )
        else:
            ops.append(("release", rng.choice(FLOW_IDS)))
    return ops


@pytest.mark.parametrize("seed", [1, 22, 333])
def test_cluster_v1_v2_identical(seed, tmp_path):
    ops = random_trace(seed)
    out_v1, ledger_v1 = asyncio.run(cluster_run(ops, "v1", tmp_path))
    out_v2, ledger_v2 = asyncio.run(cluster_run(ops, "v2", tmp_path))
    assert out_v1 == out_v2
    assert ledger_v1 == ledger_v2
    # The trace does real work: some admits, and the ledger is split
    # across both shard workers' quotas.
    assert any(o[0] == "decision" and o[1] for o in out_v1)


@pytest.mark.parametrize("protocol", ["v1", "v2"])
def test_cluster_batch_frames_match_single_ops(protocol, tmp_path):
    """One big batch frame through the front door equals op-at-a-time."""
    ops = random_trace(77, n=40)

    async def via_batch():
        shards = [make_shard(i, 2) for i in range(2)]
        services = [
            AdmissionService(shard, ServiceConfig(max_delay=0.002))
            for shard in shards
        ]
        sockets = []
        for i, service in enumerate(services):
            sock = str(tmp_path / f"bw-{protocol}-{i}.sock")
            await service.start_unix(sock)
            sockets.append(sock)
        router = ClusterRouter(sockets)
        front = str(tmp_path / f"bfront-{protocol}.sock")
        await router.start_unix(front)
        try:
            client = await AsyncServiceClient.connect_unix(
                front, protocol=protocol
            )
            wire_ops = []
            for op in ops:
                if op[0] == "admit":
                    flow = flow_of(op)
                    wire_ops.append(
                        {
                            "op": "admit",
                            "flow": {
                                "id": flow.flow_id,
                                "cls": flow.class_name,
                                "src": flow.source,
                                "dst": flow.destination,
                            },
                        }
                    )
                else:
                    wire_ops.append({"op": "release", "flow_id": op[1]})
            results = await client.batch(wire_ops)
            await client.close()
        finally:
            await router.stop()
            for service in services:
                await service.drain()
        outcomes = []
        for result in results:
            if not result["ok"]:
                outcomes.append(("error", result["error"]["message"]))
            elif "admitted" in result["result"]:
                outcomes.append(
                    (
                        "decision",
                        result["result"]["admitted"],
                        result["result"]["reason"],
                    )
                )
            else:
                outcomes.append(("released",))
        return outcomes

    batch_outcomes = asyncio.run(via_batch())
    single_outcomes, _ = asyncio.run(
        cluster_run(ops, protocol, tmp_path)
    )
    assert batch_outcomes == single_outcomes
