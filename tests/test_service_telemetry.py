"""End-to-end service telemetry: wire-propagated tracing, the audit
log feed, the HTTP scrape endpoint, and SLO surfacing.

All in-process: service and client share one event loop *and one
global tracer*, so a single `records()` sweep sees both halves of every
cross-process-shaped span chain.  HTTP scrapes use a raw asyncio
connection — a blocking urllib call inside the loop would deadlock
against the in-process endpoint.
"""

import asyncio
import json

import pytest

from repro import obs
from repro.obs import OBS
from repro.obs.export import parse_prometheus_text
from repro.service import (
    AdmissionService,
    AsyncServiceClient,
    ServiceConfig,
    iter_audit,
    verify_audit,
)
from repro.obs.slo import SLOConfig
from tests.test_service_server import (
    flow_obj,
    make_controller,
    start_service,
)


async def http_get(port, path):
    """Raw HTTP/1.1 GET against the in-process telemetry endpoint."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await asyncio.wait_for(reader.read(), 10)
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, body.decode()


def spans_by_name(name):
    return [r for r in OBS.tracer.records() if r.name == name]


class TestTraceProparation:
    def test_span_chain_links_client_server_and_batch(self, tmp_path):
        obs.enable(fresh=True)

        async def scenario():
            service, sock = await start_service(tmp_path)
            async with await AsyncServiceClient.connect_unix(
                sock
            ) as client:
                for i in range(4):
                    resp = await client.request(
                        "admit", flow=flow_obj(i)
                    )
                    assert resp["admitted"] is True
            await service.drain()

        asyncio.run(scenario())
        client_spans = spans_by_name("client.request")
        server_spans = spans_by_name("service.request")
        batch_spans = spans_by_name("service.batch")
        assert len(client_spans) == 4
        assert len(server_spans) == 4
        assert batch_spans
        client_ids = {s.attrs["span_hex"] for s in client_spans}
        batch_ids = {s.attrs["span_hex"] for s in batch_spans}
        linked_requests = set()
        for span in batch_spans:
            linked_requests.update(
                span.attrs["request_spans"].split(",")
            )
        for span in server_spans:
            # Wire link: the server span's parent is the client span.
            assert span.parent_id in client_ids
            assert span.attrs["trace_id"]
            # Kernel link: the batch span lists this request's own id.
            assert span.attrs["batch_span"] in batch_ids
            assert span.attrs["span_hex"] in linked_requests
            # Per-stage timings decompose the total.
            for stage in (
                "parse_seconds",
                "queue_seconds",
                "execute_seconds",
                "write_seconds",
            ):
                assert span.attrs[stage] >= 0.0
            assert span.attrs["ok"] is True

    def test_malformed_trace_is_served_without_a_parent(self, tmp_path):
        obs.enable(fresh=True)

        async def scenario():
            service, sock = await start_service(tmp_path)
            async with await AsyncServiceClient.connect_unix(
                sock, propagate_trace=False
            ) as client:
                resp = await client.request(
                    "admit",
                    flow=flow_obj(1),
                    trace={"trace_id": "zz", "parent_id": 7},
                )
                assert resp["admitted"] is True
            await service.drain()

        asyncio.run(scenario())
        (span,) = spans_by_name("service.request")
        assert span.parent_id is None
        assert "trace_id" not in span.attrs

    def test_client_does_not_send_trace_when_disabled(self, tmp_path):
        obs.enable(fresh=True)

        async def scenario():
            service, sock = await start_service(tmp_path)
            async with await AsyncServiceClient.connect_unix(
                sock, propagate_trace=False
            ) as client:
                await client.request("admit", flow=flow_obj(1))
            await service.drain()

        asyncio.run(scenario())
        (span,) = spans_by_name("service.request")
        assert span.parent_id is None

    def test_request_histogram_counts_match_requests_served(
        self, tmp_path
    ):
        obs.enable(fresh=True)

        async def scenario():
            service, sock = await start_service(tmp_path)
            async with await AsyncServiceClient.connect_unix(
                sock
            ) as client:
                for i in range(5):
                    await client.request("admit", flow=flow_obj(i))
                stats = await client.stats()
            await service.drain()
            return stats

        stats = asyncio.run(scenario())
        text = obs.prometheus_text()
        samples = parse_prometheus_text(text)
        counted = sum(
            v
            for (name, labels), v in samples.items()
            if name == "repro_service_request_seconds_count"
        )
        # _finish_telemetry runs before the response hits the client,
        # so the stats reply (the last request) is already counted.
        assert counted == stats["requests"] == 6


class TestAuditFeed:
    def test_every_decision_lands_in_the_audit_log(self, tmp_path):
        audit_path = str(tmp_path / "audit.jsonl")
        snap_path = str(tmp_path / "snap.json")

        async def scenario():
            service, sock = await start_service(
                tmp_path,
                audit_path=audit_path,
                audit_fsync_every=1,
                snapshot_path=snap_path,
            )
            async with await AsyncServiceClient.connect_unix(
                sock
            ) as client:
                for i in range(6):
                    await client.request("admit", flow=flow_obj(i))
                await client.release("f0")
                await client.snapshot()
            await service.drain()

        asyncio.run(scenario())
        records = list(iter_audit(audit_path))
        kinds = [r["kind"] for r in records]
        assert kinds.count("restore") == 1  # fresh-boot marker
        assert kinds.count("admit") == 6
        assert kinds.count("release") == 1
        # Explicit snapshot op + final drain snapshot both marked.
        assert kinds.count("snapshot") == 2
        report = verify_audit(records, snapshot=snap_path)
        assert report["ok"], report["problems"]

    def test_restart_continues_the_sequence_verifiably(self, tmp_path):
        audit_path = str(tmp_path / "audit.jsonl")
        snap_path = str(tmp_path / "snap.json")

        async def boot(n0, n1):
            service, sock = await start_service(
                tmp_path,
                audit_path=audit_path,
                audit_fsync_every=1,
                snapshot_path=snap_path,
            )
            async with await AsyncServiceClient.connect_unix(
                sock
            ) as client:
                for i in range(n0, n1):
                    await client.request("admit", flow=flow_obj(i))
            await service.drain()

        asyncio.run(boot(0, 3))
        asyncio.run(boot(3, 5))
        records = list(iter_audit(audit_path))
        report = verify_audit(records, snapshot=snap_path)
        assert report["ok"], report["problems"]
        assert report["restores"] == 2
        assert report["admitted"] == 5
        seqs = [r["seq"] for r in records]
        assert seqs == list(range(1, len(seqs) + 1))


class TestMetricsEndpoint:
    def test_scrape_routes(self, tmp_path):
        obs.enable(fresh=True)

        async def scenario():
            service, sock = await start_service(
                tmp_path, metrics_port=0
            )
            port = service.metrics_endpoint.port
            async with await AsyncServiceClient.connect_unix(
                sock
            ) as client:
                for i in range(3):
                    await client.request("admit", flow=flow_obj(i))
            metrics = await http_get(port, "/metrics")
            healthz = await http_get(port, "/healthz")
            stats = await http_get(port, "/stats")
            missing = await http_get(port, "/nope")
            await service.drain()
            return metrics, healthz, stats, missing

        metrics, healthz, stats, missing = asyncio.run(scenario())
        assert metrics[0] == 200
        samples = parse_prometheus_text(metrics[1])
        assert samples[("repro_service_established_flows", ())] == 3
        assert ("repro_service_queue_depth", ()) in samples
        assert any(
            name == "repro_slo_burn_rate" for name, _ in samples
        )
        assert healthz[0] == 200
        health = json.loads(healthz[1])
        assert health["status"] == "ok"
        assert health["slo"]["requests"] >= 3
        assert json.loads(stats[1])["established"] == 3
        assert missing[0] == 404

    def test_healthz_flips_to_503_while_draining(self, tmp_path):
        obs.enable(fresh=True)

        async def scenario():
            service, sock = await start_service(
                tmp_path, metrics_port=0, drain_grace=0.5
            )
            port = service.metrics_endpoint.port
            before = await http_get(port, "/healthz")
            drainer = asyncio.ensure_future(service.drain())
            # Inside the grace window the endpoint still answers, but
            # advertises the drain so load balancers stop routing.
            await asyncio.sleep(0.15)
            during = await http_get(port, "/healthz")
            await drainer
            return before, during

        before, during = asyncio.run(scenario())
        assert before[0] == 200
        assert during[0] == 503
        assert json.loads(during[1])["status"] == "draining"

    def test_method_not_allowed(self, tmp_path):
        obs.enable(fresh=True)

        async def scenario():
            service, sock = await start_service(
                tmp_path, metrics_port=0
            )
            port = service.metrics_endpoint.port
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            writer.write(b"POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), 10)
            writer.close()
            await service.drain()
            return int(raw.split(b" ", 2)[1])

        assert asyncio.run(scenario()) == 405

    def test_scrape_text_reports_disabled_observability(self, tmp_path):
        async def scenario():
            service, sock = await start_service(tmp_path)
            text = service.scrape_text()
            await service.drain()
            return text

        text = asyncio.run(scenario())
        assert "disabled" in text


class TestSLOSurface:
    def test_stats_carry_slo_and_introspection_keys(self, tmp_path):
        async def scenario():
            service, sock = await start_service(
                tmp_path,
                slo=SLOConfig(p50_ms=50.0, p99_ms=250.0),
            )
            async with await AsyncServiceClient.connect_unix(
                sock
            ) as client:
                await client.request("admit", flow=flow_obj(1))
                stats = await client.stats()
            await service.drain()
            return stats

        stats = asyncio.run(scenario())
        assert stats["status"] == "ok"
        assert stats["uptime_seconds"] >= 0.0
        assert "snapshot_age_seconds" in stats
        assert stats["slo"]["requests"] >= 1
        assert stats["slo"]["breaching"] is False

    def test_breaching_slo_degrades_health_but_still_serves(
        self, tmp_path
    ):
        async def scenario():
            service, sock = await start_service(
                tmp_path,
                metrics_port=0,
                slo=SLOConfig(shed_rate=0.01),
            )
            # Synthesize a shed storm directly into the tracker: 50%
            # of the window's frames shed against a 1% objective.
            for _ in range(10):
                service.slo.record_request()
            for _ in range(5):
                service.slo.record_shed()
            port = service.metrics_endpoint.port
            healthz = await http_get(port, "/healthz")
            async with await AsyncServiceClient.connect_unix(
                sock
            ) as client:
                resp = await client.request("admit", flow=flow_obj(1))
            await service.drain()
            return healthz, resp

        healthz, resp = asyncio.run(scenario())
        # Degraded is advisory (200, keep serving), not an outage.
        assert healthz[0] == 200
        body = json.loads(healthz[1])
        assert body["status"] == "degraded"
        assert body["slo"]["breaching"] is True
        assert body["slo"]["burn_rates"]["shed_rate"] > 1.0
        assert resp["admitted"] is True

    def test_audit_stats_block_reports_the_log(self, tmp_path):
        audit_path = str(tmp_path / "audit.jsonl")

        async def scenario():
            service, sock = await start_service(
                tmp_path, audit_path=audit_path, audit_fsync_every=1
            )
            async with await AsyncServiceClient.connect_unix(
                sock
            ) as client:
                await client.request("admit", flow=flow_obj(1))
                stats = await client.stats()
            await service.drain()
            return stats

        stats = asyncio.run(scenario())
        assert stats["audit"]["path"] == audit_path
        # restore marker + one admit
        assert stats["audit"]["records"] == 2
