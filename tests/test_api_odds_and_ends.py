"""Direct coverage of small public helpers used mostly indirectly."""

import numpy as np
import pytest

from repro.admission import UtilizationAdmissionController
from repro.analysis import multi_class_delays
from repro.routing import shortest_path_routes
from repro.simulation import DelayRecorder, Packet, StaticPriorityServer
from repro.topology import DirectedLink, LinkServerGraph
from repro.traffic import ClassRegistry, Envelope, FlowSpec, voice_class


def test_directed_link_reverse_key():
    link = DirectedLink("a", "b", 1e6)
    assert link.key == ("a", "b")
    assert link.reverse_key == ("b", "a")


def test_network_has_router(mci):
    assert mci.has_router("Seattle")
    assert not mci.has_router("Atlantis")


def test_servergraph_server_keys(mci_graph):
    keys = mci_graph.server_keys()
    assert len(keys) == mci_graph.num_servers
    assert keys[0] == mci_graph.server_key(0)


def test_envelope_affine_constructor():
    env = Envelope.affine(100.0, 5.0)
    assert env(0.0) == 100.0
    assert env(2.0) == pytest.approx(110.0)
    assert env.long_term_rate == 5.0


def test_controller_flow_introspection(mci, mci_graph, voice_registry):
    routes = shortest_path_routes(mci, [("Seattle", "Miami")])
    ctrl = UtilizationAdmissionController(
        mci_graph, voice_registry, {"voice": 0.3}, routes
    )
    flow = FlowSpec("x", "voice", "Seattle", "Miami")
    ctrl.admit(flow)
    assert ctrl.is_established("x")
    assert not ctrl.is_established("y")
    assert [f.flow_id for f in ctrl.established_flows] == ["x"]
    resolved = ctrl.resolve_route(flow)
    assert resolved[0] == "Seattle" and resolved[-1] == "Miami"


def test_multiclass_delay_matrix_shape(line4_graph, voice_registry):
    mc = multi_class_delays(
        line4_graph,
        {"voice": [["r0", "r1", "r2"]]},
        voice_registry,
        {"voice": 0.3},
    )
    matrix = mc.delay_matrix()
    assert matrix.shape == (1, line4_graph.num_servers)
    np.testing.assert_array_equal(
        matrix[0], mc.per_class["voice"].server_delays
    )


def test_recorder_e2e_delays_accessor():
    rec = DelayRecorder()
    rec.record_delivery("voice", 0.02)
    rec.record_delivery("voice", 0.01)
    delays = rec.e2e_delays("voice")
    assert delays.shape == (2,)
    assert rec.e2e_delays("ghost").size == 0


def test_recorder_record_hop_keeps_max():
    rec = DelayRecorder()
    rec.record_hop(3, "voice", 0.01)
    rec.record_hop(3, "voice", 0.005)  # smaller: ignored
    assert rec.max_hop_delay(3, "voice") == 0.01


def test_packet_end_to_end_delay_guard():
    pkt = Packet(
        packet_id=1, flow_id="f", class_name="voice", priority=1,
        size_bits=640, servers=np.array([0]), created_at=1.0,
    )
    with pytest.raises(ValueError):
        _ = pkt.end_to_end_delay
    pkt.delivered_at = 1.5
    assert pkt.end_to_end_delay == pytest.approx(0.5)
    assert pkt.delivered


def test_server_has_work_flag():
    srv = StaticPriorityServer(0, 1e6)
    assert not srv.has_work
    srv.enqueue(
        Packet(
            packet_id=1, flow_id="f", class_name="c", priority=1,
            size_bits=100, servers=np.array([0]), created_at=0.0,
        )
    )
    assert srv.has_work
    srv.start_service(0.0)
    assert not srv.has_work  # in transmission, queue empty
