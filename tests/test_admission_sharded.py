"""Sharded (per-edge-quota) admission control."""

import numpy as np
import pytest

from repro.admission import (
    ShardedAdmissionController,
    UtilizationAdmissionController,
)
from repro.errors import AdmissionError
from repro.routing import shortest_path_routes
from repro.traffic import FlowSpec

ALPHA = 0.001024  # 3 slots per link for voice


@pytest.fixture()
def route_map(mci, mci_pairs):
    return shortest_path_routes(mci, mci_pairs)


@pytest.fixture()
def sharded(mci_graph, voice_registry, route_map):
    return ShardedAdmissionController(
        mci_graph, voice_registry, {"voice": 0.35}, route_map
    )


def _flow(i, src="Seattle", dst="Miami"):
    return FlowSpec(i, "voice", src, dst)


class TestQuotaConstruction:
    def test_shares_sum_to_verified_total(self, sharded, mci_graph,
                                          voice_registry):
        shared = UtilizationAdmissionController(
            mci_graph, voice_registry, {"voice": 0.35},
            sharded.route_map,
        )
        np.testing.assert_array_equal(
            sharded.total_quota("voice"), shared.ledger.slots("voice")
        )

    def test_every_edge_holds_quota_on_its_first_hop(self, sharded,
                                                     mci_graph):
        # Each edge originates routes, so it must own slots on at least
        # one server (demand-weighted split).
        for edge in sharded.edges:
            assert sharded.quota_of("voice", edge).sum() > 0

    def test_missing_alpha_rejected(self, mci_graph, voice_registry,
                                    route_map):
        with pytest.raises(AdmissionError):
            ShardedAdmissionController(
                mci_graph, voice_registry, {}, route_map
            )


class TestLocalDecisions:
    def test_admit_release_roundtrip(self, sharded):
        decision = sharded.admit(_flow(1))
        assert decision.admitted
        sharded.release(1)
        assert sharded.num_established == 0

    def test_unconfigured_edge_rejected(self, mci_graph, voice_registry):
        routes = {("Seattle", "Miami"): ["Seattle", "Chicago", "Atlanta",
                                         "Miami"]}
        ctrl = ShardedAdmissionController(
            mci_graph, voice_registry, {"voice": 0.35}, routes
        )
        # Pin the route so resolution succeeds, but Boston is not a
        # configured source and therefore holds no quota anywhere.
        flow = FlowSpec(
            1, "voice", "Boston", "NewYork", route=("Boston", "NewYork")
        )
        decision = ctrl.admit(flow)
        assert not decision.admitted
        assert "quota" in decision.reason

    def test_quota_exhaustion_is_per_edge(self, mci_graph, voice_registry):
        """One edge exhausting its share does not consume another's."""
        routes = {
            ("Seattle", "Denver"): ["Seattle", "Denver"],
            ("LosAngeles", "Denver"): ["LosAngeles", "Denver"],
        }
        ctrl = ShardedAdmissionController(
            mci_graph, voice_registry, {"voice": ALPHA}, routes
        )
        # Exhaust Seattle's quota on its access link.
        admitted_seattle = 0
        for i in range(10):
            if ctrl.admit(_flow(f"s{i}", "Seattle", "Denver")).admitted:
                admitted_seattle += 1
        assert 0 < admitted_seattle <= 3
        assert not ctrl.admit(_flow("sx", "Seattle", "Denver")).admitted
        # Los Angeles' disjoint path is unaffected.
        assert ctrl.admit(_flow("la", "LosAngeles", "Denver")).admitted

    def test_never_exceeds_verified_capacity(self, mci_graph,
                                             voice_registry, route_map):
        """Sum of per-edge usage stays within the shared certificate —
        the hard guarantee survives sharding."""
        ctrl = ShardedAdmissionController(
            mci_graph, voice_registry, {"voice": ALPHA}, route_map
        )
        rng = np.random.default_rng(1)
        pairs = list(route_map)
        for i in range(500):
            src, dst = pairs[int(rng.integers(len(pairs)))]
            ctrl.admit(FlowSpec(f"f{i}", "voice", src, dst))
        total_used = sum(
            ctrl._used["voice"][ctrl._edge_index[e]] for e in ctrl.edges
        )
        assert np.all(total_used <= ctrl.total_quota("voice"))


class TestFragmentation:
    def test_sharded_blocks_earlier_than_shared(self, mci_graph,
                                                voice_registry, route_map):
        """The cost of locality: concentrated demand from one edge blocks
        while the shared ledger still has room."""
        shared = UtilizationAdmissionController(
            mci_graph, voice_registry, {"voice": ALPHA}, route_map
        )
        sharded = ShardedAdmissionController(
            mci_graph, voice_registry, {"voice": ALPHA}, route_map
        )
        # All demand from a single edge router.
        shared_ok = sharded_ok = 0
        for i in range(3):
            pair = ("Seattle", "Miami")
            if shared.admit(FlowSpec(f"a{i}", "voice", *pair)).admitted:
                shared_ok += 1
            if sharded.admit(FlowSpec(f"b{i}", "voice", *pair)).admitted:
                sharded_ok += 1
        assert shared_ok == 3          # full link capacity available
        assert sharded_ok < 3          # Seattle only owns a share
        assert sharded.fragmentation("voice") > 0

    def test_fragmentation_zero_when_idle_single_edge(self, mci_graph,
                                                      voice_registry):
        routes = {("Seattle", "Denver"): ["Seattle", "Denver"]}
        ctrl = ShardedAdmissionController(
            mci_graph, voice_registry, {"voice": ALPHA}, routes
        )
        assert ctrl.fragmentation("voice") == pytest.approx(0.0)
