"""Controller failure recovery: snapshot / restore."""

import numpy as np
import pytest

from repro.admission import UtilizationAdmissionController
from repro.errors import AdmissionError
from repro.routing import shortest_path_routes
from repro.traffic import FlowSpec


@pytest.fixture()
def setup(mci, mci_graph, voice_registry):
    pairs = [
        ("Seattle", "Miami"),
        ("Boston", "Phoenix"),
        ("Chicago", "Dallas"),
    ]
    routes = shortest_path_routes(mci, pairs)

    def make():
        return UtilizationAdmissionController(
            mci_graph, voice_registry, {"voice": 0.3}, routes
        )

    return make, pairs


def _populate(ctrl, pairs, n=30):
    for i in range(n):
        src, dst = pairs[i % len(pairs)]
        assert ctrl.admit(FlowSpec(i, "voice", src, dst)).admitted


def test_snapshot_restore_rebuilds_ledger(setup):
    make, pairs = setup
    original = make()
    _populate(original, pairs)
    snap = original.snapshot()

    recovered = make()
    recovered.restore(snap)
    assert recovered.num_established == original.num_established
    np.testing.assert_array_equal(
        recovered.ledger.used("voice"), original.ledger.used("voice")
    )


def test_restored_controller_keeps_working(setup):
    make, pairs = setup
    original = make()
    _populate(original, pairs)
    recovered = make()
    recovered.restore(original.snapshot())
    # Established flows can be released and new ones admitted.
    recovered.release(0)
    assert recovered.admit(
        FlowSpec("new", "voice", "Seattle", "Miami")
    ).admitted


def test_snapshot_is_json_compatible(setup):
    import json

    make, pairs = setup
    ctrl = make()
    _populate(ctrl, pairs, n=5)
    text = json.dumps(ctrl.snapshot())
    recovered = make()
    recovered.restore(json.loads(text))
    assert recovered.num_established == 5


def test_restore_requires_fresh_controller(setup):
    make, pairs = setup
    original = make()
    _populate(original, pairs, n=3)
    busy = make()
    _populate(busy, pairs, n=1)
    with pytest.raises(AdmissionError):
        busy.restore(original.snapshot())


def test_restore_rejects_alpha_mismatch(setup, mci_graph, voice_registry):
    make, pairs = setup
    original = make()
    _populate(original, pairs, n=3)
    other = UtilizationAdmissionController(
        mci_graph, voice_registry, {"voice": 0.2},
        original.route_map,
    )
    with pytest.raises(AdmissionError):
        other.restore(original.snapshot())


def test_empty_snapshot_roundtrip(setup):
    make, _ = setup
    ctrl = make()
    recovered = make()
    recovered.restore(ctrl.snapshot())
    assert recovered.num_established == 0
