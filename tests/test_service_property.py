"""Property test: the service is decision-identical to the in-process API.

For any interleaving of admit/release requests — duplicate flow ids,
releases of unknown flows, re-admissions after rejection, all of it —
pipelining the ops through the server (where the micro-batch coalescer
groups them into batch-kernel calls) must produce exactly the outcomes
of calling the controller sequentially in process, and leave the ledger
in the identical state.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.admission import UtilizationAdmissionController
from repro.errors import ReproError
from repro.routing.shortest import shortest_path_routes
from repro.service import AdmissionService, AsyncServiceClient, ServiceConfig
from repro.topology import LinkServerGraph, line_network
from repro.traffic import ClassRegistry, voice_class
from repro.traffic.flows import FlowSpec
from repro.traffic.generators import all_ordered_pairs

# Small id pool -> plenty of duplicate admits, double releases, and
# release-then-readmit chains inside one coalescing window.
FLOW_IDS = [f"f{i}" for i in range(12)]

_NETWORK = line_network(4)
_PAIRS = all_ordered_pairs(_NETWORK)
_ROUTES = shortest_path_routes(_NETWORK, _PAIRS)
_VOICE = voice_class()

# Tiny alpha: the r0->r3 path holds ~15 voice flows, so 40-op sequences
# exercise rejections and post-rejection re-admissions too.
_ALPHA = 0.005


def make_controller():
    return UtilizationAdmissionController(
        LinkServerGraph(_NETWORK),
        ClassRegistry.two_class(_VOICE),
        {_VOICE.name: _ALPHA},
        _ROUTES,
    )


ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("admit"),
            st.sampled_from(FLOW_IDS),
            st.sampled_from(range(len(_PAIRS))),
        ),
        st.tuples(st.just("release"), st.sampled_from(FLOW_IDS)),
    ),
    max_size=40,
)


def flow_of(op):
    _kind, fid, pair_idx = op
    src, dst = _PAIRS[pair_idx]
    return FlowSpec(fid, _VOICE.name, src, dst)


def sequential_outcomes(controller, ops):
    outcomes = []
    for op in ops:
        try:
            if op[0] == "admit":
                decision = controller.admit(flow_of(op))
                outcomes.append(
                    ("decision", decision.admitted, decision.reason)
                )
            else:
                controller.release(op[1])
                outcomes.append(("released",))
        except ReproError as exc:
            outcomes.append(("error", str(exc)))
    return outcomes


async def wire_outcomes(controller, ops, protocol="v1"):
    service = AdmissionService(
        controller,
        # A wide-open window so pipelined ops land in few batches.
        ServiceConfig(max_delay=0.005),
    )
    await service.start_tcp("127.0.0.1", 0)
    client = await AsyncServiceClient.connect_tcp(
        "127.0.0.1", service.port, protocol=protocol
    )
    assert client.negotiated_protocol == protocol

    async def run(op):
        try:
            if op[0] == "admit":
                decision = await client.admit(flow_of(op))
                return ("decision", decision.admitted, decision.reason)
            await client.release(op[1])
            return ("released",)
        except ReproError as exc:
            return ("error", str(exc))

    # gather() starts the tasks in order; each one's request frame is
    # written synchronously before its first await, so the server sees
    # the ops in exactly this order.
    outcomes = list(await asyncio.gather(*(run(op) for op in ops)))
    await client.close()
    await service.drain()
    return outcomes


def ledger_state(controller):
    return {
        flow.flow_id: (
            flow.class_name,
            tuple(controller.committed_route(flow.flow_id)),
        )
        for flow in controller.established_flows
    }


@pytest.mark.parametrize("protocol", ["v1", "v2"])
@settings(deadline=None, max_examples=30)
@given(ops=ops_strategy)
def test_wire_decisions_identical_to_in_process(protocol, ops):
    wire_controller = make_controller()
    seq_controller = make_controller()
    wire = asyncio.run(wire_outcomes(wire_controller, ops, protocol))
    seq = sequential_outcomes(seq_controller, ops)
    assert wire == seq
    assert ledger_state(wire_controller) == ledger_state(seq_controller)


@pytest.mark.parametrize("protocol", ["v1", "v2"])
@settings(deadline=None, max_examples=15)
@given(ops=ops_strategy)
def test_batch_frames_identical_to_in_process(protocol, ops):
    """The same property through a single ``batch`` frame (packed to
    one bulk frame on v2, a carrier ``batch`` frame on v1)."""

    async def via_batch(controller):
        service = AdmissionService(controller)
        await service.start_tcp("127.0.0.1", 0)
        client = await AsyncServiceClient.connect_tcp(
            "127.0.0.1", service.port, protocol=protocol
        )
        assert client.negotiated_protocol == protocol
        wire_ops = []
        for op in ops:
            if op[0] == "admit":
                flow = flow_of(op)
                wire_ops.append(
                    {
                        "op": "admit",
                        "flow": {
                            "id": flow.flow_id,
                            "cls": flow.class_name,
                            "src": flow.source,
                            "dst": flow.destination,
                        },
                    }
                )
            else:
                wire_ops.append({"op": "release", "flow_id": op[1]})
        results = await client.batch(wire_ops) if wire_ops else []
        outcomes = []
        for result in results:
            if not result["ok"]:
                outcomes.append(("error", result["error"]["message"]))
            elif "admitted" in result["result"]:
                outcomes.append(
                    (
                        "decision",
                        result["result"]["admitted"],
                        result["result"]["reason"],
                    )
                )
            else:
                outcomes.append(("released",))
        await client.close()
        await service.drain()
        return outcomes

    wire_controller = make_controller()
    seq_controller = make_controller()
    wire = asyncio.run(via_batch(wire_controller))
    seq = sequential_outcomes(seq_controller, ops)
    assert wire == seq
    assert ledger_state(wire_controller) == ledger_state(seq_controller)
