"""Rolling-window SLO primitives: counters, histograms, the tracker.

Every test drives an injected fake clock, so window expiry is exact —
no sleeps, no wall-clock flakiness.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    RollingCounter,
    RollingHistogram,
    SLOConfig,
    SLOTracker,
)


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestRollingCounter:
    def test_counts_within_the_window(self):
        clock = FakeClock()
        c = RollingCounter(window=60.0, slices=12, clock=clock)
        c.inc()
        c.inc(4)
        assert c.total() == 5
        assert c.rate() == pytest.approx(5 / 60.0)

    def test_old_slices_expire(self):
        clock = FakeClock()
        c = RollingCounter(window=60.0, slices=12, clock=clock)
        c.inc(10)
        clock.advance(30.0)
        c.inc(1)
        assert c.total() == 11
        # First increment is now > window in the past; second survives.
        clock.advance(35.0)
        assert c.total() == 1
        clock.advance(60.0)
        assert c.total() == 0

    def test_slot_reuse_zeroes_stale_counts(self):
        clock = FakeClock()
        c = RollingCounter(window=12.0, slices=3, clock=clock)
        c.inc(7)
        # Come back exactly one full ring revolution later: the write
        # lands on the same slot, which must not still hold the 7.
        clock.advance(12.0)
        c.inc(1)
        assert c.total() == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RollingCounter(window=0.0)
        with pytest.raises(ValueError):
            RollingCounter(window=1.0, slices=0)


class TestRollingHistogram:
    def test_quantiles_resolve_to_bucket_bounds(self):
        clock = FakeClock()
        h = RollingHistogram(
            (0.01, 0.1, 1.0), window=60.0, clock=clock
        )
        for v in (0.005, 0.005, 0.05, 0.5):
            h.observe(v)
        assert h.count() == 4
        assert h.quantile(0.5) == 0.01
        assert h.quantile(1.0) == 1.0

    def test_overflow_clamps_to_last_finite_bound(self):
        h = RollingHistogram((0.01, 0.1), clock=FakeClock())
        h.observe(99.0)
        assert h.quantile(0.99) == 0.1

    def test_empty_window_reads_zero(self):
        h = RollingHistogram((0.01,), clock=FakeClock())
        assert h.count() == 0
        assert h.quantile(0.99) == 0.0

    def test_observations_expire_with_the_window(self):
        clock = FakeClock()
        h = RollingHistogram(
            (0.01, 1.0), window=10.0, slices=5, clock=clock
        )
        h.observe(0.5)
        assert h.count() == 1
        clock.advance(11.0)
        assert h.count() == 0
        assert h.quantile(0.5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RollingHistogram(())
        with pytest.raises(ValueError):
            RollingHistogram((0.1, 0.01))
        h = RollingHistogram((0.01,), clock=FakeClock())
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestSLOConfig:
    def test_defaults_are_valid(self):
        cfg = SLOConfig()
        assert cfg.p50_ms == 50.0 and cfg.window_seconds == 60.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"p50_ms": -1.0},
            {"p99_ms": -0.5},
            {"shed_rate": 1.5},
            {"shed_rate": -0.1},
            {"window_seconds": 0.0},
        ],
    )
    def test_rejects_bad_targets(self, kwargs):
        with pytest.raises(ValueError):
            SLOConfig(**kwargs)


class TestSLOTracker:
    def make(self, clock, **cfg):
        return SLOTracker(SLOConfig(**cfg), clock=clock)

    def test_healthy_window_is_not_breaching(self):
        tracker = self.make(
            FakeClock(), p50_ms=50.0, p99_ms=250.0, shed_rate=0.01
        )
        for _ in range(100):
            tracker.record_request()
            tracker.observe_latency(0.002)
        snap = tracker.snapshot()
        assert snap["requests"] == 100
        assert snap["sheds"] == 0
        assert snap["breaching"] is False
        assert all(b <= 1.0 for b in snap["burn_rates"].values())

    def test_slow_requests_breach_the_latency_objective(self):
        tracker = self.make(FakeClock(), p50_ms=1.0, p99_ms=5.0)
        for _ in range(10):
            tracker.record_request()
            tracker.observe_latency(0.5)  # 500 ms against 1/5 ms targets
        snap = tracker.snapshot()
        assert snap["breaching"] is True
        assert snap["burn_rates"]["p50"] > 1.0
        assert snap["burn_rates"]["p99"] > 1.0

    def test_shed_rate_counts_sheds_over_all_requests(self):
        # record_request() is called for *every* arriving frame, shed
        # ones included — the shed rate divides by that attempt count.
        tracker = self.make(FakeClock(), shed_rate=0.10)
        for i in range(100):
            tracker.record_request()
            if i < 5:
                tracker.record_shed()
        m = tracker.measured()
        assert m["shed_rate"] == pytest.approx(0.05)
        assert tracker.snapshot()["breaching"] is False
        tracker.record_request()
        for _ in range(20):
            tracker.record_shed()
        assert tracker.snapshot()["burn_rates"]["shed_rate"] > 1.0
        assert tracker.snapshot()["breaching"] is True

    def test_zero_target_disables_that_objective(self):
        tracker = self.make(FakeClock(), p50_ms=0.0, p99_ms=0.0)
        tracker.record_request()
        tracker.observe_latency(10.0)
        snap = tracker.snapshot()
        assert snap["burn_rates"]["p50"] == 0.0
        assert snap["burn_rates"]["p99"] == 0.0

    def test_breach_clears_once_the_window_rolls(self):
        clock = FakeClock()
        tracker = self.make(clock, p50_ms=1.0, window_seconds=10.0)
        tracker.record_request()
        tracker.observe_latency(1.0)
        assert tracker.snapshot()["breaching"] is True
        clock.advance(11.0)
        snap = tracker.snapshot()
        assert snap["requests"] == 0
        assert snap["breaching"] is False

    def test_export_gauges_publishes_burn_rates(self):
        tracker = self.make(FakeClock(), p50_ms=10.0, p99_ms=100.0)
        for _ in range(10):
            tracker.record_request()
            tracker.observe_latency(0.05)
        registry = MetricsRegistry()
        tracker.export_gauges(registry)
        burn = registry.gauge("repro_slo_burn_rate", objective="p50")
        assert burn.value > 1.0
        p50 = registry.gauge("repro_slo_latency_ms", quantile="0.5")
        assert p50.value > 0.0
        assert registry.gauge("repro_slo_shed_ratio").value == 0.0

    def test_snapshot_is_json_shaped(self):
        import json

        tracker = SLOTracker(clock=FakeClock())
        tracker.record_request()
        tracker.observe_latency(0.01)
        snap = json.loads(json.dumps(tracker.snapshot()))
        assert set(snap) == {
            "window_seconds",
            "requests",
            "sheds",
            "p50_ms",
            "p99_ms",
            "shed_rate",
            "targets",
            "burn_rates",
            "breaching",
        }
