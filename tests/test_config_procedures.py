"""The three configuration procedures (Section 5) and the multi-class
proportional maximization extension."""

import pytest

from repro.config import (
    maximize_multiclass_scale,
    maximize_utilization,
    select_safe_routes,
    verify_safe_assignment,
)
from repro.errors import ConfigurationError, InfeasibleUtilization
from repro.routing import shortest_path_routes
from repro.traffic import ClassRegistry, TrafficClass, video_class, voice_class

SUBSET = [
    ("Seattle", "Miami"),
    ("Boston", "Phoenix"),
    ("Chicago", "Dallas"),
    ("NewYork", "LosAngeles"),
]


def test_type1_verification_alias(mci, mci_pairs, voice_registry):
    """verify_safe_assignment *is* the Figure 2 procedure."""
    from repro.analysis import verify_assignment

    assert verify_safe_assignment is verify_assignment


def test_type2_select_safe_routes(mci, voice):
    out = select_safe_routes(mci, SUBSET, voice, alpha=0.4)
    assert out.success
    assert set(out.routes) == set(SUBSET)


def test_type2_alpha_validation(mci, voice):
    with pytest.raises(ConfigurationError):
        select_safe_routes(mci, SUBSET, voice, alpha=1.5)


def test_type3_method_dispatch(mci, voice):
    sp = maximize_utilization(
        mci, SUBSET, voice, method="sp", resolution=0.02
    )
    heur = maximize_utilization(
        mci, SUBSET, voice, method="heuristic", resolution=0.02
    )
    assert sp.method == "shortest-path"
    assert heur.method == "heuristic"
    assert heur.alpha >= sp.alpha - 0.02  # on a subset they may tie


def test_type3_unknown_method(mci, voice):
    with pytest.raises(ConfigurationError):
        maximize_utilization(mci, SUBSET, voice, method="oracle")


class TestMulticlassScale:
    @pytest.fixture()
    def registry(self):
        return ClassRegistry([voice_class(), video_class()])

    @pytest.fixture()
    def routes(self, mci):
        sp = shortest_path_routes(mci, SUBSET)
        return {"voice": list(sp.values()), "video": list(sp.values())}

    def test_scale_is_feasible_certificate(self, mci, registry, routes):
        res = maximize_multiclass_scale(
            mci, routes, registry, {"voice": 1.0, "video": 2.0},
            resolution=0.01,
        )
        assert res.verification.success
        assert res.alphas["video"] == pytest.approx(
            2 * res.alphas["voice"], rel=1e-9
        )
        assert 0 < res.scale <= 1.0

    def test_slightly_above_scale_fails(self, mci, registry, routes):
        res = maximize_multiclass_scale(
            mci, routes, registry, {"voice": 1.0, "video": 2.0},
            resolution=0.005,
        )
        bumped = {k: min(v * 1.1, 0.99) for k, v in res.alphas.items()}
        if sum(bumped.values()) <= 1.0:
            check = verify_safe_assignment(mci, routes, registry, bumped)
            assert not check.success

    def test_weights_must_be_positive(self, mci, registry, routes):
        with pytest.raises(ConfigurationError):
            maximize_multiclass_scale(
                mci, routes, registry, {"voice": 1.0, "video": 0.0}
            )

    def test_total_utilization_within_one(self, mci, registry, routes):
        res = maximize_multiclass_scale(
            mci, routes, registry, {"voice": 3.0, "video": 3.0},
            resolution=0.01,
        )
        assert sum(res.alphas.values()) <= 1.0 + 1e-9
