"""Chaos coverage for the overload control plane.

The satellite scenario the PR pins: a ``link_down`` lands in the middle
of an adversarial burst *while the alpha governor is active* and the
preemptor is sacrificing elastic flows for hard-RT arrivals.  Hard-RT
survivors must hold their certified deadlines, every preemption must be
exactly accounted in the transition report, and the whole run must stay
bit-deterministic.
"""

import pytest

from repro.config import configure
from repro.control import GovernorConfig, PreemptionPolicy, certify_ladder
from repro.faults import (
    ChaosHarness,
    DegradedModePolicy,
    FaultEvent,
    FaultSchedule,
    adversarial_flow_schedule,
)
from repro.topology import ring_network
from repro.traffic import ClassRegistry
from repro.traffic.flows import FlowSpec
from repro.traffic.generators import FlowEvent, voice_class

HORIZON = 2.0

#: Both ring directions, so the elastic background can drain the global
#: headroom (one direction alone caps at 50% occupancy).
PAIRS = [(f"r{i}", f"r{(i + 2) % 6}") for i in range(6)] + [
    (f"r{(i + 2) % 6}", f"r{i}") for i in range(6)
]

#: The failed link: crossed by the (r4, r0) / (r0, r4) background
#: flows but by neither hard-RT pair, so hard flows are never
#: fault casualties and the zero-eviction guarantee is cleanly
#: assertable.
FAILED_LINK = ("r4", "r5")
HARD_PAIRS = [("r0", "r2"), ("r2", "r4")]


@pytest.fixture(scope="module")
def cfg():
    # 3 voice slots per link server at alpha 0.1 — tight enough that a
    # couple dozen flows saturate the ring.
    net = ring_network(6, capacity=1e6)
    reg = ClassRegistry([voice_class()])
    return configure(
        net, reg, {"voice": 0.1}, pairs=PAIRS,
        routing="shortest-path",
    )


@pytest.fixture(scope="module")
def ladder(cfg):
    built = certify_ladder(
        cfg.network, list(cfg.routes.values()), cfg.registry,
        cfg.alphas, [0.05],
    )
    assert built.rungs == (0.05, 0.1)
    return built


def overload_schedule(cfg):
    """Deterministic mixed-priority overload: elastic fill + hard-RT
    arrivals + an adversarial burst, all with matched departures."""
    events = []
    # Elastic background: two round-robin passes over every pair.
    # The first pass alone books 24 of the ring's 36 slot-units, so
    # the governor's headroom signal crosses its low-water mark while
    # arrivals are still landing.
    k = 0
    for _round in range(2):
        for src, dst in PAIRS:
            flow = FlowSpec(
                f"bg{k}", "voice", src, dst, priority="elastic"
            )
            events.append(
                FlowEvent(0.05 + 0.01 * k, "arrival", flow)
            )
            events.append(FlowEvent(1.9, "departure", flow))
            k += 1
    # Hard-RT arrivals after the fill: plain admission finds the ring
    # saturated, so each one must go through the preemptor.
    for i, (src, dst) in enumerate(HARD_PAIRS):
        flow = FlowSpec(
            f"hard{i}", "voice", src, dst, priority="hard_rt"
        )
        events.append(FlowEvent(0.4 + 0.02 * i, "arrival", flow))
        events.append(FlowEvent(1.95, "departure", flow))
    # Adversarial burst (priority-less, hence evictable) across the
    # fault window.
    events.extend(
        adversarial_flow_schedule(
            cfg, "voice", horizon=HORIZON, seed=5
        )
    )
    events.sort(
        key=lambda e: (e.time, 0 if e.kind == "departure" else 1)
    )
    return events


def make_harness(cfg, ladder):
    return ChaosHarness(
        cfg,
        policy=DegradedModePolicy(repair_latency=0.02),
        ladder=ladder,
        # Low-water at 40% free: the elastic fill crosses it while the
        # run is still ramping, which is what makes the governor move
        # (the default 5% is sized for a big backbone, not this ring).
        governor_config=GovernorConfig(
            headroom_low=0.4, headroom_high=0.9
        ),
        preemption=PreemptionPolicy(),
    )


def run_overload(cfg, ladder):
    harness = make_harness(cfg, ladder)
    report = harness.run(
        overload_schedule(cfg),
        FaultSchedule(
            [
                FaultEvent(0.6, "link_down", FAILED_LINK),
                FaultEvent(1.4, "link_up", FAILED_LINK),
            ],
            network=cfg.network,
        ),
        horizon=HORIZON,
        seed=11,
    )
    return harness, report


@pytest.fixture(scope="module")
def overload(cfg, ladder):
    return run_overload(cfg, ladder)


class TestOverloadTransition:
    def test_scenario_exercises_everything(self, overload):
        harness, report = overload
        # The governor actually moved, the preemptor actually fired,
        # and the link actually failed — the scenario is not vacuous.
        assert report.governor_moves >= 1
        assert harness.governor.dec_count >= 1
        assert report.preempted_admits >= 1
        down = [
            t for t in report.transitions if t.kind == "link_down"
        ]
        assert len(down) == 1
        assert down[0].casualties

    def test_survivors_hold_certified_deadlines(self, overload):
        _harness, report = overload
        assert report.simulated
        assert report.packets_injected > 0
        assert report.survivors_held()

    def test_hard_rt_never_rejected_or_evicted(self, overload):
        harness, report = overload
        hard_ids = [f"hard{i}" for i in range(len(HARD_PAIRS))]
        for fid in hard_ids:
            account = report.flows[fid]
            assert account.outcome in ("completed", "active"), (
                f"{fid} ended {account.outcome!r}"
            )
            assert not account.casualty
            assert account.admitted_at is not None
        # Each hard arrival landed while the ring was saturated, so
        # they all went through the sacrifice path.
        assert report.preempted_admits == len(hard_ids)

    def test_preemptions_exactly_accounted(self, overload):
        harness, report = overload
        preempted = [
            a for a in report.flows.values()
            if a.outcome == "preempted"
        ]
        assert preempted
        assert report.flows_preempted == len(preempted)
        assert report.flows_preempted == harness.preemptor.preempted_total
        assert report.preempted_admits == harness.preemptor.preempted_admits
        # Victims are deliberately sacrificed: flagged casualties with
        # a recorded end time, never hard-RT, never still established.
        for account in preempted:
            assert account.casualty
            assert account.ended_at is not None
            assert not str(account.flow_id).startswith("hard")
            assert not harness.controller.is_established(
                account.flow_id
            )

    def test_every_applied_alpha_is_a_certified_rung(
        self, overload, ladder
    ):
        harness, _report = overload
        governor = harness.governor
        assert 0 <= governor.rung <= ladder.top
        assert governor.effective_alpha in ladder.rungs
        # The only degradation the ledger ever saw is a ladder factor
        # (possibly composed with the fault fallback — both certified
        # or strictly more conservative).
        assert harness.controller.degraded_factor in (
            1.0,
            *(ladder.factor(r) for r in range(len(ladder))),
            harness.policy.alpha_factor,
        )

    def test_controller_invariants_after_the_storm(self, overload):
        harness, _report = overload
        assert harness.controller.verify_invariants() == []

    def test_every_flow_accounted(self, cfg, overload):
        _harness, report = overload
        schedule = overload_schedule(cfg)
        assert report.accounts_for(
            e.flow.flow_id for e in schedule
        )

    def test_bit_identical_replay(self, cfg, ladder, overload):
        _harness, report = overload
        _again_harness, again = run_overload(cfg, ladder)
        assert again.to_json() == report.to_json()


class TestGovernorWithoutFaults:
    """The governor alone (no topology fault) also steps and recovers."""

    def test_dec_then_inc_over_a_burst(self, cfg, ladder):
        events = []
        k = 0
        for _round in range(2):
            for src, dst in PAIRS:
                flow = FlowSpec(
                    f"bg{k}", "voice", src, dst, priority="elastic"
                )
                events.append(
                    FlowEvent(0.05 + 0.01 * k, "arrival", flow)
                )
                # Early mass departure, then trailing arrivals give
                # the governor drained samples to climb back on.
                events.append(FlowEvent(0.6, "departure", flow))
                k += 1
        for i in range(8):
            flow = FlowSpec(f"late{i}", "voice", "r0", "r2")
            events.append(FlowEvent(0.8 + 0.05 * i, "arrival", flow))
            events.append(FlowEvent(1.8, "departure", flow))
        events.sort(
            key=lambda e: (e.time, 0 if e.kind == "departure" else 1)
        )
        harness = make_harness(cfg, ladder)
        # A fault schedule is required by the harness; use a no-op
        # window on a link no schedule flow crosses after t=0.6.
        report = harness.run(
            events,
            FaultSchedule(
                [
                    FaultEvent(1.85, "link_down", ("r3", "r4")),
                    FaultEvent(1.9, "link_up", ("r3", "r4")),
                ],
                network=cfg.network,
            ),
            horizon=HORIZON,
            seed=2,
            simulate_packets=False,
        )
        governor = harness.governor
        assert governor.dec_count >= 1
        assert governor.inc_count >= 1
        assert governor.at_top  # fully recovered after the burst
        assert not harness.controller.in_degraded_mode
        assert report.governor_moves == (
            governor.dec_count + governor.inc_count
        )
