"""Direct acyclic solver vs the iterative fixed point."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import RouteSystem, solve_fixed_point, theorem3_update
from repro.analysis.acyclic import (
    dependency_topological_order,
    solve_acyclic,
)
from repro.analysis.beta import beta_coefficient
from repro.errors import AnalysisError

T, RHO = 640.0, 32_000.0


def _beta(system, alpha, fan_in=6):
    return np.where(
        system.touched_servers,
        beta_coefficient(alpha, RHO, np.full(system.num_servers,
                                             float(fan_in))),
        0.0,
    )


def _iterative(system, alpha, fan_in=6):
    update = theorem3_update(
        system, T, RHO, alpha,
        np.full(system.num_servers, float(fan_in)),
    )
    return solve_fixed_point(system, update, tolerance=1e-13)


class TestTopologicalOrder:
    def test_chain(self):
        system = RouteSystem([[0, 1, 2, 3]], 4)
        order = dependency_topological_order(system)
        rank = np.empty(4, dtype=int)
        rank[order] = np.arange(4)
        assert rank[0] < rank[1] < rank[2] < rank[3]

    def test_cycle_returns_none(self):
        system = RouteSystem([[0, 1], [1, 0]], 2)
        assert dependency_topological_order(system) is None

    def test_no_routes(self):
        system = RouteSystem([], 3)
        order = dependency_topological_order(system)
        assert sorted(order) == [0, 1, 2]

    def test_diamond(self):
        # 0 -> 1 -> 3 and 0 -> 2 -> 3: a DAG with a join.
        system = RouteSystem([[0, 1, 3], [0, 2, 3]], 4)
        order = dependency_topological_order(system)
        assert order is not None
        rank = np.empty(4, dtype=int)
        rank[order] = np.arange(4)
        assert rank[0] < rank[1] < rank[3]
        assert rank[0] < rank[2] < rank[3]


class TestSolveAcyclic:
    def test_chain_matches_iterative(self):
        system = RouteSystem([[0, 1, 2, 3]], 4)
        direct = solve_acyclic(system, T, RHO, _beta(system, 0.4))
        iterative = _iterative(system, 0.4)
        np.testing.assert_allclose(
            direct, iterative.delays, rtol=1e-9, atol=1e-15
        )

    def test_join_takes_max_upstream(self):
        # Routes [0, 2] and [1, 2]: server 2's Y is the larger upstream.
        system = RouteSystem([[0, 2], [1, 2]], 3)
        beta = _beta(system, 0.4)
        beta[0] *= 2  # make route 0's upstream strictly larger
        d = solve_acyclic(system, T, RHO, beta)
        assert d[2] == pytest.approx(
            beta[2] * (T + RHO * d[0]), rel=1e-12
        )

    def test_shared_server_across_routes(self):
        system = RouteSystem([[0, 1, 2], [3, 1, 4]], 5)
        direct = solve_acyclic(system, T, RHO, _beta(system, 0.35))
        iterative = _iterative(system, 0.35)
        np.testing.assert_allclose(
            direct, iterative.delays, rtol=1e-9, atol=1e-15
        )

    def test_cycle_raises(self):
        system = RouteSystem([[0, 1], [1, 0]], 2)
        with pytest.raises(AnalysisError):
            solve_acyclic(system, T, RHO, _beta(system, 0.3))

    def test_untouched_servers_zero(self):
        system = RouteSystem([[0, 1]], 4)
        d = solve_acyclic(system, T, RHO, _beta(system, 0.3))
        assert d[2] == 0.0 and d[3] == 0.0

    def test_empty_system(self):
        system = RouteSystem([], 3)
        d = solve_acyclic(system, T, RHO, np.zeros(3))
        np.testing.assert_array_equal(d, np.zeros(3))

    def test_bad_beta_shape(self):
        system = RouteSystem([[0, 1]], 2)
        with pytest.raises(AnalysisError):
            solve_acyclic(system, T, RHO, np.zeros(5))


@st.composite
def acyclic_route_systems(draw):
    """Random DAG route systems: routes are increasing index sequences,
    which makes the dependency graph acyclic by construction."""
    num_servers = draw(st.integers(min_value=3, max_value=12))
    n_routes = draw(st.integers(min_value=1, max_value=8))
    routes = []
    for _ in range(n_routes):
        length = draw(st.integers(min_value=1, max_value=min(6, num_servers)))
        servers = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_servers - 1),
                min_size=length,
                max_size=length,
                unique=True,
            )
        )
        routes.append(sorted(servers))
    return RouteSystem(routes, num_servers)


@settings(max_examples=80, deadline=None)
@given(
    system=acyclic_route_systems(),
    alpha=st.floats(min_value=0.05, max_value=0.9),
)
def test_prop_direct_equals_iterative(system, alpha):
    direct = solve_acyclic(system, T, RHO, _beta(system, alpha))
    iterative = _iterative(system, alpha)
    assert iterative.converged
    np.testing.assert_allclose(
        direct, iterative.delays, rtol=1e-7, atol=1e-12
    )


@settings(max_examples=50, deadline=None)
@given(system=acyclic_route_systems())
def test_prop_order_respects_dependencies(system):
    order = dependency_topological_order(system)
    assert order is not None
    rank = np.empty(system.num_servers, dtype=int)
    rank[order] = np.arange(system.num_servers)
    for r in range(system.num_routes):
        servers = system.route(r)
        ranks = rank[servers]
        assert np.all(np.diff(ranks) > 0)
