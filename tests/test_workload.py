"""Deterministic workload layer: generators, traces, and the driver.

The contract under test: same seed => byte-identical trace, independent
of worker count; record -> replay round-trips exactly; and the loadgen
driver replays a stream against a controller in both modes.
"""

import io
import json

import numpy as np
import pytest

from repro.admission import UtilizationAdmissionController
from repro.errors import TrafficError
from repro.routing.shortest import shortest_path_routes
from repro.traffic.generators import all_ordered_pairs
from repro.workload import (
    TRACE_SCHEMA,
    ArrivalSchedule,
    TraceEvent,
    ZipfPairPopularity,
    drive,
    open_loop_schedule,
    read_trace,
    schedule_events,
    trace_lines,
    write_trace,
)


class TestZipfPopularity:
    def test_probabilities_normalized_and_skewed(self):
        pop = ZipfPairPopularity(num_pairs=10, skew=1.0)
        probs = pop.probabilities()
        assert probs.shape == (10,)
        assert probs.sum() == pytest.approx(1.0)
        assert probs[0] > probs[-1]  # rank 1 dominates

    def test_zero_skew_is_uniform(self):
        probs = ZipfPairPopularity(num_pairs=8, skew=0.0).probabilities()
        assert np.allclose(probs, 1 / 8)

    def test_shuffle_seed_permutes_deterministically(self):
        a = ZipfPairPopularity(num_pairs=16, skew=1.2, shuffle_seed=3)
        b = ZipfPairPopularity(num_pairs=16, skew=1.2, shuffle_seed=3)
        c = ZipfPairPopularity(num_pairs=16, skew=1.2, shuffle_seed=4)
        assert np.array_equal(a.probabilities(), b.probabilities())
        assert not np.array_equal(a.probabilities(), c.probabilities())
        assert sorted(a.probabilities()) == sorted(c.probabilities())

    def test_sample_respects_distribution_support(self):
        pop = ZipfPairPopularity(num_pairs=5, skew=2.0)
        rng = np.random.default_rng(0)
        draws = pop.sample(rng, 1000)
        assert draws.min() >= 0 and draws.max() < 5


class TestOpenLoopSchedule:
    def test_same_seed_identical_schedule(self):
        pop = ZipfPairPopularity(num_pairs=20, skew=1.0)
        a = open_loop_schedule(
            5000, arrival_rate=100.0, mean_holding=5.0,
            popularity=pop, seed=11,
        )
        b = open_loop_schedule(
            5000, arrival_rate=100.0, mean_holding=5.0,
            popularity=pop, seed=11,
        )
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.holdings, b.holdings)
        assert np.array_equal(a.pair_indices, b.pair_indices)

    def test_worker_count_does_not_change_the_stream(self):
        pop = ZipfPairPopularity(num_pairs=20, skew=1.0)
        kwargs = dict(
            arrival_rate=100.0, mean_holding=5.0, popularity=pop, seed=11,
        )
        serial = open_loop_schedule(10_000, workers=None, **kwargs)
        threaded = open_loop_schedule(10_000, workers=3, **kwargs)
        assert np.array_equal(serial.times, threaded.times)
        assert np.array_equal(serial.holdings, threaded.holdings)
        assert np.array_equal(serial.pair_indices, threaded.pair_indices)

    def test_times_monotonic_and_holdings_positive(self):
        pop = ZipfPairPopularity(num_pairs=4, skew=1.0)
        schedule = open_loop_schedule(
            2000, arrival_rate=50.0, mean_holding=2.0,
            popularity=pop, seed=0,
        )
        assert (np.diff(schedule.times) >= 0).all()
        assert (schedule.holdings > 0).all()
        assert np.array_equal(
            schedule.departure_times(),
            schedule.times + schedule.holdings,
        )


class TestTraceRoundTrip:
    def _events(self, n=200, seed=5):
        pop = ZipfPairPopularity(num_pairs=12, skew=1.0)
        schedule = open_loop_schedule(
            n, arrival_rate=40.0, mean_holding=3.0,
            popularity=pop, seed=seed,
        )
        pairs = [(f"r{i}", f"r{i + 1}") for i in range(12)]
        return schedule_events(schedule, pairs, "voice")

    def test_same_seed_byte_identical_trace(self):
        lines_a = "\n".join(trace_lines(self._events(seed=5)))
        lines_b = "\n".join(trace_lines(self._events(seed=5)))
        lines_c = "\n".join(trace_lines(self._events(seed=6)))
        assert lines_a == lines_b
        assert lines_a != lines_c

    def test_write_read_round_trip(self, tmp_path):
        events = self._events()
        path = tmp_path / "trace.jsonl"
        write_trace(path, events)
        _meta, again = read_trace(path)
        assert again == events

    def test_file_object_round_trip(self):
        events = self._events(n=50)
        buffer = io.StringIO()
        write_trace(buffer, events)
        buffer.seek(0)
        _meta, again = read_trace(buffer)
        assert again == events

    def test_header_carries_schema(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path, self._events(n=10))
        header = json.loads(path.read_text().splitlines()[0])
        assert header["schema"] == TRACE_SCHEMA

    def test_events_sorted_departures_break_ties_first(self):
        events = self._events(n=500)
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_bad_kind_rejected(self):
        with pytest.raises(TrafficError):
            TraceEvent(time=0.0, kind="teleport", flow_id="x")


class TestDrive:
    @pytest.fixture()
    def controller(self, mci, mci_graph, mci_pairs, voice_registry):
        routes = shortest_path_routes(mci, mci_pairs)
        return UtilizationAdmissionController(
            mci_graph, voice_registry, {"voice": 0.1}, routes
        )

    def _events(self, mci, mci_pairs, n=2000):
        pop = ZipfPairPopularity(
            num_pairs=len(mci_pairs), skew=1.0, shuffle_seed=1
        )
        schedule = open_loop_schedule(
            n, arrival_rate=200.0, mean_holding=4.0,
            popularity=pop, seed=13,
        )
        return schedule_events(schedule, mci_pairs, "voice")

    def test_batch_and_sequential_agree_on_totals(
        self, mci, mci_pairs, mci_graph, voice_registry
    ):
        routes = shortest_path_routes(mci, mci_pairs)

        def fresh():
            return UtilizationAdmissionController(
                mci_graph, voice_registry, {"voice": 0.1}, routes
            )

        events = self._events(mci, mci_pairs)
        seq = drive(fresh(), events, mode="sequential")
        batch = drive(fresh(), events, batch_size=64)
        assert seq.num_arrivals == batch.num_arrivals == 2000
        # Epoch reordering can shift which flows win contended slots,
        # but the load is identical and every admitted flow departs.
        assert seq.total_ops == seq.num_arrivals + seq.num_released
        assert batch.num_admitted == batch.num_released
        assert seq.num_admitted == seq.num_released

    def test_batch_mode_uses_requested_epoch_size(
        self, controller, mci, mci_pairs
    ):
        events = self._events(mci, mci_pairs, n=300)
        result = drive(controller, events, batch_size=128)
        assert result.mode == "batch"
        assert result.batch_size == 128
        sizes = {d.batch_size for d in controller.decisions}
        assert max(sizes) <= 128
        assert 128 in sizes

    def test_unknown_mode_rejected(self, controller):
        with pytest.raises(TrafficError):
            drive(controller, [], mode="nope")
        with pytest.raises(TrafficError):
            drive(controller, [], batch_size=0)

    def test_empty_pairs_rejected(self):
        pop = ZipfPairPopularity(num_pairs=3, skew=1.0)
        schedule = open_loop_schedule(
            10, arrival_rate=1.0, mean_holding=1.0, popularity=pop, seed=0,
        )
        with pytest.raises(TrafficError):
            schedule_events(schedule, [], "voice")


class TestScheduleDataclass:
    def test_num_flows(self):
        schedule = ArrivalSchedule(
            times=np.array([0.0, 1.0]),
            holdings=np.array([1.0, 1.0]),
            pair_indices=np.array([0, 1]),
            seed=0,
        )
        assert schedule.num_flows == 2
