"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

try:
    from hypothesis import HealthCheck, settings

    # "ci" pins a derandomized, example-capped profile so property tests
    # are reproducible and uniformly budgeted on shared runners; "dev"
    # is the library default.  Select with HYPOTHESIS_PROFILE=ci.
    settings.register_profile(
        "ci",
        derandomize=True,
        max_examples=50,
        deadline=None,
        print_blob=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile("dev", settings.default)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
except ImportError:  # pragma: no cover - hypothesis always in test deps
    pass

from repro.obs import NULL_REGISTRY, OBS
from repro.admission.kernels import HAVE_NUMBA
from repro.verify.smt import HAVE_Z3


def pytest_collection_modifyitems(config, items):
    """Skip extras-gated tests when the optional solver/JIT is absent.

    Tier-1 runs stay z3- and numba-free by construction; the CI
    ``verify-smt`` / ``verify-jit`` jobs install the matching extra and
    run ``pytest -m smt`` / ``-m jit``, where these tests must actually
    execute (the skip shows up as ``s`` in their output, so an
    accidentally-bare job is visible).
    """
    if not HAVE_Z3:
        skip_smt = pytest.mark.skip(
            reason="z3-solver not installed (smt extra)"
        )
        for item in items:
            if "smt" in item.keywords:
                item.add_marker(skip_smt)
    if not HAVE_NUMBA:
        skip_jit = pytest.mark.skip(
            reason="numba not installed (jit extra)"
        )
        for item in items:
            if "jit" in item.keywords:
                item.add_marker(skip_jit)
from repro.topology import (
    LinkServerGraph,
    Network,
    line_network,
    mci_backbone,
    ring_network,
)
from repro.traffic import ClassRegistry, voice_class
from repro.traffic.generators import all_ordered_pairs


@pytest.fixture(autouse=True)
def _obs_isolation():
    """Reset the global observability switchboard around every test.

    ``repro.obs.OBS`` is process-global state: a test that calls
    ``obs.enable()`` and forgets to disable would leak a live registry
    into every later test, and accumulated counters from one suite
    would bleed into another's assertions.  Saving and restoring the
    three switchboard slots makes each test start from whatever state
    the session had at collection time (normally: disabled, null
    registry, no tracer) regardless of what the previous test did.
    """
    saved = (OBS.enabled, OBS.registry, OBS.tracer)
    yield
    OBS.enabled, OBS.registry, OBS.tracer = saved
    # The restored registry may itself have been mutated by the test
    # (same object); only the pristine null twin is guaranteed clean.
    if OBS.registry is not NULL_REGISTRY:
        OBS.registry.reset()
    if OBS.tracer is not None:
        OBS.tracer.reset()


@pytest.fixture(scope="session")
def mci() -> Network:
    """The reconstructed MCI backbone (session-scoped; read-only)."""
    return mci_backbone()


@pytest.fixture(scope="session")
def mci_graph(mci) -> LinkServerGraph:
    return LinkServerGraph(mci)


@pytest.fixture(scope="session")
def mci_pairs(mci):
    return all_ordered_pairs(mci)


@pytest.fixture()
def line4() -> Network:
    """A 4-router chain r0--r1--r2--r3 (fresh per test)."""
    return line_network(4)


@pytest.fixture()
def line4_graph(line4) -> LinkServerGraph:
    return LinkServerGraph(line4)


@pytest.fixture()
def ring6() -> Network:
    return ring_network(6)


@pytest.fixture(scope="session")
def voice():
    """The paper's VoIP class (T=640 b, rho=32 kbps, D=100 ms)."""
    return voice_class()


@pytest.fixture(scope="session")
def voice_registry(voice) -> ClassRegistry:
    return ClassRegistry.two_class(voice)
