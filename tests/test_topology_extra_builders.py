"""Fat-tree and Waxman topology builders."""

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.topology import (
    LinkServerGraph,
    analyze,
    fat_tree_network,
    waxman_network,
)


class TestFatTree:
    @pytest.fixture(scope="class")
    def ft4(self):
        return fat_tree_network(4)

    def test_sizes(self, ft4):
        # k=4: 4 cores + 4 pods x (2 agg + 2 edge) = 20 routers,
        # per pod 2*2 agg-edge + 2*2 agg-core = 8 links -> 32 links.
        assert ft4.num_routers == 20
        assert ft4.num_physical_links == 32

    def test_edge_routers_are_edge_switches(self, ft4):
        edges = ft4.edge_routers()
        assert len(edges) == 8
        assert all("edge" in name for name in edges)

    def test_structure(self, ft4):
        report = analyze(ft4)
        assert report.diameter == 4  # edge -> agg -> core -> agg -> edge
        assert report.max_degree == 4  # k

    def test_usable_by_analysis(self, ft4):
        from repro.analysis import single_class_delays
        from repro.routing import shortest_path_routes
        from repro.traffic import all_ordered_pairs, voice_class

        pairs = all_ordered_pairs(ft4)
        assert len(pairs) == 8 * 7
        paths = list(shortest_path_routes(ft4, pairs).values())
        result = single_class_delays(
            LinkServerGraph(ft4), paths, voice_class(), 0.2
        )
        assert result.safe

    def test_arity_validation(self):
        with pytest.raises(TopologyError):
            fat_tree_network(3)
        with pytest.raises(TopologyError):
            fat_tree_network(0)

    def test_k6_scales(self):
        ft6 = fat_tree_network(6)
        # (k/2)^2 cores + k pods * k switches = 9 + 36 = 45
        assert ft6.num_routers == 45
        assert analyze(ft6).max_degree == 6


class TestWaxman:
    def test_connected_and_deterministic(self):
        a = waxman_network(25, seed=11)
        b = waxman_network(25, seed=11)
        assert a.is_connected()
        assert set(l.key for l in a.directed_links()) == set(
            l.key for l in b.directed_links()
        )

    def test_seed_changes_graph(self):
        a = waxman_network(25, seed=11)
        b = waxman_network(25, seed=12)
        assert set(l.key for l in a.directed_links()) != set(
            l.key for l in b.directed_links()
        )

    def test_locality_bias(self):
        """Waxman graphs are sparser than G(n, p) at similar density
        settings and have higher diameter than a dense G(n, p) —
        checking the qualitative shape, not exact values."""
        net = waxman_network(30, seed=5)
        report = analyze(net)
        assert report.diameter >= 3  # no dense shortcut structure

    def test_validation(self):
        with pytest.raises(TopologyError):
            waxman_network(1, seed=0)
        with pytest.raises(TopologyError):
            waxman_network(10, seed=0, alpha=0.0)
        with pytest.raises(TopologyError):
            waxman_network(10, seed=0, beta=-1.0)

    def test_lower_bound_certifies_sp_on_waxman(self):
        """Theorem 4 LB holds on the ISP-like random model too."""
        from repro.analysis import single_class_delays
        from repro.config import theorem4_lower_bound
        from repro.routing import shortest_path_routes
        from repro.traffic import all_ordered_pairs, voice_class

        net = waxman_network(16, seed=2)
        report = analyze(net)
        voice = voice_class()
        lb = theorem4_lower_bound(
            max(report.max_degree, 2), report.diameter, voice.burst,
            voice.rate, voice.deadline,
        )
        paths = list(
            shortest_path_routes(net, all_ordered_pairs(net)).values()
        )
        result = single_class_delays(
            LinkServerGraph(net), paths, voice, lb * (1 - 1e-9)
        )
        assert result.safe
