"""Tracing: span nesting, attributes, ring-buffer bounds."""

import pytest

from repro.obs.trace import NULL_SPAN, Tracer


class TestSpans:
    def test_records_duration_and_name(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        (record,) = tracer.records()
        assert record.name == "work"
        assert record.duration >= 0.0
        assert record.depth == 0
        assert record.parent_id is None

    def test_nesting_depth_and_parent_linkage(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        inner, outer_rec = tracer.records()  # inner completes first
        assert inner.name == "inner"
        assert inner.depth == 1
        assert inner.parent_id == outer_rec.span_id
        assert outer_rec.depth == 0
        # The outer span brackets the inner one on the timeline.
        assert outer_rec.start <= inner.start
        assert (
            outer_rec.start + outer_rec.duration
            >= inner.start + inner.duration
        )

    def test_attributes_at_open_and_via_set(self):
        tracer = Tracer()
        with tracer.span("solve", routes=10) as sp:
            sp.set(iterations=7, outcome="converged")
        (record,) = tracer.records()
        assert record.attrs == {
            "routes": 10, "iterations": 7, "outcome": "converged",
        }

    def test_exception_is_annotated_and_stack_unwinds(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        (record,) = tracer.records()
        assert record.attrs["error"] == "RuntimeError"
        # stack is clean: a following span is a root again
        with tracer.span("after"):
            pass
        assert tracer.records()[-1].depth == 0

    def test_find_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("a"):
                pass
        with tracer.span("b"):
            pass
        assert len(tracer.find("a")) == 3
        assert len(tracer.find("b")) == 1


class TestRingBuffer:
    def test_capacity_bounds_memory_and_counts_drops(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer) == 4
        assert tracer.dropped == 6
        assert [r.name for r in tracer.records()] == [
            "s6", "s7", "s8", "s9",
        ]

    def test_reset_clears_buffer_and_drop_count(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            with tracer.span("s"):
                pass
        tracer.reset()
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestNullSpan:
    def test_noop_context_manager(self):
        with NULL_SPAN as sp:
            sp.set(anything="goes")
        assert sp is NULL_SPAN
