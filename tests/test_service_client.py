"""Tests for the service client library and the trace-replay bridge."""

import asyncio
import threading

import pytest

from repro.admission import UtilizationAdmissionController
from repro.errors import (
    AdmissionError,
    ProtocolError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.faults import BackoffPolicy
from repro.routing.shortest import shortest_path_routes
from repro.service import (
    AdmissionService,
    AsyncServiceClient,
    ServiceClient,
    ServiceConfig,
    protocol,
    replay_events,
    replay_trace,
)
from repro.topology import LinkServerGraph, line_network
from repro.traffic import ClassRegistry, voice_class
from repro.traffic.flows import FlowSpec
from repro.traffic.generators import all_ordered_pairs
from repro.workload import drive
from repro.workload.trace import TraceEvent, write_trace


def make_controller(alpha=0.3):
    network = line_network(4)
    graph = LinkServerGraph(network)
    voice = voice_class()
    registry = ClassRegistry.two_class(voice)
    pairs = all_ordered_pairs(network)
    routes = shortest_path_routes(network, pairs)
    return UtilizationAdmissionController(
        graph, registry, {voice.name: alpha}, routes
    )


class ServerThread:
    """An AdmissionService on its own event loop in a daemon thread, so
    the *synchronous* client can be exercised against a live socket."""

    def __init__(self, sock, alpha=0.3, **config_kwargs):
        self.sock = sock
        self.alpha = alpha
        self.config = ServiceConfig(**config_kwargs)
        self.service = None
        self.loop = None
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        assert self._ready.wait(30)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self.service = AdmissionService(
            make_controller(self.alpha), self.config
        )
        await self.service.start_unix(self.sock)
        self.loop = asyncio.get_running_loop()
        self._ready.set()
        await self.service.serve_forever()

    def stop(self):
        asyncio.run_coroutine_threadsafe(
            self.service.drain(), self.loop
        ).result(30)
        self.thread.join(30)

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.stop()


@pytest.fixture()
def server(tmp_path):
    with ServerThread(str(tmp_path / "s.sock")) as srv:
        yield srv


class TestSyncClient:
    def test_full_surface_roundtrip(self, server):
        with ServiceClient(socket_path=server.sock) as client:
            decision = client.admit(FlowSpec("f1", "voice", "r0", "r3"))
            assert decision.admitted and decision.flow_id == "f1"
            assert client.query("f1") is True
            results = client.batch(
                [
                    {
                        "op": "admit",
                        "flow": {
                            "id": "f2",
                            "cls": "voice",
                            "src": "r1",
                            "dst": "r2",
                        },
                    },
                    {"op": "release", "flow_id": "f1"},
                ]
            )
            assert results[0]["ok"] and results[0]["result"]["admitted"]
            assert results[1]["ok"] and results[1]["result"]["released"]
            assert client.query("f1") is False
            health = client.health()
            assert health["status"] == "ok"
            stats = client.stats()
            assert stats["established"] == 1

    def test_admission_errors_surface_as_exceptions(self, server):
        with ServiceClient(socket_path=server.sock) as client:
            client.admit(FlowSpec("f1", "voice", "r0", "r3"))
            with pytest.raises(AdmissionError):
                client.admit(FlowSpec("f1", "voice", "r0", "r3"))
            with pytest.raises(AdmissionError):
                client.release("ghost")

    def test_unknown_op_maps_to_protocol_error(self, server):
        with ServiceClient(socket_path=server.sock) as client:
            with pytest.raises(ProtocolError) as err:
                client.request("frobnicate")
            assert err.value.code == protocol.UNKNOWN_OP

    def test_close_is_idempotent(self, server):
        client = ServiceClient(socket_path=server.sock)
        client.health()
        client.close()
        client.close()

    def test_constructor_validation(self):
        with pytest.raises(ServiceError):
            ServiceClient()
        with pytest.raises(ServiceError):
            ServiceClient(socket_path="x", host="y", port=1)
        with pytest.raises(ServiceError):
            ServiceClient(host="localhost")

    def test_connect_failure_after_retries(self, tmp_path):
        with pytest.raises(ServiceError):
            ServiceClient(
                socket_path=str(tmp_path / "nope.sock"),
                backoff=BackoffPolicy(base=0.01, max_retries=1),
            )


class TestAsyncClient:
    def test_connect_retries_until_server_is_up(self, tmp_path):
        sock = str(tmp_path / "late.sock")

        async def scenario():
            service = AdmissionService(make_controller())

            async def late_start():
                await asyncio.sleep(0.15)
                await service.start_unix(sock)

            starter = asyncio.get_running_loop().create_task(
                late_start()
            )
            client = await AsyncServiceClient.connect_unix(
                sock, backoff=BackoffPolicy(base=0.05, max_retries=10)
            )
            await starter
            health = await client.health()
            assert health["status"] == "ok"
            await client.close()
            await service.drain()

        asyncio.run(scenario())

    def test_overloaded_retry_succeeds_after_resume(self, tmp_path):
        sock = str(tmp_path / "s.sock")

        async def scenario():
            service = AdmissionService(
                make_controller(),
                ServiceConfig(high_water=1, low_water=0),
            )
            await service.start_unix(sock)
            filler = await AsyncServiceClient.connect_unix(sock)
            client = await AsyncServiceClient.connect_unix(
                sock, backoff=BackoffPolicy(base=0.05, max_retries=8)
            )
            service.coalescer.pause()
            # Fill the queue past the high-water mark.
            hold = filler._submit(
                "admit",
                {
                    "flow": {
                        "id": "hold",
                        "cls": "voice",
                        "src": "r0",
                        "dst": "r3",
                    }
                },
            )
            while service.coalescer.pending < 1:
                await asyncio.sleep(0.005)

            async def unblock():
                await asyncio.sleep(0.15)
                service.coalescer.resume()

            unblocker = asyncio.get_running_loop().create_task(unblock())
            decision = await client.admit(
                FlowSpec("f1", "voice", "r0", "r3")
            )
            assert decision.admitted
            assert service.counts["shed"] >= 1
            await unblocker
            await hold
            await filler.close()
            await client.close()
            await service.drain()

        asyncio.run(scenario())

    def test_overloaded_raises_without_retry(self, tmp_path):
        sock = str(tmp_path / "s.sock")

        async def scenario():
            service = AdmissionService(
                make_controller(),
                ServiceConfig(high_water=1, low_water=0),
            )
            await service.start_unix(sock)
            filler = await AsyncServiceClient.connect_unix(sock)
            client = await AsyncServiceClient.connect_unix(
                sock, retry_overloaded=False
            )
            service.coalescer.pause()
            hold = filler._submit(
                "admit",
                {
                    "flow": {
                        "id": "hold",
                        "cls": "voice",
                        "src": "r0",
                        "dst": "r3",
                    }
                },
            )
            while service.coalescer.pending < 1:
                await asyncio.sleep(0.005)
            with pytest.raises(ServiceOverloadedError):
                await client.admit(FlowSpec("f1", "voice", "r0", "r3"))
            service.coalescer.resume()
            await hold
            await filler.close()
            await client.close()
            await service.drain()

        asyncio.run(scenario())

    def test_pipelined_requests_resolve_by_id(self, tmp_path):
        sock = str(tmp_path / "s.sock")

        async def scenario():
            service = AdmissionService(make_controller())
            await service.start_unix(sock)
            client = await AsyncServiceClient.connect_unix(sock)
            decisions = await asyncio.gather(
                *(
                    client.admit(FlowSpec(f"f{i}", "voice", "r0", "r3"))
                    for i in range(50)
                )
            )
            assert [d.flow_id for d in decisions] == [
                f"f{i}" for i in range(50)
            ]
            assert all(d.admitted for d in decisions)
            stats = await client.stats()
            # Pipelined requests coalesce: far fewer batches than ops.
            assert stats["batches"] < 50
            await client.close()
            await service.drain()

        asyncio.run(scenario())

    def test_server_death_fails_pending_requests(self, tmp_path):
        sock = str(tmp_path / "s.sock")

        async def scenario():
            service = AdmissionService(make_controller())
            await service.start_unix(sock)
            client = await AsyncServiceClient.connect_unix(sock)
            await client.health()
            await service.drain()
            with pytest.raises(ServiceError):
                await client.health()
            await client.close()

        asyncio.run(scenario())


def line4_events():
    """10 arrivals r0->r3, departures for the first 5, one departure of
    a flow that never arrived (must be skipped, as drive() does)."""
    events = [
        TraceEvent(float(i), "arrival", f"f{i}", "voice", "r0", "r3")
        for i in range(10)
    ]
    events += [
        TraceEvent(10.0 + i, "departure", f"f{i}") for i in range(5)
    ]
    events.append(TraceEvent(99.0, "departure", "never-arrived"))
    return events


class TestReplayBridge:
    def test_replay_matches_in_process_drive(self, server):
        events = line4_events()
        twin = make_controller()
        reference = drive(twin, events, mode="sequential")
        with ServiceClient(socket_path=server.sock) as client:
            result = replay_events(client, events, frame_size=4)
        assert result.num_arrivals == reference.num_arrivals == 10
        assert result.num_admitted == reference.num_admitted == 10
        assert result.num_rejected == reference.num_rejected == 0
        assert result.num_released == reference.num_released == 5
        assert result.num_skipped == 1
        assert result.num_errors == 0
        assert result.frames == 4
        assert result.total_ops == reference.total_ops
        assert server.service.controller.num_established == 5

    def test_replay_from_trace_file(self, server, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_trace(path, line4_events(), meta={"purpose": "test"})
        with ServiceClient(socket_path=server.sock) as client:
            result = replay_trace(client, path, frame_size=100)
        assert result.num_admitted == 10
        assert result.num_released == 5
        assert result.frames == 1

    def test_pinned_routes_survive_the_wire(self, server):
        events = [
            TraceEvent(
                0.0,
                "arrival",
                "pinned",
                "voice",
                "r0",
                "r3",
                route=("r0", "r1", "r2", "r3"),
            )
        ]
        with ServiceClient(socket_path=server.sock) as client:
            result = replay_events(client, events)
        assert result.num_admitted == 1
        controller = server.service.controller
        assert controller.committed_route("pinned") == [
            "r0",
            "r1",
            "r2",
            "r3",
        ]

    def test_frame_size_validation(self, server):
        with ServiceClient(socket_path=server.sock) as client:
            with pytest.raises(Exception):
                replay_events(client, [], frame_size=0)
