"""Scheduling-discipline ablation: static priority vs FIFO.

The paper's guarantees rest on class-based static priority (Section 4).
These tests demonstrate the ablation: under FIFO, best-effort bursts
delay real-time traffic far beyond the one-packet non-preemption cost.
"""

import pytest

from repro.errors import SimulationError
from repro.simulation import PacketPattern, Simulator
from repro.topology import LinkServerGraph, star_network
from repro.traffic import ClassRegistry, FlowSpec, TrafficClass, voice_class


@pytest.fixture(scope="module")
def setup():
    bulk = TrafficClass(
        "bulk", burst=200_000, rate=55e6, deadline=10.0, priority=9
    )
    registry = ClassRegistry([voice_class(), bulk])
    net = star_network(4)
    graph = LinkServerGraph(net)
    return graph, registry


def _run(graph, registry, scheduling):
    """Voice vs two converging bulk aggressors that oversubscribe the hub
    output (2 x 55 Mbps + voice > 100 Mbps), so a FIFO queue builds for
    the whole horizon while priority shields the voice class."""
    sim = Simulator(graph, registry, scheduling=scheduling)
    for i in range(10):
        sim.add_flow(
            FlowSpec(f"v{i}", "voice", "leaf0", "leaf3"),
            ["leaf0", "hub", "leaf3"],
            PacketPattern("greedy", packet_size=640, seed=i),
        )
    for b, leaf in enumerate(("leaf1", "leaf2")):
        sim.add_flow(
            FlowSpec(f"b{b}", "bulk", leaf, "leaf3"),
            [leaf, "hub", "leaf3"],
            PacketPattern("greedy", packet_size=12_000, seed=99 + b),
        )
    return sim.run(horizon=0.3)


def test_priority_shields_voice(setup):
    graph, registry = setup
    prio = _run(graph, registry, "priority")
    fifo = _run(graph, registry, "fifo")
    # Same traffic, very different voice delays.
    assert fifo.max_e2e("voice") > 2 * prio.max_e2e("voice")


def test_priority_cost_bounded_by_one_packet(setup):
    """Under priority, bulk can block voice by at most one packet
    transmission per hop (non-preemptive)."""
    graph, registry = setup
    prio = _run(graph, registry, "priority")
    lone = Simulator(graph, registry, scheduling="priority")
    for i in range(10):
        lone.add_flow(
            FlowSpec(f"v{i}", "voice", "leaf0", "leaf3"),
            ["leaf0", "hub", "leaf3"],
            PacketPattern("greedy", packet_size=640, seed=i),
        )
    quiet = lone.run(horizon=0.3)
    blocking = 2 * 12_000 / 100e6
    assert prio.max_e2e("voice") <= quiet.max_e2e("voice") + blocking + 1e-9


def test_fifo_still_serves_everyone(setup):
    graph, registry = setup
    fifo = _run(graph, registry, "fifo")
    assert fifo.conserved
    assert fifo.e2e["voice"].size > 0
    assert fifo.e2e["bulk"].size > 0


def test_bulk_prefers_fifo(setup):
    """The flip side: bulk traffic finishes faster without priority."""
    graph, registry = setup
    prio = _run(graph, registry, "priority")
    fifo = _run(graph, registry, "fifo")
    assert fifo.mean_e2e("bulk") <= prio.mean_e2e("bulk") + 1e-12


def test_unknown_scheduling_rejected(setup):
    graph, registry = setup
    with pytest.raises(SimulationError):
        Simulator(graph, registry, scheduling="wfq")
