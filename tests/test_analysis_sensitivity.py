"""Sensitivity / what-if analysis."""

import pytest

from repro.analysis import (
    critical_alpha,
    sensitivity_report,
    single_class_delays,
)
from repro.errors import AnalysisError
from repro.routing import shortest_path_routes


@pytest.fixture(scope="module")
def paths(mci, mci_pairs):
    return list(shortest_path_routes(mci, mci_pairs).values())


def test_report_structure(mci_graph, paths, voice):
    report = sensitivity_report(mci_graph, paths, voice, 0.35, top=3)
    assert len(report.critical_routes) == 3
    assert len(report.bottleneck_servers) == 3
    assert report.worst_delay <= voice.deadline
    assert report.min_slack >= 0


def test_critical_routes_are_sorted_by_slack(mci_graph, paths, voice):
    report = sensitivity_report(mci_graph, paths, voice, 0.35, top=5)
    slacks = [r.slack for r in report.critical_routes]
    assert slacks == sorted(slacks)
    # The tightest route's slack is the report's minimum slack.
    assert report.min_slack == pytest.approx(slacks[0])


def test_critical_route_consistency(mci_graph, paths, voice):
    """Report numbers agree with a direct verification run."""
    alpha = 0.35
    report = sensitivity_report(mci_graph, paths, voice, alpha, top=1)
    direct = single_class_delays(mci_graph, paths, voice, alpha)
    worst = report.critical_routes[0]
    assert worst.delay_bound == pytest.approx(direct.worst_route_delay)
    assert list(worst.path) == list(paths[worst.route_index])


def test_bottlenecks_have_positive_delay(mci_graph, paths, voice):
    report = sensitivity_report(mci_graph, paths, voice, 0.35)
    for s in report.bottleneck_servers:
        assert s.delay_bound > 0
        assert s.routes_through > 0
    delays = [s.delay_bound for s in report.bottleneck_servers]
    assert delays == sorted(delays, reverse=True)


def test_utilization_of_deadline(mci_graph, paths, voice):
    report = sensitivity_report(mci_graph, paths, voice, 0.35, top=1)
    frac = report.critical_routes[0].utilization_of_deadline
    assert 0 < frac <= 1
    assert frac == pytest.approx(report.worst_delay / voice.deadline)


def test_report_rejects_unsafe_alpha(mci_graph, paths, voice):
    with pytest.raises(AnalysisError):
        sensitivity_report(mci_graph, paths, voice, 0.95)


def test_render_is_readable(mci_graph, paths, voice):
    text = sensitivity_report(mci_graph, paths, voice, 0.3).render()
    assert "tightest routes" in text
    assert "hottest servers" in text


class TestCriticalAlpha:
    def test_matches_direct_bisection(self, mci_graph, paths, voice):
        a_star = critical_alpha(
            mci_graph, paths, voice, resolution=1e-3
        )
        # Just below verifies, just above does not.
        assert single_class_delays(
            mci_graph, paths, voice, a_star
        ).safe
        assert not single_class_delays(
            mci_graph, paths, voice, a_star + 3e-3
        ).safe

    def test_is_above_theorem4_lower_bound(self, mci_graph, paths, voice):
        from repro.config import theorem4_lower_bound

        a_star = critical_alpha(mci_graph, paths, voice)
        lb = theorem4_lower_bound(6, 4, voice.burst, voice.rate,
                                  voice.deadline)
        assert a_star >= lb - 1e-3

    def test_everything_safe_returns_high(self, mci_graph, voice):
        # A single one-hop route verifies at any utilization.
        a = critical_alpha(
            mci_graph, [["Seattle", "Denver"]], voice, high=1.0
        )
        assert a == 1.0

    def test_unsafe_floor_raises(self, mci_graph, paths):
        from repro.traffic import TrafficClass

        impossible = TrafficClass(
            "tight", burst=640, rate=32_000, deadline=1e-9, priority=1
        )
        with pytest.raises(AnalysisError):
            critical_alpha(mci_graph, paths, impossible)

    def test_validation(self, mci_graph, paths, voice):
        with pytest.raises(AnalysisError):
            critical_alpha(mci_graph, paths, voice, low=0.5, high=0.4)
