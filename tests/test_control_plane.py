"""Unit coverage of the adaptive overload control plane.

Three pieces: the pre-certified :class:`AlphaLadder` (every rung must
re-pass the Figure 2 fixed-point verification — the deadline-safety
anchor), the :class:`AlphaGovernor` INC/HOLD/DEC state machine, and the
:class:`Preemptor` sacrifice policy against a live controller.
"""

import pytest

from repro.admission import UtilizationAdmissionController
from repro.analysis.verification import verify_assignment
from repro.config import configure
from repro.control import (
    AlphaGovernor,
    AlphaLadder,
    GovernorConfig,
    GovernorSample,
    PreemptionPolicy,
    Preemptor,
    certify_ladder,
)
from repro.errors import AdmissionError, ConfigurationError
from repro.topology import ring_network
from repro.traffic import ClassRegistry
from repro.traffic.flows import FlowSpec
from repro.traffic.generators import voice_class

RING_PAIRS = [(f"r{i}", f"r{(i + 2) % 6}") for i in range(6)]


def ring_cfg(alpha=0.1):
    """Skinny ring: 3 voice slots per link server at alpha 0.1."""
    net = ring_network(6, capacity=1e6)
    reg = ClassRegistry([voice_class()])
    return configure(
        net, reg, {"voice": alpha}, pairs=RING_PAIRS,
        routing="shortest-path",
    )


def make_controller(cfg):
    return UtilizationAdmissionController(
        cfg.graph, cfg.registry, cfg.alphas, cfg.routes
    )


# --------------------------------------------------------------------- #
# AlphaLadder
# --------------------------------------------------------------------- #


class TestAlphaLadder:
    def test_accessors(self):
        ladder = AlphaLadder((0.1, 0.2, 0.4))
        assert len(ladder) == 3
        assert ladder.base == 0.4
        assert ladder.top == 2
        assert ladder.alpha(0) == 0.1
        assert ladder.factor(0) == pytest.approx(0.25)
        assert ladder.factor(2) == pytest.approx(1.0)
        assert ladder.to_dict() == {
            "rungs": [0.1, 0.2, 0.4],
            "base": 0.4,
            "rejected": [],
        }

    def test_rungs_must_strictly_increase(self):
        with pytest.raises(ConfigurationError):
            AlphaLadder((0.2, 0.1))
        with pytest.raises(ConfigurationError):
            AlphaLadder((0.2, 0.2))

    def test_rungs_must_be_positive_and_nonempty(self):
        with pytest.raises(ConfigurationError):
            AlphaLadder(())
        with pytest.raises(ConfigurationError):
            AlphaLadder((-0.1, 0.2))


class TestCertifyLadder:
    def test_candidates_partitioned_and_every_rung_certified(self):
        cfg = ring_cfg(alpha=0.3)
        ladder = certify_ladder(
            cfg.network,
            list(cfg.routes.values()),
            cfg.registry,
            cfg.alphas,
            [0.05, 0.1, 0.9, 0.0, -0.5, 0.3],
        )
        assert ladder.rungs == (0.05, 0.1, 0.3)
        assert ladder.base == 0.3
        assert set(ladder.rejected) == {-0.5, 0.0, 0.9}
        # The acceptance criterion: every reachable operating point
        # re-passes the same fixed-point verification the configuration
        # pipeline ran — no uncertified alpha is ever applicable.
        routes = [list(r) for r in cfg.routes.values()]
        for rung in ladder.rungs:
            report = verify_assignment(
                cfg.network, routes, cfg.registry, {"voice": rung}
            )
            assert report.success, f"rung {rung} lost its certificate"

    def test_failing_base_refuses_to_build(self):
        # alpha 0.9 misses the voice deadline on this ring (see
        # TestCertifyLadder above: 0.9 lands in `rejected` as a
        # candidate) — as a *base* it must abort construction instead.
        cfg = ring_cfg(alpha=0.3)
        with pytest.raises(ConfigurationError):
            certify_ladder(
                cfg.network,
                list(cfg.routes.values()),
                cfg.registry,
                {"voice": 0.9},
                [0.1],
            )

    def test_empty_base_rejected(self):
        cfg = ring_cfg(alpha=0.3)
        with pytest.raises(ConfigurationError):
            certify_ladder(
                cfg.network, list(cfg.routes.values()), cfg.registry,
                {}, [0.1],
            )


# --------------------------------------------------------------------- #
# AlphaGovernor
# --------------------------------------------------------------------- #

LADDER = AlphaLadder((0.1, 0.2, 0.4))
PRESSED = GovernorSample(queue_delay=0.0, headroom=0.0)
DRAINED = GovernorSample(queue_delay=0.0, headroom=1.0)


class TestAlphaGovernor:
    def test_starts_at_top(self):
        governor = AlphaGovernor(LADDER)
        assert governor.at_top
        assert governor.effective_alpha == LADDER.base
        assert governor.factor == 1.0

    def test_overuse_streak_triggers_dec(self):
        governor = AlphaGovernor(LADDER)
        # One pressed sample is not enough (overuse_samples=2)...
        assert governor.observe(PRESSED) is None
        assert governor.signal == "normal"
        # ...two consecutive are.
        factor = governor.observe(PRESSED)
        assert factor == pytest.approx(0.5)
        assert governor.rung == 1
        assert governor.signal == "overuse"
        assert governor.action == "dec"
        assert governor.dec_count == 1

    def test_hold_hysteresis_rate_limits_moves(self):
        governor = AlphaGovernor(LADDER)
        moves = []
        for _ in range(10):
            if governor.observe(PRESSED) is not None:
                moves.append(governor.samples)
        # First move at sample 2 (streak), then hold_samples=4 quiet
        # samples before the next: 2, then 2+4=6 at the earliest.
        assert moves[0] == 2
        assert moves[1] - moves[0] >= GovernorConfig().hold_samples
        # Pinned to the bottom rung once the ladder is exhausted.
        assert governor.rung == 0
        assert governor.effective_alpha == 0.1

    def test_underuse_streak_climbs_back(self):
        governor = AlphaGovernor(LADDER)
        governor.observe(PRESSED)
        governor.observe(PRESSED)
        assert governor.rung == 1
        factors = [governor.observe(DRAINED) for _ in range(4)]
        assert factors[:3] == [None, None, None]
        assert factors[3] == pytest.approx(1.0)  # underuse_samples=4
        assert governor.at_top
        assert governor.inc_count == 1

    def test_never_leaves_ladder_bounds(self):
        governor = AlphaGovernor(LADDER)
        for _ in range(50):
            governor.observe(PRESSED)
        assert governor.rung == 0
        for _ in range(50):
            governor.observe(DRAINED)
        assert governor.rung == LADDER.top
        for _ in range(50):
            governor.observe(DRAINED)
        assert governor.rung == LADDER.top

    def test_delay_gradient_detector(self):
        # Rising above-threshold delay presses even with full headroom.
        governor = AlphaGovernor(LADDER)
        assert governor.observe(
            GovernorSample(queue_delay=0.010, headroom=1.0)
        ) is None
        factor = governor.observe(
            GovernorSample(queue_delay=0.012, headroom=1.0)
        )
        assert factor == pytest.approx(0.5)
        # A *falling* above-threshold delay is not overuse (and full
        # headroom is not underuse while the queue sits above
        # threshold): the governor holds.
        held = governor.observe(
            GovernorSample(queue_delay=0.008, headroom=1.0)
        )
        assert held is None
        assert governor.signal == "normal"

    def test_snapshot_shape(self):
        governor = AlphaGovernor(LADDER)
        governor.observe(PRESSED)
        snap = governor.snapshot()
        assert snap == {
            "rung": 2,
            "rungs": 3,
            "effective_alpha": 0.4,
            "base_alpha": 0.4,
            "factor": 1.0,
            "action": "hold",
            "signal": "normal",
            "samples": 1,
            "inc": 0,
            "dec": 0,
            "hold": 1,
        }

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            GovernorConfig(delay_threshold=-1.0)
        with pytest.raises(ConfigurationError):
            GovernorConfig(headroom_low=0.5, headroom_high=0.1)
        with pytest.raises(ConfigurationError):
            GovernorConfig(hold_samples=0)


# --------------------------------------------------------------------- #
# Preemptor
# --------------------------------------------------------------------- #


def fill(controller, pair, n, priority, prefix):
    """Admit ``n`` flows of ``priority`` on ``pair``; all must land."""
    src, dst = pair
    flows = []
    for i in range(n):
        flow = FlowSpec(f"{prefix}{i}", "voice", src, dst, priority=priority)
        decision = controller.admit(flow)
        assert decision.admitted, decision.reason
        flows.append(flow)
    return flows


class TestPreemptor:
    def test_evicts_lowest_priority_and_admits(self):
        cfg = ring_cfg()
        controller = make_controller(cfg)
        fill(controller, ("r0", "r2"), 3, "elastic", "e")
        hard = FlowSpec("h0", "voice", "r0", "r2", priority="hard_rt")
        assert not controller.admit(hard).admitted

        preemptor = Preemptor(controller)
        outcome = preemptor.try_admit(hard)
        assert outcome.admitted
        assert len(outcome.evicted) == 1
        assert outcome.evicted[0] == "e0"  # deterministic tie-break
        assert controller.is_established("h0")
        assert not controller.is_established("e0")
        assert controller.verify_invariants() == []
        assert preemptor.preempted_total == 1
        assert preemptor.preempted_admits == 1

    def test_never_evicts_protected_priority(self):
        cfg = ring_cfg()
        controller = make_controller(cfg)
        fill(controller, ("r0", "r2"), 3, "hard_rt", "h")
        before = {f.flow_id for f in controller.established_flows}
        used = controller.ledger.used("voice").copy()

        preemptor = Preemptor(controller)
        outcome = preemptor.try_admit(
            FlowSpec("h9", "voice", "r0", "r2", priority="hard_rt")
        )
        assert not outcome.admitted
        assert outcome.evicted == ()
        assert outcome.reason == "no lower-priority flows cover the deficit"
        # Zero side effects on a failed plan.
        assert {f.flow_id for f in controller.established_flows} == before
        assert (controller.ledger.used("voice") == used).all()
        assert preemptor.preempted_total == 0

    def test_soft_rt_victims_rank_below_hard_rt(self):
        cfg = ring_cfg()
        controller = make_controller(cfg)
        fill(controller, ("r0", "r2"), 2, "soft_rt", "s")
        fill(controller, ("r0", "r2"), 1, "elastic", "e")
        preemptor = Preemptor(controller)
        outcome = preemptor.try_admit(
            FlowSpec("h0", "voice", "r0", "r2", priority="hard_rt")
        )
        assert outcome.admitted
        # The elastic flow is strictly lower-ranked than the soft_rt
        # pair, so it is sacrificed first.
        assert outcome.evicted == ("e0",)

    def test_ineligible_arrival_priority(self):
        cfg = ring_cfg()
        controller = make_controller(cfg)
        fill(controller, ("r0", "r2"), 3, "elastic", "e")
        preemptor = Preemptor(controller)
        outcome = preemptor.try_admit(
            FlowSpec("s0", "voice", "r0", "r2", priority="soft_rt")
        )
        assert not outcome.admitted
        assert outcome.reason == "priority not eligible"

    def test_stale_rejection_readmits_without_sacrifice(self):
        # In a batched preemption pass every decision precedes any
        # eviction, so a flow can reach try_admit after an earlier
        # sacrifice already freed its route.  The preemptor must
        # re-admit plainly: no victims, no preemption counters.
        cfg = ring_cfg()
        controller = make_controller(cfg)
        preemptor = Preemptor(controller)
        outcome = preemptor.try_admit(
            FlowSpec("h0", "voice", "r0", "r2", priority="hard_rt")
        )
        assert outcome.admitted
        assert outcome.evicted == ()
        assert outcome.decision is not None
        assert controller.is_established("h0")
        assert preemptor.preempted_total == 0
        assert preemptor.preempted_admits == 0

    def test_blocked_route_is_not_preempted(self):
        cfg = ring_cfg()
        controller = make_controller(cfg)
        flows = fill(controller, ("r0", "r2"), 3, "elastic", "e")
        route = controller.committed_route(flows[0].flow_id)
        controller.block_servers(
            [int(s) for s in cfg.graph.route_servers(route)]
        )
        preemptor = Preemptor(controller)
        outcome = preemptor.try_admit(
            FlowSpec("h0", "voice", "r0", "r2", priority="hard_rt")
        )
        assert not outcome.admitted
        assert outcome.reason == "route crosses a blocked server"

    def test_degraded_ledger_deficit_needs_multiple_victims(self):
        # Under a governor rung the effective capacity shrinks below
        # current usage: admitting one hard flow then requires freeing
        # the whole overhang, not just one slot.
        cfg = ring_cfg()
        controller = make_controller(cfg)
        fill(controller, ("r0", "r2"), 3, "elastic", "e")
        controller.enter_degraded_mode(1 / 3)  # 3 slots -> 1 effective
        preemptor = Preemptor(controller)
        outcome = preemptor.try_admit(
            FlowSpec("h0", "voice", "r0", "r2", priority="hard_rt")
        )
        assert outcome.admitted
        assert set(outcome.evicted) == {"e0", "e1", "e2"}
        assert controller.is_established("h0")
        assert controller.verify_invariants() == []

    def test_max_victims_caps_the_plan(self):
        cfg = ring_cfg()
        controller = make_controller(cfg)
        fill(controller, ("r0", "r2"), 3, "elastic", "e")
        controller.enter_degraded_mode(1 / 3)  # deficit of 3 per server
        preemptor = Preemptor(
            controller, PreemptionPolicy(max_victims=2)
        )
        before = {f.flow_id for f in controller.established_flows}
        outcome = preemptor.try_admit(
            FlowSpec("h0", "voice", "r0", "r2", priority="hard_rt")
        )
        assert not outcome.admitted
        assert outcome.evicted == ()
        assert {f.flow_id for f in controller.established_flows} == before

    def test_policy_validation(self):
        with pytest.raises(AdmissionError):
            PreemptionPolicy(max_victims=0)


class TestBatchPreemptionAudit:
    def test_same_batch_victim_audit_replays(self, tmp_path):
        """A flow admitted and evicted by the *same* coalesced batch
        must appear in the audit log as admitted before its
        ``reason="preempted"`` release.

        The batch kernel decides every request before the preemption
        pass sacrifices anyone, so the victim's admit record must be
        written with the kernel's decisions and its eviction with the
        rescue sequence — otherwise replaying the log sees a release
        of a flow not yet established (the ordering bug the overload
        smoke caught).
        """
        import asyncio

        from repro.service import (
            AdmissionService,
            AsyncServiceClient,
            ServiceConfig,
        )
        from repro.service.audit import iter_audit, verify_audit

        cfg = ring_cfg()
        controller = make_controller(cfg)
        audit_path = str(tmp_path / "audit.jsonl")
        service = AdmissionService(
            controller,
            ServiceConfig(max_delay=0.05, audit_path=audit_path),
            preemptor=Preemptor(controller),
        )

        async def run():
            await service.start_tcp("127.0.0.1", 0)
            client = await AsyncServiceClient.connect_tcp(
                "127.0.0.1", service.port
            )
            # Fill two of the three route slots in their own batches,
            # so the coalesced pair below finds exactly one slot: the
            # kernel admits the elastic arrival into it and rejects
            # the hard-RT one, and the preemption pass must then evict
            # the elastic flow admitted moments earlier in the same
            # batch (its id sorts before z0/z1 in the victim
            # tie-break).
            for i in range(2):
                decision = await client.admit(FlowSpec(
                    f"z{i}", "voice", "r0", "r2", priority="elastic",
                ))
                assert decision.admitted
            decisions = await asyncio.gather(
                client.admit(FlowSpec(
                    "a-victim", "voice", "r0", "r2",
                    priority="elastic",
                )),
                client.admit(FlowSpec(
                    "rescued", "voice", "r0", "r2",
                    priority="hard_rt",
                )),
            )
            await client.close()
            await service.drain()
            return decisions

        elastic_dec, hard_dec = asyncio.run(run())
        assert service.coalescer.largest_batch == 2, (
            "arrivals did not coalesce into one batch"
        )
        assert elastic_dec.admitted
        assert hard_dec.admitted
        assert service.coalescer.preempted_admits == 1
        assert controller.is_established("rescued")
        assert not controller.is_established("a-victim")

        records = list(iter_audit(audit_path))
        report = verify_audit(records)
        assert report["ok"], report["problems"]
        assert report["preempted"] == 1
        ordered = [
            (r.get("kind"), r.get("flow_id") or r["flow"]["id"])
            for r in records
            if r.get("kind") in ("admit", "release")
        ]
        assert ordered.index(("admit", "a-victim")) < ordered.index(
            ("release", "a-victim")
        )
