"""End-to-end simulator behavior."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation import PacketPattern, Simulator
from repro.topology import LinkServerGraph, line_network, star_network
from repro.traffic import ClassRegistry, FlowSpec, TrafficClass, voice_class


def _sim(graph, registry):
    return Simulator(graph, registry)


def _voice_flow(i, src, dst):
    return FlowSpec(f"v{i}", "voice", src, dst)


def test_packet_conservation(line4_graph, voice_registry):
    sim = _sim(line4_graph, voice_registry)
    sim.add_flow(
        _voice_flow(0, "r0", "r3"),
        ["r0", "r1", "r2", "r3"],
        PacketPattern("periodic", packet_size=640),
    )
    report = sim.run(horizon=1.0)
    assert report.conserved
    assert report.packets_in_flight == 0  # drained
    assert report.packets_injected == 50  # 32 kbps / 640 b = 50 pps


def test_unloaded_delay_is_pure_transmission(line4_graph, voice_registry):
    """A lone periodic flow sees only transmission time per hop."""
    sim = _sim(line4_graph, voice_registry)
    hops = 3
    sim.add_flow(
        _voice_flow(0, "r0", "r3"),
        ["r0", "r1", "r2", "r3"],
        PacketPattern("periodic", packet_size=640),
    )
    report = sim.run(horizon=0.5)
    expected = hops * 640 / 100e6
    np.testing.assert_allclose(report.e2e["voice"], expected, rtol=1e-9)


def test_delay_statistics_api(line4_graph, voice_registry):
    sim = _sim(line4_graph, voice_registry)
    sim.add_flow(
        _voice_flow(0, "r0", "r2"),
        ["r0", "r1", "r2"],
        PacketPattern("greedy", packet_size=640),
    )
    report = sim.run(horizon=0.5)
    assert report.max_e2e("voice") >= report.mean_e2e("voice")
    assert report.percentile_e2e("voice", 50) <= report.max_e2e("voice")
    assert report.max_e2e("ghost") == 0.0
    assert np.isnan(report.mean_e2e("ghost"))


def test_contention_increases_delay(voice_registry):
    """Converging greedy flows queue at the shared hub output."""
    net = star_network(3)
    graph = LinkServerGraph(net)
    sim = _sim(graph, voice_registry)
    for b in range(2):
        for i in range(40):
            sim.add_flow(
                FlowSpec(f"v{b}_{i}", "voice", f"leaf{b}", "leaf2"),
                [f"leaf{b}", "hub", "leaf2"],
                PacketPattern("greedy", packet_size=640),
            )
    report = sim.run(horizon=0.5)
    lone_delay = 2 * 640 / 100e6
    assert report.max_e2e("voice") > lone_delay


def test_static_priority_isolation():
    """Low-priority flooding cannot hurt voice beyond one packet time."""
    bulk = TrafficClass("bulk", burst=100_000, rate=40e6, deadline=10.0,
                        priority=9)
    registry = ClassRegistry([voice_class(), bulk])
    net = star_network(3)
    graph = LinkServerGraph(net)

    def run(with_bulk: bool):
        sim = _sim(graph, registry)
        for i in range(10):
            sim.add_flow(
                FlowSpec(f"v{i}", "voice", "leaf0", "leaf2"),
                ["leaf0", "hub", "leaf2"],
                PacketPattern("greedy", packet_size=640),
            )
        if with_bulk:
            sim.add_flow(
                FlowSpec("b", "bulk", "leaf1", "leaf2"),
                ["leaf1", "hub", "leaf2"],
                PacketPattern("greedy", packet_size=12_000, seed=1),
            )
        return sim.run(horizon=0.3)

    quiet = run(False)
    loaded = run(True)
    # One low-priority packet (12 kb) per hop can block a voice packet.
    blocking = 2 * 12_000 / 100e6
    assert loaded.max_e2e("voice") <= quiet.max_e2e("voice") + blocking + 1e-9


def test_hop_metrics_recorded(line4_graph, voice_registry):
    sim = _sim(line4_graph, voice_registry)
    route = ["r0", "r1", "r2"]
    sim.add_flow(
        _voice_flow(0, "r0", "r2"), route,
        PacketPattern("periodic", packet_size=640),
    )
    report = sim.run(horizon=0.2)
    servers = line4_graph.route_servers(route)
    for s in servers:
        assert report.recorder.max_hop_delay(int(s), "voice") > 0.0
    worst = report.recorder.worst_hop_delays("voice")
    assert set(worst) == {int(s) for s in servers}


def test_run_without_flows_raises(line4_graph, voice_registry):
    with pytest.raises(SimulationError):
        _sim(line4_graph, voice_registry).run(horizon=1.0)


def test_invalid_horizon(line4_graph, voice_registry):
    sim = _sim(line4_graph, voice_registry)
    sim.add_flow(
        _voice_flow(0, "r0", "r1"), ["r0", "r1"],
        PacketPattern("periodic", packet_size=640),
    )
    with pytest.raises(SimulationError):
        sim.run(horizon=0.0)


def test_no_drain_stops_at_horizon(line4_graph, voice_registry):
    sim = _sim(line4_graph, voice_registry)
    sim.add_flow(
        _voice_flow(0, "r0", "r3"), ["r0", "r1", "r2", "r3"],
        PacketPattern("greedy", packet_size=640),
    )
    report = sim.run(horizon=0.05, drain=False)
    assert report.conserved  # in-flight accounted, not lost


def test_deterministic_replay(line4_graph, voice_registry):
    def run():
        sim = _sim(line4_graph, voice_registry)
        for i in range(5):
            sim.add_flow(
                _voice_flow(i, "r0", "r3"), ["r0", "r1", "r2", "r3"],
                PacketPattern("poisson", packet_size=640, seed=i),
            )
        return sim.run(horizon=0.5)

    a, b = run(), run()
    np.testing.assert_array_equal(a.e2e["voice"], b.e2e["voice"])
    assert a.events_processed == b.events_processed
