"""Heterogeneous link capacities: the dumbbell bottleneck scenario.

The paper assumes uniform capacity ``C``; the library supports per-link
capacities end to end (ledger slots, flow-aware analysis, simulator).
These tests exercise that support on the classic dumbbell, where a slow
bottleneck link dominates every decision.
"""

import numpy as np
import pytest

from repro.admission import UtilizationAdmissionController, UtilizationLedger
from repro.analysis import flow_aware_delays
from repro.errors import TopologyError
from repro.routing import shortest_path_routes
from repro.simulation import PacketPattern, Simulator
from repro.topology import LinkServerGraph, dumbbell_network
from repro.traffic import ClassRegistry, FlowSpec, voice_class


@pytest.fixture()
def dumbbell():
    # 3 left leaves, 2 right leaves; 10 Mbps bottleneck, 100 Mbps access.
    net = dumbbell_network(3, 2, bottleneck_capacity=10e6)
    return net, LinkServerGraph(net)


@pytest.fixture()
def registry():
    return ClassRegistry.two_class(voice_class())


def _routes(net):
    pairs = [
        (f"L{i}", f"R{j}") for i in range(3) for j in range(2)
    ]
    return shortest_path_routes(net, pairs)


class TestLedgerHeterogeneous:
    def test_slots_follow_link_capacity(self, dumbbell, registry):
        net, graph = dumbbell
        ledger = UtilizationLedger(graph, registry, {"voice": 0.32})
        slots = ledger.slots("voice")
        bottleneck = graph.server_index("hubL", "hubR")
        access = graph.server_index("L0", "hubL")
        assert slots[bottleneck] == int(0.32 * 10e6 / 32_000)   # 100
        assert slots[access] == int(0.32 * 100e6 / 32_000)      # 1000

    def test_uniform_capacity_query_rejected(self, dumbbell):
        net, graph = dumbbell
        with pytest.raises(TopologyError):
            graph.uniform_capacity()


class TestAdmissionAtBottleneck:
    def test_bottleneck_caps_admission(self, dumbbell, registry):
        net, graph = dumbbell
        ctrl = UtilizationAdmissionController(
            graph, registry, {"voice": 0.32}, _routes(net)
        )
        cap = int(0.32 * 10e6 / 32_000)  # 100 flows through the middle
        admitted = 0
        for i in range(cap + 50):
            src, dst = f"L{i % 3}", f"R{i % 2}"
            if ctrl.admit(FlowSpec(i, "voice", src, dst)).admitted:
                admitted += 1
        assert admitted == cap
        # Access links are far from full; the bottleneck is the binding
        # constraint.
        k, ratio = ctrl.ledger.bottleneck("voice")
        assert k == graph.server_index("hubL", "hubR")
        assert ratio == pytest.approx(1.0)


class TestAnalysisHeterogeneous:
    def test_flow_aware_sees_the_slow_link(self, dumbbell, registry):
        net, graph = dumbbell
        flows = [
            FlowSpec(
                f"f{i}", "voice", f"L{i % 3}", "R0",
                route=(f"L{i % 3}", "hubL", "hubR", "R0"),
            )
            for i in range(60)
        ]
        res = flow_aware_delays(graph, flows, registry)
        assert res.converged
        d = res.server_delays["voice"]
        bottleneck = graph.server_index("hubL", "hubR")
        # The 10 Mbps link dominates every other server's delay.
        others = np.delete(d, bottleneck)
        assert d[bottleneck] >= others.max()

    def test_simulated_delay_dominated_by_bottleneck(self, dumbbell,
                                                     registry):
        net, graph = dumbbell
        sim = Simulator(graph, registry)
        for i in range(60):
            sim.add_flow(
                FlowSpec(f"f{i}", "voice", f"L{i % 3}", "R0"),
                [f"L{i % 3}", "hubL", "hubR", "R0"],
                PacketPattern("greedy", packet_size=640, seed=i),
            )
        report = sim.run(horizon=0.5)
        assert report.conserved
        bottleneck = graph.server_index("hubL", "hubR")
        worst_bottleneck = report.recorder.max_hop_delay(
            bottleneck, "voice"
        )
        for s in range(graph.num_servers):
            if s == bottleneck:
                continue
            assert report.recorder.max_hop_delay(s, "voice") <= (
                worst_bottleneck + 1e-12
            )

    def test_sim_within_flow_aware_bound(self, dumbbell, registry):
        """Measured delays stay under the flow-aware analysis even with
        mixed capacities."""
        net, graph = dumbbell
        flows = []
        sim = Simulator(graph, registry)
        for i in range(30):
            route = (f"L{i % 3}", "hubL", "hubR", "R0")
            flow = FlowSpec(f"f{i}", "voice", route[0], "R0", route=route)
            flows.append(flow)
            sim.add_flow(
                flow, list(route),
                PacketPattern("greedy", packet_size=640, seed=i),
            )
        report = sim.run(horizon=0.5)
        analysis = flow_aware_delays(graph, flows, registry)
        assert analysis.converged
        bound = max(analysis.flow_delays.values())
        allowance = 3 * 640 / 10e6 + 640 / 100e6  # SF on the slow wire
        assert report.max_e2e("voice") <= bound + allowance
