"""Link-failure repair of configured networks."""

import pytest

from repro.config import configure
from repro.config.repair import repair_after_link_failure
from repro.errors import ConfigurationError, TopologyError, UnknownLinkError
from repro.traffic import ClassRegistry, video_class, voice_class

PAIRS = [
    ("Seattle", "Miami"),
    ("Boston", "Phoenix"),
    ("Chicago", "Dallas"),
    ("NewYork", "LosAngeles"),
    ("Denver", "WashingtonDC"),
]


@pytest.fixture(scope="module")
def cfg(mci, voice_registry):
    return configure(
        mci, voice_registry, {"voice": 0.35}, pairs=PAIRS,
        routing="shortest-path",
    )


class TestWithoutLink:
    def test_removes_exactly_one_link(self, mci):
        degraded = mci.without_link("Chicago", "NewYork")
        assert degraded.num_physical_links == mci.num_physical_links - 1
        assert not degraded.has_link("Chicago", "NewYork")
        assert degraded.has_link("Seattle", "Chicago")
        # Originals untouched.
        assert mci.has_link("Chicago", "NewYork")

    def test_unknown_link_rejected(self, mci):
        with pytest.raises(UnknownLinkError):
            mci.without_link("Seattle", "Miami")

    def test_disconnecting_removal_rejected(self):
        from repro.topology import line_network

        net = line_network(3)
        with pytest.raises(TopologyError):
            net.without_link("r0", "r1")


class TestRepair:
    def test_repair_reroutes_only_affected(self, cfg):
        # Chicago--NewYork carries several of these SP routes.
        result = repair_after_link_failure(cfg, ("Chicago", "NewYork"))
        assert result.success
        assert result.affected_pairs  # something actually broke
        repaired = result.repaired
        assert repaired.verification.success
        # Unaffected pairs keep their exact routes.
        for pair, path in cfg.routes.items():
            if pair not in result.affected_pairs:
                assert repaired.routes[pair] == path
        # Affected pairs avoid the dead link.
        for pair in result.affected_pairs:
            path = repaired.routes[pair]
            assert not any(
                {a, b} == {"Chicago", "NewYork"}
                for a, b in zip(path, path[1:])
            )

    def test_unaffected_link_is_a_noop_repair(self, cfg):
        # Pick a link no configured route uses.
        used = set()
        for path in cfg.routes.values():
            used.update(frozenset(e) for e in zip(path, path[1:]))
        spare = None
        for link in cfg.network.directed_links():
            if frozenset(link.key) not in used:
                spare = link.key
                break
        assert spare is not None
        result = repair_after_link_failure(cfg, spare)
        assert result.success
        assert result.affected_pairs == []
        assert set(result.repaired.routes) == set(cfg.routes)

    def test_repair_preserves_alpha(self, cfg):
        result = repair_after_link_failure(cfg, ("Chicago", "NewYork"))
        assert result.repaired.alphas == cfg.alphas

    def test_repaired_config_is_operational(self, cfg):
        from repro.traffic import FlowSpec

        result = repair_after_link_failure(cfg, ("Chicago", "NewYork"))
        ctrl = result.repaired.controller()
        for pair in PAIRS:
            assert ctrl.admit(
                FlowSpec(f"f{pair}", "voice", pair[0], pair[1])
            ).admitted

    def test_multiclass_rejected(self, mci):
        registry = ClassRegistry([voice_class(), video_class()])
        cfg2 = configure(
            mci, registry, {"voice": 0.1, "video": 0.1},
            pairs=PAIRS, routing="shortest-path",
        )
        with pytest.raises(ConfigurationError):
            repair_after_link_failure(cfg2, ("Chicago", "NewYork"))

    def test_no_safe_repair_reports_failure(self):
        """A skinny ring at its peak alpha verifies, but after a cut the
        only detour is too long to re-verify: the repair must fail
        gracefully (no exception) naming the stuck pair and reason."""
        from repro.topology import ring_network
        from repro.traffic import ClassRegistry

        net = ring_network(8, capacity=10e6)
        registry = ClassRegistry([voice_class()])
        pairs = [(f"r{i}", f"r{(i + 2) % 8}") for i in range(8)]
        cfg = configure(
            net, registry, {"voice": 0.5}, pairs=pairs,
            routing="shortest-path",
        )
        result = repair_after_link_failure(cfg, ("r1", "r2"))
        assert not result.success
        assert result.repaired is None
        assert result.failed_pair is not None
        assert "no safe replacement route" in result.reason
        assert result.affected_pairs  # the cut did strand routes

    def test_disconnecting_failure_is_failed_result(self):
        """Cutting a line network in two cannot raise out of the repair:
        it returns a failed result covering every configured pair."""
        from repro.topology import line_network
        from repro.traffic import ClassRegistry

        net = line_network(4)
        registry = ClassRegistry([voice_class()])
        cfg = configure(
            net, registry, {"voice": 0.2},
            pairs=[("r0", "r3"), ("r3", "r0")],
            routing="shortest-path",
        )
        result = repair_after_link_failure(cfg, ("r1", "r2"))
        assert not result.success
        assert result.repaired is None
        assert result.reason
        assert set(result.affected_pairs) == set(cfg.routes)

    def test_survivor_guarantee_invariant(self, cfg):
        """Survivors of a repair keep their exact routes AND the repaired
        configuration re-verifies with them pinned — the certificate that
        in-flight survivor traffic never sees a deadline miss."""
        result = repair_after_link_failure(cfg, ("Chicago", "NewYork"))
        assert result.success
        repaired = result.repaired
        affected = set(result.affected_pairs)
        survivors = {
            pair: path
            for pair, path in cfg.routes.items()
            if pair not in affected
        }
        assert survivors  # scenario sanity: someone survived
        for pair, path in survivors.items():
            assert repaired.routes[pair] == path
        # The repaired bundle carries a fresh successful verification
        # over survivors + replacements at the original alpha.
        assert repaired.verification.success
        assert repaired.alphas == cfg.alphas

    def test_repair_under_full_demand(self, mci, voice_registry):
        """All 306 pairs at a moderate alpha: the repair still finds safe
        replacements for everything the failed link carried."""
        full = configure(
            mci, voice_registry, {"voice": 0.30},
            routing="shortest-path",
        )
        result = repair_after_link_failure(full, ("Chicago", "NewYork"))
        assert result.success
        assert len(result.affected_pairs) > 10
        assert result.repaired.verification.success
