"""v2 binary framing codec: round-trips, shape errors, packed flows."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.service import protocol as wire
from repro.traffic.flows import FlowSpec


def payload_of(frame: bytes) -> bytes:
    """Strip and check the length prefix of one encoded v2 frame."""
    assert len(frame) >= wire.FRAME_HEADER_BYTES
    length = int.from_bytes(frame[: wire.FRAME_HEADER_BYTES], "big")
    payload = frame[wire.FRAME_HEADER_BYTES :]
    assert len(payload) == length
    return payload


class TestFrameCodec:
    def test_json_carrier_round_trip(self):
        obj = {"id": 7, "op": "stats"}
        tag, decoded = wire.decode_payload_v2(
            payload_of(wire.encode_frame_v2(obj))
        )
        assert tag == wire.TAG_JSON
        assert decoded == obj

    def test_bulk_request_round_trip(self):
        subops = [
            [wire.BULK_ADMIT, "f1", "voice", "A", "B", None],
            [wire.BULK_ADMIT, 9, "voice", "A", "C", ["A", "B", "C"]],
            [wire.BULK_RELEASE, "f1"],
        ]
        tag, obj = wire.decode_payload_v2(
            payload_of(wire.encode_bulk_request("r-1", subops))
        )
        assert tag == wire.TAG_BULK
        rid, decoded = wire.parse_bulk_request(obj)
        assert rid == "r-1"
        assert decoded == subops

    def test_bulk_response_round_trip(self):
        slots = [
            [wire.SLOT_ADMITTED, "", 64],
            [wire.SLOT_REJECTED, "utilization bound", 64],
            [wire.SLOT_RELEASED],
            [wire.SLOT_ERROR, wire.ADMISSION_ERROR, "already established"],
        ]
        tag, obj = wire.decode_payload_v2(
            payload_of(wire.encode_bulk_response(3, slots))
        )
        assert tag == wire.TAG_RESULTS
        assert obj == [3, slots]

    def test_header_is_big_endian_u32(self):
        frame = wire.encode_frame_v2({"id": 1, "op": "health"})
        assert frame[: wire.FRAME_HEADER_BYTES] == len(
            frame[wire.FRAME_HEADER_BYTES :]
        ).to_bytes(4, "big")

    def test_tag_bytes_are_the_documented_ascii_letters(self):
        assert wire.TAG_JSON == ord("J")
        assert wire.TAG_BULK == ord("B")
        assert wire.TAG_RESULTS == ord("R")


class TestDecodeErrors:
    def err(self, payload: bytes, **kw) -> ProtocolError:
        with pytest.raises(ProtocolError) as exc_info:
            wire.decode_payload_v2(payload, **kw)
        return exc_info.value

    def test_empty_payload(self):
        assert self.err(b"").code == wire.BAD_REQUEST

    def test_unknown_tag(self):
        err = self.err(b"\x00{}")
        assert err.code == wire.BAD_REQUEST
        assert "unknown v2 frame tag 0x00" in str(err)

    def test_oversized_payload(self):
        err = self.err(b"J" + b"x" * 64, max_bytes=32)
        assert err.code == wire.FRAME_TOO_LARGE

    def test_malformed_json_body(self):
        assert self.err(b"J{nope").code == wire.BAD_REQUEST

    def test_carrier_must_hold_an_object(self):
        err = self.err(b"J[1,2]")
        assert "must hold a JSON object" in str(err)

    def test_bulk_body_shape(self):
        for body in (b"{}", b"[1]", b"[1,2,3]", b'[1,"x"]'):
            err = self.err(b"B" + body)
            assert err.code == wire.BAD_REQUEST

    def test_bulk_request_id_type(self):
        for rid in ("null", "true", "[1]", "1.5"):
            err = self.err(b"B[" + rid.encode() + b",[]]")
            assert "request id" in str(err)


class TestBulkAdmitFlow:
    def test_route_less_fast_path_builds_real_flowspec(self):
        flow = wire.bulk_admit_flow(
            [wire.BULK_ADMIT, "f1", "voice", "A", "B", None]
        )
        assert isinstance(flow, FlowSpec)
        assert (flow.flow_id, flow.class_name) == ("f1", "voice")
        assert (flow.source, flow.destination) == ("A", "B")
        assert flow.route is None
        # The fast path must be indistinguishable from the constructor.
        via_init = FlowSpec("f1", "voice", "A", "B", None)
        assert flow == via_init

    def test_pinned_route_goes_through_the_constructor(self):
        flow = wire.bulk_admit_flow(
            [wire.BULK_ADMIT, "f2", "voice", "A", "C", ["A", "B", "C"]]
        )
        assert flow.route == ("A", "B", "C")

    def test_wrong_arity(self):
        with pytest.raises(ProtocolError, match="6 or 7 fields, got 2"):
            wire.bulk_admit_flow([wire.BULK_ADMIT, "f1"])

    def test_flow_id_must_be_scalar(self):
        for fid in (None, True, 1.5, ["x"]):
            with pytest.raises(
                ProtocolError, match="flow id must be a string or integer"
            ):
                wire.bulk_admit_flow(
                    [wire.BULK_ADMIT, fid, "voice", "A", "B", None]
                )

    def test_cls_must_be_string(self):
        with pytest.raises(ProtocolError, match="cls must be a string"):
            wire.bulk_admit_flow([wire.BULK_ADMIT, "f1", 3, "A", "B", None])

    def test_source_equals_destination_matches_constructor_message(self):
        with pytest.raises(ProtocolError) as exc_info:
            wire.bulk_admit_flow(
                [wire.BULK_ADMIT, "f1", "voice", "A", "A", None]
            )
        with pytest.raises(Exception) as ctor_info:
            FlowSpec("f1", "voice", "A", "A", None)
        # The fast path replicates the constructor's message verbatim.
        assert str(ctor_info.value) in str(exc_info.value)

    def test_short_route_rejected(self):
        with pytest.raises(ProtocolError, match=">= 2 routers"):
            wire.bulk_admit_flow(
                [wire.BULK_ADMIT, "f1", "voice", "A", "B", ["A"]]
            )

    def test_bad_pinned_route_wrapped_as_protocol_error(self):
        # Route endpoints must match src/dst: the constructor raises
        # TrafficError, surfaced as a bad_request ProtocolError.
        with pytest.raises(ProtocolError) as exc_info:
            wire.bulk_admit_flow(
                [wire.BULK_ADMIT, "f1", "voice", "A", "B", ["C", "B"]]
            )
        assert exc_info.value.code == wire.BAD_REQUEST


class TestPackUnpack:
    def test_pack_batch_ops_positional_form(self):
        ops = [
            {"op": "admit", "flow": {"id": "f1", "cls": "voice",
                                     "src": "A", "dst": "B"}},
            {"op": "admit", "flow": {"id": "f2", "cls": "voice",
                                     "src": "A", "dst": "C",
                                     "route": ["A", "B", "C"]}},
            {"op": "release", "flow_id": "f1"},
        ]
        assert wire.pack_batch_ops(ops) == [
            [wire.BULK_ADMIT, "f1", "voice", "A", "B", None],
            [wire.BULK_ADMIT, "f2", "voice", "A", "C", ["A", "B", "C"]],
            [wire.BULK_RELEASE, "f1"],
        ]

    def test_pack_batch_ops_refuses_exotic_entries(self):
        # Anything off the packed shapes falls back to the carrier
        # path, so v1 validation semantics stay untouched.
        assert wire.pack_batch_ops([{"op": "query", "flow_id": "f"}]) is None
        assert wire.pack_batch_ops([{"op": "admit"}]) is None
        assert wire.pack_batch_ops(["nope"]) is None
        assert wire.pack_batch_ops(
            [{"op": "admit",
              "flow": {"id": "f", "cls": "v", "src": "A", "dst": "B",
                       "extra": 1}}]
        ) is None
        assert wire.pack_batch_ops(
            [{"op": "release", "flow_id": "f", "trace": {}}]
        ) is None

    def test_pack_unpack_results_inverse(self):
        results = [
            {"ok": True, "result": {"admitted": True, "reason": "",
                                    "batch_size": 7}},
            {"ok": True, "result": {"admitted": False,
                                    "reason": "no route", "batch_size": 7}},
            {"ok": True, "result": {"released": True}},
            {"ok": False, "error": {"code": wire.ADMISSION_ERROR,
                                    "message": "duplicate"}},
        ]
        assert wire.unpack_bulk_results(
            wire.pack_bulk_results(results)
        ) == results

    def test_unpack_rejects_malformed_slots(self):
        for slots in ([["x"]], [[0, ""]], [[2, "extra"]], [[9]], [[]],
                      ["flat"]):
            with pytest.raises(ProtocolError):
                wire.unpack_bulk_results(slots)
