"""Frame fuzzing for the v2 binary protocol.

A byte stream from a fuzzer (or a confused v1 client) must never wedge
the server: every malformed length prefix, truncated payload,
oversized frame, or mid-frame disconnect either earns a structured
error or a clean close — and the coalescer keeps serving well-formed
clients on other connections throughout.
"""

import asyncio
import json
import random

from repro.service import AsyncServiceClient, protocol
from repro.traffic.flows import FlowSpec

from test_service_server import start_service


HELLO_V2 = protocol.encode_frame(
    {
        "id": protocol.HELLO_ID,
        "op": protocol.HELLO_OP,
        "protocol": protocol.PROTOCOL_SCHEMA_V2,
    }
)


async def negotiated_v2_connection(sock):
    """A raw (reader, writer) pair already upgraded to v2 framing."""
    reader, writer = await asyncio.open_unix_connection(sock)
    writer.write(HELLO_V2)
    await writer.drain()
    line = await asyncio.wait_for(reader.readline(), 10)
    hello = json.loads(line)
    assert hello["ok"] and (
        hello["result"]["protocol"] == protocol.PROTOCOL_SCHEMA_V2
    )
    return reader, writer


async def read_v2_error(reader):
    """Read one binary frame and return its carried error object."""
    header = await asyncio.wait_for(
        reader.readexactly(protocol.FRAME_HEADER_BYTES), 10
    )
    payload = await asyncio.wait_for(
        reader.readexactly(int.from_bytes(header, "big")), 10
    )
    tag, obj = protocol.decode_payload_v2(payload)
    assert tag == protocol.TAG_JSON
    assert obj["ok"] is False
    return obj["error"]


async def assert_still_serving(sock):
    """The service must still admit a well-formed flow over v2."""
    client = await AsyncServiceClient.connect_unix(sock, protocol="v2")
    try:
        assert client.negotiated_protocol == "v2"
        decision = await client.admit(
            FlowSpec("fuzz-probe", "voice", "r0", "r3")
        )
        assert decision.admitted
        assert await client.release("fuzz-probe")
    finally:
        await client.close()


def run(coro):
    asyncio.run(coro)


class TestMalformedPrefixes:
    def test_oversized_length_prefix_is_frame_too_large(self, tmp_path):
        async def scenario():
            service, sock = await start_service(tmp_path)
            try:
                reader, writer = await negotiated_v2_connection(sock)
                writer.write((1 << 24).to_bytes(4, "big") + b"J{}")
                await writer.drain()
                err = await read_v2_error(reader)
                assert err["code"] == protocol.FRAME_TOO_LARGE
                # The prefix cannot be trusted: server closes.
                assert await reader.read() == b""
                await assert_still_serving(sock)
            finally:
                await service.stop()

        run(scenario())

    def test_zero_length_frame_is_bad_request(self, tmp_path):
        async def scenario():
            service, sock = await start_service(tmp_path)
            try:
                reader, writer = await negotiated_v2_connection(sock)
                writer.write(b"\x00\x00\x00\x00")
                await writer.drain()
                err = await read_v2_error(reader)
                assert err["code"] == protocol.BAD_REQUEST
                await assert_still_serving(sock)
            finally:
                await service.stop()

        run(scenario())

    def test_v1_line_on_v2_connection_is_diagnosed(self, tmp_path):
        # A '{' where the length prefix belongs decodes as a >=2 GiB
        # length; the server names the actual mistake.
        async def scenario():
            service, sock = await start_service(tmp_path)
            try:
                reader, writer = await negotiated_v2_connection(sock)
                writer.write(
                    protocol.encode_frame({"id": 1, "op": "stats"})
                )
                await writer.drain()
                err = await read_v2_error(reader)
                assert err["code"] == protocol.BAD_REQUEST
                assert "v1 text frame" in err["message"]
                assert await reader.read() == b""
                await assert_still_serving(sock)
            finally:
                await service.stop()

        run(scenario())


class TestTruncationAndDisconnects:
    def test_mid_header_disconnect(self, tmp_path):
        async def scenario():
            service, sock = await start_service(tmp_path)
            try:
                reader, writer = await negotiated_v2_connection(sock)
                writer.write(b"\x00\x00")  # half a length prefix
                await writer.drain()
                writer.close()
                await assert_still_serving(sock)
            finally:
                await service.stop()

        run(scenario())

    def test_mid_payload_disconnect(self, tmp_path):
        async def scenario():
            service, sock = await start_service(tmp_path)
            try:
                reader, writer = await negotiated_v2_connection(sock)
                # Claim 100 bytes, deliver 5, vanish.
                writer.write((100).to_bytes(4, "big") + b"J[1,2")
                await writer.drain()
                writer.close()
                await assert_still_serving(sock)
            finally:
                await service.stop()

        run(scenario())

    def test_disconnect_between_frames_after_real_work(self, tmp_path):
        async def scenario():
            service, sock = await start_service(tmp_path)
            try:
                reader, writer = await negotiated_v2_connection(sock)
                sub = [protocol.BULK_ADMIT, "g1", "voice", "r0", "r3", None]
                writer.write(protocol.encode_bulk_request(1, [sub]))
                await writer.drain()
                header = await reader.readexactly(
                    protocol.FRAME_HEADER_BYTES
                )
                await reader.readexactly(int.from_bytes(header, "big"))
                writer.close()  # flow g1 stays admitted server-side
                await assert_still_serving(sock)
                assert "g1" in service.controller._established
            finally:
                await service.stop()

        run(scenario())


class TestInSyncFaults:
    """Well-delimited but malformed payloads: error, keep connection."""

    def fault_then_recover(self, tmp_path, payload, expect_code):
        async def scenario():
            service, sock = await start_service(tmp_path)
            try:
                reader, writer = await negotiated_v2_connection(sock)
                writer.write(
                    len(payload).to_bytes(4, "big") + payload
                )
                await writer.drain()
                err = await read_v2_error(reader)
                assert err["code"] == expect_code
                # Same connection still works afterwards.
                sub = [protocol.BULK_ADMIT, "k1", "voice", "r0", "r3", None]
                writer.write(protocol.encode_bulk_request(2, [sub]))
                await writer.drain()
                header = await reader.readexactly(
                    protocol.FRAME_HEADER_BYTES
                )
                body = await reader.readexactly(
                    int.from_bytes(header, "big")
                )
                tag, obj = protocol.decode_payload_v2(body)
                assert tag == protocol.TAG_RESULTS
                assert obj[0] == 2
                assert obj[1][0][0] == protocol.SLOT_ADMITTED
            finally:
                await service.stop()

        run(scenario())

    def test_unknown_tag(self, tmp_path):
        self.fault_then_recover(tmp_path, b"\x00{}", protocol.BAD_REQUEST)

    def test_malformed_json_body(self, tmp_path):
        self.fault_then_recover(
            tmp_path, b"J{truncated", protocol.BAD_REQUEST
        )

    def test_results_tag_from_client(self, tmp_path):
        self.fault_then_recover(
            tmp_path, b"R[1,[[2]]]", protocol.BAD_REQUEST
        )

    def test_carrier_non_object(self, tmp_path):
        self.fault_then_recover(tmp_path, b"J[1,2]", protocol.BAD_REQUEST)

    def test_bulk_bad_shape(self, tmp_path):
        self.fault_then_recover(tmp_path, b"B{}", protocol.BAD_REQUEST)

    def test_bulk_bad_subop_arity(self, tmp_path):
        # Decodes fine; the sub-op validator rejects per-slot, so the
        # response is a RESULTS frame whose slot carries the error.
        async def scenario():
            service, sock = await start_service(tmp_path)
            try:
                reader, writer = await negotiated_v2_connection(sock)
                writer.write(
                    protocol.encode_bulk_request(5, [[protocol.BULK_ADMIT]])
                )
                await writer.drain()
                header = await reader.readexactly(
                    protocol.FRAME_HEADER_BYTES
                )
                body = await reader.readexactly(
                    int.from_bytes(header, "big")
                )
                tag, obj = protocol.decode_payload_v2(body)
                assert tag == protocol.TAG_RESULTS
                slot = obj[1][0]
                assert slot[0] == protocol.SLOT_ERROR
                assert slot[1] == protocol.BAD_REQUEST
            finally:
                await service.stop()

        run(scenario())


class TestRandomFuzz:
    def test_random_garbage_never_wedges_the_service(self, tmp_path):
        """200 random byte blobs across fresh v2 connections."""
        rng = random.Random(0xF022)

        async def scenario():
            service, sock = await start_service(tmp_path)
            try:
                for trial in range(200):
                    blob = bytes(
                        rng.randrange(256)
                        for _ in range(rng.randrange(1, 40))
                    )
                    reader, writer = await negotiated_v2_connection(sock)
                    writer.write(blob)
                    if rng.random() < 0.5:
                        writer.write_eof()
                    await writer.drain()
                    # Read whatever the server answers (possibly
                    # nothing) until it closes or stops talking.
                    try:
                        await asyncio.wait_for(reader.read(4096), 0.05)
                    except asyncio.TimeoutError:
                        pass
                    writer.close()
                await assert_still_serving(sock)
            finally:
                await service.stop()

        run(scenario())

    def test_random_tagged_frames_with_valid_prefixes(self, tmp_path):
        """Well-delimited random bodies: always a structured answer."""
        rng = random.Random(2468)

        async def scenario():
            service, sock = await start_service(tmp_path)
            try:
                reader, writer = await negotiated_v2_connection(sock)
                for trial in range(100):
                    tag = rng.choice([b"J", b"B", b"R", b"\x07"])
                    body = bytes(
                        rng.randrange(32, 127)
                        for _ in range(rng.randrange(0, 30))
                    )
                    payload = tag + body
                    writer.write(
                        len(payload).to_bytes(4, "big") + payload
                    )
                    await writer.drain()
                    header = await asyncio.wait_for(
                        reader.readexactly(protocol.FRAME_HEADER_BYTES),
                        10,
                    )
                    answer = await asyncio.wait_for(
                        reader.readexactly(
                            int.from_bytes(header, "big")
                        ),
                        10,
                    )
                    # Every answer is itself a decodable v2 frame.
                    protocol.decode_payload_v2(answer)
                await assert_still_serving(sock)
            finally:
                await service.stop()

        run(scenario())
