"""Command-line interface."""

import pytest

from repro.experiments.cli import build_parser, main


def test_bounds_command(capsys):
    assert main(["bounds"]) == 0
    out = capsys.readouterr().out
    assert "0.3000" in out
    assert "0.6092" in out


def test_bounds_custom_parameters(capsys):
    assert main(["bounds", "--diameter", "1"]) == 0
    out = capsys.readouterr().out
    # L = 1: LB == UB
    import re

    nums = re.findall(r"\d\.\d{4}", out)
    assert len(set(nums)) == 1  # LB == UB when L = 1


def test_verify_success(capsys):
    assert main(["verify", "0.25"]) == 0
    out = capsys.readouterr().out
    assert "SUCCESS" in out


def test_verify_failure_exit_code(capsys):
    assert main(["verify", "0.95"]) == 1
    out = capsys.readouterr().out
    assert "FAILURE" in out


def test_sweep_deadline(capsys):
    assert main(["sweep", "deadline"]) == 0
    assert "deadline" in capsys.readouterr().out


def test_sweep_burst(capsys):
    assert main(["sweep", "burst"]) == 0
    assert "burst" in capsys.readouterr().out


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_report_command(tmp_path, capsys):
    from repro.experiments.cli import main as cli_main

    out = tmp_path / "report.md"
    records = tmp_path / "records.json"
    assert (
        cli_main(
            [
                "report",
                "--output", str(out),
                "--records", str(records),
                "--resolution", "0.05",
            ]
        )
        == 0
    )
    text = out.read_text()
    assert "# Reproduction report" in text
    assert "Table 1" in text
    assert "| lower_bound | 0.3 |" in text
    # Records reload cleanly.
    from repro.experiments import load_records

    loaded = load_records(str(records))
    assert {r.experiment_id for r in loaded} == {
        "table1", "sweep-deadline", "sweep-burst"
    }


def test_simulate_command_success(capsys):
    from repro.experiments.cli import main as cli_main

    assert cli_main(["simulate", "0.3", "--horizon", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "guarantees held" in out
    assert "misses = {'voice': 0}" in out


def test_simulate_command_unverifiable_alpha(capsys):
    from repro.experiments.cli import main as cli_main

    assert cli_main(["simulate", "0.95", "--horizon", "0.1"]) == 1
    assert "FAILURE" in capsys.readouterr().out


def test_version_flag(capsys):
    from repro._version import __version__

    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert __version__ in capsys.readouterr().out


def test_table1_metrics_and_trace_out(tmp_path, capsys):
    """Acceptance: table1 --metrics-out/--trace-out yields a parsable
    Prometheus file with fixed-point and admission series, and a
    Chrome-trace JSON with nested spans."""
    import json

    from repro import obs
    from repro.obs.export import parse_prometheus_text

    metrics = tmp_path / "m.prom"
    trace = tmp_path / "t.json"
    assert (
        main(
            [
                "table1",
                "--resolution", "0.05",
                "--metrics-out", str(metrics),
                "--trace-out", str(trace),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Metrics snapshot" in out
    assert "admission replay" in out
    # observability is switched back off after the run
    assert not obs.is_enabled()

    samples = parse_prometheus_text(metrics.read_text())
    names = {name for name, _ in samples}
    assert "repro_fixedpoint_iterations_bucket" in names
    assert "repro_fixedpoint_solves_total" in names
    assert "repro_admission_decision_seconds_bucket" in names
    assert ("repro_admission_decisions_total",
            (("controller", "UtilizationAdmissionController"),
             ("result", "admitted"))) in samples

    payload = json.loads(trace.read_text())
    events = payload["traceEvents"]
    assert events
    assert {e["name"] for e in events} >= {
        "fixedpoint.solve", "routing.select", "admission.admit",
    }
    assert any(e["args"]["depth"] > 0 for e in events)


def test_metrics_out_jsonl_format(tmp_path):
    import json

    metrics = tmp_path / "m.jsonl"
    assert main(["bounds", "--metrics-out", str(metrics)]) == 0
    # bounds records nothing (pure closed-form), file is valid (empty) jsonl
    for line in metrics.read_text().splitlines():
        json.loads(line)


def test_verify_with_metrics_out(tmp_path):
    from repro.obs.export import parse_prometheus_text

    metrics = tmp_path / "m.prom"
    assert main(["verify", "0.25", "--metrics-out", str(metrics)]) == 0
    samples = parse_prometheus_text(metrics.read_text())
    assert any(
        name == "repro_fixedpoint_solves_total" for name, _ in samples
    )


def test_faults_command(tmp_path, capsys):
    report_path = tmp_path / "transitions.json"
    assert (
        main(
            [
                "faults",
                "--horizon", "1.0",
                "--arrival-rate", "20",
                "--report-out", str(report_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "chaos run" in out
    assert "survivor guarantees held" in out

    import json

    data = json.loads(report_path.read_text())
    assert data["schema"] == "repro-transition-report/v1"
    assert data["survivor_deadline_misses"] == 0
    assert data["transitions"]


def test_faults_command_replays_saved_schedule(tmp_path, capsys):
    from repro.faults import FaultEvent, FaultSchedule

    schedule_path = tmp_path / "faults.json"
    FaultSchedule(
        [
            FaultEvent(0.3, "link_down", ["Chicago", "Denver"]),
            FaultEvent(0.8, "link_up", ["Chicago", "Denver"]),
        ]
    ).save(str(schedule_path))
    one = tmp_path / "one.json"
    two = tmp_path / "two.json"
    for out_path in (one, two):
        assert (
            main(
                [
                    "faults",
                    "--horizon", "1.0",
                    "--arrival-rate", "20",
                    "--no-packets",
                    "--schedule", str(schedule_path),
                    "--report-out", str(out_path),
                ]
            )
            == 0
        )
    # Bit-identical replay across two CLI invocations.
    assert one.read_text() == two.read_text()


def test_faults_command_unverifiable_alpha(capsys):
    assert main(["faults", "--alpha", "0.95", "--horizon", "0.5"]) == 1
    assert "does not verify" in capsys.readouterr().out


def test_faults_command_with_metrics_out(tmp_path):
    from repro.obs.export import parse_prometheus_text

    metrics = tmp_path / "m.prom"
    assert (
        main(
            [
                "faults",
                "--horizon", "1.0",
                "--arrival-rate", "20",
                "--no-packets",
                "--metrics-out", str(metrics),
            ]
        )
        == 0
    )
    samples = parse_prometheus_text(metrics.read_text())
    names = {name for name, _ in samples}
    assert "repro_faults_events_total" in names
    assert "repro_faults_repairs_total" in names


def test_loadgen_batch_mode(capsys):
    assert (
        main(
            [
                "loadgen",
                "--topology", "mci",
                "--flows", "500",
                "--batch-size", "64",
                "--seed", "3",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "batch mode (batch=64)" in out
    assert "500 arrivals" in out
    assert "ops/s" in out


def test_loadgen_sequential_mode(capsys):
    assert (
        main(
            [
                "loadgen",
                "--topology", "mci",
                "--flows", "200",
                "--sequential",
            ]
        )
        == 0
    )
    assert "sequential mode" in capsys.readouterr().out


def test_loadgen_record_then_replay_matches(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    args = [
        "loadgen",
        "--topology", "mci",
        "--flows", "300",
        "--seed", "9",
        "--batch-size", "32",
    ]
    assert main(args + ["--record", str(trace)]) == 0
    recorded = capsys.readouterr().out
    assert f"wrote 600 events to {trace}" in recorded

    assert main(
        [
            "loadgen",
            "--topology", "mci",
            "--batch-size", "32",
            "--replay", str(trace),
        ]
    ) == 0
    replayed = capsys.readouterr().out
    assert "replaying 600 events" in replayed
    # Same workload either way -> identical admission tallies.
    tally = [l for l in recorded.splitlines() if "admitted" in l]
    assert tally and tally == [
        l for l in replayed.splitlines() if "admitted" in l
    ]


def test_loadgen_sharded_controller(capsys):
    assert (
        main(
            [
                "loadgen",
                "--topology", "mci",
                "--controller", "sharded",
                "--flows", "200",
                "--batch-size", "64",
            ]
        )
        == 0
    )
    assert "sharded controller" in capsys.readouterr().out
