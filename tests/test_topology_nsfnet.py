"""The NSFNET extension topology."""

import networkx as nx
import pytest

from repro.topology import (
    NSFNET_EDGES,
    NSFNET_ROUTERS,
    analyze,
    nsfnet_backbone,
)


@pytest.fixture(scope="module")
def nsfnet():
    return nsfnet_backbone()


def test_size(nsfnet):
    assert nsfnet.num_routers == 14
    assert nsfnet.num_physical_links == 22


def test_connected_and_properties(nsfnet):
    report = analyze(nsfnet)
    assert report.diameter == 3     # the L used in extension experiments
    assert report.max_degree == 4   # the N used in extension experiments
    assert report.capacity == 100e6


def test_all_edge_routers(nsfnet):
    assert sorted(nsfnet.edge_routers()) == sorted(nsfnet.routers())


def test_names_unique():
    assert len(set(NSFNET_ROUTERS)) == len(NSFNET_ROUTERS)


def test_edges_reference_known_routers():
    for u, v in NSFNET_EDGES:
        assert u in NSFNET_ROUTERS and v in NSFNET_ROUTERS


def test_custom_capacity():
    net = nsfnet_backbone(capacity=45e6)  # the historical T3 upgrade
    assert net.capacity("Seattle", "PaloAlto") == 45e6


def test_usable_by_the_analysis(nsfnet):
    """The whole pipeline runs on NSFNET (cross-topology sanity)."""
    from repro.config import configure
    from repro.traffic import ClassRegistry, voice_class

    registry = ClassRegistry.two_class(voice_class())
    cfg = configure(
        nsfnet, registry, {"voice": 0.35}, routing="shortest-path"
    )
    assert cfg.verification.success
    assert len(cfg.routes) == 14 * 13
