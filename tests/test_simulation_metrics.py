"""Extended simulator metrics: deadline misses, per-flow stats, jitter."""

import numpy as np
import pytest

from repro.simulation import DelayRecorder, PacketPattern, Simulator
from repro.topology import LinkServerGraph, star_network
from repro.traffic import ClassRegistry, FlowSpec, voice_class


class TestDelayRecorder:
    def test_per_flow_tracking(self):
        rec = DelayRecorder()
        rec.record_delivery("voice", 0.01, flow_id="a")
        rec.record_delivery("voice", 0.03, flow_id="a")
        rec.record_delivery("voice", 0.02, flow_id="b")
        assert rec.flow_worst("a") == 0.03
        assert rec.flow_worst("b") == 0.02
        assert rec.flow_worst("ghost") == 0.0
        assert rec.flow_packet_count("a") == 2
        assert rec.per_flow_worst() == {"a": 0.03, "b": 0.02}

    def test_delivery_without_flow_id(self):
        rec = DelayRecorder()
        rec.record_delivery("voice", 0.01)
        assert rec.packets_delivered == 1
        assert rec.per_flow_worst() == {}


@pytest.fixture(scope="module")
def report():
    net = star_network(3)
    graph = LinkServerGraph(net)
    registry = ClassRegistry.two_class(voice_class())
    sim = Simulator(graph, registry)
    for b in range(2):
        for i in range(30):
            sim.add_flow(
                FlowSpec(f"v{b}_{i}", "voice", f"leaf{b}", "leaf2"),
                [f"leaf{b}", "hub", "leaf2"],
                PacketPattern("greedy", packet_size=640, seed=b * 100 + i),
            )
    return sim.run(horizon=0.5)


class TestReportMetrics:
    def test_deadline_misses_at_extremes(self, report):
        assert report.deadline_misses("voice", 10.0) == 0
        assert report.deadline_misses("voice", 0.0) == (
            report.packets_delivered
        )

    def test_miss_fraction_consistency(self, report):
        deadline = report.percentile_e2e("voice", 90)
        frac = report.miss_fraction("voice", deadline)
        misses = report.deadline_misses("voice", deadline)
        assert frac == pytest.approx(misses / report.packets_delivered)
        assert 0.0 <= frac <= 0.2

    def test_miss_fraction_unknown_class(self, report):
        assert np.isnan(report.miss_fraction("ghost", 0.1))
        assert report.deadline_misses("ghost", 0.1) == 0

    def test_jitter(self, report):
        j = report.jitter("voice")
        assert j == pytest.approx(
            report.max_e2e("voice") - float(report.e2e["voice"].min())
        )
        assert j > 0  # contention creates spread
        assert np.isnan(report.jitter("ghost"))

    def test_per_flow_worst_in_engine(self, report):
        worst = report.recorder.per_flow_worst()
        assert len(worst) == 60  # every flow delivered packets
        assert max(worst.values()) == pytest.approx(
            report.max_e2e("voice")
        )
        total = sum(
            report.recorder.flow_packet_count(fid) for fid in worst
        )
        assert total == report.packets_delivered
