"""Cross-topology maximization regressions (NSFNET boundary case).

NSFNET is the boundary case of Theorem 4: its shortest-path route set
realizes the worst-case feedback exactly, so alpha*_SP equals the lower
bound to within solver tolerance — and the greedy heuristic alone can
strand pairs at that boundary.  These tests pin the behavior and the
SP-fallback that restores the guarantee.
"""

import pytest

from repro.config import (
    max_utilization_heuristic,
    max_utilization_shortest_path,
    theorem4_lower_bound,
)
from repro.errors import InfeasibleUtilization
from repro.topology import nsfnet_backbone
from repro.traffic import all_ordered_pairs, voice_class


@pytest.fixture(scope="module")
def nsfnet():
    return nsfnet_backbone()


@pytest.fixture(scope="module")
def setup(nsfnet):
    return nsfnet, all_ordered_pairs(nsfnet), voice_class()


def test_sp_achieves_exactly_the_lower_bound(setup):
    net, pairs, voice = setup
    lb = theorem4_lower_bound(4, 3, voice.burst, voice.rate, voice.deadline)
    result = max_utilization_shortest_path(net, pairs, voice,
                                           resolution=0.005)
    # SP is feasible at LB (the bound's constructive witness) ...
    assert result.alpha >= lb - 1e-9
    # ... and NSFNET's SP feedback saturates the bound: no headroom.
    assert result.alpha == pytest.approx(lb, abs=0.01)


def test_heuristic_with_fallback_never_below_lower_bound(setup):
    net, pairs, voice = setup
    lb = theorem4_lower_bound(4, 3, voice.burst, voice.rate, voice.deadline)
    result = max_utilization_heuristic(net, pairs, voice, resolution=0.01)
    assert result.alpha >= lb - 1e-9


def test_bare_heuristic_fails_at_the_boundary(setup):
    """Documented incompleteness: the greedy no-backtrack heuristic alone
    cannot route NSFNET at the lower bound (min-delay detours strand a
    later pair), even though the SP witness exists."""
    net, pairs, voice = setup
    with pytest.raises(InfeasibleUtilization):
        max_utilization_heuristic(
            net, pairs, voice, resolution=0.01, sp_fallback=False
        )
