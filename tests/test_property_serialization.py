"""Round-trip properties over randomized inputs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import (
    loads,
    dumps,
    network_from_dict,
    network_to_dict,
    random_network,
)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=15),
    p=st.floats(min_value=0.25, max_value=0.8),
    seed=st.integers(min_value=0, max_value=5000),
)
def test_prop_network_dict_roundtrip(n, p, seed):
    net = random_network(n, p, seed=seed)
    back = network_from_dict(network_to_dict(net))
    assert sorted(map(str, back.routers())) == sorted(
        map(str, net.routers())
    )
    assert {l.key for l in back.directed_links()} == {
        l.key for l in net.directed_links()
    }
    assert back.diameter() == net.diameter()
    assert back.max_degree() == net.max_degree()


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=10),
    seed=st.integers(min_value=0, max_value=5000),
)
def test_prop_json_roundtrip_stable(n, seed):
    """Serializing twice produces identical text (canonical output)."""
    net = random_network(n, 0.5, seed=seed)
    once = dumps(net, sort_keys=True)
    back = loads(once)
    again = dumps(back, sort_keys=True)
    assert once == again


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=10),
    seed=st.integers(min_value=0, max_value=5000),
    alpha=st.floats(min_value=0.05, max_value=0.25),
)
def test_prop_configuration_roundtrip_preserves_verification(n, seed,
                                                             alpha):
    """A serialized configuration re-verifies identically after reload."""
    from repro.config import ConfiguredNetwork, configure
    from repro.errors import ConfigurationError
    from repro.traffic import ClassRegistry, voice_class

    net = random_network(n, 0.5, seed=seed)
    registry = ClassRegistry.two_class(voice_class())
    try:
        cfg = configure(
            net, registry, {"voice": alpha}, routing="shortest-path"
        )
    except ConfigurationError:
        return  # infeasible draw: nothing to round-trip
    back = ConfiguredNetwork.from_dict(cfg.to_dict())
    assert back.verification.success
    assert back.verification.worst_route_delay[
        "voice"
    ] == pytest.approx(cfg.verification.worst_route_delay["voice"])


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=12),
    p=st.floats(min_value=0.3, max_value=0.7),
    seed=st.integers(min_value=0, max_value=5000),
)
def test_prop_servergraph_route_roundtrip(n, p, seed):
    """route_servers / servers_to_route invert each other on random
    shortest paths."""
    import networkx as nx

    from repro.topology import LinkServerGraph

    net = random_network(n, p, seed=seed)
    graph = LinkServerGraph(net)
    routers = net.routers()
    rng = np.random.default_rng(seed)
    for _ in range(5):
        i, j = rng.choice(len(routers), size=2, replace=False)
        path = nx.shortest_path(net.graph, routers[int(i)],
                                routers[int(j)])
        if len(path) < 2:
            continue
        servers = graph.route_servers(path)
        assert graph.servers_to_route(servers) == path
