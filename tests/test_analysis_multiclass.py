"""Theorem 5 multi-class bounds."""

import numpy as np
import pytest

from repro.analysis import multi_class_delays, single_class_delays
from repro.errors import AnalysisError
from repro.topology import LinkServerGraph, line_network
from repro.traffic import ClassRegistry, TrafficClass, video_class, voice_class


@pytest.fixture()
def three_class_registry():
    return ClassRegistry(
        [
            voice_class(),
            video_class(),
            TrafficClass.best_effort(),
        ]
    )


ROUTE = ["r0", "r1", "r2", "r3"]


def test_single_class_reduction(line4_graph, voice, voice_registry):
    """With one real-time class, Theorem 5 must equal Theorem 3 exactly."""
    alpha = 0.35
    routes = [ROUTE, ["r3", "r2", "r1", "r0"]]
    mc = multi_class_delays(
        line4_graph, {"voice": routes}, voice_registry, {"voice": alpha}
    )
    sc = single_class_delays(line4_graph, routes, voice, alpha)
    assert mc.safe == sc.safe
    np.testing.assert_allclose(
        mc.per_class["voice"].server_delays, sc.server_delays, atol=1e-9
    )
    np.testing.assert_allclose(
        mc.per_class["voice"].route_delays, sc.route_delays, atol=1e-9
    )


def test_two_realtime_classes_converge(line4_graph, three_class_registry):
    mc = multi_class_delays(
        line4_graph,
        {"voice": [ROUTE], "video": [ROUTE]},
        three_class_registry,
        {"voice": 0.1, "video": 0.2},
    )
    assert mc.converged
    assert mc.safe
    assert set(mc.per_class) == {"voice", "video"}


def test_lower_priority_sees_more_delay(line4_graph, three_class_registry):
    """Video (lower priority) is delayed by voice, not vice versa."""
    shared = {"voice": [ROUTE], "video": [ROUTE]}
    both = multi_class_delays(
        line4_graph, shared, three_class_registry,
        {"voice": 0.1, "video": 0.1},
    )
    # Same alpha but video carries the voice interference terms too.
    v = both.per_class["voice"].worst_route_delay
    w = both.per_class["video"].worst_route_delay
    assert w > v


def test_interference_requires_presence(line4_graph, three_class_registry):
    """Voice on a disjoint path does not delay video (route-aware masks)."""
    apart = multi_class_delays(
        line4_graph,
        {"voice": [["r3", "r2"]], "video": [["r0", "r1"]]},
        three_class_registry,
        {"voice": 0.3, "video": 0.3},
    )
    together = multi_class_delays(
        line4_graph,
        {"voice": [["r0", "r1"]], "video": [["r0", "r1"]]},
        three_class_registry,
        {"voice": 0.3, "video": 0.3},
    )
    assert (
        apart.per_class["video"].worst_route_delay
        < together.per_class["video"].worst_route_delay
    )


def test_higher_priority_unaffected_by_lower(line4_graph,
                                             three_class_registry):
    alone = multi_class_delays(
        line4_graph,
        {"voice": [ROUTE], "video": []},
        three_class_registry,
        {"voice": 0.2, "video": 0.2},
    )
    with_video = multi_class_delays(
        line4_graph,
        {"voice": [ROUTE], "video": [ROUTE]},
        three_class_registry,
        {"voice": 0.2, "video": 0.2},
    )
    assert alone.per_class["voice"].worst_route_delay == pytest.approx(
        with_video.per_class["voice"].worst_route_delay, rel=1e-9
    )


def test_total_utilization_capped(line4_graph, three_class_registry):
    with pytest.raises(AnalysisError):
        multi_class_delays(
            line4_graph,
            {"voice": [ROUTE], "video": [ROUTE]},
            three_class_registry,
            {"voice": 0.6, "video": 0.6},
        )


def test_missing_class_inputs(line4_graph, three_class_registry):
    with pytest.raises(AnalysisError):
        multi_class_delays(
            line4_graph, {"voice": [ROUTE]}, three_class_registry,
            {"voice": 0.1, "video": 0.1},
        )
    with pytest.raises(AnalysisError):
        multi_class_delays(
            line4_graph,
            {"voice": [ROUTE], "video": [ROUTE]},
            three_class_registry,
            {"voice": 0.1},
        )


def test_deadline_violation_detected(line4_graph):
    tight_video = video_class(deadline=1e-6)
    registry = ClassRegistry([voice_class(), tight_video])
    mc = multi_class_delays(
        line4_graph,
        {"voice": [ROUTE], "video": [ROUTE]},
        registry,
        {"voice": 0.2, "video": 0.2},
    )
    assert not mc.safe
    assert mc.deadline_violated


def test_monotone_in_higher_priority_alpha(line4_graph,
                                           three_class_registry):
    """More voice bandwidth -> more video delay (all else equal)."""
    delays = []
    for a_voice in (0.05, 0.15, 0.25):
        mc = multi_class_delays(
            line4_graph,
            {"voice": [ROUTE], "video": [ROUTE]},
            three_class_registry,
            {"voice": a_voice, "video": 0.1},
        )
        assert mc.safe
        delays.append(mc.per_class["video"].worst_route_delay)
    assert delays == sorted(delays)


def test_multiclass_on_mci(mci_graph, three_class_registry):
    """Three-class setup on the full evaluation topology."""
    routes = {
        "voice": [["Seattle", "Chicago", "NewYork"]],
        "video": [["Seattle", "Chicago", "NewYork", "Boston"]],
    }
    mc = multi_class_delays(
        mci_graph, routes, three_class_registry,
        {"voice": 0.2, "video": 0.2},
    )
    assert mc.safe
    assert mc.per_class["voice"].meets_deadline
    assert mc.per_class["video"].meets_deadline
