"""Setup shim for environments where PEP 517 editable installs are
unavailable (e.g. offline machines without the `wheel` package).
Configuration lives in pyproject.toml."""
from setuptools import setup

setup()
