"""Ext-L: sharded (coordination-free) vs shared-ledger admission.

Quota sharding makes every edge-router decision purely local — no shared
state — at the cost of capacity fragmentation.  The bench replays the
same Poisson workload through both controllers and reports blocking and
decision cost; sharding must never admit beyond the shared certificate.
"""

import numpy as np
import pytest

from repro.admission import (
    ShardedAdmissionController,
    UtilizationAdmissionController,
    replay_schedule,
)
from repro.experiments import format_table
from repro.traffic.generators import poisson_flow_schedule

# Tight utilization so blocking actually occurs at this load.
ALPHA = 0.02


@pytest.fixture(scope="module")
def workload(scenario):
    return poisson_flow_schedule(
        scenario.network, "voice", arrival_rate=150.0, mean_holding=8.0,
        horizon=10.0, seed=17,
    )


def _run(scenario, sp_routes, controller_cls, workload):
    ctrl = controller_cls(
        scenario.graph, scenario.registry, {"voice": ALPHA}, sp_routes
    )
    return ctrl, replay_schedule(ctrl, workload)


def test_bench_sharded_vs_shared(benchmark, scenario, sp_routes, workload,
                                 capsys):
    def run_both():
        shared = _run(
            scenario, sp_routes, UtilizationAdmissionController, workload
        )
        sharded = _run(
            scenario, sp_routes, ShardedAdmissionController, workload
        )
        return shared, sharded

    (shared_ctrl, shared), (sharded_ctrl, sharded) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(
            format_table(
                ["metric", "shared ledger", "sharded (local)"],
                [
                    ["attempts", shared.attempts, sharded.attempts],
                    ["blocking probability",
                     f"{shared.blocking_probability:.3f}",
                     f"{sharded.blocking_probability:.3f}"],
                    ["peak concurrent", shared.peak_population,
                     sharded.peak_population],
                    ["mean decision",
                     f"{shared.mean_decision_seconds * 1e6:.1f} us",
                     f"{sharded.mean_decision_seconds * 1e6:.1f} us"],
                    ["fragmentation", "-",
                     f"{sharded_ctrl.fragmentation('voice'):.2f}"],
                ],
                title=f"Ext-L: admission architectures at alpha = {ALPHA}",
            )
        )
    # Fragmentation can only cost capacity, never create it.
    assert sharded.admitted <= shared.admitted
    # Both stay within the verified certificate.
    np.testing.assert_array_equal(
        sharded_ctrl.total_quota("voice"),
        shared_ctrl.ledger.slots("voice"),
    )


@pytest.mark.parametrize(
    "controller_cls",
    [UtilizationAdmissionController, ShardedAdmissionController],
    ids=["shared", "sharded"],
)
def test_bench_decision_cost(benchmark, scenario, sp_routes,
                             controller_cls):
    from repro.traffic import FlowSpec

    ctrl = controller_cls(
        scenario.graph, scenario.registry, {"voice": 0.35}, sp_routes
    )
    flow = FlowSpec("probe", "voice", "Seattle", "Miami")

    def decide():
        d = ctrl.admit(flow)
        ctrl.release(flow.flow_id)
        return d

    decision = benchmark(decide)
    assert decision.admitted
