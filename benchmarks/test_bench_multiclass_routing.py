"""Ext-N: multi-class safe route selection (the Section 5.4 variation).

Voice + video demand routed jointly under Theorem 5 safety: success rate,
per-class delay margins, and the cost of the joint candidate checks.
"""

import pytest

from repro.experiments import format_table
from repro.routing import MultiClassRouteSelector
from repro.traffic import ClassRegistry, TrafficClass, video_class, voice_class

VOICE_PAIRS = [
    ("Seattle", "Miami"),
    ("Boston", "Phoenix"),
    ("SanFrancisco", "Orlando"),
    ("Chicago", "Dallas"),
    ("Detroit", "Houston"),
    ("NewYork", "LosAngeles"),
]
VIDEO_PAIRS = [
    ("Denver", "WashingtonDC"),
    ("Atlanta", "Seattle"),
    ("Miami", "Chicago"),
]
ALPHAS = {"voice": 0.10, "video": 0.20}


@pytest.fixture(scope="module")
def registry():
    return ClassRegistry(
        [voice_class(), video_class(), TrafficClass.best_effort()]
    )


def test_bench_multiclass_selection(benchmark, scenario, registry, capsys):
    selector = MultiClassRouteSelector(scenario.network, registry)
    outcome = benchmark.pedantic(
        selector.select,
        args=({"voice": VOICE_PAIRS, "video": VIDEO_PAIRS}, ALPHAS),
        rounds=1,
        iterations=1,
    )
    rows = []
    for name, c in outcome.verification.per_class.items():
        rows.append(
            [
                name,
                f"{ALPHAS[name] * 100:.0f}%",
                len(outcome.routes[name]),
                f"{c.worst_route_delay * 1e3:.2f} ms",
                f"{c.slack * 1e3:.2f} ms",
            ]
        )
    with capsys.disabled():
        print()
        print(
            format_table(
                ["class", "alpha", "routes", "worst bound", "slack"],
                rows,
                title=(
                    "Ext-N: joint multi-class route selection "
                    f"({outcome.candidates_evaluated} candidates checked)"
                ),
            )
        )
    assert outcome.success
    assert outcome.verification.safe
    # The joint check evaluated more candidates than committed routes
    # (min-delay choice scans groups).
    assert outcome.candidates_evaluated > outcome.num_routed
    # (No cross-class delay comparison here: the two classes run on
    # different pair sets with different route lengths, so the priority
    # ladder is only meaningful on shared routes — covered by
    # tests/test_analysis_multiclass.py.)
