"""Batch vs scalar admission throughput on the paper's MCI scenario.

Times whole ``admit_batch``/``release_batch`` cycles against the
equivalent scalar loop, and smoke-checks that both paths return the
same verdicts on the bench workload (the deep differential checks live
in ``tests/test_property_batch_admission.py``).  Safe under
``--benchmark-disable``: nothing here asserts on wall-clock ratios.
"""

import pytest

from repro.admission import UtilizationAdmissionController
from repro.traffic import FlowSpec

BATCH_SIZES = [64, 1024]


def _batch_flows(scenario, count, tag):
    pairs = scenario.pairs
    return [
        FlowSpec(f"{tag}{i}", "voice", *pairs[i % len(pairs)])
        for i in range(count)
    ]


def _controller(scenario, sp_routes):
    return UtilizationAdmissionController(
        scenario.graph, scenario.registry, {"voice": 0.45}, sp_routes
    )


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_bench_admit_release_batch(benchmark, scenario, sp_routes,
                                   batch_size):
    ctrl = _controller(scenario, sp_routes)
    flows = _batch_flows(scenario, batch_size, "b")
    ids = [flow.flow_id for flow in flows]

    def cycle():
        decisions = ctrl.admit_batch(flows)
        ctrl.release_batch(ids)
        return decisions

    decisions = benchmark(cycle)
    assert all(d.admitted for d in decisions)
    assert all(d.batch_size == batch_size for d in decisions)


def test_bench_scalar_admit_release_loop(benchmark, scenario, sp_routes):
    ctrl = _controller(scenario, sp_routes)
    flows = _batch_flows(scenario, 64, "s")

    def cycle():
        decisions = [ctrl.admit(flow) for flow in flows]
        for flow in flows:
            ctrl.release(flow.flow_id)
        return decisions

    decisions = benchmark(cycle)
    assert all(d.admitted for d in decisions)


def test_batch_decisions_match_scalar_on_bench_workload(
    scenario, sp_routes
):
    # Verdict-level parity on the exact flows the bench times, under a
    # tight assignment so rejections occur mid-batch.
    tight = {"voice": 0.05}
    batch_ctrl = UtilizationAdmissionController(
        scenario.graph, scenario.registry, tight, sp_routes
    )
    seq_ctrl = UtilizationAdmissionController(
        scenario.graph, scenario.registry, tight, sp_routes
    )
    # Concentrate the load on three pairs so the tight assignment is
    # actually exhausted mid-batch.
    pairs = scenario.pairs[:3]
    flows = [
        FlowSpec(f"p{i}", "voice", *pairs[i % len(pairs)])
        for i in range(512)
    ]
    got = batch_ctrl.admit_batch(flows)
    want = [seq_ctrl.admit(flow) for flow in flows]
    assert [(d.flow_id, d.admitted, d.reason) for d in got] == [
        (d.flow_id, d.admitted, d.reason) for d in want
    ]
    assert any(not d.admitted for d in got)  # contention actually hit
