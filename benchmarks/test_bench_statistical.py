"""Ext-I: statistical guarantees (the paper's Section 7 outlook).

Quantifies the capacity left on the table by deterministic worst-case
admission: calibrated overbooking on a contention hub with Poisson voice
sources, reporting the factor by which the measured-miss-rate service
can exceed the deterministic slot count.
"""

import pytest

from repro.experiments import format_table
from repro.statistical import calibrate_overbooking, estimate_delay_distribution
from repro.topology import LinkServerGraph, star_network
from repro.traffic import ClassRegistry, FlowSpec, voice_class

TARGET_MISS = 1e-2


@pytest.fixture(scope="module")
def hub_setup():
    net = star_network(4)
    graph = LinkServerGraph(net)
    voice = voice_class()
    registry = ClassRegistry.two_class(voice)
    return net, graph, voice, registry


def _flows(n_per_branch):
    out = []
    for b in range(3):
        for i in range(n_per_branch):
            out.append(
                (
                    FlowSpec(f"v{b}_{i}", "voice", f"leaf{b}", "leaf3"),
                    [f"leaf{b}", "hub", "leaf3"],
                )
            )
    return out


def test_bench_delay_distribution(benchmark, hub_setup):
    """Cost of one distribution estimate (2 replications, 90 flows)."""
    net, graph, voice, registry = hub_setup

    def estimate():
        return estimate_delay_distribution(
            graph, registry, _flows(30), class_name="voice",
            packet_size=640, horizon=0.3, replications=2, seed=1,
        )

    dist = benchmark.pedantic(estimate, rounds=2, iterations=1)
    assert dist.count > 1000
    assert dist.quantile(0.99) < voice.deadline


def test_bench_overbooking_calibration(benchmark, hub_setup, capsys):
    net, graph, voice, registry = hub_setup
    deterministic_per_link = int(0.01 * 100e6 / voice.rate)  # alpha = 1%

    def reference(factor):
        per_branch = max(1, int(deterministic_per_link * factor / 3))
        return _flows(per_branch)

    result = benchmark.pedantic(
        calibrate_overbooking,
        args=(graph, registry),
        kwargs=dict(
            class_name="voice",
            deadline=voice.deadline,
            reference_flows=reference,
            target_miss=TARGET_MISS,
            packet_size=640,
            factors=(1.0, 2.0, 4.0, 8.0),
            horizon=0.3,
            replications=2,
            seed=7,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [f"{f:.1f}x", f"{miss:.2e}", f"{upper:.2e}",
         "pass" if upper <= TARGET_MISS else "STOP"]
        for f, miss, upper in result.evaluations
    ]
    with capsys.disabled():
        print()
        print(
            format_table(
                ["factor", "measured miss", "95% upper", "verdict"],
                rows,
                title=(
                    "Ext-I: overbooking calibration "
                    f"(target miss {TARGET_MISS:g}, alpha = 1%)"
                ),
            )
        )
        print(
            f"accepted factor: {result.factor:.1f}x -> "
            f"{result.extra_capacity * 100:.0f}% extra capacity over the "
            "deterministic certificate"
        )
    assert result.factor >= 2.0  # Poisson voice leaves real headroom
