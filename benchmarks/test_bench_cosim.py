"""Ext-J: dynamic end-to-end guarantee under churn (co-simulation).

Poisson call arrivals/departures replayed through the utilization-based
controller while the admitted population is simulated at packet level:
the verified configuration must yield **zero** deadline misses, with both
well-behaved and adversarial sources.
"""

import pytest

from repro.admission import UtilizationAdmissionController
from repro.experiments import format_table
from repro.simulation import co_simulate
from repro.traffic.generators import poisson_flow_schedule

ALPHA = 0.35  # verified for SP routes on MCI (see quickstart)


@pytest.fixture()
def controller(scenario, sp_routes):
    return UtilizationAdmissionController(
        scenario.graph, scenario.registry, {"voice": ALPHA}, sp_routes
    )


@pytest.mark.parametrize("pattern", ["poisson", "greedy"])
def test_bench_cosim_guarantee(benchmark, scenario, controller, pattern,
                               capsys):
    schedule = poisson_flow_schedule(
        scenario.network, "voice", arrival_rate=40.0, mean_holding=3.0,
        horizon=5.0, seed=31,
    )

    def run():
        # A fresh controller per round (state is consumed by the replay).
        ctrl = UtilizationAdmissionController(
            scenario.graph, scenario.registry, {"voice": ALPHA},
            controller.route_map,
        )
        return co_simulate(
            scenario.graph,
            scenario.registry,
            ctrl,
            schedule,
            packet_size=640,
            pattern_kind=pattern,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            format_table(
                ["metric", "value"],
                [
                    ["source pattern", pattern],
                    ["admission attempts", result.admission.attempts],
                    ["flows simulated", result.flows_simulated],
                    ["packets delivered",
                     result.packets.packets_delivered],
                    ["worst e2e delay",
                     f"{result.packets.max_e2e('voice') * 1e3:.2f} ms"],
                    ["deadline misses",
                     result.deadline_misses["voice"]],
                ],
                title=f"Ext-J: co-simulation under churn ({pattern})",
            )
        )
    assert result.packets.conserved
    assert result.guarantees_held
    assert result.flows_simulated > 50
