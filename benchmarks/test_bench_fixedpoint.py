"""Ext-G: fixed-point solver performance (the configuration-time kernel).

The entire configuration procedure reduces to repeated runs of the
eq. (14) fixed point; this bench times it at the paper's full scale
(306 routes over 70 servers) and on larger synthetic route systems.
"""

import numpy as np
import pytest

from repro.analysis import RouteSystem, single_class_delays, solve_fixed_point
from repro.analysis.delays import resolve_fan_in, theorem3_update
from repro.topology import LinkServerGraph, random_network
from repro.routing import shortest_path_routes
from repro.traffic import all_ordered_pairs


def test_bench_fixed_point_mci(benchmark, scenario, sp_routes):
    """Full verification of the paper's 306-route system at alpha=0.35."""
    paths = list(sp_routes.values())

    def solve():
        return single_class_delays(
            scenario.graph, paths, scenario.voice, 0.35
        )

    result = benchmark(solve)
    assert result.safe


def test_bench_fixed_point_warm_start(benchmark, scenario, sp_routes):
    """Warm-started re-solve (the route-selection inner loop)."""
    paths = list(sp_routes.values())
    cold = single_class_delays(scenario.graph, paths, scenario.voice, 0.35)

    def resolve():
        return single_class_delays(
            scenario.graph,
            paths,
            scenario.voice,
            0.35,
            warm_start=cold.server_delays,
        )

    result = benchmark(resolve)
    assert result.safe
    assert result.fixed_point.iterations <= cold.fixed_point.iterations


@pytest.mark.parametrize("n_routers", [30, 60])
def test_bench_fixed_point_scaling(benchmark, n_routers):
    """Solver cost on larger random networks (all-pairs SP demand)."""
    from repro.traffic import voice_class

    net = random_network(n_routers, 0.15, seed=1)
    graph = LinkServerGraph(net)
    pairs = all_ordered_pairs(net)
    paths = list(shortest_path_routes(net, pairs).values())
    vc = voice_class()

    def solve():
        return single_class_delays(graph, paths, vc, 0.2)

    result = benchmark(solve)
    assert result.fixed_point.converged


def test_bench_kernel_upstream_delays(benchmark, scenario, sp_routes):
    """The single hottest primitive: the vectorized Y computation."""
    system = RouteSystem(
        scenario.graph.routes_servers(list(sp_routes.values())),
        scenario.graph.num_servers,
    )
    d = np.random.default_rng(0).uniform(0, 1e-3, scenario.graph.num_servers)
    y = benchmark(system.upstream_delays, d)
    assert y.shape == (scenario.graph.num_servers,)
