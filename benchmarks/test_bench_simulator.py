"""Ext-F: packet simulator — analytic bound vs adversarial measurement.

Greedy (envelope-saturating) sources converge on shared links; the bench
measures the worst observed end-to-end delay, compares it to the
configuration-time bound, and times the event engine.
"""

import pytest

from repro.analysis import single_class_delays
from repro.experiments import format_table
from repro.simulation import PacketPattern, Simulator
from repro.traffic import FlowSpec

ROUTES = [
    ["Seattle", "Chicago", "NewYork", "Boston"],
    ["Denver", "Chicago", "NewYork", "Boston"],
    ["KansasCity", "Chicago", "NewYork", "Boston"],
    ["Atlanta", "Chicago", "NewYork", "Boston"],
]
ALPHA = 0.02
FLOWS_PER_ROUTE = 15  # 60 flows * 32 kbps = 1.92 Mbps <= alpha * C


def _build(scenario):
    sim = Simulator(scenario.graph, scenario.registry)
    fid = 0
    for route in ROUTES:
        for _ in range(FLOWS_PER_ROUTE):
            sim.add_flow(
                FlowSpec(f"v{fid}", "voice", route[0], route[-1]),
                route,
                PacketPattern("greedy", packet_size=640, seed=fid),
            )
            fid += 1
    return sim


def test_bench_simulator_throughput(benchmark, scenario):
    """Event-engine cost for one second of adversarial traffic."""
    def run():
        return _build(scenario).run(horizon=1.0)

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    assert report.conserved
    assert report.packets_delivered > 1000


def test_bench_bound_vs_measured(benchmark, scenario, capsys):
    report = benchmark.pedantic(
        lambda: _build(scenario).run(horizon=2.0), rounds=1, iterations=1
    )
    bound = single_class_delays(
        scenario.graph, ROUTES, scenario.voice, ALPHA
    )
    measured = report.max_e2e("voice")
    allowance = (3 + 1) * 640 / 100e6  # store-and-forward constant
    with capsys.disabled():
        print()
        print(
            format_table(
                ["quantity", "value"],
                [
                    ["analytic worst-case bound",
                     f"{bound.worst_route_delay * 1e3:.3f} ms"],
                    ["measured worst (greedy)",
                     f"{measured * 1e3:.3f} ms"],
                    ["measured mean", f"{report.mean_e2e('voice') * 1e3:.3f} ms"],
                    ["bound / measured",
                     f"{bound.worst_route_delay / max(measured, 1e-12):.1f}x"],
                    ["packets", report.packets_delivered],
                ],
                title="Analytic bound vs simulation (MCI subset)",
            )
        )
    assert bound.safe
    assert measured <= bound.worst_route_delay + allowance
    assert measured > 0
