#!/usr/bin/env python
"""Batch-admission throughput bench -> ``BENCH_admission.json``.

Drives ≥1M admit/release operations through
:class:`UtilizationAdmissionController` on the NSFNET backbone with the
deterministic :mod:`repro.workload` generator: one strictly sequential
run (the per-call ``admit``/``release`` baseline) and one
``admit_batch``/``release_batch`` run per batch size.  The compact
summary (schema ``repro-admission-bench/v1``) records ops/sec and the
speedup over the sequential baseline::

    python benchmarks/run_admission_bench.py              # -> BENCH_admission.json
    python benchmarks/run_admission_bench.py --output other.json
    python benchmarks/run_admission_bench.py --flows 20000 --seq-flows 5000
    python benchmarks/run_admission_bench.py --validate BENCH_admission.json

A ``kernels`` section times the raw ``batch_slot_decisions`` slot
kernel per registered backend (numpy always, numba when the ``jit``
extra is installed, plus the sequential reference loop) over identical
1024-row inputs.

``--validate`` checks a summary against the schema — including the
acceptance floors that batch size 1024 sustains ≥5x the sequential
throughput over ≥1M total operations and that every vectorized or
compiled kernel backend sustains ≥1M rows/s — and exits non-zero on
any violation; CI runs it against the checked-in snapshot.
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

BENCH_SCHEMA = "repro-admission-bench/v1"

#: Acceptance floors validated by ``--validate`` (and CI).
MIN_TOTAL_OPS = 1_000_000
MIN_SPEEDUP_AT_1024 = 5.0

BATCH_SIZES = (64, 256, 1024, 4096)

#: Raw slot-kernel cells: rows per timed call, and the floor every
#: vectorized/compiled backend must clear (the sequential reference is
#: recorded but exempt — it exists for differential testing, not speed).
KERNEL_BATCH_ROWS = 1024
MIN_KERNEL_ROWS_PER_SECOND = 1_000_000

_RUN_FIELDS = ("batch_size", "ops", "seconds", "ops_per_second", "speedup")

_KERNEL_RUN_FIELDS = ("backend", "rows", "seconds", "rows_per_second")


def _build_events(num_flows: int, seed: int, alpha_args: dict):
    from repro.traffic.generators import all_ordered_pairs
    from repro.workload import (
        ZipfPairPopularity,
        open_loop_schedule,
        schedule_events,
    )

    network = alpha_args["network"]
    pairs = all_ordered_pairs(network)
    popularity = ZipfPairPopularity(
        num_pairs=len(pairs),
        skew=alpha_args["zipf_skew"],
        shuffle_seed=seed,
    )
    schedule = open_loop_schedule(
        num_flows,
        arrival_rate=alpha_args["arrival_rate"],
        mean_holding=alpha_args["mean_holding"],
        popularity=popularity,
        seed=seed,
    )
    return schedule_events(schedule, pairs, "voice")


def _timed_drive(controller, events, **kwargs):
    """Run :func:`repro.workload.drive` with the cyclic GC paused.

    The runs retain ~10^6 objects (decisions, flow specs, events), so
    generation-0 collections fire thousands of times while freeing
    almost nothing — a flat per-op tax that swamps the actual admission
    cost in *both* modes.  Pausing collection during the timed region
    (pyperf does the same) measures the controllers, not the collector.
    """
    from repro.workload import drive

    gc.collect()
    enabled = gc.isenabled()
    gc.disable()
    try:
        return drive(controller, events, **kwargs)
    finally:
        if enabled:
            gc.enable()


def _kernel_workload(rows: int, *, width: int, num_servers: int, seed: int):
    """Padded slot-kernel inputs with a mixed admit/reject outcome.

    Every row draws ``width`` *distinct* server indices (routes never
    visit a server twice), and the free vector starts at 3/4 of the
    expected per-server demand — an overloaded boundary where roughly
    a quarter of the batch is rejected, so both the commit and the
    reject paths are timed (the all-admit steady state takes a fast
    path that would make the numbers meaninglessly rosy).
    """
    import numpy as np

    from repro.admission import PADDING_FREE, pad_server_matrix

    rng = np.random.default_rng(seed)
    draws = [
        rng.choice(num_servers, size=width, replace=False)
        for _ in range(rows)
    ]
    matrix, _lengths = pad_server_matrix(draws, num_servers)
    free = np.full(num_servers + 1,
                   (3 * rows * width) // (4 * num_servers),
                   dtype=np.int64)
    free[num_servers] = PADDING_FREE
    return matrix, free


def run_kernel_bench(*, seed: int, target_rows: int = 4_000_000) -> dict:
    """Raw ``batch_slot_decisions`` throughput per backend.

    Times each registered backend (numpy always; numba when the
    ``jit`` extra is installed; the sequential reference loop for
    scale) over identical :data:`KERNEL_BATCH_ROWS`-row inputs, free
    vector copied per call since the kernel commits in place.  Backends
    are warmed first — numba's first call pays the JIT compile, which
    is a startup cost, not a per-batch one.
    """
    from time import perf_counter

    from repro.admission.kernels import (
        HAVE_NUMBA,
        active_slot_kernel,
        available_slot_kernels,
        get_slot_kernel,
        use_slot_kernel,
    )

    matrix, free = _kernel_workload(
        KERNEL_BATCH_ROWS, width=4, num_servers=32, seed=seed
    )
    rows = matrix.shape[0]
    runs = []
    for backend in available_slot_kernels():
        with use_slot_kernel(backend):
            kernel = get_slot_kernel()
            kernel(matrix, free.copy())  # warm (JIT compile, caches)
            # The sequential reference is ~100x slower; keep its cell
            # honest but short.
            reps = max(
                1,
                (target_rows if backend != "sequential" else rows * 8)
                // rows,
            )
            gc.collect()
            enabled = gc.isenabled()
            gc.disable()
            begin = perf_counter()
            try:
                for _ in range(reps):
                    kernel(matrix, free.copy())
            finally:
                if enabled:
                    gc.enable()
            elapsed = perf_counter() - begin
        runs.append(
            {
                "backend": backend,
                "rows": rows * reps,
                "seconds": elapsed,
                "rows_per_second": rows * reps / elapsed,
            }
        )
        print(
            f"kernel {backend:>10}: {rows * reps} rows in "
            f"{elapsed:.3f} s = {rows * reps / elapsed:,.0f} rows/s"
        )
    best = max(runs, key=lambda r: r["rows_per_second"])
    return {
        "available": list(available_slot_kernels()),
        "active": active_slot_kernel(),
        "have_numba": HAVE_NUMBA,
        "batch_rows": KERNEL_BATCH_ROWS,
        "runs": runs,
        "best": {
            "backend": best["backend"],
            "rows_per_second": best["rows_per_second"],
        },
    }


def run_bench(
    output: pathlib.Path,
    *,
    flows: int,
    seq_flows: int,
    alpha: float,
    seed: int,
) -> int:
    from repro.admission import UtilizationAdmissionController
    from repro.routing.shortest import shortest_path_routes
    from repro.topology import LinkServerGraph, nsfnet_backbone
    from repro.traffic import ClassRegistry, voice_class
    from repro.traffic.generators import all_ordered_pairs
    from repro.workload import drive

    network = nsfnet_backbone()
    graph = LinkServerGraph(network)
    registry = ClassRegistry.two_class(voice_class())
    routes = shortest_path_routes(network, all_ordered_pairs(network))
    alphas = {"voice": alpha}
    workload = {
        "network": network,
        "arrival_rate": 1000.0,
        "mean_holding": 10.0,
        "zipf_skew": 1.0,
    }

    def fresh():
        return UtilizationAdmissionController(
            graph, registry, alphas, routes
        )

    print(f"generating workloads ({flows} batch / {seq_flows} seq flows)")
    batch_events = _build_events(flows, seed, workload)
    seq_events = _build_events(seq_flows, seed + 1, workload)

    # Warm-up: JIT nothing, but fault in caches / allocator pools.
    drive(fresh(), seq_events, batch_size=256)

    seq = _timed_drive(fresh(), seq_events, mode="sequential")
    print(
        f"sequential: {seq.total_ops} ops in {seq.elapsed_seconds:.3f} s "
        f"= {seq.ops_per_second:,.0f} ops/s "
        f"({seq.num_admitted}/{seq.num_arrivals} admitted)"
    )

    total_ops = seq.total_ops
    batch_runs = []
    for batch_size in BATCH_SIZES:
        result = _timed_drive(fresh(), batch_events, batch_size=batch_size)
        speedup = result.ops_per_second / seq.ops_per_second
        total_ops += result.total_ops
        batch_runs.append(
            {
                "batch_size": batch_size,
                "ops": result.total_ops,
                "seconds": result.elapsed_seconds,
                "ops_per_second": result.ops_per_second,
                "speedup": speedup,
            }
        )
        print(
            f"batch {batch_size:>5}: {result.total_ops} ops in "
            f"{result.elapsed_seconds:.3f} s = "
            f"{result.ops_per_second:,.0f} ops/s ({speedup:.2f}x)"
        )

    kernels = run_kernel_bench(seed=seed)

    speedup_at_1024 = next(
        r["speedup"] for r in batch_runs if r["batch_size"] == 1024
    )
    summary = {
        "schema": BENCH_SCHEMA,
        "topology": "nsfnet",
        "controller": "utilization",
        "alpha": alpha,
        "seed": seed,
        "flows": flows,
        "seq_flows": seq_flows,
        "total_ops": total_ops,
        "sequential": {
            "ops": seq.total_ops,
            "seconds": seq.elapsed_seconds,
            "ops_per_second": seq.ops_per_second,
        },
        "batch_runs": batch_runs,
        "speedup_at_1024": speedup_at_1024,
        "kernels": kernels,
    }
    output.write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )
    print(
        f"wrote {output} (total_ops={total_ops}, "
        f"speedup@1024={speedup_at_1024:.2f}x, "
        f"best kernel {kernels['best']['backend']} at "
        f"{kernels['best']['rows_per_second']:,.0f} rows/s)"
    )
    problems = validate_summary(summary)
    for problem in problems:
        print(f"FLOOR MISSED: {problem}")
    return 1 if problems else 0


def validate_summary(data: dict) -> list:
    """Schema/floor violations in a summary dict (empty = valid)."""
    problems = []
    if data.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema is {data.get('schema')!r}, expected {BENCH_SCHEMA!r}"
        )
        return problems
    for key in ("topology", "controller"):
        if not isinstance(data.get(key), str) or not data[key]:
            problems.append(f"{key} must be a non-empty string")
    seq = data.get("sequential")
    if not isinstance(seq, dict):
        problems.append("sequential must be an object")
    else:
        for key in ("ops", "seconds", "ops_per_second"):
            value = seq.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                problems.append(
                    f"sequential.{key} must be a positive number, "
                    f"got {value!r}"
                )
    runs = data.get("batch_runs")
    if not isinstance(runs, list) or not runs:
        problems.append("batch_runs must be a non-empty list")
        runs = []
    sizes = set()
    for i, run in enumerate(runs):
        if not isinstance(run, dict):
            problems.append(f"batch_runs[{i}] is not an object")
            continue
        for key in _RUN_FIELDS:
            value = run.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                problems.append(
                    f"batch_runs[{i}].{key} must be a positive "
                    f"number, got {value!r}"
                )
        size = run.get("batch_size")
        if size in sizes:
            problems.append(f"duplicate batch_size {size!r}")
        sizes.add(size)
    if 1024 not in sizes:
        problems.append("batch_runs must include batch_size 1024")
    total_ops = data.get("total_ops")
    if not isinstance(total_ops, (int, float)):
        problems.append("total_ops must be a number")
    elif total_ops < MIN_TOTAL_OPS:
        problems.append(
            f"total_ops {total_ops} below the {MIN_TOTAL_OPS} floor"
        )
    speedup = data.get("speedup_at_1024")
    if not isinstance(speedup, (int, float)):
        problems.append("speedup_at_1024 must be a number")
    elif speedup < MIN_SPEEDUP_AT_1024:
        problems.append(
            f"speedup_at_1024 {speedup:.2f} below the "
            f"{MIN_SPEEDUP_AT_1024}x floor"
        )
    problems.extend(_validate_kernels_section(data.get("kernels")))
    return problems


def _validate_kernels_section(kernels) -> list:
    """Violations in the raw slot-kernel section.

    The >=1M rows/s floor applies to every backend except the
    ``sequential`` reference loop (present for scale, exempt by
    design); ``numpy`` must always have a cell, ``numba`` only where
    the summary says the extra is installed.
    """
    problems = []
    if not isinstance(kernels, dict):
        return ["kernels must be an object"]
    available = kernels.get("available")
    if not isinstance(available, list) or "numpy" not in available:
        problems.append(
            f"kernels.available must be a list containing 'numpy', "
            f"got {available!r}"
        )
        return problems
    runs = kernels.get("runs")
    if not isinstance(runs, list) or not runs:
        return ["kernels.runs must be a non-empty list"]
    measured = set()
    for i, run in enumerate(runs):
        if not isinstance(run, dict):
            problems.append(f"kernels.runs[{i}] is not an object")
            continue
        backend = run.get("backend")
        measured.add(backend)
        for key in _KERNEL_RUN_FIELDS[1:]:
            value = run.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                problems.append(
                    f"kernels.runs[{i}].{key} must be a positive "
                    f"number, got {value!r}"
                )
                break
        else:
            if (
                backend != "sequential"
                and run["rows_per_second"] < MIN_KERNEL_ROWS_PER_SECOND
            ):
                problems.append(
                    f"kernel backend {backend!r} sustains only "
                    f"{run['rows_per_second']:,.0f} rows/s, floor is "
                    f"{MIN_KERNEL_ROWS_PER_SECOND:,}"
                )
    if "numpy" not in measured:
        problems.append("kernels.runs is missing the 'numpy' backend")
    if kernels.get("have_numba") and "numba" not in measured:
        problems.append(
            "kernels.have_numba is true but no 'numba' run is recorded"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default=str(REPO / "BENCH_admission.json"),
        help="summary path (default: BENCH_admission.json at repo root)",
    )
    parser.add_argument(
        "--flows", type=int, default=150_000,
        help="flow arrivals per batch run",
    )
    parser.add_argument(
        "--seq-flows", type=int, default=60_000,
        help="flow arrivals in the sequential baseline run",
    )
    parser.add_argument(
        "--alpha", type=float, default=0.3,
        help="voice-class utilization assignment",
    )
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument(
        "--validate", metavar="FILE", default=None,
        help="validate a summary file against schema + floors and exit",
    )
    args = parser.parse_args(argv)
    if args.validate:
        problems = validate_summary(
            json.loads(pathlib.Path(args.validate).read_text())
        )
        for problem in problems:
            print(f"INVALID: {problem}")
        if not problems:
            print(f"{args.validate}: valid {BENCH_SCHEMA}")
        return 1 if problems else 0
    return run_bench(
        pathlib.Path(args.output),
        flows=args.flows,
        seq_flows=args.seq_flows,
        alpha=args.alpha,
        seed=args.seed,
    )


if __name__ == "__main__":
    raise SystemExit(main())
