"""Table 1: maximum utilization — lower bound, SP, heuristic, upper bound.

Paper values: 0.30 / 0.33 / 0.45 / 0.61.  The reconstruction reproduces
the analytic endpoints exactly and the qualitative ordering
LB <= SP < heuristic <= UB; the absolute SP/heuristic numbers depend on
the exact MCI link list (the paper gives only a picture), so the bench
asserts shape, not equality — see EXPERIMENTS.md.
"""

import pytest

from repro.config import (
    max_utilization_heuristic,
    max_utilization_shortest_path,
    utilization_bounds,
)
from repro.experiments import PAPER_TABLE1
from repro.experiments.table1 import Table1Result
from repro.routing import HeuristicOptions


@pytest.fixture(scope="module")
def bounds(scenario):
    return utilization_bounds(
        scenario.fan_in,
        scenario.diameter,
        scenario.voice.burst,
        scenario.voice.rate,
        scenario.voice.deadline,
    )


def test_bench_theorem4_bounds(benchmark, scenario):
    """The closed-form columns (instant; exact match with the paper)."""
    b = benchmark(
        utilization_bounds,
        scenario.fan_in,
        scenario.diameter,
        scenario.voice.burst,
        scenario.voice.rate,
        scenario.voice.deadline,
    )
    assert b.lower == pytest.approx(PAPER_TABLE1["lower_bound"], abs=0.005)
    assert b.upper == pytest.approx(PAPER_TABLE1["upper_bound"], abs=0.005)


def test_bench_table1_shortest_path(benchmark, scenario):
    """SP column: binary search over fixed shortest-path routes."""
    result = benchmark.pedantic(
        max_utilization_shortest_path,
        args=(scenario.network, scenario.pairs, scenario.voice),
        kwargs={"resolution": 0.005},
        rounds=1,
        iterations=1,
    )
    assert result.bounds.lower - 1e-9 <= result.alpha <= result.bounds.upper


def test_bench_table1_heuristic(benchmark, scenario):
    """Heuristic column: binary search over Section 5.2 selection."""
    result = benchmark.pedantic(
        max_utilization_heuristic,
        args=(scenario.network, scenario.pairs, scenario.voice),
        kwargs={"resolution": 0.005},
        rounds=1,
        iterations=1,
    )
    assert result.bounds.lower - 1e-9 <= result.alpha <= result.bounds.upper


def test_bench_table1_full(benchmark, scenario, capsys):
    """The complete table, printed in the paper's layout."""
    from repro.experiments.table1 import run_table1

    result: Table1Result = benchmark.pedantic(
        run_table1,
        kwargs={"resolution": 0.005, "scenario": scenario},
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(result.render())
        print(f"heuristic / SP improvement: {result.improvement:.2f}x "
              f"(paper: {0.45 / 0.33:.2f}x)")
    # The qualitative claims of Section 6:
    assert result.ordering_holds
    assert result.improvement > 1.1
    v = result.values
    assert v["lower_bound"] == pytest.approx(0.30, abs=0.005)
    assert v["upper_bound"] == pytest.approx(0.61, abs=0.005)
