#!/usr/bin/env python
"""Admission-service RPC throughput bench -> ``BENCH_service.json``.

Stands up the :mod:`repro.service` asyncio server on a Unix socket and
drives ``admit`` RPCs through :class:`AsyncServiceClient`, measuring
requests/s and per-request p50/p99 latency across the micro-batching
matrix: coalescing window (``--max-delay-ms`` 0/1/2) x offered load
(64/256/1024 in-flight requests), plus the strictly sequential
single-request floor (depth 1, no window) that every cell is compared
against, plus a telemetry on/off pair (same coalescing config, full
observability enabled vs disabled) that prices the tracing/metrics/SLO
instrumentation.  The summary is ``repro-bench-summary/v1`` (the same
compact shape ``run_baseline.py`` validates) with an extra ``service``
section recording the micro-batching speedup and telemetry overhead::

    python benchmarks/run_service_bench.py               # -> BENCH_service.json
    python benchmarks/run_service_bench.py --output other.json
    python benchmarks/run_service_bench.py --floor-ops 500 --cell-ops 2000
    python benchmarks/run_service_bench.py --validate BENCH_service.json

A **v2** section measures the binary frame protocol: the sequential
single-RPC floor re-run over v2 framing, and packed ``bulk`` frames of
1024 admits (1024 requests in flight — the max matrix load) whose
per-frame p50 is the time every in-flight request waits for its
decision.  ``--validate`` enforces >=10x the single-request floor and
a sub-5 ms frame p50 on that cell.

On top of the single-process matrix, a **cluster** section measures
multi-core scale-out: real ``serve --workers N`` clusters (supervisor
subprocess, shard-worker grandchildren, consistent-hash front door)
for N in 1/2/4 driven over N concurrent connections, against a plain
single-server baseline driven with the same client parallelism.  The
machine's ``cpu_count`` is recorded with the cells because the cluster
speedup *is* a hardware claim: ``--validate`` enforces the >=3x
aggregate-throughput floor at 4 workers only when the summary was
recorded on >=4 cores, and a 0.5x sanity floor (the front-door hop
must not collapse throughput) everywhere else — numbers from a 1-core
CI box are honest, not fabricated.

An **overload** section prices the adaptive control plane
(``docs/overload.md``): the same reproducible 2x linear-ramp,
mixed-priority workload is driven over the wire at a shed-only server
and at a ``--governor --preempt`` server, and a third in-process cell
measures the nominal matrix workload with a certified ladder +
preemptor *attached but quiescent*.  ``--validate`` enforces that the
governed server's hard-RT goodput is >=2x the shed-only server's under
the identical ramp, that the governed server's effective alpha is a
rung of its certified ladder, and that the quiescent control plane
stays within 5% of the plain cell — on by default must cost nothing.

``--validate`` checks a summary against the schema — including the
acceptance floors: 1024 pipelined requests under a 2 ms coalescing
window sustain >=3x the single-request RPC throughput, the
telemetry-off path stays within 5% of the identically-configured
untelemetered cell (telemetry must be zero-cost when disabled), and
full telemetry retains at least half the telemetry-off throughput —
and exits non-zero on any violation; CI runs it against the checked-in
snapshot.
"""

from __future__ import annotations

import argparse
import asyncio
import gc
import json
import os
import pathlib
import statistics
import sys
import tempfile
from time import perf_counter

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))

from run_baseline import validate_summary  # noqa: E402

#: Acceptance floor validated by ``--validate`` (and CI).
MIN_SPEEDUP_AT_1024 = 3.0

#: Telemetry must be zero-cost when disabled: the telemetry-off cell
#: may regress at most this fraction against the identically-configured
#: matrix cell measured in the same run.
MAX_TELEMETRY_OFF_REGRESSION = 0.05

#: Full telemetry (metrics + per-request spans + SLO feed) must retain
#: at least this fraction of telemetry-off throughput.  The bench runs
#: client and server in one process, so *both* halves of every span
#: chain bill to the same interpreter — a deployment pays roughly half
#: this overhead per side.
MIN_TELEMETRY_ON_RETENTION = 0.5

#: Coalescing windows (ms) x offered loads (in-flight requests).
DELAYS_MS = (0.0, 1.0, 2.0)
LOADS = (64, 256, 1024)

#: The sequential baseline: one request in flight, no coalescing window.
FLOOR_NAME = "service_single_rpc_floor"

#: The cell the speedup floor is read from: max load, widest window.
SPEEDUP_CELL = "service_rps_delay2ms_load1024"

#: Telemetry on/off cells (and the matrix cell they are compared to).
TELEMETRY_OFF_NAME = "service_rps_telemetry_off"
TELEMETRY_ON_NAME = "service_rps_telemetry_on"
TELEMETRY_BASE_CELL = "service_rps_delay1ms_load256"
TELEMETRY_DELAY_MS = 1.0
TELEMETRY_LOAD = 256

#: v2 binary-protocol cells: the sequential single-RPC floor measured
#: over v2 framing, and the packed bulk frame cell at the max load.
V2_FLOOR_NAME = "service_v2_single_rpc_floor"
V2_BULK_NAME = "service_v2_bulk_load1024"
V2_BULK_FRAME_OPS = 1024
V2_BULK_FRAMES_IN_FLIGHT = 1

#: Acceptance floors for the v2 bulk cell, enforced by ``--validate``:
#: packed bulk frames must sustain >=10x the single-request RPC floor,
#: and a full 1024-op frame must decide in under 5 ms at the median.
MIN_V2_SPEEDUP_OVER_FLOOR = 10.0
MAX_V2_BULK_P50_MS = 5.0

#: Cluster scale-out cells: worker counts measured, and the client
#: parallelism every cluster cell (and the baseline) is driven with.
CLUSTER_WORKERS = (1, 2, 4)
CLUSTER_CONNECTIONS = 4
CLUSTER_BASELINE_NAME = "service_cluster_single_baseline"

#: Aggregate-throughput floor for 4 workers vs the single-server
#: baseline — a multi-core claim, enforced only when the summary
#: records >=4 cpus.
MIN_CLUSTER_SPEEDUP_AT_4 = 3.0

#: Everywhere else (1-2 core machines) the cluster must still clear
#: this sanity fraction of the baseline: the front-door hop and the
#: extra processes must not collapse throughput even when they cannot
#: add any.
MIN_CLUSTER_SANITY_AT_4 = 0.5


#: Overload control-plane cells: one reproducible 2x linear ramp with
#: a mixed-priority population, replayed in identical event order
#: (single connection) at a shed-only server and at a governed +
#: preempting server; plus the quiescent-control-plane noise guard.
OVERLOAD_SHED_ONLY_NAME = "service_overload_shed_only"
OVERLOAD_GOVERNED_NAME = "service_overload_governed"
CONTROL_IDLE_NAME = "service_rps_control_idle"
OVERLOAD_FLOWS = 12_000
OVERLOAD_RAMP_FACTOR = 2.0
OVERLOAD_ARRIVAL_RATE = 400.0
OVERLOAD_MEAN_HOLDING = 600.0
OVERLOAD_ZIPF_SKEW = 1.6
OVERLOAD_PRIORITY_MIX = "hard_rt=1,soft_rt=2,elastic=7"
OVERLOAD_SEED = 17
OVERLOAD_FRAME_SIZE = 256

#: Under the same 2x ramp, the governed+preempting server must deliver
#: at least this multiple of the shed-only server's hard-RT goodput
#: (admitted hard-RT arrivals).
MIN_OVERLOAD_HARD_RT_RATIO = 2.0

#: A certified ladder + preemptor attached to a server at nominal load
#: (where the governor never presses) may cost at most this fraction
#: against the identically-configured plain matrix cell — the control
#: plane must be free when it is not acting.
MAX_CONTROL_IDLE_REGRESSION = 0.05


def cluster_cell_name(workers: int) -> str:
    return f"service_cluster_rps_workers{workers}"


def cell_name(delay_ms: float, load: int) -> str:
    return f"service_rps_delay{delay_ms:g}ms_load{load}"


def _flows(count: int, tag: str):
    from repro.topology import nsfnet_backbone
    from repro.traffic.flows import FlowSpec
    from repro.traffic.generators import all_ordered_pairs

    pairs = all_ordered_pairs(nsfnet_backbone())
    return [
        FlowSpec(f"{tag}-{i}", "voice", *pairs[i % len(pairs)])
        for i in range(count)
    ]


def _controller():
    from repro.admission import UtilizationAdmissionController
    from repro.routing.shortest import shortest_path_routes
    from repro.topology import LinkServerGraph, nsfnet_backbone
    from repro.traffic import ClassRegistry, voice_class
    from repro.traffic.generators import all_ordered_pairs

    network = nsfnet_backbone()
    return UtilizationAdmissionController(
        LinkServerGraph(network),
        ClassRegistry.two_class(voice_class()),
        {"voice": 0.3},
        shortest_path_routes(network, all_ordered_pairs(network)),
    )


def _control_plane(controller):
    """A certified default ladder + preemptor for ``controller``."""
    from repro.control import AlphaGovernor, Preemptor, certify_ladder
    from repro.routing.shortest import shortest_path_routes
    from repro.topology import nsfnet_backbone
    from repro.traffic.generators import all_ordered_pairs

    network = nsfnet_backbone()
    routes = shortest_path_routes(network, all_ordered_pairs(network))
    ladder = certify_ladder(
        controller.graph,
        list(routes.values()),
        controller.registry,
        {"voice": 0.3},
        [0.3 * f for f in (0.5, 0.625, 0.75, 0.875)],
    )
    return AlphaGovernor(ladder), Preemptor(controller)


async def _measure_async(
    flows, *, depth, delay_ms, socket_path, protocol="v1", control=False
):
    from repro.service import (
        AdmissionService,
        AsyncServiceClient,
        ServiceConfig,
    )

    controller = _controller()
    governor = preemptor = None
    if control:
        governor, preemptor = _control_plane(controller)
    service = AdmissionService(
        controller,
        ServiceConfig(max_delay=delay_ms / 1000.0),
        governor=governor,
        preemptor=preemptor,
    )
    await service.start_unix(socket_path)
    client = await AsyncServiceClient.connect_unix(
        socket_path, protocol=protocol
    )
    if client.negotiated_protocol != protocol:
        raise SystemExit(
            f"server negotiated {client.negotiated_protocol!r}, "
            f"cell needs {protocol!r}"
        )
    semaphore = asyncio.Semaphore(depth)
    latencies = []

    async def one(flow):
        async with semaphore:
            start = perf_counter()
            await client.admit(flow)
            latencies.append(perf_counter() - start)

    # Pause the cyclic GC during the timed region (same rationale as
    # run_admission_bench: gen-0 sweeps over ~10^5 live futures are a
    # flat tax that swamps the per-request cost being measured).
    enabled = gc.isenabled()
    gc.disable()
    begin = perf_counter()
    try:
        await asyncio.gather(*(one(flow) for flow in flows))
    finally:
        if enabled:
            gc.enable()
    elapsed = perf_counter() - begin
    batches = service.coalescer.batches
    largest = service.coalescer.largest_batch
    await client.close()
    await service.drain()
    return {
        "elapsed": elapsed,
        "latencies": latencies,
        "batches": batches,
        "largest_batch": largest,
    }


def measure(
    ops: int,
    *,
    depth: int,
    delay_ms: float,
    tag: str,
    protocol: str = "v1",
    control: bool = False,
) -> dict:
    """One fresh server + client run of ``ops`` pipelined admits."""
    flows = _flows(ops, tag)
    with tempfile.TemporaryDirectory() as tmp:
        socket_path = str(pathlib.Path(tmp) / "bench.sock")
        return asyncio.run(
            _measure_async(
                flows,
                depth=depth,
                delay_ms=delay_ms,
                socket_path=socket_path,
                protocol=protocol,
                control=control,
            )
        )


async def _measure_v2_bulk_async(ops, *, delay_ms, socket_path):
    from repro.service import (
        AdmissionService,
        AsyncServiceClient,
        ServiceConfig,
    )
    from repro.service import protocol as wire
    from repro.topology import nsfnet_backbone
    from repro.traffic.generators import all_ordered_pairs

    pairs = all_ordered_pairs(nsfnet_backbone())
    subs = [
        [wire.BULK_ADMIT, f"v2b-{i}", "voice", *pairs[i % len(pairs)], None]
        for i in range(ops)
    ]
    frames = [
        subs[i : i + V2_BULK_FRAME_OPS]
        for i in range(0, len(subs), V2_BULK_FRAME_OPS)
    ]
    service = AdmissionService(
        _controller(), ServiceConfig(max_delay=delay_ms / 1000.0)
    )
    await service.start_unix(socket_path)
    client = await AsyncServiceClient.connect_unix(
        socket_path, protocol="v2"
    )
    if client.negotiated_protocol != "v2":
        raise SystemExit("server refused the v2 frame negotiation")
    semaphore = asyncio.Semaphore(V2_BULK_FRAMES_IN_FLIGHT)
    latencies = []  # per *frame*: the time 1024 in-flight ops wait

    async def one(frame):
        async with semaphore:
            start = perf_counter()
            await client.bulk(frame, raw=True)
            latencies.append(perf_counter() - start)

    enabled = gc.isenabled()
    gc.disable()
    begin = perf_counter()
    try:
        await asyncio.gather(*(one(frame) for frame in frames))
    finally:
        if enabled:
            gc.enable()
    elapsed = perf_counter() - begin
    batches = service.coalescer.batches
    largest = service.coalescer.largest_batch
    await client.close()
    await service.drain()
    return {
        "elapsed": elapsed,
        "latencies": latencies,
        "ops": ops,
        "batches": batches,
        "largest_batch": largest,
    }


def measure_v2_bulk(ops: int, *, repeats: int = 3) -> dict:
    """Best-of-``repeats`` packed bulk run: ``ops`` admits in frames of
    :data:`V2_BULK_FRAME_OPS` sub-ops, :data:`V2_BULK_FRAMES_IN_FLIGHT`
    frame(s) pipelined — 1024 requests in flight, the max matrix load.
    Best-of damps scheduler noise; the p50 floor is an acceptance
    check, not a timing report."""
    best = None
    for _attempt in range(repeats):
        with tempfile.TemporaryDirectory() as tmp:
            socket_path = str(pathlib.Path(tmp) / "bench.sock")
            run = asyncio.run(
                _measure_v2_bulk_async(
                    ops, delay_ms=2.0, socket_path=socket_path
                )
            )
        if best is None or (
            run["ops"] / run["elapsed"] > best["ops"] / best["elapsed"]
        ):
            best = run
    return best


def make_v2_bulk_entry(name: str, run: dict) -> dict:
    """Summary entry for the packed bulk cell.

    The latency stats are per *frame* — the wall-clock wait of a full
    1024-op frame, i.e. the time every one of the 1024 in-flight
    requests waits for its decision — while ``rps``/``rounds`` count
    sub-ops, so the speedup-over-floor ratio compares request
    throughput like every other cell.
    """
    lat = sorted(run["latencies"])
    n = len(lat)
    return {
        "name": name,
        "median": statistics.median(lat),
        "stddev": statistics.pstdev(lat),
        "mean": statistics.fmean(lat),
        "rounds": run["ops"],
        "rps": run["ops"] / run["elapsed"],
        "p50_ms": 1000.0 * lat[n // 2],
        "p99_ms": 1000.0 * lat[min(n - 1, (n * 99) // 100)],
        "protocol": "v2",
        "frame_ops": V2_BULK_FRAME_OPS,
        "frames_in_flight": V2_BULK_FRAMES_IN_FLIGHT,
        "batches": run["batches"],
        "largest_batch": run["largest_batch"],
    }


def measure_telemetry(ops: int, *, telemetry: bool, repeats: int = 3) -> dict:
    """Best-of-``repeats`` run with full telemetry switched on or off.

    Telemetry-on enables the global observability switchboard (metrics
    registry + tracer, so every request records a latency histogram
    sample, a client span, a server span, and batch spans) for the
    duration of the run; both modes use the same coalescing config as
    :data:`TELEMETRY_BASE_CELL`.  Best-of damps scheduler noise — the
    comparison is a floor check, not a timing report.
    """
    import repro.obs as obs

    best = None
    for attempt in range(repeats):
        if telemetry:
            obs.enable(fresh=True)
        try:
            run = measure(
                ops,
                depth=TELEMETRY_LOAD,
                delay_ms=TELEMETRY_DELAY_MS,
                tag=f"tele-{telemetry}-{attempt}",
            )
        finally:
            if telemetry:
                obs.disable()
                obs.reset()
        rps = len(run["latencies"]) / run["elapsed"]
        if best is None or rps > len(best["latencies"]) / best["elapsed"]:
            best = run
    return best


def measure_control_idle(ops: int, *, repeats: int = 3) -> dict:
    """Best-of-``repeats`` run with a quiescent control plane attached.

    Same coalescing config as :data:`TELEMETRY_BASE_CELL`, but the
    service carries a certified alpha ladder, a running governor
    sampler, and a preemptor.  At nominal load the governor never
    presses and no flow carries a priority, so any throughput delta
    against the plain cell is pure control-plane hook cost.
    """
    best = None
    for attempt in range(repeats):
        run = measure(
            ops,
            depth=TELEMETRY_LOAD,
            delay_ms=TELEMETRY_DELAY_MS,
            tag=f"ctl-idle-{attempt}",
            control=True,
        )
        rps = len(run["latencies"]) / run["elapsed"]
        if best is None or rps > len(best["latencies"]) / best["elapsed"]:
            best = run
    return best


def _overload_events():
    """The reproducible 2x-ramp mixed-priority overload stream.

    Deterministic in :data:`OVERLOAD_SEED`; replayed over a single
    connection so both overload cells decide the identical event order
    and the hard-RT goodput comparison is apples to apples.
    """
    from repro.topology import nsfnet_backbone
    from repro.traffic.generators import all_ordered_pairs
    from repro.workload import (
        ZipfPairPopularity,
        assign_priorities,
        parse_priority_mix,
        ramp_schedule,
        schedule_events,
    )

    pairs = all_ordered_pairs(nsfnet_backbone())
    popularity = ZipfPairPopularity(
        num_pairs=len(pairs),
        skew=OVERLOAD_ZIPF_SKEW,
        shuffle_seed=OVERLOAD_SEED,
    )
    schedule = ramp_schedule(
        OVERLOAD_FLOWS,
        arrival_rate=OVERLOAD_ARRIVAL_RATE,
        ramp_factor=OVERLOAD_RAMP_FACTOR,
        mean_holding=OVERLOAD_MEAN_HOLDING,
        popularity=popularity,
        shape="linear",
        seed=OVERLOAD_SEED,
    )
    events = schedule_events(schedule, pairs, "voice")
    return assign_priorities(
        events,
        parse_priority_mix(OVERLOAD_PRIORITY_MIX),
        seed=OVERLOAD_SEED,
    )


def measure_overload(*, governed: bool, tag: str) -> dict:
    """Drive the overload stream at a real serve subprocess.

    ``governed=True`` starts the server with ``--governor --preempt``
    (default ladder, certified at startup); ``False`` is the shed-only
    baseline.  Returns the replay result plus the server's final stats
    (the governed run's governor/preemption blocks feed the summary).
    """
    from repro.faults import ServiceProcess
    from repro.service.replay import replay_events_concurrent

    events = _overload_events()
    extra = (
        ["--governor", "--governor-interval", "0.02", "--preempt"]
        if governed
        else []
    )
    with tempfile.TemporaryDirectory() as tmp:
        socket_path = str(pathlib.Path(tmp) / "bench.sock")
        with ServiceProcess(
            socket_path=socket_path,
            topology="nsfnet",
            max_delay_ms=1.0,
            extra_args=extra,
        ) as process:
            process.start()
            result = replay_events_concurrent(
                lambda _i: process.client(),
                events,
                connections=1,
                frame_size=OVERLOAD_FRAME_SIZE,
            )
            with process.client() as client:
                stats = client.stats()
    if result.num_errors:
        raise SystemExit(
            f"overload cell {tag!r} saw {result.num_errors} errors — "
            "refusing to report a dirty measurement"
        )
    if not result.per_priority or "hard_rt" not in result.per_priority:
        raise SystemExit(
            f"overload cell {tag!r} lost its priority accounting"
        )
    return {"result": result, "stats": stats}


def make_overload_entry(name: str, run: dict, *, governed: bool) -> dict:
    """Summary entry for one overload cell (frame latencies as stats)."""
    result = run["result"]
    lat = sorted(result.frame_latencies)
    n = len(lat)
    entry = {
        "name": name,
        "median": statistics.median(lat),
        "stddev": statistics.pstdev(lat),
        "mean": statistics.fmean(lat),
        "rounds": result.total_ops,
        "rps": result.total_ops / result.elapsed_seconds,
        "p50_ms": 1000.0 * lat[n // 2],
        "p99_ms": 1000.0 * lat[min(n - 1, (n * 99) // 100)],
        "governed": governed,
        "ramp": "linear",
        "ramp_factor": OVERLOAD_RAMP_FACTOR,
        "per_priority": result.per_priority,
    }
    if governed:
        stats = run["stats"]
        entry["governor"] = stats.get("governor")
        entry["preemption"] = stats.get("preemption")
    return entry


def _cluster_events(ops: int, tag: str):
    """Arrival/departure stream with bounded concurrency (~window)."""
    from repro.topology import nsfnet_backbone
    from repro.traffic.generators import all_ordered_pairs
    from repro.workload.trace import TraceEvent

    pairs = all_ordered_pairs(nsfnet_backbone())
    window = 400
    events = []
    arrivals = ops // 2
    for i in range(arrivals):
        src, dst = pairs[i % len(pairs)]
        events.append(
            TraceEvent(float(i), "arrival", f"{tag}-{i}", "voice", src, dst)
        )
        if i >= window:
            events.append(
                TraceEvent(
                    float(i), "departure", f"{tag}-{i - window}"
                )
            )
    for i in range(max(0, arrivals - window), arrivals):
        events.append(
            TraceEvent(float(arrivals), "departure", f"{tag}-{i}")
        )
    return events


def measure_cluster(ops: int, *, workers, tag: str) -> "object":
    """Drive a real serve subprocess (cluster or single) over the wire.

    ``workers=None`` runs the plain single-process server — the
    baseline; any integer runs ``serve --workers N``.  Both are driven
    with :data:`CLUSTER_CONNECTIONS` concurrent connections so the
    client parallelism is identical and the only variable is the
    server topology.  Returns the merged ``ServiceReplayResult``.
    """
    from repro.faults import ClusterProcess, ServiceProcess
    from repro.faults.degraded import BackoffPolicy
    from repro.service.client import ServiceClient
    from repro.service.replay import replay_events_concurrent

    events = _cluster_events(ops, tag)
    with tempfile.TemporaryDirectory() as tmp:
        socket_path = str(pathlib.Path(tmp) / "bench.sock")
        kwargs = dict(
            socket_path=socket_path,
            topology="nsfnet",
            max_delay_ms=1.0,
        )
        process = (
            ServiceProcess(**kwargs)
            if workers is None
            else ClusterProcess(workers=workers, **kwargs)
        )
        with process:
            process.start()
            result = replay_events_concurrent(
                lambda _i: ServiceClient(
                    socket_path=socket_path,
                    backoff=BackoffPolicy(base=0.05, max_retries=5),
                ),
                events,
                connections=CLUSTER_CONNECTIONS,
                frame_size=256,
            )
    if result.num_errors:
        raise SystemExit(
            f"cluster bench cell {tag!r} saw {result.num_errors} "
            "errors — refusing to report a dirty measurement"
        )
    return result


def make_cluster_entry(name: str, result, *, workers: int):
    """Summary entry for one cluster cell (frame latencies as stats)."""
    lat = sorted(result.frame_latencies)
    n = len(lat)
    return {
        "name": name,
        "median": statistics.median(lat),
        "stddev": statistics.pstdev(lat),
        "mean": statistics.fmean(lat),
        "rounds": result.total_ops,
        "rps": result.total_ops / result.elapsed_seconds,
        "p50_ms": 1000.0 * lat[n // 2],
        "p99_ms": 1000.0 * lat[min(n - 1, (n * 99) // 100)],
        "workers": workers,
        "connections": CLUSTER_CONNECTIONS,
        "frames": result.frames,
    }


def make_entry(name: str, run: dict, *, depth: int, delay_ms: float):
    """A ``repro-bench-summary/v1`` benchmark entry for one run.

    ``median``/``stddev``/``mean`` are per-request wire latencies in
    seconds (the stats the summary schema requires); the service-level
    numbers ride along as extra keys.
    """
    lat = sorted(run["latencies"])
    ops = len(lat)
    return {
        "name": name,
        "median": statistics.median(lat),
        "stddev": statistics.pstdev(lat),
        "mean": statistics.fmean(lat),
        "rounds": ops,
        "rps": ops / run["elapsed"],
        "p50_ms": 1000.0 * lat[ops // 2],
        "p99_ms": 1000.0 * lat[min(ops - 1, (ops * 99) // 100)],
        "depth": depth,
        "max_delay_ms": delay_ms,
        "batches": run["batches"],
        "largest_batch": run["largest_batch"],
    }


def run_bench(
    output: pathlib.Path,
    *,
    floor_ops: int,
    cell_ops: int,
    cluster_ops: int,
    v2_bulk_ops: int,
) -> int:
    print(f"single-request floor ({floor_ops} ops, depth 1, no window)")
    floor_run = measure(floor_ops, depth=1, delay_ms=0.0, tag="floor")
    floor = make_entry(FLOOR_NAME, floor_run, depth=1, delay_ms=0.0)
    print(
        f"  floor: {floor['rps']:,.0f} req/s, "
        f"p50 {floor['p50_ms']:.3f} ms, p99 {floor['p99_ms']:.3f} ms"
    )

    benches = [floor]
    for delay_ms in DELAYS_MS:
        for load in LOADS:
            name = cell_name(delay_ms, load)
            run = measure(
                cell_ops, depth=load, delay_ms=delay_ms, tag=name
            )
            entry = make_entry(name, run, depth=load, delay_ms=delay_ms)
            benches.append(entry)
            print(
                f"  {name}: {entry['rps']:,.0f} req/s "
                f"({entry['rps'] / floor['rps']:.2f}x floor), "
                f"p50 {entry['p50_ms']:.3f} ms, "
                f"p99 {entry['p99_ms']:.3f} ms, "
                f"largest batch {entry['largest_batch']}"
            )

    print("v2 binary-frame cells")
    v2_floor_run = measure(
        floor_ops, depth=1, delay_ms=0.0, tag="v2floor", protocol="v2"
    )
    v2_floor = make_entry(
        V2_FLOOR_NAME, v2_floor_run, depth=1, delay_ms=0.0
    )
    v2_floor["protocol"] = "v2"
    benches.append(v2_floor)
    print(
        f"  {V2_FLOOR_NAME}: {v2_floor['rps']:,.0f} req/s, "
        f"p50 {v2_floor['p50_ms']:.3f} ms"
    )
    v2_bulk_run = measure_v2_bulk(v2_bulk_ops)
    v2_bulk = make_v2_bulk_entry(V2_BULK_NAME, v2_bulk_run)
    benches.append(v2_bulk)
    print(
        f"  {V2_BULK_NAME}: {v2_bulk['rps']:,.0f} req/s "
        f"({v2_bulk['rps'] / v2_floor['rps']:.1f}x v2 floor, "
        f"{v2_bulk['rps'] / floor['rps']:.1f}x v1 floor), "
        f"frame p50 {v2_bulk['p50_ms']:.3f} ms, "
        f"p99 {v2_bulk['p99_ms']:.3f} ms"
    )

    print("telemetry overhead cells (best of 3 each)")
    for name, telemetry in (
        (TELEMETRY_OFF_NAME, False),
        (TELEMETRY_ON_NAME, True),
    ):
        run = measure_telemetry(cell_ops, telemetry=telemetry)
        entry = make_entry(
            name,
            run,
            depth=TELEMETRY_LOAD,
            delay_ms=TELEMETRY_DELAY_MS,
        )
        benches.append(entry)
        print(
            f"  {name}: {entry['rps']:,.0f} req/s, "
            f"p50 {entry['p50_ms']:.3f} ms, p99 {entry['p99_ms']:.3f} ms"
        )

    print("overload control-plane cells")
    control_idle_run = measure_control_idle(cell_ops)
    control_idle = make_entry(
        CONTROL_IDLE_NAME,
        control_idle_run,
        depth=TELEMETRY_LOAD,
        delay_ms=TELEMETRY_DELAY_MS,
    )
    benches.append(control_idle)
    print(
        f"  {CONTROL_IDLE_NAME}: {control_idle['rps']:,.0f} req/s "
        f"(quiescent governor + preemptor attached)"
    )
    shed_run = measure_overload(governed=False, tag="shed-only")
    shed_entry = make_overload_entry(
        OVERLOAD_SHED_ONLY_NAME, shed_run, governed=False
    )
    benches.append(shed_entry)
    shed_hard = shed_entry["per_priority"]["hard_rt"]
    print(
        f"  {OVERLOAD_SHED_ONLY_NAME}: {shed_entry['rps']:,.0f} req/s, "
        f"hard-RT {shed_hard['admitted']}/{shed_hard['arrivals']} admitted"
    )
    gov_run = measure_overload(governed=True, tag="governed")
    gov_entry = make_overload_entry(
        OVERLOAD_GOVERNED_NAME, gov_run, governed=True
    )
    benches.append(gov_entry)
    gov_hard = gov_entry["per_priority"]["hard_rt"]
    preemption = gov_entry.get("preemption") or {}
    print(
        f"  {OVERLOAD_GOVERNED_NAME}: {gov_entry['rps']:,.0f} req/s, "
        f"hard-RT {gov_hard['admitted']}/{gov_hard['arrivals']} admitted "
        f"({preemption.get('preempted_admits', 0)} by preemption, "
        f"{preemption.get('preempted_flows', 0)} victims)"
    )

    print(
        f"cluster scale-out cells ({CLUSTER_CONNECTIONS} connections, "
        f"cpu_count={os.cpu_count()})"
    )
    baseline_result = measure_cluster(
        cluster_ops, workers=None, tag="clu-base"
    )
    baseline_entry = make_cluster_entry(
        CLUSTER_BASELINE_NAME, baseline_result, workers=0
    )
    benches.append(baseline_entry)
    print(
        f"  {CLUSTER_BASELINE_NAME}: "
        f"{baseline_entry['rps']:,.0f} req/s"
    )
    for workers in CLUSTER_WORKERS:
        name = cluster_cell_name(workers)
        result = measure_cluster(
            cluster_ops, workers=workers, tag=f"clu-{workers}"
        )
        entry = make_cluster_entry(name, result, workers=workers)
        benches.append(entry)
        print(
            f"  {name}: {entry['rps']:,.0f} req/s "
            f"({entry['rps'] / baseline_entry['rps']:.2f}x baseline)"
        )

    benches.sort(key=lambda bench: bench["name"])
    by_name = {bench["name"]: bench for bench in benches}
    batched_rps = by_name[SPEEDUP_CELL]["rps"]
    tele_off = by_name[TELEMETRY_OFF_NAME]["rps"]
    tele_on = by_name[TELEMETRY_ON_NAME]["rps"]
    cluster_4_rps = by_name[cluster_cell_name(4)]["rps"]
    summary = {
        "schema": "repro-bench-summary/v1",
        "benchmarks": benches,
        "service": {
            "topology": "nsfnet",
            "controller": "utilization",
            "floor_ops": floor_ops,
            "cell_ops": cell_ops,
            "single_rps": floor["rps"],
            "batched_rps": batched_rps,
            "speedup_at_1024": batched_rps / floor["rps"],
            "telemetry_off_rps": tele_off,
            "telemetry_on_rps": tele_on,
            "telemetry_off_regression": max(
                0.0, 1.0 - tele_off / by_name[TELEMETRY_BASE_CELL]["rps"]
            ),
            "telemetry_on_retention": tele_on / tele_off,
            "v2": {
                "frame_ops": V2_BULK_FRAME_OPS,
                "frames_in_flight": V2_BULK_FRAMES_IN_FLIGHT,
                "bulk_ops": v2_bulk_ops,
                "single_rps": v2_floor["rps"],
                "bulk_rps": v2_bulk["rps"],
                "bulk_p50_ms": v2_bulk["p50_ms"],
                "bulk_p99_ms": v2_bulk["p99_ms"],
                # Enforced floor: against the slower of the two
                # sequential baselines, so the claim holds vs both.
                "speedup_over_floor": v2_bulk["rps"]
                / max(floor["rps"], v2_floor["rps"]),
            },
            "overload": {
                "flows": OVERLOAD_FLOWS,
                "ramp": "linear",
                "ramp_factor": OVERLOAD_RAMP_FACTOR,
                "arrival_rate": OVERLOAD_ARRIVAL_RATE,
                "mean_holding": OVERLOAD_MEAN_HOLDING,
                "zipf_skew": OVERLOAD_ZIPF_SKEW,
                "priority_mix": OVERLOAD_PRIORITY_MIX,
                "seed": OVERLOAD_SEED,
                "shed_only_rps": shed_entry["rps"],
                "governed_rps": gov_entry["rps"],
                "hard_rt_arrivals": gov_hard["arrivals"],
                "shed_only_hard_rt_admitted": shed_hard["admitted"],
                "governed_hard_rt_admitted": gov_hard["admitted"],
                "hard_rt_goodput_ratio": (
                    gov_hard["admitted"] / max(1, shed_hard["admitted"])
                ),
                "preempted_flows": preemption.get("preempted_flows", 0),
                "preempted_admits": preemption.get("preempted_admits", 0),
                "effective_alpha": (gov_entry.get("governor") or {}).get(
                    "effective_alpha"
                ),
                # The rung alphas the governed server certified at
                # startup: same topology, base alpha, and default
                # candidates, so this reconstruction is bit-identical
                # to the ladder the subprocess booted with.
                "rungs": list(
                    _control_plane(_controller())[0].ladder.rungs
                ),
                "control_idle_rps": control_idle["rps"],
                "control_idle_regression": max(
                    0.0,
                    1.0
                    - control_idle["rps"]
                    / by_name[TELEMETRY_BASE_CELL]["rps"],
                ),
            },
            "cluster": {
                "cpu_count": os.cpu_count() or 1,
                "connections": CLUSTER_CONNECTIONS,
                "cluster_ops": cluster_ops,
                "baseline_rps": baseline_entry["rps"],
                "workers_rps": {
                    str(workers): by_name[cluster_cell_name(workers)][
                        "rps"
                    ]
                    for workers in CLUSTER_WORKERS
                },
                "speedup_at_4_workers": (
                    cluster_4_rps / baseline_entry["rps"]
                ),
            },
        },
    }
    output.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    v2_section = summary["service"]["v2"]
    print(
        f"wrote {output} "
        f"(speedup@1024={summary['service']['speedup_at_1024']:.2f}x, "
        f"v2bulk={v2_section['speedup_over_floor']:.1f}x floor "
        f"@ p50 {v2_section['bulk_p50_ms']:.2f} ms, "
        f"cluster@4workers="
        f"{summary['service']['cluster']['speedup_at_4_workers']:.2f}x "
        f"on {summary['service']['cluster']['cpu_count']} cpus, "
        f"overload hard-RT goodput "
        f"{summary['service']['overload']['hard_rt_goodput_ratio']:.2f}x "
        "shed-only)"
    )
    problems = validate_service_summary(summary)
    for problem in problems:
        print(f"FLOOR MISSED: {problem}")
    return 1 if problems else 0


def validate_service_summary(data: dict) -> list:
    """Schema/floor violations in a service summary (empty = valid)."""
    problems = validate_summary(data)
    if problems:
        return problems
    names = {bench["name"] for bench in data["benchmarks"]}
    expected = (
        {FLOOR_NAME, TELEMETRY_OFF_NAME, TELEMETRY_ON_NAME}
        | {V2_FLOOR_NAME, V2_BULK_NAME}
        | {CLUSTER_BASELINE_NAME}
        | {OVERLOAD_SHED_ONLY_NAME, OVERLOAD_GOVERNED_NAME}
        | {CONTROL_IDLE_NAME}
        | {
            cell_name(delay_ms, load)
            for delay_ms in DELAYS_MS
            for load in LOADS
        }
        | {cluster_cell_name(workers) for workers in CLUSTER_WORKERS}
    )
    for name in sorted(expected - names):
        problems.append(f"missing benchmark {name!r}")
    service = data.get("service")
    if not isinstance(service, dict):
        problems.append("service must be an object")
        return problems
    for key in ("single_rps", "batched_rps"):
        value = service.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            problems.append(
                f"service.{key} must be a positive number, got {value!r}"
            )
    speedup = service.get("speedup_at_1024")
    if not isinstance(speedup, (int, float)):
        problems.append(
            f"service.speedup_at_1024 must be a number, got {speedup!r}"
        )
    elif speedup < MIN_SPEEDUP_AT_1024:
        problems.append(
            f"speedup_at_1024 is {speedup:.2f}x, floor is "
            f"{MIN_SPEEDUP_AT_1024:.1f}x"
        )
    for key in ("telemetry_off_rps", "telemetry_on_rps"):
        value = service.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            problems.append(
                f"service.{key} must be a positive number, got {value!r}"
            )
    regression = service.get("telemetry_off_regression")
    if not isinstance(regression, (int, float)):
        problems.append(
            "service.telemetry_off_regression must be a number, "
            f"got {regression!r}"
        )
    elif regression > MAX_TELEMETRY_OFF_REGRESSION:
        problems.append(
            f"telemetry-off throughput regressed {regression:.1%} "
            f"against the untelemetered cell, budget is "
            f"{MAX_TELEMETRY_OFF_REGRESSION:.0%}"
        )
    retention = service.get("telemetry_on_retention")
    if not isinstance(retention, (int, float)):
        problems.append(
            "service.telemetry_on_retention must be a number, "
            f"got {retention!r}"
        )
    elif retention < MIN_TELEMETRY_ON_RETENTION:
        problems.append(
            f"full telemetry retains only {retention:.1%} of "
            f"telemetry-off throughput, floor is "
            f"{MIN_TELEMETRY_ON_RETENTION:.0%}"
        )
    problems.extend(_validate_v2_section(service.get("v2")))
    problems.extend(_validate_overload_section(service.get("overload")))
    problems.extend(_validate_cluster_section(service.get("cluster")))
    return problems


def _validate_overload_section(overload) -> list:
    """Violations in the ``service.overload`` control-plane section.

    Three load-bearing floors: the governed+preempting server delivers
    >=2x the shed-only hard-RT goodput under the identical 2x ramp,
    its effective alpha is a rung of the certified ladder it booted
    with (uncertified operating points are unreachable), and the
    quiescent control plane stays within 5% of the plain matrix cell.
    Preemption must actually have fired — a ratio measured without any
    sacrifice would be comparing noise.
    """
    problems = []
    if not isinstance(overload, dict):
        return ["service.overload must be an object"]
    for key in (
        "shed_only_rps",
        "governed_rps",
        "control_idle_rps",
    ):
        value = overload.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            problems.append(
                f"service.overload.{key} must be a positive number, "
                f"got {value!r}"
            )
    arrivals = overload.get("hard_rt_arrivals")
    if not isinstance(arrivals, int) or arrivals < 1:
        problems.append(
            f"service.overload.hard_rt_arrivals must be a positive "
            f"integer, got {arrivals!r}"
        )
    ratio = overload.get("hard_rt_goodput_ratio")
    if not isinstance(ratio, (int, float)):
        problems.append(
            "service.overload.hard_rt_goodput_ratio must be a number, "
            f"got {ratio!r}"
        )
    elif ratio < MIN_OVERLOAD_HARD_RT_RATIO:
        problems.append(
            f"governed hard-RT goodput is only {ratio:.2f}x shed-only "
            f"under the {OVERLOAD_RAMP_FACTOR:g}x ramp, floor is "
            f"{MIN_OVERLOAD_HARD_RT_RATIO:.1f}x"
        )
    preempted = overload.get("preempted_admits")
    if not isinstance(preempted, int) or preempted < 1:
        problems.append(
            f"service.overload.preempted_admits is {preempted!r} — the "
            "governed cell never exercised preemption"
        )
    effective = overload.get("effective_alpha")
    rungs = overload.get("rungs")
    if not isinstance(rungs, (list, tuple)) or not rungs:
        problems.append(
            f"service.overload.rungs must be a non-empty list, "
            f"got {rungs!r}"
        )
    elif not isinstance(effective, (int, float)) or not any(
        abs(effective - rung) < 1e-12 for rung in rungs
    ):
        problems.append(
            f"governed effective alpha {effective!r} is not a rung of "
            f"the certified ladder {list(rungs)!r}"
        )
    regression = overload.get("control_idle_regression")
    if not isinstance(regression, (int, float)):
        problems.append(
            "service.overload.control_idle_regression must be a "
            f"number, got {regression!r}"
        )
    elif regression > MAX_CONTROL_IDLE_REGRESSION:
        problems.append(
            f"quiescent control plane costs {regression:.1%} against "
            f"the plain cell, budget is "
            f"{MAX_CONTROL_IDLE_REGRESSION:.0%}"
        )
    return problems


def _validate_v2_section(v2) -> list:
    """Violations in the ``service.v2`` binary-frame section.

    Both floors here are unconditional — they were demonstrated on a
    single-core box, so any machine that can run the bench can clear
    them: packed bulk frames must sustain >=10x the single-request
    floor, and the median 1024-op frame must decide in under 5 ms.
    """
    problems = []
    if not isinstance(v2, dict):
        return ["service.v2 must be an object"]
    for key in ("single_rps", "bulk_rps"):
        value = v2.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            problems.append(
                f"service.v2.{key} must be a positive number, "
                f"got {value!r}"
            )
    speedup = v2.get("speedup_over_floor")
    if not isinstance(speedup, (int, float)):
        problems.append(
            "service.v2.speedup_over_floor must be a number, "
            f"got {speedup!r}"
        )
    elif speedup < MIN_V2_SPEEDUP_OVER_FLOOR:
        problems.append(
            f"v2 bulk throughput is only {speedup:.1f}x the "
            f"single-request floor, floor is "
            f"{MIN_V2_SPEEDUP_OVER_FLOOR:.0f}x"
        )
    p50 = v2.get("bulk_p50_ms")
    if not isinstance(p50, (int, float)) or p50 <= 0:
        problems.append(
            f"service.v2.bulk_p50_ms must be a positive number, "
            f"got {p50!r}"
        )
    elif p50 >= MAX_V2_BULK_P50_MS:
        problems.append(
            f"v2 bulk frame p50 is {p50:.2f} ms at load "
            f"{V2_BULK_FRAME_OPS * V2_BULK_FRAMES_IN_FLIGHT}, "
            f"ceiling is {MAX_V2_BULK_P50_MS:.0f} ms"
        )
    return problems


def _validate_cluster_section(cluster) -> list:
    """Violations in the ``service.cluster`` scale-out section.

    The >=3x floor at 4 workers is a multi-core claim, so it is keyed
    on the ``cpu_count`` the summary *records*: on a >=4-core machine
    the floor is enforced in full; on smaller machines (CI runners are
    often 1-2 cores) only the 0.5x no-collapse sanity floor applies —
    the numbers stay honest instead of a 1-core box "validating" a
    parallel speedup it cannot physically exhibit.
    """
    problems = []
    if not isinstance(cluster, dict):
        return ["service.cluster must be an object"]
    cpu_count = cluster.get("cpu_count")
    if not isinstance(cpu_count, int) or cpu_count < 1:
        problems.append(
            f"service.cluster.cpu_count must be a positive integer, "
            f"got {cpu_count!r}"
        )
        return problems
    baseline = cluster.get("baseline_rps")
    if not isinstance(baseline, (int, float)) or baseline <= 0:
        problems.append(
            f"service.cluster.baseline_rps must be a positive number, "
            f"got {baseline!r}"
        )
        return problems
    workers_rps = cluster.get("workers_rps")
    if not isinstance(workers_rps, dict):
        problems.append("service.cluster.workers_rps must be an object")
        return problems
    for workers in CLUSTER_WORKERS:
        value = workers_rps.get(str(workers))
        if not isinstance(value, (int, float)) or value <= 0:
            problems.append(
                f"service.cluster.workers_rps[{workers}] must be a "
                f"positive number, got {value!r}"
            )
    speedup = cluster.get("speedup_at_4_workers")
    if not isinstance(speedup, (int, float)):
        problems.append(
            "service.cluster.speedup_at_4_workers must be a number, "
            f"got {speedup!r}"
        )
        return problems
    if cpu_count >= 4 and speedup < MIN_CLUSTER_SPEEDUP_AT_4:
        problems.append(
            f"cluster speedup at 4 workers is {speedup:.2f}x on a "
            f"{cpu_count}-core machine, floor is "
            f"{MIN_CLUSTER_SPEEDUP_AT_4:.1f}x"
        )
    elif speedup < MIN_CLUSTER_SANITY_AT_4:
        problems.append(
            f"cluster at 4 workers collapsed to {speedup:.2f}x of the "
            f"single-server baseline (sanity floor "
            f"{MIN_CLUSTER_SANITY_AT_4:.1f}x even on {cpu_count} "
            "core(s))"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO / "BENCH_service.json",
    )
    parser.add_argument(
        "--floor-ops",
        type=int,
        default=2_000,
        help="requests in the sequential floor run",
    )
    parser.add_argument(
        "--cell-ops",
        type=int,
        default=8_000,
        help="requests per (delay, load) cell",
    )
    parser.add_argument(
        "--cluster-ops",
        type=int,
        default=12_000,
        help="admit+release ops per cluster scale-out cell",
    )
    parser.add_argument(
        "--v2-bulk-ops",
        type=int,
        default=65_536,
        help="admits per v2 packed-bulk repeat (frames of 1024)",
    )
    parser.add_argument(
        "--validate",
        type=pathlib.Path,
        metavar="SUMMARY_JSON",
        help="validate an existing summary instead of benchmarking",
    )
    args = parser.parse_args(argv)
    if args.validate is not None:
        problems = validate_service_summary(
            json.loads(args.validate.read_text())
        )
        for problem in problems:
            print(f"INVALID: {problem}")
        if not problems:
            print(f"{args.validate}: valid service bench summary")
        return 1 if problems else 0
    return run_bench(
        args.output,
        floor_ops=args.floor_ops,
        cell_ops=args.cell_ops,
        cluster_ops=args.cluster_ops,
        v2_bulk_ops=args.v2_bulk_ops,
    )


if __name__ == "__main__":
    raise SystemExit(main())
