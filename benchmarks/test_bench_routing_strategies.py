"""Ext-K: routing-strategy comparison — SP vs least-loaded vs heuristic.

The Section 5.2 heuristic is *delay-driven*.  The natural question is
whether plain load balancing (least-loaded routing, delay-blind) gets the
same utilization win.  This bench certifies each strategy's fixed route
set via :func:`critical_alpha` on the paper's scenario.
"""

import pytest

from repro.analysis import critical_alpha
from repro.experiments import format_table
from repro.routing import least_loaded_routes, shortest_path_routes
from repro.config import max_utilization_heuristic


@pytest.fixture(scope="module")
def strategy_alphas(scenario):
    graph = scenario.graph
    voice = scenario.voice
    out = {}
    sp = shortest_path_routes(scenario.network, scenario.pairs)
    out["shortest-path"] = critical_alpha(
        graph, list(sp.values()), voice, resolution=2e-3
    )
    ll = least_loaded_routes(scenario.network, scenario.pairs)
    out["least-loaded"] = critical_alpha(
        graph, list(ll.values()), voice, resolution=2e-3
    )
    heur = max_utilization_heuristic(
        scenario.network, scenario.pairs, voice, resolution=0.005
    )
    out["heuristic (Sec 5.2)"] = heur.alpha
    return out


def test_bench_strategy_report(benchmark, strategy_alphas, capsys):
    benchmark.pedantic(lambda: strategy_alphas, rounds=1, iterations=1)
    rows = [
        [name, f"{alpha:.3f}"]
        for name, alpha in strategy_alphas.items()
    ]
    with capsys.disabled():
        print()
        print(
            format_table(
                ["routing strategy", "certified max alpha"],
                rows,
                title="Ext-K: utilization by routing strategy (MCI, VoIP)",
            )
        )
    # The delay-driven heuristic must not lose to either baseline.
    heur = strategy_alphas["heuristic (Sec 5.2)"]
    assert heur >= strategy_alphas["shortest-path"] - 0.005
    assert heur >= strategy_alphas["least-loaded"] - 0.005


def test_bench_least_loaded_timing(benchmark, scenario):
    routes = benchmark(
        least_loaded_routes, scenario.network, scenario.pairs
    )
    assert len(routes) == len(scenario.pairs)


def test_bench_shortest_path_timing(benchmark, scenario):
    routes = benchmark(
        shortest_path_routes, scenario.network, scenario.pairs
    )
    assert len(routes) == len(scenario.pairs)
