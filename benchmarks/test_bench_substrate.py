"""Ext-P: substrate kernel performance.

The configuration procedures are built from a small set of primitives;
this bench tracks their costs so regressions in the numeric kernels are
visible: envelope algebra, conformance checking, topology expansion, and
the distribution-bound closed forms.
"""

import numpy as np
import pytest

from repro.analysis.distribution import (
    aggregate_envelope_delay,
    lemma2_delay,
)
from repro.simulation import PacketPattern, emission_times
from repro.traffic import leaky_bucket_envelope, voice_class
from repro.traffic.conformance import check_conformance


@pytest.fixture(scope="module")
def envelopes():
    rng = np.random.default_rng(0)
    return [
        leaky_bucket_envelope(
            float(rng.uniform(100, 10_000)),
            float(rng.uniform(1_000, 1e6)),
        )
        for _ in range(64)
    ]


def test_bench_envelope_sum(benchmark, envelopes):
    total = benchmark(lambda: sum(envelopes[1:], envelopes[0]))
    assert total.long_term_rate == pytest.approx(
        sum(e.long_term_rate for e in envelopes)
    )


def test_bench_envelope_shift_and_delay(benchmark, envelopes):
    aggregate = sum(envelopes[1:], envelopes[0])
    capacity = aggregate.long_term_rate * 1.5

    def work():
        return aggregate.shift(0.01).max_delay(capacity)

    d = benchmark(work)
    assert d > 0


def test_bench_lemma2_closed_form(benchmark):
    counts = [150, 160, 140, 155, 145, 150]
    d = benchmark(lemma2_delay, counts, 640.0, 32_000.0, 0.01, 100e6)
    assert d > 0


def test_bench_lemma2_envelope_reference(benchmark):
    """The envelope-machinery evaluation of the same quantity — the
    closed form should beat it by a wide margin."""
    counts = [150, 160, 140, 155, 145, 150]
    d = benchmark(
        aggregate_envelope_delay, counts, 640.0, 32_000.0, 0.01, 100e6
    )
    assert d > 0


def test_bench_conformance_check(benchmark):
    vc = voice_class()
    times = emission_times(
        PacketPattern("greedy", packet_size=640), vc, horizon=4.0
    )  # ~200 packets -> ~20k windows
    report = benchmark(check_conformance, times, 640, vc.envelope())
    assert report.conforms


def test_bench_servergraph_expansion(benchmark, scenario):
    from repro.topology import LinkServerGraph

    graph = benchmark(LinkServerGraph, scenario.network)
    assert graph.num_servers == 70
